//! # lcl-landscape
//!
//! A complete, executable reproduction of *"Completing the Node-Averaged
//! Complexity Landscape of LCLs on Trees"* (Balliu, Brandt, Kuhn, Olivetti,
//! Schmid — PODC 2024): LOCAL-model simulator, every problem family and
//! algorithm from the paper, the decidability machinery of Section 11, and
//! a registry-driven experiment harness regenerating each figure and
//! theorem.
//!
//! This facade crate re-exports the six member crates:
//!
//! - [`graph`] — trees, lower-bound constructions, rake-and-compress
//!   decompositions,
//! - [`local`] — the synchronous LOCAL engine, IDs, round metrics,
//! - [`core`] — LCL problem definitions, verifiers, and the complexity
//!   landscape (`α₁` formulas, parameter synthesis),
//! - [`algorithms`] — every algorithm in the paper, each reporting exact
//!   per-node termination rounds,
//! - [`harness`] — the unified `Algorithm`/`Instance`/`Session` execution
//!   API: the problem-first planner/resolver and a parallel batch
//!   runner emitting serializable records,
//! - [`decidability`] — the black-white formalism, path classification,
//!   label-sets, and the testing procedure.
//!
//! # Quickstart
//!
//! ```
//! use lcl_landscape::prelude::*;
//!
//! // Every solver of the landscape is a registry entry with a name, a
//! // landscape class, supported instance kinds, and a bid on
//! // declarative problems (the ten paper algorithms plus the
//! // table-driven path-LCL solver).
//! assert_eq!(registry().len(), 11);
//! let algo = find("generic-coloring").expect("registered");
//!
//! // Run a seeded size sweep of the Theorem 11 lower-bound instance
//! // through the Session batch runner (instances are built once and
//! // shared across jobs; execution is parallel).
//! let mut session = Session::new();
//! for n in [5_000usize, 20_000] {
//!     session.push(
//!         algo.name(),
//!         InstanceSpec::Theorem11 { n, k: 2 },
//!         RunConfig::seeded(7),
//!     )?;
//! }
//! let records = session.run()?;
//!
//! // Records carry exact per-node rounds; outputs were verified against
//! // the paper's constraints during the run.
//! for record in &records {
//!     assert_eq!(record.rounds.len(), record.n);
//!     assert!(record.verified);
//!     // Node-averaged complexity is far below worst case (Theorem 11).
//!     assert!(record.node_averaged * 1.5 < record.worst_case as f64);
//! }
//! # Ok::<(), lcl_landscape::harness::HarnessError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lcl_algorithms as algorithms;
pub use lcl_core as core;
pub use lcl_decidability as decidability;
pub use lcl_graph as graph;
pub use lcl_harness as harness;
pub use lcl_local as local;

/// The most common imports, bundled.
pub mod prelude {
    pub use lcl_algorithms::generic_coloring::generic_coloring;
    pub use lcl_algorithms::AlgorithmRun;
    pub use lcl_core::coloring::{ColorLabel, HierarchicalColoring, Variant};
    pub use lcl_core::landscape::{ComplexityClass, Regime};
    pub use lcl_core::problem::{LclProblem, Violation};
    pub use lcl_graph::hierarchical::LowerBoundGraph;
    pub use lcl_graph::{NodeMask, Tree, TreeBuilder};
    pub use lcl_harness::{
        find, registry, Algorithm, HarnessError, Instance, InstanceKind, InstanceSpec, RunConfig,
        RunRecord, Session, SweepReport,
    };
    pub use lcl_local::identifiers::Ids;
    pub use lcl_local::metrics::{RoundStats, TerminationProfile};
}
