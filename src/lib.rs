//! # lcl-landscape
//!
//! A complete, executable reproduction of *"Completing the Node-Averaged
//! Complexity Landscape of LCLs on Trees"* (Balliu, Brandt, Kuhn, Olivetti,
//! Schmid — PODC 2024): LOCAL-model simulator, every problem family and
//! algorithm from the paper, the decidability machinery of Section 11, and
//! a benchmark harness regenerating each figure and theorem.
//!
//! This facade crate re-exports the five member crates:
//!
//! - [`graph`] — trees, lower-bound constructions, rake-and-compress
//!   decompositions,
//! - [`local`] — the synchronous LOCAL engine, IDs, round metrics,
//! - [`core`] — LCL problem definitions, verifiers, and the complexity
//!   landscape (`α₁` formulas, parameter synthesis),
//! - [`algorithms`] — every algorithm in the paper, each reporting exact
//!   per-node termination rounds,
//! - [`decidability`] — the black-white formalism, path classification,
//!   label-sets, and the testing procedure.
//!
//! # Quickstart
//!
//! ```
//! use lcl_landscape::prelude::*;
//!
//! // Build a Theorem 11 lower-bound instance and measure the
//! // node-averaged complexity of the generic 3½-coloring algorithm.
//! let lengths = lcl_landscape::core::params::theorem11_lengths(50_000, 2);
//! let g = LowerBoundGraph::new(&lengths)?;
//! let n = g.tree().node_count();
//! let ids = Ids::random(n, 7);
//! let gammas = lcl_landscape::core::params::theorem11_gammas(n, 2);
//! let run = generic_coloring(g.tree(), Variant::ThreeHalf, &gammas, &ids);
//!
//! // Outputs always pass the paper's constraints...
//! let problem = HierarchicalColoring::new(2, Variant::ThreeHalf);
//! problem.verify(g.tree(), &vec![(); n], &run.outputs)?;
//! // ...and node-averaged complexity is far below worst case.
//! let stats = run.stats();
//! assert!(stats.node_averaged() * 1.5 < stats.worst_case() as f64);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lcl_algorithms as algorithms;
pub use lcl_core as core;
pub use lcl_decidability as decidability;
pub use lcl_graph as graph;
pub use lcl_local as local;

/// The most common imports, bundled.
pub mod prelude {
    pub use lcl_algorithms::generic_coloring::generic_coloring;
    pub use lcl_algorithms::AlgorithmRun;
    pub use lcl_core::coloring::{ColorLabel, HierarchicalColoring, Variant};
    pub use lcl_core::problem::{LclProblem, Violation};
    pub use lcl_graph::hierarchical::LowerBoundGraph;
    pub use lcl_graph::{NodeMask, Tree, TreeBuilder};
    pub use lcl_local::identifiers::Ids;
    pub use lcl_local::metrics::RoundStats;
}
