//! Decidability demo (Theorem 7 pipeline): classify path LCLs and run the
//! testing procedure + constant-good check on black-white problems.
//!
//! ```sh
//! cargo run --release --example path_classifier
//! ```

use lcl_landscape::decidability::path_lcl::PathLcl;
use lcl_landscape::decidability::testing::{find_good_function, TestingConfig};
use lcl_landscape::decidability::BwProblem;

fn main() {
    println!("-- path LCL classification (worst case = node-averaged) --");
    let battery = [
        ("trivial".to_string(), PathLcl::trivial()),
        ("2-coloring".into(), PathLcl::proper_coloring(2)),
        ("3-coloring".into(), PathLcl::proper_coloring(3)),
        ("5-coloring".into(), PathLcl::proper_coloring(5)),
    ];
    for (name, p) in &battery {
        println!("{name:<12} -> {:?}", p.classify());
    }

    println!("\n-- Theorem 7 pipeline: good / constant-good functions --");
    let problems = [
        ("all-equal".to_string(), BwProblem::all_equal(2, 2)),
        ("edge-2-coloring".into(), BwProblem::edge_coloring(2, 2)),
        ("edge-3-coloring".into(), BwProblem::edge_coloring(3, 2)),
    ];
    let cfg = TestingConfig::paths();
    for (name, p) in &problems {
        let report = find_good_function(p, &cfg);
        println!(
            "{name:<16} good f: {:<14} constant-good: {:<6} implied: {:?}",
            report
                .good_function
                .clone()
                .unwrap_or_else(|| "none".into()),
            report
                .constant_good
                .map_or("-".to_string(), |b| b.to_string()),
            report.implied
        );
    }
    println!(
        "\nTheorem 7: a (log* n)^o(1) node-averaged algorithm would make the \
         good function constant-good, collapsing the complexity to O(1) — \
         hence the gap."
    );
}
