//! The problem-first surface end-to-end (ISSUE 5): hand-write a path LCL
//! as a declarative table, let the planner classify it and resolve a
//! solver, then run the plan and read the node-averaged record.
//!
//! ```sh
//! cargo run --release --example solve_custom_problem
//! ```

use lcl_landscape::core::problem_spec::{PathTable, ProblemSpec};
use lcl_landscape::harness::{classify, plan, RunConfig, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hand-written 3-label path LCL: labels 0 and 1 must alternate,
    // label 2 is a wildcard compatible with everything (itself included),
    // and any label may sit on an endpoint. The self-loop on 2 makes the
    // problem O(1): nodes far from the endpoints can tile `2, 2, 2, …`.
    let table = PathTable::new(3, vec![(0, 1), (0, 2), (1, 2), (2, 2)], vec![0, 1, 2]);
    let problem = ProblemSpec::Path(table);

    // Step 1 — classify: the path automaton decides the landscape cell.
    let classification = classify(&problem)?;
    println!("problem   : {}", problem.describe());
    println!(
        "class     : {} (source: {})",
        classification.class.describe(),
        classification.source.describe()
    );
    println!("evidence  : {}", classification.detail);

    // Step 2 — plan: the resolver picks the best-fit solver and packs the
    // table into the run configuration.
    let planned = plan(&problem, 5_000, &RunConfig::seeded(7))?;
    println!(
        "solver    : {} ({})",
        planned.solver.name(),
        planned.fit.reason
    );

    // Step 3 — run: a valid labeling plus class-governed per-node rounds.
    let record = planned.run()?;
    println!(
        "run       : n = {}, node-avg = {:.3}, worst = {}, verified = {}",
        record.n, record.node_averaged, record.worst_case, record.verified
    );
    assert!(record.verified);

    // The same problem drops into a batch next to named presets and raw
    // specs — the SessionBuilder plans each entry the same way.
    let mut builder = Session::builder()
        .size(2_000)
        .base_config(RunConfig::seeded(7));
    builder.problem(&problem)?.preset("3-coloring")?;
    let records = builder.build().run()?;
    println!("\n-- batched with a preset through Session::builder() --");
    for r in &records {
        println!(
            "{:<10} on {:<14} node-avg = {:>8.3}  verified = {}",
            r.algorithm, r.spec, r.node_averaged, r.verified
        );
    }
    Ok(())
}
