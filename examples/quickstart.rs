//! Quickstart: build a paper instance, run an algorithm, verify the
//! output, and read off the node-averaged complexity.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lcl_landscape::core::params;
use lcl_landscape::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A k = 2 lower-bound instance (Definition 18 / Fig. 3): a level-2
    //    path whose nodes each carry a level-1 path.
    let n_target = 100_000;
    let lengths = params::theorem11_lengths(n_target, 2);
    let g = LowerBoundGraph::new(&lengths)?;
    let n = g.tree().node_count();
    println!("instance: {} nodes, level lengths {:?}", n, lengths);

    // 2. Unique IDs from a seeded permutation (the LOCAL model's only
    //    symmetry breaker).
    let ids = Ids::random(n, 42);

    // 3. Run the generic 3½-coloring algorithm (Section 4.1) with the
    //    Theorem 11 phase parameters.
    let gammas = params::theorem11_gammas(n, 2);
    let run = generic_coloring(g.tree(), Variant::ThreeHalf, &gammas, &ids);

    // 4. Verify against the LCL constraints of Definition 9.
    let problem = HierarchicalColoring::new(2, Variant::ThreeHalf);
    problem.verify(g.tree(), &vec![(); n], &run.outputs)?;
    println!("output verified against {}", problem.name());

    // 5. The headline quantities.
    let stats = run.stats();
    println!("worst-case rounds:    {}", stats.worst_case());
    println!("node-averaged rounds: {:.2}", stats.node_averaged());
    println!(
        "fraction of nodes done within 5 rounds: {:.1}%",
        100.0 * stats.fraction_done_by(5)
    );
    Ok(())
}
