//! Quickstart: pick an algorithm from the registry, run a seeded sweep
//! through the `Session` runner, and read off node-averaged complexity.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lcl_landscape::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper's algorithms are registry entries: name, landscape
    //    class, supported instance kinds.
    println!("registry ({} algorithms):", registry().len());
    for algo in registry() {
        println!("  {:<18} {}", algo.name(), algo.landscape_class());
    }

    // 2. Pick the generic 3½-coloring and sweep the Theorem 11
    //    lower-bound instance (Definition 18 / Fig. 3) over three sizes.
    //    The Session batch runner builds each instance once and executes
    //    the runs in parallel.
    let algo = find("generic-coloring").expect("registered");
    let mut session = Session::new();
    for n in [25_000usize, 50_000, 100_000] {
        session.push(
            algo.name(),
            InstanceSpec::Theorem11 { n, k: 2 },
            RunConfig::seeded(42),
        )?;
    }
    let records = session.run()?;

    // 3. Each record carries exact per-node termination rounds, already
    //    verified against the LCL constraints of Definition 9.
    println!("\n{} on Theorem 11 instances:", algo.name());
    for record in &records {
        println!(
            "  n = {:>7}: worst-case {:>3}, node-averaged {:>6.2}, verified: {}",
            record.n, record.worst_case, record.node_averaged, record.verified
        );
    }

    // 4. Summarize the sweep: the node-averaged cost barely moves while n
    //    grows 4x — the hallmark of the (log* n)^c regime.
    let report = SweepReport::from_records(algo.name(), &records);
    let fit = report.fit.expect("three sizes give a fit");
    println!(
        "\nfitted node-avg exponent over n: {:.3} (worst case stays Θ(log* n))",
        fit.exponent
    );

    // 5. The low-level surface remains available for custom experiments.
    let first = &records[0];
    let stats = RoundStats::from_slice(&first.rounds);
    println!(
        "fraction of nodes done within 5 rounds at n = {}: {:.1}%",
        first.n,
        100.0 * stats.fraction_done_by(5)
    );
    Ok(())
}
