//! Landscape explorer: pick a target exponent window, synthesize an LCL
//! whose node-averaged complexity lands inside it (constructive
//! Theorems 1 and 6), and measure it.
//!
//! ```sh
//! cargo run --release --example landscape_explorer -- 0.30 0.34
//! ```

use lcl_landscape::core::landscape::{synthesize_log_star, synthesize_poly, PolySpec};
use lcl_landscape::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let r1: f64 = args.get(1).map_or(0.30, |s| s.parse().unwrap_or(0.30));
    let r2: f64 = args.get(2).map_or(0.34, |s| s.parse().unwrap_or(0.34));
    println!("target window for the exponent c: ({r1}, {r2})");

    // Polynomial regime (Theorem 1).
    let spec = synthesize_poly(r1, r2)?;
    println!("\npolynomial regime: Θ(n^c) via {spec:?}");
    if let PolySpec::Weighted {
        delta,
        d,
        k,
        exponent,
    } = spec
    {
        // Measure A_poly on a Definition 25 instance via the registry.
        let algo = find("apoly").expect("apoly is registered");
        let instance = InstanceSpec::WeightedPoly {
            n: 400_000,
            delta,
            d,
            k,
        }
        .build()?;
        let record = algo.run(&instance, &RunConfig::seeded(1))?;
        println!(
            "measured on n = {}: node-avg = {:.1} (predicted scale n^{exponent:.3} = {:.1})",
            record.n,
            record.node_averaged,
            (record.n as f64).powf(exponent),
        );
    }

    // log* regime (Theorem 6).
    match synthesize_log_star(r1.min(0.9), r2.min(0.95), 0.05) {
        Ok(ls) => println!(
            "\nlog* regime: Π^3.5_{{{},{},{}}} has complexity between \
             Ω((log* n)^{:.3}) and O((log* n)^{:.3}) — gap {:.3}",
            ls.delta,
            ls.d,
            ls.k,
            ls.lower_exponent,
            ls.upper_exponent,
            ls.gap()
        ),
        Err(e) => println!("\nlog* regime: {e}"),
    }
    Ok(())
}
