//! Rake-and-compress in action: decompose a tree (Definition 71), then
//! solve the k-hierarchical labeling problem (Lemma 65) on top of it, the
//! engine behind the paper's `x = 1` weight gadgets.
//!
//! ```sh
//! cargo run --release --example decompose_and_solve
//! ```

use lcl_landscape::algorithms::labeling_solver::solve_hierarchical_labeling;
use lcl_landscape::core::labeling::HierarchicalLabeling;
use lcl_landscape::core::problem::LclProblem;
use lcl_landscape::graph::decompose::{Decomposition, RakeCompressParams};
use lcl_landscape::graph::generators::random_bounded_degree_tree;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 200_000;
    let tree = random_bounded_degree_tree(n, 4, 2024);
    println!(
        "random bounded-degree tree: {n} nodes, Δ = {}",
        tree.max_degree()
    );

    // Strict (γ, ℓ, L)-decomposition at a few γ budgets (Lemma 72: larger
    // γ, fewer layers).
    for gamma in [1usize, 16, 450] {
        let d = Decomposition::compute(
            &tree,
            RakeCompressParams {
                gamma,
                ell: 4,
                strict: true,
            },
        );
        d.validate(&tree).map_err(std::io::Error::other)?;
        println!(
            "γ = {gamma:>4}: {} layers, {} compress paths (all Def. 71 properties hold)",
            d.layers_used(),
            d.compress_paths().len()
        );
    }

    // Lemma 65: the k-hierarchical labeling solver. Paths are the hard
    // instances — a random tree has logarithmic depth and rakes away in
    // O(log n) rounds for every k, but on a path the Θ(n^{1/k}) trade-off
    // is visible directly.
    let m = 50_000;
    let hard = lcl_landscape::graph::generators::path(m);
    println!("\nhierarchical labeling on a {m}-node path (Lemma 65):");
    for k in [1usize, 2, 3] {
        let sol = solve_hierarchical_labeling(&hard, k);
        HierarchicalLabeling::new(k).verify(&hard, &vec![(); m], &sol.run.outputs)?;
        let stats = sol.run.stats();
        println!(
            "k = {k}: verified, γ = {:>6}, worst-case rounds = {:>6} (n^(1/k) = {:.0})",
            sol.gamma,
            stats.worst_case(),
            (m as f64).powf(1.0 / k as f64)
        );
    }
    Ok(())
}
