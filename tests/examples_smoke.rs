//! Smoke test: every example must build and run to completion.
//!
//! Keeps the `examples/` directory from bit-rotting: each example is
//! executed via `cargo run --example` (sequentially, to avoid contending
//! for the build lock) and must exit successfully.

use std::path::Path;
use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "path_classifier",
    "landscape_explorer",
    "decompose_and_solve",
    "solve_custom_problem",
];

#[test]
fn all_examples_run_successfully() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    for example in EXAMPLES {
        let output = Command::new(&cargo)
            .current_dir(manifest_dir)
            .args(["run", "--offline", "--example", example])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {example}: {e}"));
        assert!(
            output.status.success(),
            "example {example} failed with {}:\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}
