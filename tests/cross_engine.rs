//! Cross-validation: the structural algorithm implementations against the
//! faithful message-passing / ball-view engines on small instances.

use lcl_landscape::algorithms::two_coloring::two_color_path;
use lcl_landscape::graph::generators::path;
use lcl_landscape::local::view::{run_views, BallView, ViewAlgorithm};
use lcl_landscape::prelude::*;

/// View-based 2-coloring: decide once both endpoints are visible, color by
/// parity from the smaller-ID endpoint — the reference semantics for
/// `two_color_path`.
struct TwoColorView;

impl ViewAlgorithm for TwoColorView {
    type Output = ColorLabel;
    fn decide(&mut self, view: &BallView<'_>) -> Option<ColorLabel> {
        if !view.sees_whole_graph() {
            return None;
        }
        // Endpoints of the path: degree-1 nodes (degrees are visible even
        // at the frontier under the half-edge convention).
        let mut endpoints: Vec<usize> = view
            .nodes()
            .iter()
            .copied()
            .filter(|&v| view.degree(v) == 1)
            .collect();
        endpoints.sort_by_key(|&v| view.id(v));
        let anchor = *endpoints.first()?;
        let dist = view.dist(anchor)?;
        // Parity relative to the anchor; the anchor itself is White.
        Some(if dist % 2 == 0 {
            ColorLabel::White
        } else {
            ColorLabel::Black
        })
    }
}

#[test]
fn two_coloring_matches_view_engine() {
    for n in [2usize, 3, 9, 24] {
        let tree = path(n);
        let ids = Ids::random(n, n as u64);
        let structural = two_color_path(&tree, &ids);
        let view = run_views(&tree, &ids, |_| TwoColorView, n as u32 + 2).expect("decides");
        assert_eq!(view.outputs, structural.outputs, "n = {n}");
        // Termination rounds agree up to the +1 the ball-view engine needs
        // to confirm completeness at an endpoint boundary.
        for v in 0..n {
            let d = view.stats.round(v) as i64 - structural.rounds[v] as i64;
            assert!((0..=1).contains(&d), "n = {n}, node {v}: {d}");
        }
    }
}

#[test]
fn view_engine_rounds_equal_eccentricity_based_rounds() {
    let n = 15;
    let tree = path(n);
    let ids = Ids::sequential(n);
    let structural = two_color_path(&tree, &ids);
    for v in 0..n {
        let ecc = v.max(n - 1 - v) as u64;
        assert_eq!(structural.rounds[v], ecc);
    }
}
