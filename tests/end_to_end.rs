//! Integration tests spanning all crates: constructions → algorithms →
//! verifiers → complexity shapes.

use lcl_landscape::algorithms::a35::a35_on_construction;
use lcl_landscape::algorithms::apoly::apoly_on_construction;
use lcl_landscape::algorithms::two_coloring::two_color_path;
use lcl_landscape::algorithms::weight_augmented_solver::solve_weight_augmented;
use lcl_landscape::core::params;
use lcl_landscape::core::weight_augmented::WeightAugmented;
use lcl_landscape::core::weighted::WeightedColoring;
use lcl_landscape::graph::generators::path;
use lcl_landscape::graph::weighted::{WeightedConstruction, WeightedParams};
use lcl_landscape::prelude::*;

fn weighted(n: usize, delta: usize, d: usize, k: usize, poly: bool) -> WeightedConstruction {
    let x = lcl_landscape::core::landscape::efficiency_x(delta, d);
    let lengths = if poly {
        params::poly_lengths((n / k).max(4), x, k)
    } else {
        params::log_star_lengths((n / k).max(4), x, k)
    };
    WeightedConstruction::new(&WeightedParams {
        lengths,
        delta,
        weight_per_level: n / k,
    })
    .unwrap()
}

#[test]
fn apoly_verifies_across_parameter_grid() {
    for (delta, d, k) in [(5usize, 2usize, 2usize), (6, 3, 2), (6, 2, 3)] {
        let c = weighted(20_000, delta, d, k, true);
        let n = c.tree().node_count();
        let ids = Ids::random(n, (delta + d + k) as u64);
        let run = apoly_on_construction(&c, k, d, &ids);
        let problem = WeightedColoring::new(Variant::TwoHalf, delta, d, k).unwrap();
        problem
            .verify(c.tree(), c.kinds(), &run.outputs)
            .unwrap_or_else(|e| panic!("(Δ,d,k)=({delta},{d},{k}): {e}"));
    }
}

#[test]
fn a35_verifies_across_parameter_grid() {
    for (delta, d, k) in [(6usize, 3usize, 2usize), (8, 3, 2), (6, 3, 3)] {
        let c = weighted(20_000, delta, d, k, false);
        let n = c.tree().node_count();
        let ids = Ids::random(n, (delta * d * k) as u64);
        let run = a35_on_construction(&c, k, d, &ids);
        let problem = WeightedColoring::new(Variant::ThreeHalf, delta, d, k).unwrap();
        problem
            .verify(c.tree(), c.kinds(), &run.outputs)
            .unwrap_or_else(|e| panic!("(Δ,d,k)=({delta},{d},{k}): {e}"));
    }
}

#[test]
fn weight_augmented_verifies_and_scales_as_sqrt_n() {
    let mut avgs = Vec::new();
    for n in [20_000usize, 80_000] {
        let lengths = params::poly_lengths(n / 2, 1.0, 2);
        let c = WeightedConstruction::new(&WeightedParams {
            lengths,
            delta: 5,
            weight_per_level: n / 2,
        })
        .unwrap();
        let total = c.tree().node_count();
        let ids = Ids::random(total, n as u64);
        let run = solve_weight_augmented(c.tree(), c.kinds(), 2, &ids);
        WeightAugmented::new(2)
            .verify(c.tree(), c.kinds(), &run.outputs)
            .unwrap();
        avgs.push((total, run.stats().node_averaged()));
    }
    // Quadrupling n should roughly double the node-averaged cost (Θ(√n)).
    let ratio = avgs[1].1 / avgs[0].1;
    assert!(
        (1.5..3.0).contains(&ratio),
        "√n scaling violated: {avgs:?} ratio {ratio}"
    );
}

#[test]
fn node_averaged_beats_worst_case_on_thm11_instances() {
    // The punchline of the node-averaged measure: on Theorem 11 instances
    // the generic algorithm's average is much smaller than its worst case.
    for k in [2usize, 3] {
        let lengths = params::theorem11_lengths(200_000, k);
        let g = LowerBoundGraph::new(&lengths).unwrap();
        let n = g.tree().node_count();
        let ids = Ids::random(n, k as u64);
        let gammas = params::theorem11_gammas(n, k);
        let run = generic_coloring(g.tree(), Variant::ThreeHalf, &gammas, &ids);
        HierarchicalColoring::new(k, Variant::ThreeHalf)
            .verify(g.tree(), &vec![(); n], &run.outputs)
            .unwrap();
        let stats = run.stats();
        assert!(
            stats.node_averaged() * 2.0 < stats.worst_case() as f64,
            "k={k}: avg {} vs worst {}",
            stats.node_averaged(),
            stats.worst_case()
        );
    }
}

#[test]
fn two_coloring_is_linear_and_three_coloring_is_not() {
    let n = 60_000;
    let tree = path(n);
    let ids = Ids::random(n, 3);
    let two = two_color_path(&tree, &ids).stats().node_averaged();
    let three = lcl_landscape::algorithms::linial::three_color_path(&tree, &ids)
        .stats()
        .node_averaged();
    // 2-coloring pays ~3n/4 on average; 3-coloring a small constant.
    assert!(two > n as f64 / 2.0);
    assert!(three < 100.0);
}

#[test]
fn synthesized_problems_are_buildable() {
    // Theorem 1's synthesis output can always be instantiated and run.
    let spec = lcl_landscape::core::landscape::synthesize_poly(0.41, 0.45).unwrap();
    if let lcl_landscape::core::landscape::PolySpec::Weighted { delta, d, k, .. } = spec {
        let c = weighted(10_000, delta, d, k, true);
        let n = c.tree().node_count();
        let ids = Ids::random(n, 9);
        let run = apoly_on_construction(&c, k, d, &ids);
        WeightedColoring::new(Variant::TwoHalf, delta, d, k)
            .unwrap()
            .verify(c.tree(), c.kinds(), &run.outputs)
            .unwrap();
    }
}
