//! Integration tests spanning all crates: constructions → algorithms →
//! verifiers → complexity shapes, driven through the unified harness
//! (`registry()` + `Session`).

use lcl_landscape::algorithms::two_coloring::two_color_path;
use lcl_landscape::core::params;
use lcl_landscape::graph::generators::path;
use lcl_landscape::prelude::*;

#[test]
fn apoly_verifies_across_parameter_grid() {
    let mut session = Session::new();
    for (delta, d, k) in [(5usize, 2usize, 2usize), (6, 3, 2), (6, 2, 3)] {
        session
            .push(
                "apoly",
                InstanceSpec::WeightedPoly {
                    n: 20_000,
                    delta,
                    d,
                    k,
                },
                RunConfig::seeded((delta + d + k) as u64),
            )
            .unwrap();
    }
    // Verification runs inside the harness; a constraint violation would
    // surface as a VerificationFailed error here.
    let records = session.run().unwrap();
    assert!(records.iter().all(|r| r.verified));
}

#[test]
fn a35_verifies_across_parameter_grid() {
    let mut session = Session::new();
    for (delta, d, k) in [(6usize, 3usize, 2usize), (8, 3, 2), (6, 3, 3)] {
        session
            .push(
                "a35",
                InstanceSpec::WeightedLogStar {
                    n: 20_000,
                    delta,
                    d,
                    k,
                },
                RunConfig::seeded((delta * d * k) as u64),
            )
            .unwrap();
    }
    let records = session.run().unwrap();
    assert!(records.iter().all(|r| r.verified));
}

#[test]
fn weight_augmented_verifies_and_scales_as_sqrt_n() {
    let mut session = Session::new();
    for n in [20_000usize, 80_000] {
        session
            .push(
                "weight-augmented",
                InstanceSpec::WeightedUnit { n, delta: 5, k: 2 },
                RunConfig::seeded(n as u64),
            )
            .unwrap();
    }
    let records = session.run().unwrap();
    // Quadrupling n should roughly double the node-averaged cost (Θ(√n)).
    let ratio = records[1].node_averaged / records[0].node_averaged;
    assert!(
        (1.5..3.0).contains(&ratio),
        "√n scaling violated: ratio {ratio}"
    );
}

#[test]
fn node_averaged_beats_worst_case_on_thm11_instances() {
    // The punchline of the node-averaged measure: on Theorem 11 instances
    // the generic algorithm's average is much smaller than its worst case.
    let algo = find("generic-coloring").unwrap();
    for k in [2usize, 3] {
        let instance = InstanceSpec::Theorem11 { n: 200_000, k }.build().unwrap();
        let record = algo.run(&instance, &RunConfig::seeded(k as u64)).unwrap();
        assert!(record.verified);
        assert!(
            record.node_averaged * 2.0 < record.worst_case as f64,
            "k={k}: avg {} vs worst {}",
            record.node_averaged,
            record.worst_case
        );
    }
}

#[test]
fn two_coloring_is_linear_and_three_coloring_is_not() {
    let n = 60_000;
    let tree = path(n);
    let ids = Ids::random(n, 3);
    let two = two_color_path(&tree, &ids).stats().node_averaged();
    let three = lcl_landscape::algorithms::linial::three_color_path(&tree, &ids)
        .stats()
        .node_averaged();
    // 2-coloring pays ~3n/4 on average; 3-coloring a small constant.
    assert!(two > n as f64 / 2.0);
    assert!(three < 100.0);
}

#[test]
fn synthesized_problems_are_buildable() {
    // Theorem 1's synthesis output can always be instantiated and run
    // through the registry.
    let spec = lcl_landscape::core::landscape::synthesize_poly(0.41, 0.45).unwrap();
    if let lcl_landscape::core::landscape::PolySpec::Weighted { delta, d, k, .. } = spec {
        let instance = InstanceSpec::WeightedPoly {
            n: 10_000,
            delta,
            d,
            k,
        }
        .build()
        .unwrap();
        let record = find("apoly")
            .unwrap()
            .run(&instance, &RunConfig::seeded(9))
            .unwrap();
        assert!(record.verified);
    }
}

#[test]
fn registry_and_prelude_expose_the_full_surface() {
    // The facade prelude exposes the harness types; a batch summarizes
    // into a sweep report with a power-law fit.
    let mut session = Session::new().threads(2);
    for n in [1_000usize, 2_000, 4_000] {
        session
            .push(
                "two-coloring",
                InstanceSpec::Path { n },
                RunConfig::seeded(n as u64),
            )
            .unwrap();
    }
    let records = session.run().unwrap();
    let report = SweepReport::from_records("two-coloring", &records);
    assert_eq!(report.algorithm, "two-coloring");
    assert!(report.fit.expect("three sizes").exponent > 0.9);
}

#[test]
fn theorem11_lengths_still_drive_the_public_generators() {
    // The low-level surface stays available alongside the harness.
    let lengths = params::theorem11_lengths(50_000, 2);
    let g = LowerBoundGraph::new(&lengths).unwrap();
    assert!(g.tree().node_count() > 10_000);
}
