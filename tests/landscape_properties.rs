//! Property tests for the landscape formulas and the synthesis procedures.

use lcl_landscape::core::landscape::{
    alpha1_log_star, alpha1_poly, efficiency_x, efficiency_x_prime, synthesize_log_star,
    synthesize_poly,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn alpha1_poly_in_range(x in 0.0f64..=1.0, k in 1usize..8) {
        let a = alpha1_poly(x, k);
        prop_assert!(a > 0.0 && a <= 1.0);
        // Between the endpoint values.
        prop_assert!(a >= alpha1_poly(0.0, k) - 1e-12);
        prop_assert!(a <= alpha1_poly(1.0, k) + 1e-12);
    }

    #[test]
    fn alpha1_log_star_in_range(x in 0.0f64..=1.0, k in 1usize..8) {
        let a = alpha1_log_star(x, k);
        prop_assert!(a > 0.0 && a <= 1.0);
    }

    #[test]
    fn efficiency_factors_ordered(delta in 4usize..60, d_off in 0usize..40) {
        let d = 1 + d_off % delta.saturating_sub(4).max(1);
        prop_assume!(delta >= d + 3);
        let x = efficiency_x(delta, d);
        let xp = efficiency_x_prime(delta, d);
        prop_assert!(x > 0.0 && x < 1.0);
        prop_assert!(xp > x);
    }

    #[test]
    fn poly_synthesis_hits_window(lo in 0.06f64..0.44, width in 0.03f64..0.06) {
        let hi = (lo + width).min(0.5);
        prop_assume!(hi > lo + 0.02);
        let spec = synthesize_poly(lo, hi);
        prop_assert!(spec.is_ok(), "window ({lo}, {hi}): {spec:?}");
        let c = spec.unwrap().exponent();
        prop_assert!(c > lo && c < hi, "c = {c} outside ({lo}, {hi})");
    }

    #[test]
    fn log_star_synthesis_gap_below_eps(lo in 0.3f64..0.7, eps in 0.03f64..0.15) {
        let hi = (lo + 0.15).min(0.95);
        if let Ok(spec) = synthesize_log_star(lo, hi, eps) {
            prop_assert!(spec.gap() < eps);
            prop_assert!(spec.lower_exponent >= lo - 1e-9);
            prop_assert!(spec.delta >= spec.d + 3);
        }
    }
}
