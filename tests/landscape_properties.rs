//! Property tests for the landscape formulas, the synthesis procedures,
//! and the adversarial topology suite.

use lcl_landscape::core::landscape::{
    alpha1_log_star, alpha1_poly, efficiency_x, efficiency_x_prime, synthesize_log_star,
    synthesize_poly,
};
use lcl_landscape::graph::generators::{
    broom, caterpillar, complete_ary_tree, heavy_path_skewed, ladder, spider,
};
use lcl_landscape::harness::InstanceSpec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn alpha1_poly_in_range(x in 0.0f64..=1.0, k in 1usize..8) {
        let a = alpha1_poly(x, k);
        prop_assert!(a > 0.0 && a <= 1.0);
        // Between the endpoint values.
        prop_assert!(a >= alpha1_poly(0.0, k) - 1e-12);
        prop_assert!(a <= alpha1_poly(1.0, k) + 1e-12);
    }

    #[test]
    fn alpha1_log_star_in_range(x in 0.0f64..=1.0, k in 1usize..8) {
        let a = alpha1_log_star(x, k);
        prop_assert!(a > 0.0 && a <= 1.0);
    }

    #[test]
    fn efficiency_factors_ordered(delta in 4usize..60, d_off in 0usize..40) {
        let d = 1 + d_off % delta.saturating_sub(4).max(1);
        prop_assume!(delta >= d + 3);
        let x = efficiency_x(delta, d);
        let xp = efficiency_x_prime(delta, d);
        prop_assert!(x > 0.0 && x < 1.0);
        prop_assert!(xp > x);
    }

    #[test]
    fn poly_synthesis_hits_window(lo in 0.06f64..0.44, width in 0.03f64..0.06) {
        let hi = (lo + width).min(0.5);
        prop_assume!(hi > lo + 0.02);
        let spec = synthesize_poly(lo, hi);
        prop_assert!(spec.is_ok(), "window ({lo}, {hi}): {spec:?}");
        let c = spec.unwrap().exponent();
        prop_assert!(c > lo && c < hi, "c = {c} outside ({lo}, {hi})");
    }

    #[test]
    fn log_star_synthesis_gap_below_eps(lo in 0.3f64..0.7, eps in 0.03f64..0.15) {
        let hi = (lo + 0.15).min(0.95);
        if let Ok(spec) = synthesize_log_star(lo, hi, eps) {
            prop_assert!(spec.gap() < eps);
            prop_assert!(spec.lower_exponent >= lo - 1e-9);
            prop_assert!(spec.delta >= spec.d + 3);
        }
    }

    // --- adversarial topology suite ------------------------------------

    #[test]
    fn adversarial_specs_build_to_their_closed_form_sizes(
        spine in 1usize..40,
        legs in 1usize..5,
        rungs in 1usize..60,
        bristles in 1usize..30,
        leg_len in 1usize..30,
        n in 1usize..200,
    ) {
        // Every adversarial spec's `requested_n` is its closed-form node
        // count, and the built instance realizes it exactly.
        let cases = [
            (InstanceSpec::Caterpillar { spine, legs }, spine * (1 + legs)),
            (InstanceSpec::Ladder { rungs }, 2 * rungs),
            (InstanceSpec::Broom { spine, bristles }, spine + bristles),
            (InstanceSpec::Spider { legs, leg_len }, 1 + legs * leg_len),
            (InstanceSpec::HeavyPath { n }, n),
        ];
        for (spec, closed_form) in cases {
            let instance = spec.build().map_err(|e| {
                TestCaseError::fail(format!("{} failed to build: {e}", spec.describe()))
            })?;
            prop_assert_eq!(instance.node_count(), closed_form, "{}", spec.describe());
            prop_assert_eq!(spec.requested_n(), closed_form, "{}", spec.describe());
        }
    }

    #[test]
    fn complete_ary_counts_are_geometric(arity in 2usize..5, height in 0usize..6) {
        let spec = InstanceSpec::CompleteAry { arity, height };
        let instance = spec.build().map_err(|e| {
            TestCaseError::fail(format!("{} failed to build: {e}", spec.describe()))
        })?;
        let mut expected = 1usize;
        let mut level = 1usize;
        for _ in 0..height {
            level *= arity;
            expected += level;
        }
        prop_assert_eq!(instance.node_count(), expected);
        prop_assert_eq!(spec.requested_n(), expected);
        // Internal nodes have arity + 1 neighbors (heap layout, parent
        // plus arity children); the root has arity.
        if height > 0 {
            let want = if expected > arity + 1 { arity + 1 } else { arity };
            prop_assert_eq!(instance.tree().max_degree(), want);
        }
    }

    #[test]
    fn adversarial_generators_have_their_shapes(
        spine in 2usize..40,
        legs in 2usize..6,
        leg_len in 1usize..30,
        bristles in 1usize..30,
        rungs in 2usize..60,
        n in 2usize..200,
    ) {
        // Spider: one hub of degree `legs`, everything else on a path.
        let s = spider(legs, leg_len);
        prop_assert_eq!(s.node_count(), 1 + legs * leg_len);
        prop_assert_eq!(s.neighbors(0).len(), legs);
        prop_assert_eq!(s.max_degree(), legs.max(2));

        // Caterpillar: spine nodes carry `legs` pendant leaves each, so
        // exactly `spine * legs` nodes are leaves hanging off the spine.
        let c = caterpillar(spine, legs);
        let leaf_count = (0..c.node_count())
            .filter(|&v| c.neighbors(v).len() == 1)
            .count();
        prop_assert!(leaf_count >= spine * legs);

        // Ladder: every spine node carries exactly one rung leaf.
        let l = ladder(rungs);
        for rung in rungs..2 * rungs {
            prop_assert_eq!(l.neighbors(rung).len(), 1);
        }

        // Broom: all bristles attach to the last spine node.
        let b = broom(spine, bristles).map_err(|e| {
            TestCaseError::fail(format!("broom({spine}, {bristles}): {e}"))
        })?;
        prop_assert_eq!(b.neighbors(spine - 1).len(), bristles + 1);

        // Heavy-path-skewed: exactly `n` nodes, connected by construction.
        let h = heavy_path_skewed(n);
        prop_assert_eq!(h.node_count(), n);

        // Complete binary: see `complete_ary_counts_are_geometric`.
        let t = complete_ary_tree(2, 3);
        prop_assert_eq!(t.node_count(), 15);
    }
}
