//! The object-safe [`Algorithm`] trait and its run artifacts.

use crate::instance::{HarnessError, Instance, InstanceKind, InstanceSpec};
use crate::planner::SolverFit;
use lcl_core::landscape::ComplexityClass;
use lcl_core::problem_spec::ProblemSpec;
use lcl_graph::Tree;
use lcl_local::engine::EngineConfig;
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Frozen per-session context for dynamic (churn) workloads.
///
/// A [`DynamicSession`](crate::DynamicSession) assigns every node a
/// *persistent* id that survives tree surgery, and freezes the parameters a
/// protocol's trajectory depends on so that incremental region runs and
/// from-scratch baseline runs see identical inputs:
///
/// - `ids[v]` is the persistent id of current node `v` (inserted nodes get
///   fresh ids; ids are never reused),
/// - `space` is the frozen id-space bound for id-space-driven cascades
///   (Linial); it only grows, and growing it forces a full re-solve,
/// - `n_hint` is the largest node count the session has ever seen — round
///   budgets derived from `n` must use it so that a shrinking tree cannot
///   invalidate rounds reached before the shrink.
#[derive(Debug, Clone)]
pub struct SessionScope {
    /// Persistent id of every current node, indexed by node id.
    pub ids: Arc<Vec<u64>>,
    /// Frozen id-space bound (strictly above every id ever issued).
    pub space: u64,
    /// Monotone maximum of the session's node counts.
    pub n_hint: usize,
}

/// One extracted dirty-region component handed to
/// [`Algorithm::run_region`].
#[derive(Debug)]
pub struct RegionRun<'a> {
    /// The region as a standalone tree (port order matches the ambient
    /// tree; boundary nodes have their out-of-region ports truncated).
    pub tree: &'a Tree,
    /// Persistent ids of the region nodes, aligned with `tree`.
    pub ids: &'a [u64],
    /// Node count of the ambient tree the region was cut from.
    pub ambient_n: usize,
    /// The session scope the run must stay consistent with.
    pub scope: &'a SessionScope,
    /// Chunked-engine knobs for the region run.
    pub engine: &'a EngineConfig,
    /// The session's coin seed.
    pub seed: u64,
}

/// Knobs shared by every algorithm run.
///
/// The instance spec is authoritative for parameters it carries (`Δ`,
/// `d`, `k` of a weighted construction); the config supplies the seed,
/// parameters for algorithms whose instances do not fix them, and the
/// ablation/verification switches.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Seed for the ID assignment (and the randomized algorithm's coins).
    pub seed: u64,
    /// Hierarchy depth for algorithms running on plain trees
    /// (`labeling-solver`); ignored when the spec carries `k`.
    pub k: Option<usize>,
    /// Decline budget for the `d`-free algorithms on plain weight trees;
    /// ignored when the spec carries `d`.
    pub d: Option<usize>,
    /// Multiplier applied to every phase parameter `γ_i` (Corollary 31
    /// ablations); `1.0` is the paper's optimum and exact identity.
    pub gamma_multiplier: f64,
    /// Verify the output against the problem constraints after the run.
    pub verify: bool,
    /// Chunked-engine knobs (chunk size, thread count). Every run executes
    /// natively on the chunked LOCAL engine — this configures *how*, not
    /// whether.
    pub engine: EngineConfig,
    /// The declarative problem driving table-parameterized solvers
    /// (`path-lcl`); filled by the planner, ignored by algorithms whose
    /// problem is fixed by their instance family.
    pub problem: Option<ProblemSpec>,
    /// Dynamic-session context (persistent ids, frozen id space, monotone
    /// `n`). `None` for ordinary static runs; set by
    /// [`DynamicSession`](crate::DynamicSession) on both incremental *and*
    /// baseline runs so the two see identical inputs.
    pub scope: Option<SessionScope>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            seed: 1,
            k: None,
            d: None,
            gamma_multiplier: 1.0,
            verify: true,
            engine: EngineConfig::default(),
            problem: None,
            scope: None,
        }
    }
}

impl RunConfig {
    /// A default config with the given seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        RunConfig {
            seed,
            ..RunConfig::default()
        }
    }

    /// Returns `self` with verification disabled (perf sweeps).
    #[must_use]
    pub fn without_verify(mut self) -> Self {
        self.verify = false;
        self
    }

    /// Returns `self` with the given `γ` multiplier.
    #[must_use]
    pub fn with_gamma_multiplier(mut self, m: f64) -> Self {
        self.gamma_multiplier = m;
        self
    }

    /// Returns `self` with the given chunked-engine knobs.
    #[must_use]
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Returns `self` carrying the declarative problem (consumed by
    /// table-driven solvers such as `path-lcl`).
    #[must_use]
    pub fn with_problem(mut self, problem: ProblemSpec) -> Self {
        self.problem = Some(problem);
        self
    }

    /// Returns `self` carrying a dynamic-session scope.
    #[must_use]
    pub fn with_scope(mut self, scope: SessionScope) -> Self {
        self.scope = Some(scope);
        self
    }

    /// Scales the phase parameters by the configured multiplier (exact
    /// identity at `1.0`).
    #[must_use]
    pub fn scale_gammas(&self, gammas: &[usize]) -> Vec<usize> {
        scale_gammas(gammas, self.gamma_multiplier)
    }
}

/// Scales every `γ_i` by `multiplier`, clamping at 1 (exact identity at
/// `1.0`).
#[must_use]
pub fn scale_gammas(gammas: &[usize], multiplier: f64) -> Vec<usize> {
    if multiplier == 1.0 {
        return gammas.to_vec();
    }
    gammas
        .iter()
        .map(|&g| ((g as f64) * multiplier).round().max(1.0) as usize)
        .collect()
}

/// One bin of a termination histogram: `count` nodes fixed their output
/// in exactly round `round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct RoundBin {
    /// The termination round.
    pub round: u64,
    /// How many nodes terminated in that round.
    pub count: u64,
}

/// One completed algorithm execution, with exact per-node rounds.
#[derive(Debug, Clone, Serialize)]
pub struct RunRecord {
    /// Registry name of the algorithm.
    pub algorithm: String,
    /// Rendered instance spec (see [`InstanceSpec::describe`]).
    pub spec: String,
    /// Actual node count of the instance.
    pub n: usize,
    /// Seed used for IDs/coins.
    pub seed: u64,
    /// Per-node output labels in a canonical `u64` encoding (length =
    /// `n`). The encoding is injective per algorithm (see the adapters);
    /// equality of label vectors is equality of outputs.
    pub labels: Vec<u64>,
    /// Per-node termination rounds (length = `n`).
    pub rounds: Vec<u64>,
    /// Node-averaged complexity of the run.
    pub node_averaged: f64,
    /// Worst-case round of the run.
    pub worst_case: u64,
    /// Median termination round: half the nodes have fixed their output
    /// by this round. Far below `worst_case` for algorithms with a small
    /// late-terminating core (the paper's central phenomenon).
    pub median_round: u64,
    /// Sparse termination histogram (`count > 0` bins, sorted by round):
    /// the per-node distribution the node-averaged summaries are
    /// computed from.
    pub histogram: Vec<RoundBin>,
    /// Node-averaged rounds over the *waiting mass* only (nodes that do
    /// not output `Decline`/`Connect`); equals `node_averaged` for
    /// problems without a declining side.
    pub waiting_averaged: f64,
    /// Whether the output was verified against the problem constraints
    /// (false = verification was skipped via [`RunConfig::verify`]).
    pub verified: bool,
    /// Which executor produced the rounds: `"chunked"` (the monolithic
    /// chunked LOCAL engine) or `"sharded"` (the out-of-core executor;
    /// bit-identical outputs, so the tag is telemetry only). `"direct"`
    /// appears only on structural-oracle assemblies in tests.
    pub engine: String,
    /// Wall-clock milliseconds of the algorithm proper (filled by
    /// [`run_timed`]; `0.0` for direct [`Algorithm::run`] calls).
    pub elapsed_ms: f64,
    /// Peak resident message-arena bytes of the engine run: the
    /// monolithic engine's two full arenas, or the sharded engine's
    /// high-water mark of resident shard arenas plus halo buffers. `0`
    /// on structural-oracle assemblies (no engine run).
    pub peak_arena_bytes: u64,
    /// Engine throughput in nodes per wall-clock second (filled by
    /// [`run_timed`] alongside `elapsed_ms`; `0.0` for direct
    /// [`Algorithm::run`] calls).
    pub engine_nodes_per_sec: f64,
}

impl RunRecord {
    /// Assembles a record from per-node labels and rounds; summary
    /// statistics are computed here, borrowing the rounds. The record
    /// starts with `engine = "direct"`.
    ///
    /// # Panics
    ///
    /// Panics if `labels` and `rounds` have different lengths.
    #[must_use]
    pub fn from_rounds(
        algorithm: &str,
        spec: &InstanceSpec,
        seed: u64,
        labels: Vec<u64>,
        rounds: Vec<u64>,
        waiting_averaged: Option<f64>,
        verified: bool,
    ) -> Self {
        assert_eq!(
            labels.len(),
            rounds.len(),
            "labels and rounds must cover the same nodes"
        );
        let stats = lcl_local::metrics::RoundStats::from_slice(&rounds);
        let node_averaged = stats.node_averaged();
        let worst_case = stats.worst_case();
        let profile = stats.profile();
        let median_round = profile.quantile(0.5);
        let histogram = profile
            .nonzero_bins()
            .into_iter()
            .map(|(round, count)| RoundBin { round, count })
            .collect();
        let n = rounds.len();
        RunRecord {
            algorithm: algorithm.to_string(),
            spec: spec.describe(),
            n,
            seed,
            labels,
            rounds,
            node_averaged,
            worst_case,
            median_round,
            histogram,
            waiting_averaged: waiting_averaged.unwrap_or(node_averaged),
            verified,
            engine: "direct".to_string(),
            elapsed_ms: 0.0,
            peak_arena_bytes: 0,
            engine_nodes_per_sec: 0.0,
        }
    }

    /// Returns the record re-attributed to the given executor; the
    /// adapters stamp `"chunked"` or `"sharded"` on every
    /// engine-observed record.
    #[must_use]
    pub fn on_engine(mut self, engine: &str) -> Self {
        self.engine = engine.to_string();
        self
    }

    /// Returns the record carrying the engine run's peak resident arena
    /// bytes (see [`RunRecord::peak_arena_bytes`]).
    #[must_use]
    pub fn with_peak_arena_bytes(mut self, bytes: u64) -> Self {
        self.peak_arena_bytes = bytes;
        self
    }

    /// The termination profile of this run, built from the raw per-node
    /// `rounds` vector (independently of the serialized `histogram`
    /// field, which the differential tests cross-check against it).
    #[must_use]
    pub fn profile(&self) -> lcl_local::metrics::TerminationProfile {
        lcl_local::metrics::TerminationProfile::from_rounds(&self.rounds)
    }
}

/// An executable algorithm of the paper, as one registry entry.
///
/// The trait is object-safe: the registry hands out `&'static dyn
/// Algorithm` and the [`Session`](crate::Session) runner drives any entry
/// through the same three calls.
pub trait Algorithm: Send + Sync {
    /// Registry name (kebab-case, stable across releases).
    fn name(&self) -> &'static str;

    /// The landscape cell the algorithm realizes, e.g. `"Θ(n^{α₁})"`
    /// (display form; see [`Algorithm::node_averaged_class`] for the
    /// machine-checkable value).
    fn landscape_class(&self) -> &'static str;

    /// The theoretical node-averaged complexity class the algorithm
    /// realizes on its [`classify_spec`](Algorithm::classify_spec)
    /// family, under the parameters of `cfg` — the value the empirical
    /// classifier (`lcl classify`) compares its fitted class against.
    fn node_averaged_class(&self, cfg: &RunConfig) -> ComplexityClass;

    /// The instance family a size sweep should classify the algorithm on.
    ///
    /// Defaults to [`default_spec`](Algorithm::default_spec); overridden
    /// where the theoretical class is realized on a different family than
    /// the canonical sweep instance (the labeling solver's `O(k·n^{1/k})`
    /// bound is tight on paths, not on the random trees it sweeps).
    fn classify_spec(&self, n: usize, cfg: &RunConfig) -> InstanceSpec {
        self.default_spec(n, cfg)
    }

    /// Where in the paper the algorithm lives, e.g. `"Section 7.1"`.
    fn paper_ref(&self) -> &'static str;

    /// Instance families the algorithm accepts.
    fn supported_kinds(&self) -> &'static [InstanceKind];

    /// The canonical sweep instance of target size `n`.
    fn default_spec(&self, n: usize, cfg: &RunConfig) -> InstanceSpec;

    /// The smallest instance the algorithm meaningfully runs on (used by
    /// the registry property tests and `lcl list`).
    fn smallest_spec(&self) -> InstanceSpec;

    /// Executes the algorithm on `instance`.
    ///
    /// # Errors
    ///
    /// [`HarnessError::UnsupportedInstance`] when the instance kind is not
    /// supported, [`HarnessError::BadSpec`] for unusable parameters, and
    /// [`HarnessError::VerificationFailed`] when the output violates the
    /// problem constraints (only checked if `cfg.verify`).
    fn run(&self, instance: &Instance, cfg: &RunConfig) -> Result<RunRecord, HarnessError>;

    /// True when the algorithm accepts this instance kind.
    fn supports(&self, kind: InstanceKind) -> bool {
        self.supported_kinds().contains(&kind)
    }

    /// This algorithm's bid on a declarative problem: `Some(fit)` when it
    /// can solve the problem, with a preference score the capability-
    /// indexed resolver ranks bids by. The default bids on nothing;
    /// every adapter overrides it for the families it solves.
    ///
    /// Implementations must be total over arbitrary (possibly invalid)
    /// specs — the resolver may probe before validation.
    fn solves(&self, problem: &ProblemSpec) -> Option<SolverFit> {
        let _ = problem;
        None
    }

    /// The causal round radius of this solver under a dynamic-session
    /// scope: `Some(T)` promises that a node's output and termination
    /// round depend only on its distance-`T` ball plus per-node state that
    /// survives churn (persistent id, coins keyed on it) — so after a
    /// batch, only nodes within `T` of a touched node can change, and a
    /// region of radius `2T + 1` around the touch set suffices to recompute
    /// them exactly (corruption from the truncated region boundary needs
    /// `T + 1` rounds to reach them, one past their termination).
    ///
    /// The default `None` declares the solver *global*: any topology
    /// change invalidates every label and the session falls back to a full
    /// re-solve (which is still differentially checked).
    fn churn_radius(&self, scope: &SessionScope) -> Option<u64> {
        let _ = scope;
        None
    }

    /// Runs the solver's protocol on one extracted dirty-region component,
    /// returning per-node labels (in the same encoding as
    /// [`RunRecord::labels`]) and termination rounds, aligned with
    /// `region.tree`.
    ///
    /// Must be implemented by every solver whose
    /// [`churn_radius`](Algorithm::churn_radius) is `Some`; the default
    /// returns `None` ("no region entry"), which forces a full re-solve.
    ///
    /// # Errors
    ///
    /// Implementations surface engine failures as
    /// [`HarnessError::EngineDivergence`]; the session treats any error as
    /// "fall back to a full re-solve".
    fn run_region(&self, region: &RegionRun<'_>) -> Option<RegionOutcome> {
        let _ = region;
        None
    }
}

/// What [`Algorithm::run_region`] produces on success: per-node labels and
/// termination rounds aligned with the extracted region's tree.
pub type RegionOutcome = Result<(Vec<u64>, Vec<u64>), HarnessError>;

/// Runs `algorithm` on `instance` and stamps the wall-clock time into the
/// record. This is what [`Session`](crate::Session) workers call.
///
/// # Errors
///
/// Propagates the errors of [`Algorithm::run`].
pub fn run_timed(
    algorithm: &dyn Algorithm,
    instance: &Instance,
    cfg: &RunConfig,
) -> Result<RunRecord, HarnessError> {
    let start = Instant::now();
    let mut record = algorithm.run(instance, cfg)?;
    let secs = start.elapsed().as_secs_f64();
    record.elapsed_ms = secs * 1_000.0;
    record.engine_nodes_per_sec = record.n as f64 / secs.max(1e-9);
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_statistics_computed() {
        let spec = InstanceSpec::Path { n: 3 };
        let r = RunRecord::from_rounds(
            "two-coloring",
            &spec,
            9,
            vec![0, 1, 0],
            vec![1, 2, 3],
            None,
            true,
        );
        assert_eq!(r.n, 3);
        assert_eq!(r.node_averaged, 2.0);
        assert_eq!(r.worst_case, 3);
        assert_eq!(r.waiting_averaged, 2.0);
        assert_eq!(r.spec, "path(n=3)");
        assert_eq!(r.labels, vec![0, 1, 0]);
        assert_eq!(r.engine, "direct");
    }

    #[test]
    fn gamma_scaling_identity_at_one() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.scale_gammas(&[7, 19]), vec![7, 19]);
        let half = RunConfig::default().with_gamma_multiplier(0.5);
        assert_eq!(half.scale_gammas(&[7, 19]), vec![4, 10]);
        let tiny = RunConfig::default().with_gamma_multiplier(0.001);
        assert_eq!(tiny.scale_gammas(&[7]), vec![1]);
    }
}
