//! Process-wide memoization of problem classification — the plan cache.
//!
//! Classifying a [`ProblemSpec`] is a pure function of the spec: the
//! path automaton, the Section 11 good-function search, and the declared
//! closed-form exponents are all deterministic. It is also by far the
//! most expensive step of [`plan`](crate::planner::plan) — the
//! good-function search enumerates candidate functions, the automaton
//! analyzes the table — while the tail (resolving a solver bid and
//! concretizing an instance spec) is cheap. So the cache memoizes the
//! *classification outcome*, successes and typed failures alike
//! (an unsolvable table stays unsolvable; re-deriving the proof per
//! request would be pure waste), and [`plan_cached`] rebuilds the rest of
//! the plan fresh per request.
//!
//! This is what lets the `lcld` service answer a repeated preset without
//! re-running the decision procedures, with hit/miss counters surfaced
//! through [`plan_cache_stats`] for the service's `stats` response and
//! the load generator's gate. Caching must not change answers: the
//! service's differential and soak suites assert bit-identical records
//! cold vs. warm.

use crate::algorithm::RunConfig;
use crate::cache::{BoundedLru, CacheStats};
use crate::planner::{classify, finish_plan, Classification, Plan, PlanError};
use lcl_core::problem_spec::ProblemSpec;
use std::sync::{Mutex, OnceLock};

/// Maximum number of memoized classification outcomes. Comfortably above
/// the preset count so a service cycling every preset never thrashes,
/// small enough that adversarial custom tables cannot pin much memory.
const PLAN_CACHE_CAP: usize = 64;

type Outcome = Result<Classification, PlanError>;

fn plan_cache() -> &'static Mutex<BoundedLru<ProblemSpec, Outcome>> {
    static CACHE: OnceLock<Mutex<BoundedLru<ProblemSpec, Outcome>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BoundedLru::new(PLAN_CACHE_CAP)))
}

/// Snapshot of the plan-cache counters.
#[must_use]
pub fn plan_cache_stats() -> CacheStats {
    plan_cache()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .stats()
}

/// [`classify`] through the process-wide cache.
/// The boolean is `true` when the outcome was served from the cache.
///
/// # Errors
///
/// Exactly the errors of [`classify`] — including memoized ones: a
/// problem that classified as unsolvable yesterday is still unsolvable.
pub fn classify_cached(problem: &ProblemSpec) -> (Result<Classification, PlanError>, bool) {
    if let Some(outcome) = plan_cache()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .lookup(problem)
    {
        return (outcome, true);
    }
    // Classify outside the lock: good-function searches on distinct
    // problems must not serialize on the cache mutex.
    let outcome = classify(problem);
    let mut cache = plan_cache()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // Uncounted re-check: the miss above already accounted for this
    // request; a racing equal problem at worst classified twice.
    if let Some(existing) = cache.peek(problem) {
        return (existing, false);
    }
    cache.insert(problem.clone(), outcome.clone());
    (outcome, false)
}

/// [`plan`](crate::planner::plan) with the classification step memoized.
/// The boolean is `true` when classification was served from the cache;
/// the rest of the plan (solver resolution, instance spec, config) is
/// always built fresh for the requested `n` and `base`.
///
/// # Errors
///
/// Every [`PlanError`] variant, exactly as [`plan`](crate::planner::plan).
pub fn plan_cached(
    problem: &ProblemSpec,
    n: usize,
    base: &RunConfig,
) -> Result<(Plan, bool), PlanError> {
    let (outcome, cached) = classify_cached(problem);
    let classification = outcome?;
    finish_plan(problem, classification, n, base).map(|plan| (plan, cached))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_classification_hits_the_cache() {
        let problem = ProblemSpec::preset("5-coloring").expect("known preset");
        let (first, _) = classify_cached(&problem);
        let (second, cached) = classify_cached(&problem);
        assert!(cached, "second classification of an equal spec must hit");
        let (a, b) = (first.expect("classifies"), second.expect("classifies"));
        assert_eq!(a.class, b.class);
        assert_eq!(a.source, b.source);
        assert_eq!(a.detail, b.detail);
        let stats = plan_cache_stats();
        assert!(stats.hits >= 1, "{stats:?}");
        assert!(stats.misses >= 1, "{stats:?}");
    }

    #[test]
    fn failures_are_memoized_as_values() {
        let bad = ProblemSpec::Coloring { colors: 1 };
        let (first, _) = classify_cached(&bad);
        assert!(matches!(first, Err(PlanError::BadProblem(_))), "{first:?}");
        let (second, cached) = classify_cached(&bad);
        assert!(cached, "memoized failures must hit too");
        assert_eq!(first.unwrap_err(), second.unwrap_err());
    }

    #[test]
    fn plan_cached_matches_plan() {
        let problem = ProblemSpec::preset("3-coloring").expect("known preset");
        let base = RunConfig::seeded(9);
        let direct = crate::planner::plan(&problem, 700, &base).expect("plans");
        let (cached, _) = plan_cached(&problem, 700, &base).expect("plans");
        assert_eq!(direct.solver.name(), cached.solver.name());
        assert_eq!(direct.spec, cached.spec);
        assert_eq!(
            direct.classification.class.describe(),
            cached.classification.class.describe()
        );
        let a = direct.run().expect("runs");
        let b = cached.run().expect("runs");
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.rounds, b.rounds);
    }
}
