//! Dynamic-tree churn sessions with incremental re-solving.
//!
//! A [`DynamicSession`] owns a tree, a solver, and the solver's current
//! labeling, and advances through a [`ChurnScript`]: each
//! [`step`](DynamicSession::step) applies one seeded batch of tree surgery
//! (leaf insertions, subtree deletions, re-hangs — see
//! [`lcl_graph::surgery`]) and then brings the labeling back in sync with
//! the mutated topology.
//!
//! How the re-solve happens depends on the solver's
//! [`churn_radius`](crate::Algorithm::churn_radius):
//!
//! - **Local solvers** (`Some(T)`) promise that a node's output and
//!   termination round depend only on its distance-`T` ball plus
//!   churn-surviving per-node state (persistent id, coins keyed on it).
//!   The session marks every node within `T` of a batch-touched node as
//!   *dirty*, extracts the components induced by the radius-`2T + 1` ball
//!   around the touch set, re-runs the solver's protocol on each component
//!   through the chunked engine
//!   ([`run_region`](crate::Algorithm::run_region)), and splices the
//!   recomputed labels and rounds back for the dirty nodes only —
//!   corruption from the truncated region boundary needs `T + 1` rounds to
//!   reach a dirty node, one round past its termination, so the spliced
//!   values are *bit-identical* to a from-scratch run.
//! - **Global solvers** (`None`) fall back to a full re-solve through
//!   [`Algorithm::run`] under the same session
//!   scope; the incremental and baseline paths are then literally the
//!   same code path.
//!
//! [`full_resolve`](DynamicSession::full_resolve) runs the from-scratch
//! baseline on the current tree under the *same* [`SessionScope`] — the
//! differential suite demands bit-identical labels and rounds between a
//! stepped session and its baseline after every batch.
//!
//! Construction-bound instance families (the weighted constructions, the
//! Theorem 11 lower-bound graphs) have no meaningful notion of topological
//! surgery — their gadget structure *is* the instance. For those the
//! session runs in *parameter mode*: each batch deterministically grows the
//! spec's size parameter and rebuilds, so every solver of the registry can
//! ride the same script/driver machinery.

use crate::algorithm::{run_timed, RegionRun, RunConfig, RunRecord, SessionScope};
use crate::instance::{HarnessError, Instance, InstanceKind, InstanceSpec};
use crate::registry::find;
use crate::Algorithm;
use lcl_core::churn::ChurnScript;
use lcl_graph::surgery::{churn_batch, extract_components, OpWeights, ShapeDiscipline};
use lcl_graph::{NodeId, Tree};
use std::sync::Arc;
use std::time::Instant;

/// How a session keeps the instance valid across batches.
#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Plain-tree instances: genuine tree surgery under a shape
    /// discipline, incremental re-solving where the solver is local.
    Surgery(ShapeDiscipline),
    /// Construction-bound instances: each batch grows the spec's size
    /// parameter and rebuilds from scratch (surgery would destroy the
    /// gadget structure the solver depends on).
    Parameter,
}

/// The outcome of one [`DynamicSession::step`].
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// 0-based index of the batch this step applied.
    pub batch: u64,
    /// Node count after the batch.
    pub n: usize,
    /// Whether the dirty-region incremental path produced the labeling
    /// (`false` = full re-solve, either by solver class or by fallback).
    pub incremental: bool,
    /// Nodes whose labels were recomputed (`n` on a full re-solve).
    pub dirty: usize,
    /// Nodes covered by the extracted region (`n` on a full re-solve).
    pub region: usize,
    /// Wall-clock milliseconds of the whole step (surgery + re-solve +
    /// splice).
    pub elapsed_ms: f64,
    /// Wall-clock milliseconds of the re-solve alone (dirty-region
    /// extraction, region runs, and splice — or the full re-solve),
    /// excluding the surgery and state remap. This is the number the
    /// incremental-vs-full benchmark compares.
    pub resolve_ms: f64,
    /// The session's labeling after this step, as a standard record.
    pub record: RunRecord,
}

/// A churn session: a tree, a solver, and a labeling kept in sync across
/// scripted batches of tree surgery.
///
/// # Examples
///
/// ```
/// use lcl_core::ChurnScript;
/// use lcl_harness::{DynamicSession, InstanceSpec, RunConfig};
///
/// let script = ChurnScript::preset("leaf-growth").unwrap().with_volume(2, 8);
/// let mut session = DynamicSession::new(
///     "linial",
///     InstanceSpec::Path { n: 200 },
///     script,
///     RunConfig::seeded(7),
/// )?;
/// let out = session.step()?;
/// assert_eq!(out.batch, 0);
/// // The incremental labeling is bit-identical to a from-scratch run.
/// let baseline = session.full_resolve()?;
/// assert_eq!(baseline.labels, session.labels());
/// # Ok::<(), lcl_harness::HarnessError>(())
/// ```
pub struct DynamicSession {
    algo: &'static dyn Algorithm,
    base: InstanceSpec,
    script: ChurnScript,
    cfg: RunConfig,
    mode: Mode,
    tree: Tree,
    /// Persistent id of every current node (aligned with `tree`).
    ids: Vec<u64>,
    /// Next fresh persistent id (ids are never reused).
    next_id: u64,
    /// Frozen id-space bound; only grows, and growing it forces a full
    /// re-solve (id-space-driven cascades restart under the new bound).
    space: u64,
    /// Monotone maximum of the node counts the session has seen.
    n_hint: usize,
    labels: Vec<u64>,
    rounds: Vec<u64>,
    /// Batches applied so far.
    batch: u64,
}

impl DynamicSession {
    /// Opens a session: builds the base instance, runs the initial full
    /// solve, and stands ready to [`step`](DynamicSession::step) through
    /// the script.
    ///
    /// # Errors
    ///
    /// [`HarnessError::UnknownAlgorithm`] for an unregistered solver name,
    /// [`HarnessError::BadSpec`] for an invalid script or base spec, and
    /// any error of the initial [`Algorithm::run`].
    pub fn new(
        algorithm: &str,
        base: InstanceSpec,
        script: ChurnScript,
        cfg: RunConfig,
    ) -> Result<Self, HarnessError> {
        let algo =
            find(algorithm).ok_or_else(|| HarnessError::UnknownAlgorithm(algorithm.into()))?;
        script.validate().map_err(HarnessError::BadSpec)?;
        let instance = base.build()?;
        let tree = instance.tree().clone();
        let n0 = tree.node_count();
        let mode = match base.kind() {
            InstanceKind::Path => Mode::Surgery(ShapeDiscipline::PathPreserving),
            InstanceKind::RandomTree | InstanceKind::Adversarial => {
                Mode::Surgery(ShapeDiscipline::FreeTree {
                    max_degree: tree.max_degree().max(3) + 1,
                })
            }
            _ => Mode::Parameter,
        };
        let mut session = DynamicSession {
            algo,
            base,
            script,
            cfg,
            mode,
            tree,
            ids: (0..n0 as u64).collect(),
            next_id: n0 as u64,
            space: (2 * n0 as u64).max(8),
            n_hint: n0,
            labels: Vec::new(),
            rounds: Vec::new(),
            batch: 0,
        };
        let record = session.full_resolve()?;
        session.labels = record.labels;
        session.rounds = record.rounds;
        Ok(session)
    }

    /// Registry name of the session's solver.
    #[must_use]
    pub fn algorithm(&self) -> &'static str {
        self.algo.name()
    }

    /// The current tree.
    #[must_use]
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Current node count.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.tree.node_count()
    }

    /// The session's current labels (canonical `u64` encoding, aligned
    /// with the current tree).
    #[must_use]
    pub fn labels(&self) -> &[u64] {
        &self.labels
    }

    /// The session's current per-node termination rounds.
    #[must_use]
    pub fn rounds(&self) -> &[u64] {
        &self.rounds
    }

    /// Batches applied so far.
    #[must_use]
    pub fn batches_applied(&self) -> u64 {
        self.batch
    }

    /// Batches the script still has in store.
    #[must_use]
    pub fn batches_remaining(&self) -> u64 {
        (self.script.batches as u64).saturating_sub(self.batch)
    }

    /// Whether the solver takes the genuine incremental path under the
    /// current scope (local solver in surgery mode).
    #[must_use]
    pub fn is_local(&self) -> bool {
        matches!(self.mode, Mode::Surgery(_)) && self.algo.churn_radius(&self.scope()).is_some()
    }

    /// The frozen session scope handed to every run (incremental and
    /// baseline alike).
    #[must_use]
    pub fn scope(&self) -> SessionScope {
        SessionScope {
            ids: Arc::new(self.ids.clone()),
            space: self.space,
            n_hint: self.n_hint,
        }
    }

    /// The spec describing the session's current instance.
    #[must_use]
    pub fn current_spec(&self) -> InstanceSpec {
        match self.mode {
            Mode::Surgery(_) => InstanceSpec::Churned {
                base: Box::new(self.base.clone()),
                batch: self.batch,
                n: self.tree.node_count(),
            },
            Mode::Parameter => self.param_spec(),
        }
    }

    /// Parameter-mode spec after `self.batch` batches: the base family
    /// with its size parameter grown by `ops_per_batch` per batch.
    fn param_spec(&self) -> InstanceSpec {
        let n = self.base.requested_n() + self.batch as usize * self.script.ops_per_batch;
        match self.base.clone() {
            InstanceSpec::Theorem11 { k, .. } => InstanceSpec::Theorem11 { n, k },
            InstanceSpec::WeightedPoly { delta, d, k, .. } => {
                InstanceSpec::WeightedPoly { n, delta, d, k }
            }
            InstanceSpec::WeightedLogStar { delta, d, k, .. } => {
                InstanceSpec::WeightedLogStar { n, delta, d, k }
            }
            InstanceSpec::WeightedUnit { delta, k, .. } => {
                InstanceSpec::WeightedUnit { n, delta, k }
            }
            InstanceSpec::BalancedWeight { delta, .. } => {
                InstanceSpec::BalancedWeight { w: n, delta }
            }
            other => other,
        }
    }

    /// Runs the from-scratch baseline on the session's current state under
    /// the same scope the incremental path uses. This is the differential
    /// oracle: its labels and rounds must be bit-identical to the
    /// session's spliced state.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Algorithm::run`].
    pub fn full_resolve(&self) -> Result<RunRecord, HarnessError> {
        match self.mode {
            Mode::Surgery(_) => {
                let instance = Instance::from_tree(self.current_spec(), self.tree.clone());
                let cfg = self.cfg.clone().with_scope(self.scope());
                run_timed(self.algo, &instance, &cfg)
            }
            Mode::Parameter => {
                let instance = self.param_spec().build()?;
                run_timed(self.algo, &instance, &self.cfg)
            }
        }
    }

    /// Applies the script's next batch and brings the labeling back in
    /// sync (incrementally where the solver permits).
    ///
    /// # Errors
    ///
    /// [`HarnessError::BadSpec`] when the script is exhausted or a batch
    /// cannot be applied, [`HarnessError::VerificationFailed`] when the
    /// spliced labeling violates the problem constraints (only checked if
    /// the config verifies), and any error of a fallback full re-solve.
    pub fn step(&mut self) -> Result<StepOutcome, HarnessError> {
        if self.batch >= self.script.batches as u64 {
            return Err(HarnessError::BadSpec(format!(
                "script `{}` has only {} batches",
                self.script.name, self.script.batches
            )));
        }
        let start = Instant::now();
        match self.mode {
            Mode::Surgery(discipline) => self.step_surgery(discipline, start),
            Mode::Parameter => {
                self.batch += 1;
                let instance = self.param_spec().build()?;
                self.tree = instance.tree().clone();
                let record = run_timed(self.algo, &instance, &self.cfg)?;
                self.labels.clone_from(&record.labels);
                self.rounds.clone_from(&record.rounds);
                let n = record.n;
                let resolve_ms = record.elapsed_ms;
                Ok(StepOutcome {
                    batch: self.batch - 1,
                    n,
                    incremental: false,
                    dirty: n,
                    region: n,
                    elapsed_ms: start.elapsed().as_secs_f64() * 1_000.0,
                    resolve_ms,
                    record,
                })
            }
        }
    }

    fn step_surgery(
        &mut self,
        discipline: ShapeDiscipline,
        start: Instant,
    ) -> Result<StepOutcome, HarnessError> {
        let b = self.batch;
        let weights = OpWeights {
            insert: self.script.mix.insert,
            delete: self.script.mix.delete,
            rehang: self.script.mix.rehang,
        };
        let result = churn_batch(
            &self.tree,
            discipline,
            weights,
            self.script.ops_per_batch,
            4,
            self.script.batch_seed(b as usize),
        )
        .map_err(|e| HarnessError::BadSpec(format!("churn batch {b}: {e}")))?;

        // Remap persistent state into the post-batch index space. Inserted
        // nodes (working index >= base_n) get fresh ids in insertion order;
        // their label/round slots are placeholders until the re-solve.
        let new_n = result.tree.node_count();
        let mut ids = Vec::with_capacity(new_n);
        let mut labels = vec![0u64; new_n];
        let mut rounds = vec![0u64; new_n];
        for (v, &w) in result.new_to_old.iter().enumerate() {
            if w < result.base_n {
                ids.push(self.ids[w]);
                labels[v] = self.labels[w];
                rounds[v] = self.rounds[w];
            } else {
                ids.push(self.next_id);
                self.next_id += 1;
            }
        }
        let touched = result.touched;
        self.tree = result.tree;
        self.ids = ids;
        self.labels = labels;
        self.rounds = rounds;
        self.n_hint = self.n_hint.max(new_n);
        self.batch += 1;

        // Growing the frozen id space changes id-space-driven trajectories
        // everywhere, so it forces a full re-solve.
        let mut force_full = false;
        if self.next_id > self.space {
            self.space = (2 * self.next_id).max(8);
            force_full = true;
        }

        let scope = self.scope();
        let radius = if force_full {
            None
        } else {
            self.algo.churn_radius(&scope)
        };
        let resolve_start = Instant::now();
        if let Some(t) = radius {
            if let Some((dirty, region)) = self.try_incremental(t, &touched, &scope)? {
                let verified = if self.cfg.verify {
                    self.verify_spliced()?;
                    true
                } else {
                    false
                };
                let mut record = RunRecord::from_rounds(
                    self.algo.name(),
                    &self.current_spec(),
                    self.cfg.seed,
                    self.labels.clone(),
                    self.rounds.clone(),
                    None,
                    verified,
                )
                .on_engine("chunked");
                record.elapsed_ms = start.elapsed().as_secs_f64() * 1_000.0;
                return Ok(StepOutcome {
                    batch: b,
                    n: new_n,
                    incremental: true,
                    dirty,
                    region,
                    elapsed_ms: record.elapsed_ms,
                    resolve_ms: resolve_start.elapsed().as_secs_f64() * 1_000.0,
                    record,
                });
            }
        }

        // Global solver, grown id space, region covering the whole tree,
        // or a region run that declined: full re-solve.
        let record = self.full_resolve()?;
        self.labels.clone_from(&record.labels);
        self.rounds.clone_from(&record.rounds);
        Ok(StepOutcome {
            batch: b,
            n: new_n,
            incremental: false,
            dirty: new_n,
            region: new_n,
            elapsed_ms: start.elapsed().as_secs_f64() * 1_000.0,
            resolve_ms: resolve_start.elapsed().as_secs_f64() * 1_000.0,
            record,
        })
    }

    /// Attempts the dirty-region path: returns `Ok(Some((dirty, region)))`
    /// after splicing, `Ok(None)` when a full re-solve should run instead
    /// (region covers the whole tree, or the solver declined a region).
    fn try_incremental(
        &mut self,
        t: u64,
        touched: &[NodeId],
        scope: &SessionScope,
    ) -> Result<Option<(usize, usize)>, HarnessError> {
        let n = self.tree.node_count();
        let dist = self.tree.multi_source_distances(touched);
        let reach = t.saturating_mul(2).saturating_add(1);
        let region: Vec<NodeId> = (0..n).filter(|&v| u64::from(dist[v]) <= reach).collect();
        if region.len() >= n {
            return Ok(None);
        }
        let mut patch: Vec<(NodeId, u64, u64)> = Vec::new();
        for comp in extract_components(&self.tree, &region) {
            let comp_ids: Vec<u64> = comp.nodes.iter().map(|&v| self.ids[v]).collect();
            let run = RegionRun {
                tree: &comp.tree,
                ids: &comp_ids,
                ambient_n: n,
                scope,
                engine: &self.cfg.engine,
                seed: self.cfg.seed,
            };
            match self.algo.run_region(&run) {
                Some(Ok((labels, rounds)))
                    if labels.len() == comp.nodes.len() && rounds.len() == comp.nodes.len() =>
                {
                    for (i, &v) in comp.nodes.iter().enumerate() {
                        if u64::from(dist[v]) <= t {
                            patch.push((v, labels[i], rounds[i]));
                        }
                    }
                }
                // No region entry, a shape mismatch, or an engine error:
                // the full re-solve is always a correct answer.
                _ => return Ok(None),
            }
        }
        let dirty = patch.len();
        for (v, label, round) in patch {
            self.labels[v] = label;
            self.rounds[v] = round;
        }
        Ok(Some((dirty, region.len())))
    }

    /// Checks the spliced labeling against the constraints every local
    /// (incremental-capable) solver realizes: a proper coloring with at
    /// most three colors.
    fn verify_spliced(&self) -> Result<(), HarnessError> {
        let fail = |violation: String| HarnessError::VerificationFailed {
            algorithm: self.algo.name().to_string(),
            violation,
        };
        let mut palette = std::collections::BTreeSet::new();
        for &l in &self.labels {
            palette.insert(l);
        }
        if palette.len() > 3 {
            return Err(fail(format!(
                "spliced labeling uses {} colors (expected at most 3)",
                palette.len()
            )));
        }
        for v in 0..self.tree.node_count() {
            for &w in self.tree.neighbors(v) {
                let w = w as usize;
                if v < w && self.labels[v] == self.labels[w] {
                    return Err(fail(format!(
                        "edge ({v}, {w}) is monochromatic after splice (color {})",
                        self.labels[v]
                    )));
                }
            }
        }
        Ok(())
    }

    /// Steps through every remaining batch of the script.
    ///
    /// # Errors
    ///
    /// Propagates the first [`step`](DynamicSession::step) error.
    pub fn run_script(&mut self) -> Result<Vec<StepOutcome>, HarnessError> {
        let mut outcomes = Vec::new();
        while self.batches_remaining() > 0 {
            outcomes.push(self.step()?);
        }
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::churn::ChurnMix;

    fn script(mix: ChurnMix, batches: usize, ops: usize) -> ChurnScript {
        ChurnScript::new("test", 0xA5A5, batches, ops, mix)
    }

    #[test]
    fn session_steps_and_matches_baseline() {
        let s = script(ChurnMix::new(2, 1, 0), 3, 12);
        let mut session = DynamicSession::new(
            "linial",
            InstanceSpec::Path { n: 300 },
            s,
            RunConfig::seeded(5),
        )
        .expect("session opens");
        assert!(session.is_local());
        for _ in 0..3 {
            let out = session.step().expect("step");
            assert_eq!(out.n, session.node_count());
            let baseline = session.full_resolve().expect("baseline");
            assert_eq!(baseline.labels, session.labels(), "labels diverged");
            assert_eq!(baseline.rounds, session.rounds(), "rounds diverged");
        }
        assert!(session.step().is_err(), "script is exhausted");
    }

    #[test]
    fn incremental_path_is_taken_on_long_paths() {
        // Linial's radius is O(log* space): on a 600-node path a 12-op
        // endpoint batch dirties a small region, so the genuine splice
        // path must engage.
        let s = script(ChurnMix::new(1, 1, 1), 2, 12);
        let mut session = DynamicSession::new(
            "linial",
            InstanceSpec::Path { n: 600 },
            s,
            RunConfig::seeded(11),
        )
        .expect("session opens");
        let mut saw_incremental = false;
        for _ in 0..2 {
            let out = session.step().expect("step");
            saw_incremental |= out.incremental;
            if out.incremental {
                assert!(out.region < out.n, "region must be a strict subset");
                assert!(out.dirty <= out.region);
            }
        }
        assert!(saw_incremental, "600-node path must splice incrementally");
    }

    #[test]
    fn global_solvers_fall_back_to_full_resolve() {
        let s = script(ChurnMix::new(1, 1, 0), 2, 8);
        let mut session = DynamicSession::new(
            "two-coloring",
            InstanceSpec::Path { n: 64 },
            s,
            RunConfig::seeded(3),
        )
        .expect("session opens");
        assert!(!session.is_local());
        let out = session.step().expect("step");
        assert!(!out.incremental);
        assert_eq!(out.dirty, out.n);
        let baseline = session.full_resolve().expect("baseline");
        assert_eq!(baseline.labels, session.labels());
    }

    #[test]
    fn parameter_mode_grows_construction_specs() {
        let s = script(ChurnMix::new(1, 0, 0), 2, 50);
        let mut session = DynamicSession::new(
            "generic-coloring",
            InstanceSpec::Theorem11 { n: 400, k: 2 },
            s,
            RunConfig::seeded(2),
        )
        .expect("session opens");
        let n0 = session.node_count();
        let out = session.step().expect("step");
        assert!(!out.incremental);
        assert!(out.record.n >= n0, "parameter mode only grows");
        let baseline = session.full_resolve().expect("baseline");
        assert_eq!(baseline.labels, out.record.labels);
    }

    #[test]
    fn free_tree_surgery_tracks_adversarial_bases() {
        let s = script(ChurnMix::new(2, 1, 1), 2, 10);
        let mut session = DynamicSession::new(
            "labeling-solver",
            InstanceSpec::Spider {
                legs: 4,
                leg_len: 10,
            },
            s,
            RunConfig::seeded(9),
        )
        .expect("session opens");
        for _ in 0..2 {
            let out = session.step().expect("step");
            assert!(!out.incremental, "labeling-solver is global");
            let baseline = session.full_resolve().expect("baseline");
            assert_eq!(baseline.labels, session.labels());
            assert_eq!(baseline.rounds, session.rounds());
        }
    }
}
