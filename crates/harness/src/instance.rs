//! Declarative instance descriptions and built instances.
//!
//! An [`InstanceSpec`] names a paper construction and its parameters; an
//! [`Instance`] is the built topology (tree, input labels, construction
//! metadata) plus a cache of peeling decompositions so repeated runs on
//! the same instance — the common case in seeded sweeps — do not recompute
//! them.

use crate::cache::{BoundedLru, CacheStats};
use lcl_core::params;
use lcl_graph::hierarchical::LowerBoundGraph;
use lcl_graph::levels::Levels;
use lcl_graph::weighted::{NodeKind, WeightedConstruction, WeightedParams};
use lcl_graph::{generators, Tree};
use serde::Serialize;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// Errors surfaced by the harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HarnessError {
    /// No registered algorithm under this name.
    UnknownAlgorithm(String),
    /// The algorithm does not run on this kind of instance.
    UnsupportedInstance {
        /// Name of the algorithm that rejected the instance.
        algorithm: String,
        /// Kind of the offending instance.
        kind: InstanceKind,
    },
    /// The instance specification is invalid (bad lengths, `k = 0`, …).
    BadSpec(String),
    /// The run completed but its output violated the problem constraints.
    VerificationFailed {
        /// Name of the algorithm whose output failed.
        algorithm: String,
        /// The violation, rendered.
        violation: String,
    },
    /// The engine failed to complete a run, or its outcome disagreed with
    /// the structurally solved plan — an engine or adapter bug, surfaced
    /// instead of silently recorded.
    EngineDivergence {
        /// Name of the algorithm whose run diverged.
        algorithm: String,
        /// What diverged.
        detail: String,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::UnknownAlgorithm(name) => {
                write!(f, "unknown algorithm `{name}` (see `registry()`)")
            }
            HarnessError::UnsupportedInstance { algorithm, kind } => {
                write!(
                    f,
                    "algorithm `{algorithm}` does not support {kind:?} instances"
                )
            }
            HarnessError::BadSpec(msg) => write!(f, "invalid instance spec: {msg}"),
            HarnessError::VerificationFailed {
                algorithm,
                violation,
            } => {
                write!(
                    f,
                    "output of `{algorithm}` failed verification: {violation}"
                )
            }
            HarnessError::EngineDivergence { algorithm, detail } => {
                write!(
                    f,
                    "engine execution of `{algorithm}` diverged from the solved schedule: {detail}"
                )
            }
        }
    }
}

impl Error for HarnessError {}

/// Coarse instance families an algorithm can declare support for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum InstanceKind {
    /// A simple path (max degree 2).
    Path,
    /// A Definition 18 hierarchical lower-bound instance.
    LowerBound,
    /// A Definition 25 weighted (`Active`/`Weight`-labeled) construction.
    Weighted,
    /// A balanced pure-weight gadget tree.
    WeightTree,
    /// A seeded random bounded-degree tree.
    RandomTree,
    /// A hostile deterministic topology (caterpillar, ladder, broom,
    /// spider, complete Δ-ary tree, heavy-path-skewed tree) from the
    /// adversarial generator module.
    Adversarial,
}

/// A declarative, comparable description of one paper instance.
///
/// Specs are cheap value objects: [`Session`](crate::Session) groups jobs
/// by spec equality so each unique instance is built exactly once per
/// batch.
///
/// # Examples
///
/// ```
/// use lcl_harness::{InstanceKind, InstanceSpec};
///
/// let spec = InstanceSpec::WeightedPoly { n: 3_000, delta: 5, d: 2, k: 2 };
/// assert_eq!(spec.kind(), InstanceKind::Weighted);
/// assert_eq!(spec.describe(), "weighted-poly(n=3000,delta=5,d=2,k=2)");
///
/// // Building materializes the topology; the built size can differ
/// // slightly from the requested one (constructions round to gadgets).
/// let instance = spec.build()?;
/// assert!(instance.node_count() >= 1_000);
/// assert_eq!(instance.spec(), &spec);
/// # Ok::<(), lcl_harness::HarnessError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceSpec {
    /// A path on `n` nodes.
    Path {
        /// Node count.
        n: usize,
    },
    /// The Theorem 11 lower-bound instance (Definition 18) of total size
    /// ≈ `n` with `k` hierarchy levels.
    Theorem11 {
        /// Target node count.
        n: usize,
        /// Hierarchy depth.
        k: usize,
    },
    /// The Definition 25 weighted construction in the polynomial regime:
    /// core lengths from the optimal `α_i` at `x = log(Δ-d-1)/log(Δ-1)`.
    WeightedPoly {
        /// Target node count.
        n: usize,
        /// Degree bound of the active core.
        delta: usize,
        /// Decline budget.
        d: usize,
        /// Hierarchy depth.
        k: usize,
    },
    /// The Definition 25 weighted construction in the `log*` regime.
    WeightedLogStar {
        /// Target node count.
        n: usize,
        /// Degree bound of the active core.
        delta: usize,
        /// Decline budget.
        d: usize,
        /// Hierarchy depth.
        k: usize,
    },
    /// The Lemma 69 weight-augmented construction: weight efficiency
    /// `x = 1`, every `α_i = 1/k`.
    WeightedUnit {
        /// Target node count.
        n: usize,
        /// Degree bound of the active core.
        delta: usize,
        /// Hierarchy depth.
        k: usize,
    },
    /// A balanced pure-weight gadget tree of weight `w` and degree `delta`.
    BalancedWeight {
        /// Total weight (≈ node count).
        w: usize,
        /// Branching degree.
        delta: usize,
    },
    /// A seeded random tree with bounded degree.
    RandomTree {
        /// Node count.
        n: usize,
        /// Maximum degree.
        max_degree: usize,
        /// Topology seed (distinct from the run's ID seed).
        seed: u64,
    },
    /// A caterpillar: a spine path with `legs` pendant leaves per spine
    /// node (`n = spine · (1 + legs)`).
    Caterpillar {
        /// Spine length.
        spine: usize,
        /// Pendant leaves per spine node.
        legs: usize,
    },
    /// A ladder (comb) tree: a spine of `rungs` nodes, one pendant leaf
    /// each (`n = 2 · rungs`).
    Ladder {
        /// Spine length.
        rungs: usize,
    },
    /// A broom: a path of `spine` nodes with `bristles` leaves on one end.
    Broom {
        /// Handle length.
        spine: usize,
        /// Leaves on the far end.
        bristles: usize,
    },
    /// A spider: `legs` paths of `leg_len` nodes joined at a hub
    /// (`n = 1 + legs · leg_len`).
    Spider {
        /// Number of legs.
        legs: usize,
        /// Nodes per leg.
        leg_len: usize,
    },
    /// A complete `arity`-ary tree of the given height.
    CompleteAry {
        /// Children per internal node.
        arity: usize,
        /// Tree height (0 = single root).
        height: usize,
    },
    /// A heavy-path-skewed tree on `n` nodes (max degree 3): pendant paths
    /// grow along the spine, the adversarial case for heavy-path
    /// decompositions.
    HeavyPath {
        /// Node count.
        n: usize,
    },
    /// A churned instance: `base` after `batch` batches of tree surgery,
    /// now on `n` nodes. Built only by
    /// [`DynamicSession`](crate::DynamicSession) via [`Instance::from_tree`]
    /// (the topology is the product of the session's op stream, so the spec
    /// alone cannot rebuild it).
    Churned {
        /// The spec the session started from.
        base: Box<InstanceSpec>,
        /// How many batches have been applied.
        batch: u64,
        /// Current node count.
        n: usize,
    },
}

impl InstanceSpec {
    /// The coarse family this spec belongs to.
    #[must_use]
    pub fn kind(&self) -> InstanceKind {
        match self {
            InstanceSpec::Path { .. } => InstanceKind::Path,
            InstanceSpec::Theorem11 { .. } => InstanceKind::LowerBound,
            InstanceSpec::WeightedPoly { .. }
            | InstanceSpec::WeightedLogStar { .. }
            | InstanceSpec::WeightedUnit { .. } => InstanceKind::Weighted,
            InstanceSpec::BalancedWeight { .. } => InstanceKind::WeightTree,
            InstanceSpec::RandomTree { .. } => InstanceKind::RandomTree,
            InstanceSpec::Caterpillar { .. }
            | InstanceSpec::Ladder { .. }
            | InstanceSpec::Broom { .. }
            | InstanceSpec::Spider { .. }
            | InstanceSpec::CompleteAry { .. }
            | InstanceSpec::HeavyPath { .. } => InstanceKind::Adversarial,
            InstanceSpec::Churned { ref base, .. } => base.kind(),
        }
    }

    /// The requested size parameter (`n` or `w`). The built instance may
    /// differ slightly; see [`Instance::node_count`].
    #[must_use]
    pub fn requested_n(&self) -> usize {
        match *self {
            InstanceSpec::Path { n }
            | InstanceSpec::Theorem11 { n, .. }
            | InstanceSpec::WeightedPoly { n, .. }
            | InstanceSpec::WeightedLogStar { n, .. }
            | InstanceSpec::WeightedUnit { n, .. }
            | InstanceSpec::RandomTree { n, .. }
            | InstanceSpec::HeavyPath { n }
            | InstanceSpec::Churned { n, .. } => n,
            InstanceSpec::BalancedWeight { w, .. } => w,
            InstanceSpec::Caterpillar { spine, legs } => spine * (1 + legs),
            InstanceSpec::Ladder { rungs } => 2 * rungs,
            InstanceSpec::Broom { spine, bristles } => spine + bristles,
            InstanceSpec::Spider { legs, leg_len } => 1 + legs * leg_len,
            InstanceSpec::CompleteAry { arity, height } => {
                let mut nodes = 1usize;
                let mut level = 1usize;
                for _ in 0..height {
                    level = level.saturating_mul(arity);
                    nodes = nodes.saturating_add(level);
                }
                nodes
            }
        }
    }

    /// The hierarchy depth `k` carried by the spec, when it has one.
    #[must_use]
    pub fn hierarchy_k(&self) -> Option<usize> {
        match *self {
            InstanceSpec::Theorem11 { k, .. }
            | InstanceSpec::WeightedPoly { k, .. }
            | InstanceSpec::WeightedLogStar { k, .. }
            | InstanceSpec::WeightedUnit { k, .. } => Some(k),
            InstanceSpec::Churned { ref base, .. } => base.hierarchy_k(),
            _ => None,
        }
    }

    /// The decline budget `d` carried by the spec, when it has one.
    #[must_use]
    pub fn decline_d(&self) -> Option<usize> {
        match *self {
            InstanceSpec::WeightedPoly { d, .. } | InstanceSpec::WeightedLogStar { d, .. } => {
                Some(d)
            }
            InstanceSpec::Churned { ref base, .. } => base.decline_d(),
            _ => None,
        }
    }

    /// A compact human-readable rendering, used in tables and JSON.
    #[must_use]
    pub fn describe(&self) -> String {
        match *self {
            InstanceSpec::Path { n } => format!("path(n={n})"),
            InstanceSpec::Theorem11 { n, k } => format!("theorem11(n={n},k={k})"),
            InstanceSpec::WeightedPoly { n, delta, d, k } => {
                format!("weighted-poly(n={n},delta={delta},d={d},k={k})")
            }
            InstanceSpec::WeightedLogStar { n, delta, d, k } => {
                format!("weighted-logstar(n={n},delta={delta},d={d},k={k})")
            }
            InstanceSpec::WeightedUnit { n, delta, k } => {
                format!("weighted-unit(n={n},delta={delta},k={k})")
            }
            InstanceSpec::BalancedWeight { w, delta } => {
                format!("balanced-weight(w={w},delta={delta})")
            }
            InstanceSpec::RandomTree {
                n,
                max_degree,
                seed,
            } => {
                format!("random-tree(n={n},max_degree={max_degree},seed={seed})")
            }
            InstanceSpec::Caterpillar { spine, legs } => {
                format!("caterpillar(spine={spine},legs={legs})")
            }
            InstanceSpec::Ladder { rungs } => format!("ladder(rungs={rungs})"),
            InstanceSpec::Broom { spine, bristles } => {
                format!("broom(spine={spine},bristles={bristles})")
            }
            InstanceSpec::Spider { legs, leg_len } => {
                format!("spider(legs={legs},leg_len={leg_len})")
            }
            InstanceSpec::CompleteAry { arity, height } => {
                format!("complete-ary(arity={arity},height={height})")
            }
            InstanceSpec::HeavyPath { n } => format!("heavy-path(n={n})"),
            InstanceSpec::Churned { ref base, batch, n } => {
                format!("churned({},batch={batch},n={n})", base.describe())
            }
        }
    }

    /// Builds the instance this spec describes.
    ///
    /// # Errors
    ///
    /// Returns [`HarnessError::BadSpec`] when the parameters are not
    /// realizable (zero sizes, `k = 0`, construction errors).
    pub fn build(&self) -> Result<Instance, HarnessError> {
        let data = match *self {
            InstanceSpec::Path { n } => {
                if n == 0 {
                    return Err(HarnessError::BadSpec("path needs n >= 1".into()));
                }
                InstanceData::Plain(generators::path(n))
            }
            InstanceSpec::Theorem11 { n, k } => {
                if k == 0 {
                    return Err(HarnessError::BadSpec("theorem11 needs k >= 1".into()));
                }
                let lengths = params::theorem11_lengths(n, k);
                let g = LowerBoundGraph::new(&lengths)
                    .map_err(|e| HarnessError::BadSpec(format!("theorem11 lengths: {e}")))?;
                InstanceData::LowerBound(g)
            }
            InstanceSpec::WeightedPoly { n, delta, d, k } => {
                check_weighted_params(n, k)?;
                let x = lcl_core::landscape::efficiency_x(delta, d);
                weighted_data(n, delta, k, params::poly_lengths((n / k).max(4), x, k))?
            }
            InstanceSpec::WeightedLogStar { n, delta, d, k } => {
                check_weighted_params(n, k)?;
                let x = lcl_core::landscape::efficiency_x(delta, d);
                weighted_data(n, delta, k, params::log_star_lengths((n / k).max(4), x, k))?
            }
            InstanceSpec::WeightedUnit { n, delta, k } => {
                check_weighted_params(n, k)?;
                weighted_data(n, delta, k, params::poly_lengths((n / k).max(4), 1.0, k))?
            }
            InstanceSpec::BalancedWeight { w, delta } => {
                if w == 0 || delta < 2 {
                    return Err(HarnessError::BadSpec(
                        "balanced-weight needs w >= 1 and delta >= 2".into(),
                    ));
                }
                InstanceData::Plain(generators::balanced_weight_tree(w, delta))
            }
            InstanceSpec::RandomTree {
                n,
                max_degree,
                seed,
            } => {
                if n == 0 || max_degree < 2 {
                    return Err(HarnessError::BadSpec(
                        "random-tree needs n >= 1 and max_degree >= 2".into(),
                    ));
                }
                InstanceData::Plain(generators::random_bounded_degree_tree(n, max_degree, seed))
            }
            InstanceSpec::Caterpillar { spine, legs } => {
                if spine == 0 {
                    return Err(HarnessError::BadSpec("caterpillar needs spine >= 1".into()));
                }
                InstanceData::Plain(generators::caterpillar(spine, legs))
            }
            InstanceSpec::Ladder { rungs } => {
                if rungs == 0 {
                    return Err(HarnessError::BadSpec("ladder needs rungs >= 1".into()));
                }
                InstanceData::Plain(generators::ladder(rungs))
            }
            InstanceSpec::Broom { spine, bristles } => InstanceData::Plain(
                generators::broom(spine, bristles)
                    .map_err(|e| HarnessError::BadSpec(format!("broom: {e}")))?,
            ),
            InstanceSpec::Spider { legs, leg_len } => {
                if legs > 0 && leg_len == 0 {
                    return Err(HarnessError::BadSpec(
                        "spider legs must be non-empty".into(),
                    ));
                }
                InstanceData::Plain(generators::spider(legs, leg_len))
            }
            InstanceSpec::CompleteAry { arity, height } => {
                if arity == 0 && height > 0 {
                    return Err(HarnessError::BadSpec(
                        "complete-ary needs arity >= 1".into(),
                    ));
                }
                if self.requested_n() > 50_000_000 {
                    return Err(HarnessError::BadSpec(
                        "complete-ary parameters overflow a reasonable node count".into(),
                    ));
                }
                InstanceData::Plain(generators::complete_ary_tree(arity, height))
            }
            InstanceSpec::HeavyPath { n } => {
                if n == 0 {
                    return Err(HarnessError::BadSpec("heavy-path needs n >= 1".into()));
                }
                InstanceData::Plain(generators::heavy_path_skewed(n))
            }
            InstanceSpec::Churned { .. } => {
                return Err(HarnessError::BadSpec(
                    "churned instances are materialized by DynamicSession, not from the spec"
                        .into(),
                ));
            }
        };
        Ok(Instance {
            spec: self.clone(),
            data,
        })
    }

    /// Builds through the process-wide instance cache: a repeated spec
    /// returns the same immutable `Arc<Instance>` instead of regenerating
    /// the topology. Generators are deterministic, so sharing cannot
    /// change answers (the service's differential suite asserts this).
    ///
    /// Oversized instances (above one million nodes) are
    /// built but not retained; build errors are never cached — they are
    /// cheap to rediscover and keep the cache value type simple.
    ///
    /// # Errors
    ///
    /// The same [`HarnessError::BadSpec`] conditions as [`Self::build`].
    pub fn build_shared(&self) -> Result<Arc<Instance>, HarnessError> {
        if let Some(hit) = instance_cache()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .lookup(self)
        {
            return Ok(hit);
        }
        // Build outside the lock; a racing equal spec at worst duplicates
        // the work once and the first insert is kept.
        let built = Arc::new(self.build()?);
        if built.node_count() <= INSTANCE_CACHE_MAX_NODES {
            let mut cache = instance_cache()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(hit) = cache.peek(self) {
                return Ok(hit);
            }
            cache.insert(self.clone(), built.clone());
        }
        Ok(built)
    }
}

/// Maximum number of cached peelings (distinct `(spec, k)` pairs).
const LEVELS_CACHE_CAP: usize = 32;

/// Process-wide peeling cache shared by every [`Instance`] built from an
/// equal spec — including instances living in different [`Session`]
/// (crate::Session) shards or different figure sweeps. Peelings depend
/// only on `(spec, k)` (generators are deterministic), so the same spec
/// appearing in several figures no longer re-peels per shard.
///
/// Kept small and LRU-evicted: at production scale one entry is `n` bytes.
type LevelsLru = BoundedLru<(InstanceSpec, usize), Arc<Levels>>;

fn levels_cache() -> &'static Mutex<LevelsLru> {
    static CACHE: OnceLock<Mutex<LevelsLru>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BoundedLru::new(LEVELS_CACHE_CAP)))
}

/// Snapshot of the process-wide peeling cache counters (the service
/// reports this per `stats` request).
#[must_use]
pub fn levels_cache_stats() -> CacheStats {
    levels_cache()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .stats()
}

/// Maximum number of cached built instances.
const INSTANCE_CACHE_CAP: usize = 8;

/// Instances above this node count are built but never retained: the
/// cache bounds entry *count*, so it must also bound entry *size* or a
/// scale sweep could pin hundreds of megabytes of topology.
const INSTANCE_CACHE_MAX_NODES: usize = 1_000_000;

/// Process-wide built-instance cache behind
/// [`InstanceSpec::build_shared`]: generators are deterministic, so a
/// repeated spec (the `lcld` service solving the same preset for many
/// clients) reuses one immutable topology instead of rebuilding it.
fn instance_cache() -> &'static Mutex<BoundedLru<InstanceSpec, Arc<Instance>>> {
    static CACHE: OnceLock<Mutex<BoundedLru<InstanceSpec, Arc<Instance>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BoundedLru::new(INSTANCE_CACHE_CAP)))
}

/// Snapshot of the process-wide built-instance cache counters.
#[must_use]
pub fn instance_cache_stats() -> CacheStats {
    instance_cache()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .stats()
}

fn check_weighted_params(n: usize, k: usize) -> Result<(), HarnessError> {
    if k == 0 || n == 0 {
        return Err(HarnessError::BadSpec(
            "weighted construction needs n >= 1 and k >= 1".into(),
        ));
    }
    Ok(())
}

fn weighted_data(
    n: usize,
    delta: usize,
    k: usize,
    lengths: Vec<usize>,
) -> Result<InstanceData, HarnessError> {
    let weight_per_level = n / k;
    let c = WeightedConstruction::new(&WeightedParams {
        lengths,
        delta,
        weight_per_level,
    })
    .map_err(|e| HarnessError::BadSpec(format!("weighted construction: {e}")))?;
    Ok(InstanceData::Weighted(c))
}

enum InstanceData {
    Plain(Tree),
    LowerBound(LowerBoundGraph),
    Weighted(WeightedConstruction),
}

/// A built instance: topology plus construction metadata. Peeling
/// decompositions are memoized in a process-wide cache keyed by
/// `(spec, k)`, shared across all instances of the same spec.
pub struct Instance {
    spec: InstanceSpec,
    data: InstanceData,
}

impl Instance {
    /// Wraps an externally materialized plain tree under the given spec.
    ///
    /// This is the [`DynamicSession`](crate::DynamicSession) entry point:
    /// churned topologies are products of an op stream, not of a generator,
    /// so they bypass [`InstanceSpec::build`]. The spec (normally
    /// [`InstanceSpec::Churned`]) keeps records self-describing.
    #[must_use]
    pub fn from_tree(spec: InstanceSpec, tree: Tree) -> Self {
        Instance {
            spec,
            data: InstanceData::Plain(tree),
        }
    }

    /// The spec this instance was built from.
    #[must_use]
    pub fn spec(&self) -> &InstanceSpec {
        &self.spec
    }

    /// The coarse instance family.
    #[must_use]
    pub fn kind(&self) -> InstanceKind {
        self.spec.kind()
    }

    /// The underlying tree.
    #[must_use]
    pub fn tree(&self) -> &Tree {
        match &self.data {
            InstanceData::Plain(t) => t,
            InstanceData::LowerBound(g) => g.tree(),
            InstanceData::Weighted(c) => c.tree(),
        }
    }

    /// Actual node count of the built instance.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.tree().node_count()
    }

    /// The size parameter the spec asked for (algorithms schedule phase
    /// parameters against `max(requested, actual)`, mirroring the paper's
    /// "nodes know n" convention).
    #[must_use]
    pub fn requested_n(&self) -> usize {
        self.spec.requested_n()
    }

    /// `Active`/`Weight` input labels, for weighted constructions.
    #[must_use]
    pub fn node_kinds(&self) -> Option<&[NodeKind]> {
        match &self.data {
            InstanceData::Weighted(c) => Some(c.kinds()),
            _ => None,
        }
    }

    /// The weighted construction, when this instance is one.
    #[must_use]
    pub fn construction(&self) -> Option<&WeightedConstruction> {
        match &self.data {
            InstanceData::Weighted(c) => Some(c),
            _ => None,
        }
    }

    /// The lower-bound construction, when this instance is one.
    #[must_use]
    pub fn lower_bound(&self) -> Option<&LowerBoundGraph> {
        match &self.data {
            InstanceData::LowerBound(g) => Some(g),
            _ => None,
        }
    }

    /// The depth-`k` peeling of the whole tree, computed once per
    /// `(spec, k)` process-wide and shared.
    ///
    /// Sweeps run one instance under many seeds, and the same spec often
    /// appears in several [`Session`](crate::Session) shards or figures;
    /// the peeling only depends on topology, so all of them share it.
    ///
    /// A poisoned cache mutex is recovered, not propagated: the cache
    /// holds only immutable `Arc<Levels>` values, so a panic elsewhere
    /// can at worst have lost an insert.
    #[must_use]
    pub fn levels(&self, k: usize) -> Arc<Levels> {
        let key = (self.spec.clone(), k);
        if let Some(hit) = levels_cache()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .lookup(&key)
        {
            return hit;
        }
        // Compute outside the lock so unrelated specs never serialize on
        // one peeling; a racing equal spec at worst duplicates the work
        // once and the last insert wins.
        let computed = Arc::new(Levels::compute(self.tree(), k));
        let mut cache = levels_cache()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Uncounted re-check: the miss above already accounted for this
        // request; a racing equal spec should not skew the counters.
        if let Some(hit) = cache.peek(&key) {
            return hit;
        }
        cache.insert(key, computed.clone());
        computed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_spec_builds() {
        let inst = InstanceSpec::Path { n: 9 }.build().unwrap();
        assert_eq!(inst.node_count(), 9);
        assert_eq!(inst.kind(), InstanceKind::Path);
        assert!(inst.node_kinds().is_none());
    }

    #[test]
    fn weighted_spec_builds_with_kinds() {
        let spec = InstanceSpec::WeightedPoly {
            n: 3_000,
            delta: 5,
            d: 2,
            k: 2,
        };
        let inst = spec.build().unwrap();
        assert!(inst.node_count() >= 1_000);
        assert_eq!(inst.node_kinds().unwrap().len(), inst.node_count());
        assert_eq!(inst.kind(), InstanceKind::Weighted);
    }

    #[test]
    fn levels_are_cached() {
        let inst = InstanceSpec::Theorem11 { n: 2_000, k: 2 }.build().unwrap();
        let a = inst.levels(2);
        let b = inst.levels(2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn levels_are_shared_across_instances_of_one_spec() {
        // Two separate builds of the same spec — e.g. the same figure spec
        // appearing in two Session shards — share one peeling.
        let spec = InstanceSpec::Theorem11 { n: 1_500, k: 3 };
        let first = spec.build().unwrap();
        let a = first.levels(3);
        drop(first);
        let second = spec.build().unwrap();
        let b = second.levels(3);
        assert!(Arc::ptr_eq(&a, &b), "peeling recomputed across instances");
    }

    #[test]
    fn build_shared_reuses_one_topology_and_counts_hits() {
        let spec = InstanceSpec::Caterpillar { spine: 41, legs: 2 };
        let a = spec.build_shared().unwrap();
        let b = spec.build_shared().unwrap();
        assert!(Arc::ptr_eq(&a, &b), "instance rebuilt despite the cache");
        let stats = instance_cache_stats();
        assert!(stats.hits >= 1, "{stats:?}");
        assert!(stats.entries >= 1, "{stats:?}");
    }

    #[test]
    fn build_shared_propagates_bad_specs() {
        assert!(InstanceSpec::Path { n: 0 }.build_shared().is_err());
        // Errors are not cached: a later equal lookup still misses.
        assert!(InstanceSpec::Path { n: 0 }.build_shared().is_err());
    }

    #[test]
    fn zero_sizes_rejected() {
        assert!(InstanceSpec::Path { n: 0 }.build().is_err());
        assert!(InstanceSpec::WeightedUnit {
            n: 100,
            delta: 5,
            k: 0
        }
        .build()
        .is_err());
    }

    #[test]
    fn describe_is_stable() {
        let spec = InstanceSpec::WeightedUnit {
            n: 10,
            delta: 5,
            k: 2,
        };
        assert_eq!(spec.describe(), "weighted-unit(n=10,delta=5,k=2)");
    }
}
