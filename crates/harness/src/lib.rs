//! Problem-first execution surface for the paper's algorithms.
//!
//! The paper's landscape (Fig. 2) is a *classification of problems*:
//! every LCL occupies a named cell, and algorithms merely realize cells.
//! This crate gives the reproduction the same shape programmatically:
//!
//! - [`planner`] — the problem-first layer: a declarative
//!   [`ProblemSpec`](lcl_core::problem_spec::ProblemSpec) is classified
//!   (via the decidability crate where decidable, declared metadata
//!   otherwise), matched against solver bids, and concretized into a
//!   runnable [`Plan`] — failures are typed [`PlanError`]s, never panics,
//! - [`Algorithm`] — an object-safe trait implemented by every solver
//!   (name, landscape class, supported instance kinds, a
//!   [`solves`](Algorithm::solves) bid on declarative problems,
//!   `run(&Instance, &RunConfig) -> RunRecord`),
//! - [`resolver()`] — the capability index over all eleven solvers
//!   ([`registry()`] remains as a thin deprecated shim over it),
//! - [`InstanceSpec`] / [`Instance`] — declarative instance descriptions
//!   wrapping the generators (paths, `LowerBoundGraph`,
//!   `WeightedConstruction`) with cached peelings,
//! - [`DynamicSession`] — dynamic-tree churn workloads: scripted batches
//!   of tree surgery ([`ChurnScript`](lcl_core::churn::ChurnScript)) with
//!   incremental dirty-region re-solving for local solvers and
//!   differentially checked full re-solves for global ones,
//! - [`Session`] / [`SessionBuilder`] — seeded, size-swept batch
//!   execution on a std-thread pool, queueing *problems* (presets or raw
//!   specs) and algorithm/instance pairs interchangeably, emitting
//!   serializable [`RunRecord`]s and [`SweepReport`]s.
//!
//! ```
//! use lcl_harness::{registry, InstanceSpec, RunConfig, Session};
//!
//! // Every solver of the landscape is one resolver entry (the ten
//! // paper algorithms plus the table-driven path-LCL solver).
//! assert_eq!(registry().len(), 11);
//!
//! // Run a seeded batch of the Θ(n) baseline over two path sizes.
//! let mut session = Session::new();
//! for n in [500usize, 1_000] {
//!     session.push("two-coloring", InstanceSpec::Path { n }, RunConfig::seeded(7))?;
//! }
//! let records = session.run()?;
//! assert_eq!(records.len(), 2);
//! assert!(records[1].node_averaged > records[0].node_averaged);
//! # Ok::<(), lcl_harness::HarnessError>(())
//! ```
//!
//! The problem-first path — name a problem, let the planner classify it
//! and pick the solver:
//!
//! ```
//! use lcl_harness::Session;
//!
//! let mut builder = Session::builder().size(800);
//! builder.preset("3-coloring")?.preset("bw-all-equal")?;
//! let records = builder.build().run()?;
//! assert_eq!(records.len(), 2);
//! assert!(records.iter().all(|r| r.verified));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adapters;
pub mod algorithm;
pub mod cache;
pub mod dynamic;
pub mod instance;
pub mod plan_cache;
pub mod planner;
pub mod registry;
#[cfg(any(test, feature = "direct-oracle"))]
pub mod replay;
pub mod session;

pub use adapters::{run_on_construction, WeightedRegime};
pub use algorithm::{
    run_timed, Algorithm, RegionRun, RoundBin, RunConfig, RunRecord, SessionScope,
};
pub use cache::CacheStats;
pub use dynamic::{DynamicSession, StepOutcome};
// Engine tuning travels inside `RunConfig`; re-exported so harness
// consumers (the service, benches) need not depend on `lcl_local`.
pub use instance::{
    instance_cache_stats, levels_cache_stats, HarnessError, Instance, InstanceKind, InstanceSpec,
};
pub use lcl_local::engine::{EngineConfig, ShardConfig};
pub use plan_cache::{classify_cached, plan_cache_stats, plan_cached};
pub use planner::{
    canonical_instance, classify, plan, ClassSource, Classification, Plan, PlanError, SolverFit,
};
pub use registry::{find, registry, resolver, Resolver};
#[cfg(any(test, feature = "direct-oracle"))]
pub use replay::{replay_chunked, replay_factory, replay_round_budget, ReplayProtocol};
pub use session::{FitSummary, ScaleConfig, Session, SessionBuilder, SweepPoint, SweepReport};
