//! Unified execution surface for the paper's algorithms.
//!
//! The paper's landscape (Fig. 2) is a *classification*: every
//! problem/algorithm pair occupies a named cell. This crate gives the
//! reproduction the same shape programmatically:
//!
//! - [`Algorithm`] — an object-safe trait implemented by every solver
//!   (name, landscape class, supported instance kinds,
//!   `run(&Instance, &RunConfig) -> RunRecord`),
//! - [`InstanceSpec`] / [`Instance`] — declarative instance descriptions
//!   wrapping the generators (paths, `LowerBoundGraph`,
//!   `WeightedConstruction`) with cached peelings,
//! - [`registry()`] — the static table of all ten algorithms,
//! - [`Session`] — a builder executing seeded, size-swept batches on a
//!   std-thread pool, emitting serializable [`RunRecord`]s and
//!   [`SweepReport`]s.
//!
//! ```
//! use lcl_harness::{registry, InstanceSpec, RunConfig, Session};
//!
//! // Every algorithm of the paper is one registry entry.
//! assert_eq!(registry().len(), 10);
//!
//! // Run a seeded batch of the Θ(n) baseline over two path sizes.
//! let mut session = Session::new();
//! for n in [500usize, 1_000] {
//!     session.push("two-coloring", InstanceSpec::Path { n }, RunConfig::seeded(7))?;
//! }
//! let records = session.run()?;
//! assert_eq!(records.len(), 2);
//! assert!(records[1].node_averaged > records[0].node_averaged);
//! # Ok::<(), lcl_harness::HarnessError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adapters;
pub mod algorithm;
pub mod instance;
pub mod registry;
pub mod replay;
pub mod session;

pub use adapters::{run_on_construction, WeightedRegime};
pub use algorithm::{run_timed, Algorithm, ExecMode, RoundBin, RunConfig, RunRecord};
pub use instance::{HarnessError, Instance, InstanceKind, InstanceSpec};
pub use registry::{find, registry};
pub use replay::{replay_chunked, replay_factory, replay_round_budget, ReplayProtocol};
pub use session::{FitSummary, ScaleConfig, Session, SweepPoint, SweepReport};
