//! Process-wide bounded caches and their observable statistics.
//!
//! Long-running consumers of the harness — above all the `lcld` batch
//! solver service — see the same [`ProblemSpec`](lcl_core::problem_spec::ProblemSpec)s
//! and [`InstanceSpec`](crate::InstanceSpec)s over and over: classifying a
//! repeated problem is a pure function of the spec, and building a
//! repeated instance is a pure function of the spec too. This module is
//! the one implementation those memoizations share: a tiny bounded LRU
//! map kept behind a `Mutex`, with hit/miss counters that every consumer
//! can snapshot as a [`CacheStats`] (the service reports them per
//! `stats` request, the load generator gates on them).
//!
//! The concrete process-wide caches built on it:
//!
//! - the **peeling cache** (`(InstanceSpec, k)` → `Arc<Levels>`, see
//!   [`crate::instance::levels_cache_stats`]),
//! - the **instance cache** (`InstanceSpec` → `Arc<Instance>`, see
//!   [`InstanceSpec::build_shared`](crate::InstanceSpec::build_shared)),
//! - the **plan cache** (`ProblemSpec` → classification outcome, see
//!   [`crate::plan_cache`]).
//!
//! Caching must never change answers: classification and instance
//! construction are deterministic, and the service's differential and
//! soak suites assert bit-identical results cold vs. warm.

use serde::Serialize;

/// A point-in-time snapshot of one process-wide cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (the caller recomputed and inserted).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries before least-recently-used eviction.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction in `0.0..=1.0` (`0.0` when nothing was looked up).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A bounded least-recently-used map with hit/miss accounting.
///
/// Linear scan over a `Vec` — every cache built on this holds a few
/// dozen entries at most, where a scan beats hashing and keeps
/// iteration order (and therefore eviction) fully deterministic.
pub(crate) struct BoundedLru<K, V> {
    /// Most recently used last.
    entries: Vec<(K, V)>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: PartialEq, V: Clone> BoundedLru<K, V> {
    /// An empty cache evicting beyond `capacity` entries.
    pub(crate) fn new(capacity: usize) -> Self {
        BoundedLru {
            entries: Vec::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Counted lookup: refreshes recency on hit, bumps the miss counter
    /// otherwise.
    pub(crate) fn lookup(&mut self, key: &K) -> Option<V> {
        match self.entries.iter().position(|(k, _)| k == key) {
            Some(pos) => {
                self.hits += 1;
                let entry = self.entries.remove(pos);
                let value = entry.1.clone();
                self.entries.push(entry);
                Some(value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Uncounted lookup, for re-checks after a racing recompute: two
    /// threads missing the same key both compute, and the loser must not
    /// count a second miss (or a phantom hit) for the same request.
    pub(crate) fn peek(&mut self, key: &K) -> Option<V> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    }

    /// Inserts (replacing any equal key) and evicts the least recently
    /// used entry beyond capacity.
    pub(crate) fn insert(&mut self, key: K, value: V) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(pos);
        }
        self.entries.push((key, value));
        if self.entries.len() > self.capacity {
            self.entries.remove(0);
        }
    }

    /// Snapshot of the counters.
    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.entries.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_oldest_and_counts() {
        let mut c: BoundedLru<u32, u32> = BoundedLru::new(2);
        assert_eq!(c.lookup(&1), None);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.lookup(&1), Some(10)); // refreshes 1; 2 is now oldest
        c.insert(3, 30); // evicts 2
        assert_eq!(c.lookup(&2), None);
        assert_eq!(c.lookup(&1), Some(10));
        assert_eq!(c.lookup(&3), Some(30));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.capacity), (3, 2, 2, 2));
        assert!(s.hit_rate() > 0.59 && s.hit_rate() < 0.61);
    }

    #[test]
    fn peek_does_not_count() {
        let mut c: BoundedLru<u32, u32> = BoundedLru::new(2);
        c.insert(1, 10);
        assert_eq!(c.peek(&1), Some(10));
        assert_eq!(c.peek(&9), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
    }

    #[test]
    fn insert_replaces_equal_keys() {
        let mut c: BoundedLru<u32, u32> = BoundedLru::new(4);
        c.insert(1, 10);
        c.insert(1, 11);
        assert_eq!(c.lookup(&1), Some(11));
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn empty_hit_rate_is_zero() {
        let c: BoundedLru<u32, u32> = BoundedLru::new(1);
        assert_eq!(c.stats().hit_rate(), 0.0);
    }
}
