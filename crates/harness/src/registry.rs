//! The static registry of all ten algorithms.

use crate::adapters::{
    Apoly, DfreeA, FastDecomposition, GenericColoring, LabelingSolver, LinialColoring,
    RandomizedColoring, TwoColoring, WeightAugmentedSolver, A35,
};
use crate::algorithm::Algorithm;

static REGISTRY: [&dyn Algorithm; 10] = [
    &TwoColoring,
    &LinialColoring,
    &RandomizedColoring,
    &GenericColoring,
    &Apoly,
    &A35,
    &WeightAugmentedSolver,
    &DfreeA,
    &FastDecomposition,
    &LabelingSolver,
];

/// Every algorithm of the paper, one entry per landscape cell the
/// reproduction realizes. Iteration order is stable: the `Θ(n)` baseline
/// first, then the `log*` side, the hierarchical/weighted families, and
/// the decomposition machinery.
#[must_use]
pub fn registry() -> &'static [&'static dyn Algorithm] {
    &REGISTRY
}

/// Looks an algorithm up by its registry name.
#[must_use]
pub fn find(name: &str) -> Option<&'static dyn Algorithm> {
    registry().iter().copied().find(|a| a.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_ten_entries() {
        assert_eq!(registry().len(), 10);
    }

    #[test]
    fn find_by_name() {
        assert!(find("apoly").is_some());
        assert!(find("a35").is_some());
        assert!(find("no-such-algorithm").is_none());
    }

    #[test]
    fn every_entry_declares_support() {
        for algo in registry() {
            assert!(
                !algo.supported_kinds().is_empty(),
                "{} supports nothing",
                algo.name()
            );
            let smallest = algo.smallest_spec();
            assert!(
                algo.supports(smallest.kind()),
                "{}'s smallest spec has unsupported kind",
                algo.name()
            );
        }
    }
}
