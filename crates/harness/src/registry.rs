//! The capability-indexed solver registry.
//!
//! Since ISSUE 5 the registry is problem-first: the [`Resolver`] owns
//! every solver in the workspace and matches declarative
//! [`ProblemSpec`]s against the bids each [`Algorithm`] places via
//! [`Algorithm::solves`]. The historical [`registry()`] function remains
//! as a thin shim over the resolver's solver table so existing callers
//! (figure code, sweeps, tests) compile and behave unchanged while they
//! migrate to [`resolver()`] / the planner.

use crate::adapters::{
    Apoly, DfreeA, FastDecomposition, GenericColoring, LabelingSolver, LinialColoring,
    PathLclSolver, RandomizedColoring, TwoColoring, WeightAugmentedSolver, A35,
};
use crate::algorithm::Algorithm;
use crate::planner::{PlanError, SolverFit};
use lcl_core::problem_spec::ProblemSpec;

/// Every solver in the workspace, in stable iteration order: the `Θ(n)`
/// baseline first, then the `log*` side, the hierarchical/weighted
/// families, the decomposition machinery, and finally the table-driven
/// generic path-LCL solver the problem-first surface added.
static SOLVERS: [&dyn Algorithm; 11] = [
    &TwoColoring,
    &LinialColoring,
    &RandomizedColoring,
    &GenericColoring,
    &Apoly,
    &A35,
    &WeightAugmentedSolver,
    &DfreeA,
    &FastDecomposition,
    &LabelingSolver,
    &PathLclSolver,
];

static RESOLVER: Resolver = Resolver { solvers: &SOLVERS };

/// The capability index over all registered solvers: given a declarative
/// problem, collects every algorithm's [`SolverFit`] bid and resolves the
/// best one.
///
/// ```
/// use lcl_harness::resolver;
/// use lcl_core::problem_spec::ProblemSpec;
///
/// let problem = ProblemSpec::preset("3-coloring").expect("known preset");
/// let (solver, fit) = resolver().resolve(&problem)?;
/// assert_eq!(solver.name(), "linial");
/// assert!(fit.score > 0);
/// # Ok::<(), lcl_harness::PlanError>(())
/// ```
pub struct Resolver {
    solvers: &'static [&'static dyn Algorithm],
}

impl Resolver {
    /// Every registered solver, in stable order.
    #[must_use]
    pub fn algorithms(&self) -> &'static [&'static dyn Algorithm] {
        self.solvers
    }

    /// All bids on `problem`, in solver order (empty when nothing fits).
    #[must_use]
    pub fn bids(&self, problem: &ProblemSpec) -> Vec<(&'static dyn Algorithm, SolverFit)> {
        self.solvers
            .iter()
            .filter_map(|&algo| algo.solves(problem).map(|fit| (algo, fit)))
            .collect()
    }

    /// Resolves the best-fit solver for `problem`: the bid with the
    /// highest preference score (ties broken by solver order, which puts
    /// the specialized adapters before the generic fallback).
    ///
    /// # Errors
    ///
    /// [`PlanError::NoSolver`] when no registered algorithm bids.
    pub fn resolve(
        &self,
        problem: &ProblemSpec,
    ) -> Result<(&'static dyn Algorithm, SolverFit), PlanError> {
        self.bids(problem)
            .into_iter()
            .reduce(|best, cand| {
                if cand.1.score > best.1.score {
                    cand
                } else {
                    best
                }
            })
            .ok_or_else(|| PlanError::NoSolver(problem.describe()))
    }

    /// Looks a solver up by its registry name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&'static dyn Algorithm> {
        self.solvers.iter().copied().find(|a| a.name() == name)
    }
}

/// The workspace's capability-indexed solver resolver — the problem-first
/// entry point the planner and [`SessionBuilder`](crate::SessionBuilder)
/// route through.
#[must_use]
pub fn resolver() -> &'static Resolver {
    &RESOLVER
}

/// Every algorithm of the landscape, one entry per realized cell.
///
/// *Deprecated shim*: this is now a thin view over
/// [`resolver()::algorithms()`](Resolver::algorithms); new code should
/// plan problems through [`resolver()`] / `lcl_harness::planner` instead
/// of picking algorithms by hand. Kept so downstream figure code
/// migrates incrementally — iteration order is unchanged, with the
/// table-driven `path-lcl` solver appended after the original ten.
#[must_use]
pub fn registry() -> &'static [&'static dyn Algorithm] {
    resolver().algorithms()
}

/// Looks an algorithm up by its registry name.
#[must_use]
pub fn find(name: &str) -> Option<&'static dyn Algorithm> {
    resolver().find(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_eleven_entries() {
        assert_eq!(registry().len(), 11);
        assert_eq!(registry().len(), resolver().algorithms().len());
    }

    #[test]
    fn find_by_name() {
        assert!(find("apoly").is_some());
        assert!(find("a35").is_some());
        assert!(find("path-lcl").is_some());
        assert!(find("no-such-algorithm").is_none());
    }

    #[test]
    fn every_entry_declares_support() {
        for algo in registry() {
            assert!(
                !algo.supported_kinds().is_empty(),
                "{} supports nothing",
                algo.name()
            );
            let smallest = algo.smallest_spec();
            assert!(
                algo.supports(smallest.kind()),
                "{}'s smallest spec has unsupported kind",
                algo.name()
            );
        }
    }

    #[test]
    fn resolver_rejects_unbid_problems() {
        // A tree-degree BW problem no adapter bids on.
        let table = lcl_core::problem_spec::BwTable::new(2, 3, vec![vec![0]], vec![vec![1]]);
        let err = resolver()
            .resolve(&ProblemSpec::Bw(table))
            .map(|(algo, fit)| (algo.name(), fit))
            .unwrap_err();
        assert!(matches!(err, PlanError::NoSolver(_)), "{err}");
    }

    #[test]
    fn specialists_outbid_the_generic_fallback() {
        for (preset, specialist) in [
            ("2-coloring", "two-coloring"),
            ("3-coloring", "linial"),
            ("5-coloring", "linial"),
        ] {
            let problem = ProblemSpec::preset(preset).unwrap();
            let bids = resolver().bids(&problem);
            assert!(
                bids.iter().any(|(a, _)| a.name() == "path-lcl"),
                "{preset}: generic solver should also bid"
            );
            let (winner, _) = resolver().resolve(&problem).unwrap();
            assert_eq!(winner.name(), specialist, "{preset}");
        }
    }
}
