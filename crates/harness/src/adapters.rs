//! [`Algorithm`] implementations for the paper's algorithms — thin
//! [`Protocol`] factories over the chunked LOCAL engine.
//!
//! Every adapter executes natively on the chunked engine; there is no
//! structural fallback path. The solvers whose round structure the LOCAL
//! model forces to be discovered online (`two-coloring`, `linial`,
//! `randomized`, rigid `path-lcl` tables) run their genuine
//! message-passing protocols from [`lcl_algorithms::protocols`]; the
//! solvers whose outputs are a legitimate port-number/ID-model
//! precomputation first *solve* the instance structurally (deriving the
//! paper's scheduling parameters from the spec), verify the typed output
//! against the matching problem verifier, and then execute the plan as
//! [`ScheduledCast`](lcl_algorithms::protocols::ScheduledCast) machines.
//! Either way the engine-observed outputs and termination rounds become
//! the [`RunRecord`], stamped `engine = "chunked"` (or `"sharded"` when
//! the config routes the run through the out-of-core executor).
//!
//! Since ISSUE 5 every adapter also *bids* on declarative problems via
//! [`Algorithm::solves`]: a specialized adapter bids high on exactly the
//! family it implements, and the table-driven [`PathLclSolver`] bids low
//! on any path-expressible table, so the resolver always prefers the
//! specialist and falls back to the generic solver otherwise.

use crate::algorithm::{Algorithm, RegionOutcome, RegionRun, RunConfig, RunRecord, SessionScope};
use crate::instance::{HarnessError, Instance, InstanceKind, InstanceSpec};
use crate::planner::SolverFit;
use lcl_algorithms::a35::a35;
use lcl_algorithms::apoly::apoly;
use lcl_algorithms::dfree_a::algorithm_a;
use lcl_algorithms::fast_decomposition::fast_dfree_standalone;
use lcl_algorithms::generic_coloring::generic_coloring_masked;
use lcl_algorithms::labeling_solver::solve_hierarchical_labeling;
use lcl_algorithms::linial::linial_round_count;
use lcl_algorithms::path_lcl_solver::{solve_path_lcl, verify_path_lcl, PathSolveClass};
use lcl_algorithms::protocols::linial::{cascade_space, LinialCascade};
use lcl_algorithms::protocols::path_lcl::PathLclProtocol;
use lcl_algorithms::protocols::randomized::RandomizedColoring as RandomizedProtocol;
use lcl_algorithms::protocols::two_coloring::WaveTwoColoring;
use lcl_algorithms::protocols::{plan_round_budget, scheduled_cast_factory};
use lcl_algorithms::weight_augmented_solver::solve_weight_augmented;
use lcl_algorithms::AlgorithmRun;
use lcl_core::coloring::{ColorLabel, HierarchicalColoring, Variant};
use lcl_core::dfree::{DFreeWeight, DfreeInput, DfreeOutput};
use lcl_core::labeling::{HierarchicalLabeling, LabelingOutput};
use lcl_core::landscape::ComplexityClass;
use lcl_core::problem::LclProblem;
use lcl_core::problem_spec::{PathTable, ProblemSpec};
use lcl_core::weight_augmented::WeightAugmented;
use lcl_core::weight_augmented::{AugmentedOutput, SecondaryOutput};
use lcl_core::weighted::{WeightedColoring, WeightedOutput};
use lcl_decidability::path_lcl::{PathClass, PathLcl};
use lcl_graph::weighted::WeightedConstruction;
use lcl_graph::{NodeMask, Tree};
use lcl_local::engine::{
    run_sync_region, run_sync_with, EngineConfig, NodeContext, Protocol, SyncOutcome,
};
use lcl_local::identifiers::Ids;
use lcl_local::packed::PackableMessage;
use lcl_shard::run_sharded;
use std::sync::Arc;

/// Which scheduling regime drives the phase parameters on a weighted
/// construction: `γ_i = n^{α_i}` (polynomial, `A_poly`) or
/// `γ_i = (log* n)^{α_i}` (`log*`, the `Π^{3.5}` algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightedRegime {
    /// `A_poly` on `Π^{2.5}` with `x = log(Δ-d-1)/log(Δ-1)`.
    Poly,
    /// The `Π^{3.5}` algorithm with `x' = log(Δ-d+1)/log(Δ-1)`.
    LogStar,
}

/// Runs the weighted-construction algorithm of the given regime with the
/// paper's optimal phase parameters — the single generic replacement for
/// the former `apoly_on_construction` / `a35_on_construction` twins.
#[must_use]
pub fn run_on_construction(
    construction: &WeightedConstruction,
    k: usize,
    d: usize,
    ids: &Ids,
    regime: WeightedRegime,
) -> AlgorithmRun<WeightedOutput> {
    run_on_construction_scaled(construction, k, d, ids, regime, 1.0)
}

/// Like [`run_on_construction`], scaling every `γ_i` by `multiplier`
/// (Corollary 31 ablations; `1.0` is exact identity).
#[must_use]
pub fn run_on_construction_scaled(
    construction: &WeightedConstruction,
    k: usize,
    d: usize,
    ids: &Ids,
    regime: WeightedRegime,
    multiplier: f64,
) -> AlgorithmRun<WeightedOutput> {
    let n = construction.tree().node_count();
    let delta = construction.delta();
    let gammas = match regime {
        WeightedRegime::Poly => {
            let x = lcl_core::landscape::efficiency_x(delta, d);
            lcl_core::params::poly_gammas(n, x, k)
        }
        WeightedRegime::LogStar => {
            let x_prime = lcl_core::landscape::efficiency_x_prime(delta, d).min(1.0);
            lcl_core::params::log_star_gammas(n, x_prime, k)
        }
    };
    let gammas = crate::algorithm::scale_gammas(&gammas, multiplier);
    match regime {
        WeightedRegime::Poly => apoly(
            construction.tree(),
            construction.kinds(),
            k,
            d,
            &gammas,
            ids,
        ),
        WeightedRegime::LogStar => a35(
            construction.tree(),
            construction.kinds(),
            k,
            d,
            &gammas,
            ids,
        ),
    }
}

/// The `(Δ, d, k)` a weighted adapter's theoretical class is computed
/// at: the planned problem's own parameters when the config carries a
/// matching-regime [`ProblemSpec::Weighted`], else the adapter's
/// default-spec parameters with `d` clamped into the exponent formulas'
/// `Δ ≥ d + 3` domain (the hook must be total over arbitrary configs).
fn weighted_class_params(
    cfg: &RunConfig,
    regime: lcl_core::problem_spec::ProblemRegime,
    default_delta: usize,
    default_d: usize,
) -> (usize, usize, usize) {
    if let Some(ProblemSpec::Weighted {
        regime: r,
        delta,
        d,
        k,
    }) = &cfg.problem
    {
        if *r == regime {
            return (*delta, *d, *k);
        }
    }
    let d = cfg
        .d
        .unwrap_or(default_d)
        .clamp(1, default_delta.saturating_sub(3).max(1));
    (default_delta, d, cfg.k.unwrap_or(2))
}

/// Node-averaged rounds over the waiting mass of a weighted run: nodes
/// that do not output `Decline`/`Connect` (the Theorem 2 quantity).
fn weighted_waiting(run: &AlgorithmRun<WeightedOutput>) -> f64 {
    let waiting: u128 = run
        .outputs
        .iter()
        .zip(&run.rounds)
        .filter(|(o, _)| !matches!(o, WeightedOutput::Decline | WeightedOutput::Connect))
        .map(|(_, &r)| r as u128)
        .sum();
    waiting as f64 / run.len() as f64
}

// ---------------------------------------------------------------------------
// Canonical u64 label encodings.
//
// Every adapter reduces its output type to a `u64` label (injective per
// algorithm), so records are comparable across engines and precomputed
// plans travel through the LOCAL engine as plain numeric messages.
// Encodings are stable: golden-record fixtures depend on them.
// ---------------------------------------------------------------------------

fn color_code(c: ColorLabel) -> u64 {
    match c {
        ColorLabel::White => 0,
        ColorLabel::Black => 1,
        ColorLabel::Exempt => 2,
        ColorLabel::Decline => 3,
        ColorLabel::Red => 4,
        ColorLabel::Green => 5,
        ColorLabel::Yellow => 6,
    }
}

fn weighted_code(o: &WeightedOutput) -> u64 {
    match o {
        WeightedOutput::Active(c) => color_code(*c),
        WeightedOutput::Decline => 16,
        WeightedOutput::Connect => 17,
        WeightedOutput::Copy(c) => 32 + color_code(*c),
    }
}

fn dfree_code(o: DfreeOutput) -> u64 {
    match o {
        DfreeOutput::Decline => 0,
        DfreeOutput::Connect => 1,
        DfreeOutput::Copy => 2,
    }
}

fn labeling_code(o: &LabelingOutput) -> u64 {
    let port = o.out_port.map_or(0, |p| p as u64 + 1);
    (u64::from(o.label.order_key()) << 32) | port
}

fn augmented_code(o: &AugmentedOutput) -> u64 {
    match o {
        AugmentedOutput::Active(c) => color_code(*c),
        AugmentedOutput::Weight {
            labeling,
            secondary,
        } => {
            let sec = match secondary {
                SecondaryOutput::Color(c) => color_code(*c),
                SecondaryOutput::Decline => 15,
            };
            (1 << 60) | (labeling_code(labeling) << 8) | sec
        }
    }
}

/// Runs a protocol factory natively on the chunked engine — monolithic by
/// default, or the partitioned out-of-core executor when the config
/// carries a [`ShardConfig`](lcl_local::engine::ShardConfig) (the two are
/// bit-identical; the shard differential suite pins it). An engine error
/// (e.g. a blown round budget) is an engine or adapter bug, never a
/// caller error.
fn execute_protocol<P, F>(
    algo: &dyn Algorithm,
    tree: &Tree,
    ids: &Ids,
    engine: &EngineConfig,
    factory: F,
    budget: u64,
) -> Result<SyncOutcome<P::Output>, HarnessError>
where
    P: Protocol,
    P::Message: PackableMessage,
    F: FnMut(&NodeContext) -> P,
{
    let result = if engine.shard.is_some() {
        run_sharded(tree, ids, factory, budget, engine).map_err(|e| e.to_string())
    } else {
        run_sync_with(tree, ids, factory, budget, engine).map_err(|e| e.to_string())
    };
    result.map_err(|e| HarnessError::EngineDivergence {
        algorithm: algo.name().to_string(),
        detail: format!("chunked engine failed to complete the run: {e}"),
    })
}

/// Assembles the production record from an engine-observed outcome. The
/// record names the execution path that observed it: `"chunked"` (the
/// monolithic engine) or `"sharded"` (the out-of-core executor) — the
/// two are bit-identical, so the tag is telemetry, never semantics.
fn record_outcome(
    algo: &dyn Algorithm,
    instance: &Instance,
    cfg: &RunConfig,
    labels: Vec<u64>,
    rounds: Vec<u64>,
    waiting: Option<f64>,
    peak_arena_bytes: u64,
) -> RunRecord {
    let engine = if cfg.engine.shard.is_some() {
        "sharded"
    } else {
        "chunked"
    };
    RunRecord::from_rounds(
        algo.name(),
        instance.spec(),
        cfg.seed,
        labels,
        rounds,
        waiting,
        cfg.verify,
    )
    .on_engine(engine)
    .with_peak_arena_bytes(peak_arena_bytes)
}

/// Checks an engine outcome against the structural plan it executed;
/// divergence means an engine bug, surfaced as an error rather than
/// silently recorded.
fn check_plan(
    algo: &dyn Algorithm,
    outcome: &SyncOutcome<u64>,
    labels: &[u64],
    rounds: &[u64],
) -> Result<(), HarnessError> {
    if outcome.outputs != labels || outcome.stats.as_slice() != rounds {
        return Err(HarnessError::EngineDivergence {
            algorithm: algo.name().to_string(),
            detail: "engine outcome diverges from the solved plan".to_string(),
        });
    }
    Ok(())
}

/// Executes a precomputed plan (per-node labels and termination rounds)
/// natively as `ScheduledCast` machines on the chunked engine and builds
/// the record from the engine-observed outcome. The plan-driven adapters
/// funnel through here.
fn run_plan(
    algo: &dyn Algorithm,
    instance: &Instance,
    cfg: &RunConfig,
    labels: Vec<u64>,
    rounds: Vec<u64>,
    waiting: Option<f64>,
) -> Result<RunRecord, HarnessError> {
    let budget = plan_round_budget(&rounds);
    let labels = Arc::new(labels);
    let rounds = Arc::new(rounds);
    let ids = Ids::sequential(instance.node_count());
    let outcome = execute_protocol(
        algo,
        instance.tree(),
        &ids,
        &cfg.engine,
        scheduled_cast_factory(labels.clone(), rounds.clone()),
        budget,
    )?;
    check_plan(algo, &outcome, &labels, &rounds)?;
    let rounds = outcome.stats.as_slice().to_vec();
    Ok(record_outcome(
        algo,
        instance,
        cfg,
        outcome.outputs,
        rounds,
        waiting,
        outcome.peak_arena_bytes,
    ))
}

fn verification_error(algorithm: &str, violation: impl std::fmt::Display) -> HarnessError {
    HarnessError::VerificationFailed {
        algorithm: algorithm.to_string(),
        violation: violation.to_string(),
    }
}

fn ensure_supported(algo: &dyn Algorithm, instance: &Instance) -> Result<(), HarnessError> {
    if algo.supports(instance.kind()) {
        Ok(())
    } else {
        Err(HarnessError::UnsupportedInstance {
            algorithm: algo.name().to_string(),
            kind: instance.kind(),
        })
    }
}

/// Checks that adjacent nodes carry distinct colors.
fn check_proper<T: PartialEq + std::fmt::Debug>(tree: &Tree, colors: &[T]) -> Result<(), String> {
    for (u, v) in tree.edges() {
        if colors[u] == colors[v] {
            return Err(format!(
                "edge ({u}, {v}) is monochromatic ({:?})",
                colors[u]
            ));
        }
    }
    Ok(())
}

/// The rigid `Θ(n)` baseline: deterministic 2-coloring of paths.
pub struct TwoColoring;

impl Algorithm for TwoColoring {
    fn name(&self) -> &'static str {
        "two-coloring"
    }

    fn landscape_class(&self) -> &'static str {
        "Θ(n)"
    }

    fn node_averaged_class(&self, _cfg: &RunConfig) -> ComplexityClass {
        // Lemma 16: the rigid 2-coloring forces Θ(n) rounds for a
        // constant fraction of the path.
        ComplexityClass::poly(1.0)
    }

    fn paper_ref(&self) -> &'static str {
        "Lemma 16 / Corollary 60"
    }

    fn supported_kinds(&self) -> &'static [InstanceKind] {
        &[InstanceKind::Path]
    }

    fn default_spec(&self, n: usize, _cfg: &RunConfig) -> InstanceSpec {
        InstanceSpec::Path { n }
    }

    fn smallest_spec(&self) -> InstanceSpec {
        InstanceSpec::Path { n: 16 }
    }

    fn solves(&self, problem: &ProblemSpec) -> Option<SolverFit> {
        let c = problem.path_table()?.as_proper_coloring()?;
        (c == 2).then(|| SolverFit::new(90, "the rigid Θ(n) 2-coloring baseline"))
    }

    fn run(&self, instance: &Instance, cfg: &RunConfig) -> Result<RunRecord, HarnessError> {
        ensure_supported(self, instance)?;
        let n = instance.node_count();
        let ids = Ids::random(n, cfg.seed);
        let outcome = execute_protocol(
            self,
            instance.tree(),
            &ids,
            &cfg.engine,
            |_| WaveTwoColoring::new(),
            n as u64 + 2,
        )?;
        if cfg.verify {
            check_proper(instance.tree(), &outcome.outputs)
                .map_err(|e| verification_error(self.name(), e))?;
        }
        let labels = outcome.outputs.iter().map(|&c| color_code(c)).collect();
        let rounds = outcome.stats.as_slice().to_vec();
        Ok(record_outcome(
            self,
            instance,
            cfg,
            labels,
            rounds,
            None,
            outcome.peak_arena_bytes,
        ))
    }
}

/// Linial's `O(log* n)` 3-coloring of paths by iterated color reduction.
pub struct LinialColoring;

impl Algorithm for LinialColoring {
    fn name(&self) -> &'static str {
        "linial"
    }

    fn landscape_class(&self) -> &'static str {
        "Θ(log* n)"
    }

    fn node_averaged_class(&self, _cfg: &RunConfig) -> ComplexityClass {
        // Every node runs the full color-reduction cascade: node-averaged
        // equals worst-case, Θ(log* n).
        ComplexityClass::log_star()
    }

    fn paper_ref(&self) -> &'static str {
        "Section 2 (Linial's algorithm)"
    }

    fn supported_kinds(&self) -> &'static [InstanceKind] {
        &[InstanceKind::Path]
    }

    fn default_spec(&self, n: usize, _cfg: &RunConfig) -> InstanceSpec {
        InstanceSpec::Path { n }
    }

    fn smallest_spec(&self) -> InstanceSpec {
        InstanceSpec::Path { n: 16 }
    }

    fn solves(&self, problem: &ProblemSpec) -> Option<SolverFit> {
        // A proper 3-coloring is a valid proper c-coloring for any c ≥ 3.
        let c = problem.path_table()?.as_proper_coloring()?;
        (c >= 3).then(|| SolverFit::new(90, "deterministic Θ(log* n) coloring (c ≥ 3)"))
    }

    fn churn_radius(&self, scope: &SessionScope) -> Option<u64> {
        // The cascade runs in lockstep for a number of rounds fixed by the
        // frozen id space: a node's trajectory depends only on ids within
        // that many hops.
        Some(linial_round_count(scope.space, 2) + 2)
    }

    fn run_region(&self, region: &RegionRun<'_>) -> Option<RegionOutcome> {
        let ids = Ids::from_vec(region.ids.to_vec());
        let space = region.scope.space;
        let budget = linial_round_count(space, 2) + 2;
        let result = run_sync_region(
            region.tree,
            &ids,
            |c: &NodeContext| LinialCascade::new(c.id, space, 2),
            budget,
            region.engine,
            region.ambient_n,
        )
        .map(|o| {
            let rounds = o.stats.as_slice().to_vec();
            (o.outputs, rounds)
        })
        .map_err(|e| HarnessError::EngineDivergence {
            algorithm: self.name().to_string(),
            detail: format!("region run failed: {e}"),
        });
        Some(result)
    }

    fn run(&self, instance: &Instance, cfg: &RunConfig) -> Result<RunRecord, HarnessError> {
        ensure_supported(self, instance)?;
        // Under a dynamic-session scope, ids and the cascade space are
        // frozen by the session so that incremental region runs and this
        // full baseline see identical trajectories.
        let (ids, space) = match &cfg.scope {
            Some(scope) => (Ids::from_vec(scope.ids.as_ref().clone()), scope.space),
            None => {
                let ids = Ids::random(instance.node_count(), cfg.seed);
                let space = cascade_space(&ids, 2);
                (ids, space)
            }
        };
        let budget = linial_round_count(space, 2) + 2;
        let outcome = execute_protocol(
            self,
            instance.tree(),
            &ids,
            &cfg.engine,
            |c| LinialCascade::new(c.id, space, 2),
            budget,
        )?;
        if cfg.verify {
            check_proper(instance.tree(), &outcome.outputs)
                .map_err(|e| verification_error(self.name(), e))?;
            if let Some(&c) = outcome.outputs.iter().find(|&&c| c > 2) {
                return Err(verification_error(
                    self.name(),
                    format!("color {c} outside the 3-color palette"),
                ));
            }
        }
        let rounds = outcome.stats.as_slice().to_vec();
        Ok(record_outcome(
            self,
            instance,
            cfg,
            outcome.outputs,
            rounds,
            None,
            outcome.peak_arena_bytes,
        ))
    }
}

/// Randomized 3-coloring of paths: `O(1)` expected node-averaged rounds —
/// the randomized side of Fig. 2.
pub struct RandomizedColoring;

impl Algorithm for RandomizedColoring {
    fn name(&self) -> &'static str {
        "randomized"
    }

    fn landscape_class(&self) -> &'static str {
        "O(1) node-avg (randomized)"
    }

    fn node_averaged_class(&self, _cfg: &RunConfig) -> ComplexityClass {
        ComplexityClass::Constant
    }

    fn paper_ref(&self) -> &'static str {
        "Fig. 1/2 ([BBK+23b])"
    }

    fn supported_kinds(&self) -> &'static [InstanceKind] {
        &[InstanceKind::Path]
    }

    fn default_spec(&self, n: usize, _cfg: &RunConfig) -> InstanceSpec {
        InstanceSpec::Path { n }
    }

    fn smallest_spec(&self) -> InstanceSpec {
        InstanceSpec::Path { n: 16 }
    }

    fn solves(&self, problem: &ProblemSpec) -> Option<SolverFit> {
        let c = problem.path_table()?.as_proper_coloring()?;
        (c >= 3).then(|| SolverFit::new(60, "randomized O(1) node-averaged coloring"))
    }

    fn churn_radius(&self, scope: &SessionScope) -> Option<u64> {
        // Coins are keyed on persistent ids and the budget on the
        // monotone n_hint, so a node's trajectory depends only on its
        // budget-radius ball.
        Some(RandomizedProtocol::round_budget(scope.n_hint))
    }

    fn run_region(&self, region: &RegionRun<'_>) -> Option<RegionOutcome> {
        let ids = Ids::from_vec(region.ids.to_vec());
        let seed = region.seed;
        let budget = RandomizedProtocol::round_budget(region.scope.n_hint.max(region.ambient_n));
        let result = run_sync_region(
            region.tree,
            &ids,
            |c: &NodeContext| RandomizedProtocol::new(seed, c.id as usize),
            budget,
            region.engine,
            region.ambient_n,
        )
        .map(|o| {
            let labels = o.outputs.iter().map(|&c| color_code(c)).collect();
            let rounds = o.stats.as_slice().to_vec();
            (labels, rounds)
        })
        .map_err(|e| HarnessError::EngineDivergence {
            algorithm: self.name().to_string(),
            detail: format!("region run failed: {e}"),
        });
        Some(result)
    }

    fn run(&self, instance: &Instance, cfg: &RunConfig) -> Result<RunRecord, HarnessError> {
        ensure_supported(self, instance)?;
        let n = instance.node_count();
        // Coins are drawn per *id*: for static runs ids are sequential so
        // this equals the historical per-node keying; under a
        // dynamic-session scope the persistent ids keep each surviving
        // node's coin stream stable across churn. The round budget uses
        // the monotone n_hint so a shrinking tree cannot lower it below
        // rounds legitimately reached before the shrink.
        let (ids, budget_n) = match &cfg.scope {
            Some(scope) => (
                Ids::from_vec(scope.ids.as_ref().clone()),
                scope.n_hint.max(n),
            ),
            None => (Ids::sequential(n), n),
        };
        let seed = cfg.seed;
        let outcome = execute_protocol(
            self,
            instance.tree(),
            &ids,
            &cfg.engine,
            |c| RandomizedProtocol::new(seed, c.id as usize),
            RandomizedProtocol::round_budget(budget_n),
        )?;
        if cfg.verify {
            check_proper(instance.tree(), &outcome.outputs)
                .map_err(|e| verification_error(self.name(), e))?;
        }
        let labels = outcome.outputs.iter().map(|&c| color_code(c)).collect();
        let rounds = outcome.stats.as_slice().to_vec();
        Ok(record_outcome(
            self,
            instance,
            cfg,
            labels,
            rounds,
            None,
            outcome.peak_arena_bytes,
        ))
    }
}

/// The generic `k`-hierarchical 3½-coloring (Section 4.1) on Theorem 11
/// lower-bound instances, with the Theorem 11 phase parameters.
pub struct GenericColoring;

impl Algorithm for GenericColoring {
    fn name(&self) -> &'static str {
        "generic-coloring"
    }

    fn landscape_class(&self) -> &'static str {
        "Θ((log* n)^{1/2^{k-1}})"
    }

    fn node_averaged_class(&self, cfg: &RunConfig) -> ComplexityClass {
        let k = cfg.k.unwrap_or(2);
        ComplexityClass::log_star_pow(1.0 / (1u64 << (k - 1)) as f64)
    }

    fn paper_ref(&self) -> &'static str {
        "Theorem 11 / Section 4.1"
    }

    fn supported_kinds(&self) -> &'static [InstanceKind] {
        &[InstanceKind::LowerBound]
    }

    fn default_spec(&self, n: usize, cfg: &RunConfig) -> InstanceSpec {
        InstanceSpec::Theorem11 {
            n,
            k: cfg.k.unwrap_or(2),
        }
    }

    fn smallest_spec(&self) -> InstanceSpec {
        InstanceSpec::Theorem11 { n: 400, k: 2 }
    }

    fn solves(&self, problem: &ProblemSpec) -> Option<SolverFit> {
        matches!(problem, ProblemSpec::HierarchicalColoring { .. })
            .then(|| SolverFit::new(90, "the Theorem 11 hierarchical 3½-coloring"))
    }

    fn run(&self, instance: &Instance, cfg: &RunConfig) -> Result<RunRecord, HarnessError> {
        ensure_supported(self, instance)?;
        let k = instance.spec().hierarchy_k().ok_or_else(|| {
            HarnessError::BadSpec(format!(
                "`{}` needs an instance spec carrying a hierarchy depth k",
                self.name()
            ))
        })?;
        let n = instance.node_count();
        let ids = Ids::random(n, cfg.seed);
        let gammas = lcl_core::params::theorem11_gammas(n.max(instance.requested_n()), k);
        let gammas = cfg.scale_gammas(&gammas);
        let mask = NodeMask::full(n);
        let levels = instance.levels(k);
        let masked = generic_coloring_masked(
            instance.tree(),
            &mask,
            &levels,
            Variant::ThreeHalf,
            &gammas,
            &ids,
        );
        let outputs: Vec<_> = masked
            .outputs
            .into_iter()
            .map(|o| o.unwrap_or_else(|| unreachable!("a full mask decides everywhere")))
            .collect();
        if cfg.verify {
            HierarchicalColoring::new(k, Variant::ThreeHalf)
                .verify(instance.tree(), &vec![(); n], &outputs)
                .map_err(|e| verification_error(self.name(), e))?;
        }
        let labels = outputs.iter().map(|&c| color_code(c)).collect();
        run_plan(self, instance, cfg, labels, masked.rounds, None)
    }
}

/// Shared shim for the two weighted-construction algorithms.
fn run_weighted(
    algo: &dyn Algorithm,
    variant: Variant,
    regime: WeightedRegime,
    instance: &Instance,
    cfg: &RunConfig,
) -> Result<RunRecord, HarnessError> {
    ensure_supported(algo, instance)?;
    let construction = instance.construction().ok_or_else(|| {
        HarnessError::BadSpec(format!(
            "`{}` needs a weighted instance carrying a construction",
            algo.name()
        ))
    })?;
    let k = instance.spec().hierarchy_k().ok_or_else(|| {
        HarnessError::BadSpec(format!(
            "`{}` needs an instance spec carrying a hierarchy depth k",
            algo.name()
        ))
    })?;
    let d = instance.spec().decline_d().or(cfg.d).ok_or_else(|| {
        HarnessError::BadSpec(format!(
            "`{}` needs a decline budget d (spec or RunConfig)",
            algo.name()
        ))
    })?;
    let ids = Ids::random(instance.node_count(), cfg.seed);
    let run = run_on_construction_scaled(construction, k, d, &ids, regime, cfg.gamma_multiplier);
    if cfg.verify {
        let problem = WeightedColoring::new(variant, construction.delta(), d, k)
            .map_err(HarnessError::BadSpec)?;
        problem
            .verify(instance.tree(), construction.kinds(), &run.outputs)
            .map_err(|e| verification_error(algo.name(), e))?;
    }
    let waiting = weighted_waiting(&run);
    let labels = run.outputs.iter().map(weighted_code).collect();
    run_plan(algo, instance, cfg, labels, run.rounds, Some(waiting))
}

/// `A_poly` for `Π^{2.5}_{Δ,d,k}` (Section 7.1).
pub struct Apoly;

impl Algorithm for Apoly {
    fn name(&self) -> &'static str {
        "apoly"
    }

    fn landscape_class(&self) -> &'static str {
        "Θ(n^{α₁(x)})"
    }

    fn node_averaged_class(&self, cfg: &RunConfig) -> ComplexityClass {
        // The Theorem 2 exponent at the planned problem's (Δ, d, k), or
        // the default-spec parameters (Δ = 5) otherwise.
        let (delta, d, k) =
            weighted_class_params(cfg, lcl_core::problem_spec::ProblemRegime::Poly, 5, 2);
        let x = lcl_core::landscape::efficiency_x(delta, d);
        ComplexityClass::poly(lcl_core::landscape::alpha1_poly(x, k))
    }

    fn paper_ref(&self) -> &'static str {
        "Theorems 2–3 / Section 7.1"
    }

    fn supported_kinds(&self) -> &'static [InstanceKind] {
        &[InstanceKind::Weighted]
    }

    fn default_spec(&self, n: usize, cfg: &RunConfig) -> InstanceSpec {
        InstanceSpec::WeightedPoly {
            n,
            delta: 5,
            d: cfg.d.unwrap_or(2),
            k: cfg.k.unwrap_or(2),
        }
    }

    fn smallest_spec(&self) -> InstanceSpec {
        InstanceSpec::WeightedPoly {
            n: 2_000,
            delta: 5,
            d: 2,
            k: 2,
        }
    }

    fn solves(&self, problem: &ProblemSpec) -> Option<SolverFit> {
        matches!(
            problem,
            ProblemSpec::Weighted {
                regime: lcl_core::problem_spec::ProblemRegime::Poly,
                ..
            }
        )
        .then(|| SolverFit::new(90, "A_poly on the Π^{2.5} weighted family"))
    }

    fn run(&self, instance: &Instance, cfg: &RunConfig) -> Result<RunRecord, HarnessError> {
        run_weighted(self, Variant::TwoHalf, WeightedRegime::Poly, instance, cfg)
    }
}

/// The `Π^{3.5}_{Δ,d,k}` algorithm (Section 8.2).
pub struct A35;

impl Algorithm for A35 {
    fn name(&self) -> &'static str {
        "a35"
    }

    fn landscape_class(&self) -> &'static str {
        "O((log* n)^{α₁(x')})"
    }

    fn node_averaged_class(&self, cfg: &RunConfig) -> ComplexityClass {
        // Theorem 5's upper bound at the planned problem's (Δ, d, k), or
        // the default-spec parameters (Δ = 6) otherwise.
        let (delta, d, k) =
            weighted_class_params(cfg, lcl_core::problem_spec::ProblemRegime::LogStar, 6, 3);
        let x_prime = lcl_core::landscape::efficiency_x_prime(delta, d).min(1.0);
        ComplexityClass::log_star_pow(lcl_core::landscape::alpha1_log_star(x_prime, k))
    }

    fn paper_ref(&self) -> &'static str {
        "Theorems 4–5 / Section 8.2"
    }

    fn supported_kinds(&self) -> &'static [InstanceKind] {
        &[InstanceKind::Weighted]
    }

    fn default_spec(&self, n: usize, cfg: &RunConfig) -> InstanceSpec {
        InstanceSpec::WeightedLogStar {
            n,
            delta: 6,
            d: cfg.d.unwrap_or(3),
            k: cfg.k.unwrap_or(2),
        }
    }

    fn smallest_spec(&self) -> InstanceSpec {
        InstanceSpec::WeightedLogStar {
            n: 2_000,
            delta: 6,
            d: 3,
            k: 2,
        }
    }

    fn solves(&self, problem: &ProblemSpec) -> Option<SolverFit> {
        matches!(
            problem,
            ProblemSpec::Weighted {
                regime: lcl_core::problem_spec::ProblemRegime::LogStar,
                ..
            }
        )
        .then(|| SolverFit::new(90, "the Π^{3.5} log*-regime algorithm"))
    }

    fn run(&self, instance: &Instance, cfg: &RunConfig) -> Result<RunRecord, HarnessError> {
        run_weighted(
            self,
            Variant::ThreeHalf,
            WeightedRegime::LogStar,
            instance,
            cfg,
        )
    }
}

/// The `k`-hierarchical weight-augmented 2½-coloring (Lemma 69).
pub struct WeightAugmentedSolver;

impl Algorithm for WeightAugmentedSolver {
    fn name(&self) -> &'static str {
        "weight-augmented"
    }

    fn landscape_class(&self) -> &'static str {
        "Θ(n^{1/k})"
    }

    fn node_averaged_class(&self, cfg: &RunConfig) -> ComplexityClass {
        ComplexityClass::poly(1.0 / cfg.k.unwrap_or(2) as f64)
    }

    fn paper_ref(&self) -> &'static str {
        "Lemma 69 / Section 10"
    }

    fn supported_kinds(&self) -> &'static [InstanceKind] {
        &[InstanceKind::Weighted]
    }

    fn default_spec(&self, n: usize, cfg: &RunConfig) -> InstanceSpec {
        InstanceSpec::WeightedUnit {
            n,
            delta: 5,
            k: cfg.k.unwrap_or(2),
        }
    }

    fn smallest_spec(&self) -> InstanceSpec {
        InstanceSpec::WeightedUnit {
            n: 2_000,
            delta: 5,
            k: 2,
        }
    }

    fn solves(&self, problem: &ProblemSpec) -> Option<SolverFit> {
        matches!(problem, ProblemSpec::WeightAugmented { .. })
            .then(|| SolverFit::new(90, "the Lemma 69 weight-augmented 2½-coloring"))
    }

    fn run(&self, instance: &Instance, cfg: &RunConfig) -> Result<RunRecord, HarnessError> {
        ensure_supported(self, instance)?;
        let construction = instance.construction().ok_or_else(|| {
            HarnessError::BadSpec(format!(
                "`{}` needs a weighted instance carrying a construction",
                self.name()
            ))
        })?;
        let k = instance.spec().hierarchy_k().ok_or_else(|| {
            HarnessError::BadSpec(format!(
                "`{}` needs an instance spec carrying a hierarchy depth k",
                self.name()
            ))
        })?;
        let ids = Ids::random(instance.node_count(), cfg.seed);
        let run = solve_weight_augmented(instance.tree(), construction.kinds(), k, &ids);
        if cfg.verify {
            WeightAugmented::new(k)
                .verify(instance.tree(), construction.kinds(), &run.outputs)
                .map_err(|e| verification_error(self.name(), e))?;
        }
        let labels = run.outputs.iter().map(augmented_code).collect();
        run_plan(self, instance, cfg, labels, run.rounds, None)
    }
}

/// Input labels for the standalone `d`-free runs on plain trees: node 0
/// plays the `A`-node when the algorithm needs one; everything else is
/// weight mass.
fn dfree_inputs(n: usize, with_anchor: bool) -> Vec<DfreeInput> {
    let mut input = vec![DfreeInput::Weight; n];
    if with_anchor && n > 0 {
        input[0] = DfreeInput::Adjacent;
    }
    input
}

/// Algorithm `A` for the `d`-free weight problem (Section 7): uniform
/// `O(log n)` termination with `O(1)` declining mass.
pub struct DfreeA;

impl Algorithm for DfreeA {
    fn name(&self) -> &'static str {
        "dfree-a"
    }

    fn landscape_class(&self) -> &'static str {
        "O(log n) uniform"
    }

    fn node_averaged_class(&self, _cfg: &RunConfig) -> ComplexityClass {
        // Algorithm A terminates every node at the collection radius:
        // node-averaged equals worst-case, Θ(log n).
        ComplexityClass::Log
    }

    fn paper_ref(&self) -> &'static str {
        "Section 7 (algorithm A)"
    }

    fn supported_kinds(&self) -> &'static [InstanceKind] {
        &[
            InstanceKind::WeightTree,
            InstanceKind::RandomTree,
            InstanceKind::Path,
            InstanceKind::Adversarial,
        ]
    }

    fn default_spec(&self, n: usize, _cfg: &RunConfig) -> InstanceSpec {
        InstanceSpec::BalancedWeight { w: n, delta: 5 }
    }

    fn smallest_spec(&self) -> InstanceSpec {
        InstanceSpec::BalancedWeight { w: 256, delta: 5 }
    }

    fn solves(&self, problem: &ProblemSpec) -> Option<SolverFit> {
        matches!(problem, ProblemSpec::DfreeWeight { anchored: true, .. })
            .then(|| SolverFit::new(90, "algorithm A on the anchored d-free weight problem"))
    }

    fn run(&self, instance: &Instance, cfg: &RunConfig) -> Result<RunRecord, HarnessError> {
        ensure_supported(self, instance)?;
        let n = instance.node_count();
        let d = cfg.d.unwrap_or(2).max(1);
        let mask = NodeMask::full(n);
        let input = dfree_inputs(n, true);
        let run = algorithm_a(instance.tree(), &mask, &input, d, n);
        let outputs: Vec<_> = run
            .outputs
            .into_iter()
            .map(|o| o.unwrap_or_else(|| unreachable!("a full-mask run decides everywhere")))
            .collect();
        if cfg.verify {
            DFreeWeight::new(d)
                .verify(instance.tree(), &input, &outputs)
                .map_err(|e| verification_error(self.name(), e))?;
        }
        // Algorithm A is uniform: every node terminates at the collection
        // radius.
        let rounds = vec![run.radius; n];
        let labels = outputs.iter().map(|&o| dfree_code(o)).collect();
        run_plan(self, instance, cfg, labels, rounds, None)
    }
}

/// The adapted fast decomposition (Section 8.1): geometric pending decay,
/// `O(1)` node-averaged declines.
pub struct FastDecomposition;

impl Algorithm for FastDecomposition {
    fn name(&self) -> &'static str {
        "fast-decomposition"
    }

    fn landscape_class(&self) -> &'static str {
        "O(log n) worst, O(1) node-avg declines"
    }

    fn node_averaged_class(&self, _cfg: &RunConfig) -> ComplexityClass {
        // The Corollary 47 geometric decay bounds the *declining* mass by
        // O(1); the full node-average is dominated by the O(log n)
        // decomposition depth the surviving mass pays.
        ComplexityClass::Log
    }

    fn paper_ref(&self) -> &'static str {
        "Section 8.1 / Corollary 47"
    }

    fn supported_kinds(&self) -> &'static [InstanceKind] {
        &[
            InstanceKind::WeightTree,
            InstanceKind::RandomTree,
            InstanceKind::Path,
            InstanceKind::Adversarial,
        ]
    }

    fn default_spec(&self, n: usize, _cfg: &RunConfig) -> InstanceSpec {
        InstanceSpec::BalancedWeight { w: n, delta: 5 }
    }

    fn smallest_spec(&self) -> InstanceSpec {
        InstanceSpec::BalancedWeight { w: 256, delta: 5 }
    }

    fn solves(&self, problem: &ProblemSpec) -> Option<SolverFit> {
        matches!(
            problem,
            ProblemSpec::DfreeWeight {
                anchored: false,
                ..
            }
        )
        .then(|| SolverFit::new(90, "geometric pending decay without an anchor"))
    }

    fn run(&self, instance: &Instance, cfg: &RunConfig) -> Result<RunRecord, HarnessError> {
        ensure_supported(self, instance)?;
        let n = instance.node_count();
        let d = cfg.d.unwrap_or(3).max(1);
        let mask = NodeMask::full(n);
        // Pure weight mass, as in the Corollary 47 decay experiment.
        let input = dfree_inputs(n, false);
        let run = fast_dfree_standalone(instance.tree(), &mask, &input, d);
        let outputs: Vec<_> = run
            .outputs
            .into_iter()
            .map(|o| {
                o.unwrap_or_else(|| unreachable!("a standalone full-mask run decides everywhere"))
            })
            .collect();
        if cfg.verify {
            DFreeWeight::new(d)
                .verify(instance.tree(), &input, &outputs)
                .map_err(|e| verification_error(self.name(), e))?;
        }
        let labels = outputs.iter().map(|&o| dfree_code(o)).collect();
        run_plan(self, instance, cfg, labels, run.rounds, None)
    }
}

/// The `k`-hierarchical labeling solver (Lemma 65), `O(k · n^{1/k})`.
pub struct LabelingSolver;

impl Algorithm for LabelingSolver {
    fn name(&self) -> &'static str {
        "labeling-solver"
    }

    fn landscape_class(&self) -> &'static str {
        "O(k · n^{1/k})"
    }

    fn node_averaged_class(&self, cfg: &RunConfig) -> ComplexityClass {
        ComplexityClass::poly(1.0 / cfg.k.unwrap_or(2) as f64)
    }

    fn classify_spec(&self, n: usize, _cfg: &RunConfig) -> InstanceSpec {
        // The Lemma 65 bound is tight on paths: level populations are
        // `n^{1 - i/k}`-sized there, so the node-average genuinely grows
        // as `n^{1/k}`. On the bounded-degree random trees of the default
        // sweep spec the peeling depth collapses and the node-average is
        // flat — correct, but it classifies the instance family rather
        // than the algorithm.
        InstanceSpec::Path { n }
    }

    fn paper_ref(&self) -> &'static str {
        "Lemma 65"
    }

    fn supported_kinds(&self) -> &'static [InstanceKind] {
        &[
            InstanceKind::RandomTree,
            InstanceKind::WeightTree,
            InstanceKind::Path,
            InstanceKind::LowerBound,
            InstanceKind::Adversarial,
        ]
    }

    fn default_spec(&self, n: usize, _cfg: &RunConfig) -> InstanceSpec {
        InstanceSpec::RandomTree {
            n,
            max_degree: 4,
            seed: 7,
        }
    }

    fn smallest_spec(&self) -> InstanceSpec {
        InstanceSpec::RandomTree {
            n: 256,
            max_degree: 4,
            seed: 7,
        }
    }

    fn solves(&self, problem: &ProblemSpec) -> Option<SolverFit> {
        matches!(problem, ProblemSpec::HierarchicalLabeling { .. })
            .then(|| SolverFit::new(90, "the Definition 63 hierarchical labeling solver"))
    }

    fn run(&self, instance: &Instance, cfg: &RunConfig) -> Result<RunRecord, HarnessError> {
        ensure_supported(self, instance)?;
        let k = cfg.k.or(instance.spec().hierarchy_k()).unwrap_or(2).max(1);
        let n = instance.node_count();
        let solution = solve_hierarchical_labeling(instance.tree(), k);
        if cfg.verify {
            HierarchicalLabeling::new(k)
                .verify(instance.tree(), &vec![(); n], &solution.run.outputs)
                .map_err(|e| verification_error(self.name(), e))?;
        }
        let labels = solution.run.outputs.iter().map(labeling_code).collect();
        run_plan(self, instance, cfg, labels, solution.run.rounds, None)
    }
}

/// The table-driven solver for *arbitrary* path LCLs — the problem-first
/// surface's generic fallback ([`lcl_algorithms::path_lcl_solver`]).
///
/// The problem comes in through [`RunConfig::problem`] (the planner fills
/// it); without one the adapter solves its demonstration default, proper
/// 3-coloring, so `lcl run path-lcl` and the registry-wide sweeps work
/// out of the box. The decided [`PathClass`] of the table drives both the
/// round schedule and [`Algorithm::node_averaged_class`], so the
/// empirical classifier checks the decided class, not a hardcoded one.
pub struct PathLclSolver;

impl PathLclSolver {
    /// The effective table of a run configuration: the configured
    /// problem's path table, or the demonstration default (proper
    /// 3-coloring) when no problem is set.
    fn table(cfg: &RunConfig) -> Result<PathTable, HarnessError> {
        match &cfg.problem {
            Some(problem) => problem.path_table().ok_or_else(|| {
                HarnessError::BadSpec(format!(
                    "`path-lcl` needs a path-expressible problem, got {}",
                    problem.describe()
                ))
            }),
            None => Ok(PathTable::proper_coloring(3)),
        }
    }

    /// The decided class of `table`, via the path automaton.
    fn decide(table: &PathTable) -> PathClass {
        PathLcl::new(table.matrix(), table.end_vec()).classify()
    }
}

impl Algorithm for PathLclSolver {
    fn name(&self) -> &'static str {
        "path-lcl"
    }

    fn landscape_class(&self) -> &'static str {
        "decided per table (O(1) | Θ(log* n) | Θ(n))"
    }

    fn node_averaged_class(&self, cfg: &RunConfig) -> ComplexityClass {
        // Lemma 16: on paths the node-averaged class equals the decided
        // worst-case class. Unsolvable/invalid tables never run; report
        // the Θ(n) ceiling for them.
        match Self::table(cfg).as_ref().map(Self::decide) {
            Ok(PathClass::Constant) => ComplexityClass::Constant,
            Ok(PathClass::LogStar) => ComplexityClass::log_star(),
            Ok(PathClass::Linear) | Ok(PathClass::Unsolvable) | Err(_) => {
                ComplexityClass::poly(1.0)
            }
        }
    }

    fn paper_ref(&self) -> &'static str {
        "Lemma 16 / [BBC+19]"
    }

    fn supported_kinds(&self) -> &'static [InstanceKind] {
        &[InstanceKind::Path]
    }

    fn default_spec(&self, n: usize, _cfg: &RunConfig) -> InstanceSpec {
        InstanceSpec::Path { n }
    }

    fn smallest_spec(&self) -> InstanceSpec {
        InstanceSpec::Path { n: 16 }
    }

    fn solves(&self, problem: &ProblemSpec) -> Option<SolverFit> {
        problem
            .path_table()
            .map(|_| SolverFit::new(40, "table-driven solver for any decided path LCL"))
    }

    fn run(&self, instance: &Instance, cfg: &RunConfig) -> Result<RunRecord, HarnessError> {
        ensure_supported(self, instance)?;
        let table = Self::table(cfg)?;
        table.validate().map_err(HarnessError::BadSpec)?;
        let class = match Self::decide(&table) {
            PathClass::Unsolvable => {
                return Err(HarnessError::BadSpec(
                    "the problem is unsolvable on large paths".to_string(),
                ))
            }
            PathClass::Constant => PathSolveClass::Constant,
            PathClass::LogStar => PathSolveClass::LogStar,
            PathClass::Linear => PathSolveClass::Linear,
        };
        let ids = Ids::random(instance.node_count(), cfg.seed);
        let plan =
            solve_path_lcl(instance.tree(), &table, class, &ids).map_err(HarnessError::BadSpec)?;
        if cfg.verify {
            verify_path_lcl(instance.tree(), &table, &plan.outputs)
                .map_err(|e| verification_error(self.name(), e))?;
        }
        // Rigid tables genuinely wait for the endpoint waves; the scheduled
        // classes terminate at their locally computed round.
        let labels = Arc::new(plan.outputs);
        let rounds = Arc::new(plan.rounds);
        let budget = plan_round_budget(&rounds);
        let (l, r) = (labels.clone(), rounds.clone());
        let outcome = execute_protocol(
            self,
            instance.tree(),
            &ids,
            &cfg.engine,
            move |c| match class {
                PathSolveClass::Linear => PathLclProtocol::rigid(l[c.node]),
                _ => PathLclProtocol::at_round(r[c.node], l[c.node]),
            },
            budget,
        )?;
        check_plan(self, &outcome, &labels, &rounds)?;
        let rounds = outcome.stats.as_slice().to_vec();
        Ok(record_outcome(
            self,
            instance,
            cfg,
            outcome.outputs,
            rounds,
            None,
            outcome.peak_arena_bytes,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::registry;

    #[test]
    fn generic_helper_matches_both_regimes() {
        let spec = InstanceSpec::WeightedPoly {
            n: 3_000,
            delta: 5,
            d: 2,
            k: 2,
        };
        let inst = spec.build().unwrap();
        let c = inst.construction().unwrap();
        let ids = Ids::random(inst.node_count(), 3);
        let run = run_on_construction(c, 2, 2, &ids, WeightedRegime::Poly);
        assert_eq!(run.len(), inst.node_count());
        let problem = WeightedColoring::new(Variant::TwoHalf, 5, 2, 2).unwrap();
        problem
            .verify(inst.tree(), c.kinds(), &run.outputs)
            .unwrap();
    }

    #[test]
    fn unsupported_kind_is_rejected() {
        let inst = InstanceSpec::Path { n: 10 }.build().unwrap();
        let err = Apoly.run(&inst, &RunConfig::default()).unwrap_err();
        assert!(matches!(err, HarnessError::UnsupportedInstance { .. }));
    }

    #[test]
    fn names_are_unique_and_kebab() {
        let mut names: Vec<_> = registry().iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
        for n in names {
            assert!(n
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn path_lcl_solver_defaults_to_three_coloring() {
        let inst = InstanceSpec::Path { n: 64 }.build().unwrap();
        let record = PathLclSolver.run(&inst, &RunConfig::seeded(5)).unwrap();
        assert!(record.verified);
        assert_eq!(record.rounds.len(), 64);
        assert_eq!(
            PathLclSolver.node_averaged_class(&RunConfig::default()),
            ComplexityClass::log_star()
        );
    }

    #[test]
    fn path_lcl_solver_follows_the_configured_problem() {
        let cfg = RunConfig::seeded(3).with_problem(ProblemSpec::Coloring { colors: 2 });
        let inst = InstanceSpec::Path { n: 33 }.build().unwrap();
        let record = PathLclSolver.run(&inst, &cfg).unwrap();
        assert!(record.verified);
        // 2-coloring is rigid: endpoint distances dominate the rounds.
        assert_eq!(record.worst_case, 32);
        assert_eq!(
            PathLclSolver.node_averaged_class(&cfg),
            ComplexityClass::poly(1.0)
        );
    }

    #[test]
    fn path_lcl_solver_rejects_unsolvable_and_inexpressible() {
        let inst = InstanceSpec::Path { n: 8 }.build().unwrap();
        // Endpoint label incompatible with everything: unsolvable.
        let unsolvable = ProblemSpec::Path(PathTable::new(2, vec![(1, 1)], vec![0]));
        let err = PathLclSolver
            .run(&inst, &RunConfig::seeded(1).with_problem(unsolvable))
            .unwrap_err();
        assert!(matches!(err, HarnessError::BadSpec(_)), "{err}");
        // A tree-degree problem has no path table.
        let tree_problem = ProblemSpec::HierarchicalLabeling { k: 2 };
        let err = PathLclSolver
            .run(&inst, &RunConfig::seeded(1).with_problem(tree_problem))
            .unwrap_err();
        assert!(matches!(err, HarnessError::BadSpec(_)), "{err}");
    }
}
