//! The problem-first planner: from a declarative [`ProblemSpec`] to a
//! classified, solver-resolved [`Plan`].
//!
//! This is the layer that makes LCL *problems*, not algorithms, the unit
//! of the public surface. Planning a problem does three things:
//!
//! 1. **Classify.** Explicit path tables (and proper colorings) run
//!    through the decidability automaton of `lcl_decidability::path_lcl`
//!    (\[BBC+19\], Lemma 16 of the paper); explicit black-white tables run
//!    through the Section 11 testing procedure
//!    (`lcl_decidability::testing`: good-function search plus the
//!    constant-good check of Definition 80); the named paper families
//!    carry their class as declared metadata computed from the closed-form
//!    exponents ([`ProblemSpec::declared_class`]).
//! 2. **Resolve.** Every registered [`Algorithm`] bids on the problem via
//!    [`Algorithm::solves`]; the capability-indexed
//!    [`resolver`](crate::registry::Resolver) picks the highest-scoring
//!    fit.
//! 3. **Concretize.** The problem's canonical instance family plus a
//!    [`RunConfig`] carrying the problem's parameters (`k`, `d`, the
//!    table itself for table-driven solvers) are packed into the [`Plan`].
//!
//! Every failure is a typed [`PlanError`] — malformed specs, unsolvable or
//! undecidable problems, and capability gaps are values, never panics.
//!
//! ```
//! use lcl_harness::planner::plan;
//! use lcl_harness::RunConfig;
//! use lcl_core::problem_spec::ProblemSpec;
//!
//! let problem = ProblemSpec::preset("3-coloring").expect("known preset");
//! let plan = plan(&problem, 2_000, &RunConfig::seeded(7))?;
//! assert_eq!(plan.solver.name(), "linial");
//! assert_eq!(plan.classification.class.describe(), "Θ(log* n)");
//! let record = plan.run()?;
//! assert!(record.verified);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::algorithm::{run_timed, Algorithm, RunConfig, RunRecord};
use crate::instance::{HarnessError, InstanceSpec};
use crate::registry::resolver;
use lcl_core::landscape::ComplexityClass;
use lcl_core::problem_spec::{BwTable, ProblemRegime, ProblemSpec};
use lcl_decidability::path_lcl::{PathClass, PathLcl};
use lcl_decidability::testing::{alternating_path_class, find_good_function, ImpliedComplexity};
use lcl_decidability::{BwProblem, TestingConfig};
use serde::Serialize;
use std::error::Error;
use std::fmt;

/// Why a problem could not be planned.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The spec failed validation (label ranges, parameter domains,
    /// malformed JSON input).
    BadProblem(String),
    /// The decidability machinery proved the problem unsolvable (beyond
    /// trivially small instances).
    Unsolvable(String),
    /// No decision procedure in the workspace settles the problem's class
    /// (e.g. a tree-degree black-white problem the good-function search
    /// leaves unresolved).
    Undecidable(String),
    /// The problem is classified but no registered algorithm bids on it.
    NoSolver(String),
    /// A harness-level failure while queueing or building the plan.
    Harness(HarnessError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::BadProblem(msg) => write!(f, "invalid problem spec: {msg}"),
            PlanError::Unsolvable(msg) => write!(f, "problem is unsolvable: {msg}"),
            PlanError::Undecidable(msg) => {
                write!(f, "problem class is undecidable by this workspace: {msg}")
            }
            PlanError::NoSolver(msg) => write!(f, "no registered solver fits: {msg}"),
            PlanError::Harness(e) => write!(f, "{e}"),
        }
    }
}

impl Error for PlanError {}

impl From<HarnessError> for PlanError {
    fn from(e: HarnessError) -> Self {
        PlanError::Harness(e)
    }
}

/// One algorithm's bid on a problem: a preference score (higher wins; the
/// resolver picks the unique maximum) and a short human-readable reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SolverFit {
    /// Preference score in `0..=100`.
    pub score: u8,
    /// Why the algorithm fits, e.g. `"the rigid 2-coloring baseline"`.
    pub reason: &'static str,
}

impl SolverFit {
    /// A fit with the given score and reason.
    #[must_use]
    pub fn new(score: u8, reason: &'static str) -> Self {
        SolverFit { score, reason }
    }
}

/// Where a predicted class came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassSource {
    /// The path-LCL automaton (`lcl_decidability::path_lcl`).
    PathAutomaton,
    /// The Section 11 testing procedure (`lcl_decidability::testing`).
    BwTesting,
    /// Declared metadata of a named paper family (closed-form exponents).
    Declared,
}

impl ClassSource {
    /// Stable rendering for tables and JSON.
    #[must_use]
    pub fn describe(&self) -> &'static str {
        match self {
            ClassSource::PathAutomaton => "path-automaton",
            ClassSource::BwTesting => "bw-testing",
            ClassSource::Declared => "declared",
        }
    }
}

/// The predicted node-averaged complexity of a problem, with provenance.
#[derive(Debug, Clone)]
pub struct Classification {
    /// The predicted landscape cell.
    pub class: ComplexityClass,
    /// Which machinery produced the prediction.
    pub source: ClassSource,
    /// Free-form evidence (good-function names, automaton verdicts).
    pub detail: String,
}

/// A fully planned problem: classified, solver-resolved, concretized.
///
/// (`Debug` renders the solver by its registry name; trait objects have
/// no derived representation.)
pub struct Plan {
    /// The problem being planned.
    pub problem: ProblemSpec,
    /// Predicted class plus provenance.
    pub classification: Classification,
    /// The resolved best-fit algorithm.
    pub solver: &'static dyn Algorithm,
    /// The winning bid.
    pub fit: SolverFit,
    /// The concrete instance family the run will use.
    pub spec: InstanceSpec,
    /// The run configuration, carrying the problem's parameters.
    pub config: RunConfig,
}

impl fmt::Debug for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Plan")
            .field("problem", &self.problem)
            .field("class", &self.classification.class)
            .field("source", &self.classification.source)
            .field("solver", &self.solver.name())
            .field("fit", &self.fit)
            .field("spec", &self.spec)
            .finish_non_exhaustive()
    }
}

impl Plan {
    /// Builds the instance and executes the plan, returning the timed
    /// record.
    ///
    /// # Errors
    ///
    /// Instance build failures and the errors of [`Algorithm::run`].
    pub fn run(&self) -> Result<RunRecord, HarnessError> {
        let instance = self.spec.build()?;
        run_timed(self.solver, &instance, &self.config)
    }
}

/// Classifies a problem without resolving a solver (`lcl solve
/// --classify-only` still reports this for solver-less problems).
///
/// # Errors
///
/// [`PlanError::BadProblem`] for invalid specs, [`PlanError::Unsolvable`]
/// and [`PlanError::Undecidable`] per the decidability machinery.
pub fn classify(problem: &ProblemSpec) -> Result<Classification, PlanError> {
    problem.validate().map_err(PlanError::BadProblem)?;
    match problem {
        ProblemSpec::Path(_) | ProblemSpec::Coloring { .. } => {
            let Some(table) = problem.path_table() else {
                unreachable!("Path and Coloring specs are path-expressible")
            };
            let automaton = PathLcl::new(table.matrix(), table.end_vec());
            let class = automaton.classify();
            let mapped = map_path_class(class, problem)?;
            Ok(Classification {
                class: mapped,
                source: ClassSource::PathAutomaton,
                detail: format!("path automaton verdict: {class:?} (Lemma 16: node-averaged = worst-case on paths)"),
            })
        }
        ProblemSpec::Bw(table) => classify_bw(table, problem),
        _ => {
            let class = problem
                .declared_class()
                .ok_or_else(|| PlanError::Undecidable(problem.describe()))?;
            Ok(Classification {
                class,
                source: ClassSource::Declared,
                detail: "declared by the paper's closed-form exponents".to_string(),
            })
        }
    }
}

/// Classifies a black-white table through the Section 11 testing
/// machinery: the good-function search always runs (its outcome is the
/// evidence), and path-degree problems additionally get the exact
/// alternating-automaton verdict.
fn classify_bw(table: &BwTable, problem: &ProblemSpec) -> Result<Classification, PlanError> {
    let bw = to_bw_problem(table);
    let cfg = TestingConfig::for_delta(table.max_degree);
    let report = find_good_function(&bw, &cfg);
    let good_outcomes = report.outcomes.iter().filter(|(_, o)| o.is_good()).count();
    let evidence = match &report.good_function {
        Some(name) => format!(
            "good function `{name}` ({good_outcomes}/{} candidates good, constant-good: {})",
            report.outcomes.len(),
            report
                .constant_good
                .map_or("-".to_string(), |b| b.to_string()),
        ),
        None => format!(
            "no good function among {} candidates",
            report.outcomes.len()
        ),
    };
    if table.max_degree <= 2 {
        let class = alternating_path_class(&bw);
        let mapped = map_path_class(class, problem)?;
        return Ok(Classification {
            class: mapped,
            source: ClassSource::BwTesting,
            detail: format!("alternating automaton verdict: {class:?}; {evidence}"),
        });
    }
    match report.implied {
        ImpliedComplexity::Constant => Ok(Classification {
            class: ComplexityClass::Constant,
            source: ClassSource::BwTesting,
            detail: format!("{evidence} ⇒ O(1) (Theorem 7)"),
        }),
        ImpliedComplexity::LogStar => Ok(Classification {
            class: ComplexityClass::log_star(),
            source: ClassSource::BwTesting,
            detail: format!("{evidence} ⇒ O(log* n) upper bound"),
        }),
        ImpliedComplexity::Unresolved => Err(PlanError::Undecidable(format!(
            "{}: {evidence}; the testing procedure neither confirms nor refutes n^o(1)",
            problem.describe()
        ))),
    }
}

fn map_path_class(class: PathClass, problem: &ProblemSpec) -> Result<ComplexityClass, PlanError> {
    match class {
        PathClass::Unsolvable => Err(PlanError::Unsolvable(format!(
            "{}: no valid labeling exists for all large paths",
            problem.describe()
        ))),
        PathClass::Constant => Ok(ComplexityClass::Constant),
        PathClass::LogStar => Ok(ComplexityClass::log_star()),
        PathClass::Linear => Ok(ComplexityClass::poly(1.0)),
    }
}

/// Converts the declarative table into the decidability crate's
/// formalism (one input label everywhere). The table must have been
/// validated; ranges are re-checked there, so this cannot panic.
fn to_bw_problem(table: &BwTable) -> BwProblem {
    let lift = |sets: &[Vec<u8>]| -> Vec<Vec<(u8, u8)>> {
        sets.iter()
            .map(|m| m.iter().map(|&l| (0u8, l)).collect())
            .collect()
    };
    BwProblem::new(1, table.out_labels, lift(&table.white), lift(&table.black))
}

/// The canonical instance family a problem is solved on, at target size
/// `n` — paths for table problems, the matching paper construction for
/// the named families.
#[must_use]
pub fn canonical_instance(problem: &ProblemSpec, n: usize) -> InstanceSpec {
    match *problem {
        ProblemSpec::Path(_) | ProblemSpec::Coloring { .. } | ProblemSpec::Bw(_) => {
            InstanceSpec::Path { n: n.max(1) }
        }
        ProblemSpec::HierarchicalColoring { k } => InstanceSpec::Theorem11 { n, k },
        ProblemSpec::Weighted {
            regime,
            delta,
            d,
            k,
        } => match regime {
            ProblemRegime::Poly => InstanceSpec::WeightedPoly { n, delta, d, k },
            ProblemRegime::LogStar => InstanceSpec::WeightedLogStar { n, delta, d, k },
        },
        ProblemSpec::WeightAugmented { k } => InstanceSpec::WeightedUnit { n, delta: 5, k },
        ProblemSpec::DfreeWeight { .. } => InstanceSpec::BalancedWeight { w: n, delta: 5 },
        ProblemSpec::HierarchicalLabeling { .. } => InstanceSpec::RandomTree {
            n,
            max_degree: 4,
            seed: 7,
        },
    }
}

/// Plans a problem end-to-end: classify, resolve the best-fit solver,
/// concretize the instance and configuration. `base` supplies the seed
/// and the knobs the problem does not fix.
///
/// # Errors
///
/// Every [`PlanError`] variant: malformed specs, unsolvable/undecidable
/// problems, and capability gaps.
pub fn plan(problem: &ProblemSpec, n: usize, base: &RunConfig) -> Result<Plan, PlanError> {
    let classification = classify(problem)?;
    finish_plan(problem, classification, n, base)
}

/// The post-classification tail of [`plan`]: resolve the best-fit solver
/// and concretize the instance and configuration. Split out so the plan
/// cache ([`crate::plan_cache`]) can memoize the expensive classification
/// step and still produce a fresh `Plan` per request.
pub(crate) fn finish_plan(
    problem: &ProblemSpec,
    classification: Classification,
    n: usize,
    base: &RunConfig,
) -> Result<Plan, PlanError> {
    let (solver, fit) = resolver().resolve(problem)?;
    let mut config = base.clone();
    if let Some(k) = problem.hierarchy_k() {
        config.k = Some(k);
    }
    if let Some(d) = problem.decline_d() {
        config.d = Some(d);
    }
    // Table-driven solvers read the problem from the config; black-white
    // problems hand over their reduced path table.
    config.problem = match problem {
        ProblemSpec::Bw(t) => t.symmetric_path_table().map(ProblemSpec::Path),
        other => Some(other.clone()),
    };
    let spec = canonical_instance(problem, n);
    if !solver.supports(spec.kind()) {
        return Err(PlanError::Harness(HarnessError::UnsupportedInstance {
            algorithm: solver.name().to_string(),
            kind: spec.kind(),
        }));
    }
    Ok(Plan {
        problem: problem.clone(),
        classification,
        solver,
        fit,
        spec,
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::landscape::Regime;
    use lcl_core::problem_spec::PathTable;

    #[test]
    fn coloring_presets_classify_through_the_automaton() {
        let two = classify(&ProblemSpec::Coloring { colors: 2 }).unwrap();
        assert_eq!(two.source, ClassSource::PathAutomaton);
        assert_eq!(two.class, ComplexityClass::poly(1.0));
        let three = classify(&ProblemSpec::Coloring { colors: 3 }).unwrap();
        assert_eq!(three.class, ComplexityClass::log_star());
    }

    #[test]
    fn unsolvable_tables_surface_as_plan_errors() {
        // Endpoints must carry label 0, but 0 is compatible with nothing.
        let table = PathTable::new(2, vec![(1, 1)], vec![0]);
        let err = classify(&ProblemSpec::Path(table)).unwrap_err();
        assert!(matches!(err, PlanError::Unsolvable(_)), "{err}");
    }

    #[test]
    fn malformed_specs_are_bad_problems() {
        let err = classify(&ProblemSpec::Coloring { colors: 1 }).unwrap_err();
        assert!(matches!(err, PlanError::BadProblem(_)), "{err}");
        let err = plan(
            &ProblemSpec::Path(PathTable::new(2, vec![(0, 9)], vec![0])),
            100,
            &RunConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PlanError::BadProblem(_)), "{err}");
    }

    #[test]
    fn bw_path_problem_classifies_via_testing_machinery() {
        let spec = ProblemSpec::preset("bw-all-equal").unwrap();
        let c = classify(&spec).unwrap();
        assert_eq!(c.source, ClassSource::BwTesting);
        assert_eq!(c.class, ComplexityClass::Constant);
        assert!(c.detail.contains("good function"), "{}", c.detail);
    }

    #[test]
    fn named_families_use_declared_metadata() {
        let c = classify(&ProblemSpec::preset("weighted-poly").unwrap()).unwrap();
        assert_eq!(c.source, ClassSource::Declared);
        assert_eq!(c.class.regime(), Regime::Poly);
    }

    #[test]
    fn plan_resolves_canonical_solvers() {
        let cases = [
            ("2-coloring", "two-coloring"),
            ("3-coloring", "linial"),
            ("theorem11-k2", "generic-coloring"),
            ("weighted-poly", "apoly"),
            ("weighted-logstar", "a35"),
            ("weight-augmented-k2", "weight-augmented"),
            ("dfree-anchored", "dfree-a"),
            ("dfree-decay", "fast-decomposition"),
            ("labeling-k2", "labeling-solver"),
            ("bw-all-equal", "path-lcl"),
        ];
        for (preset, solver) in cases {
            let problem = ProblemSpec::preset(preset).unwrap();
            let plan = plan(&problem, 2_000, &RunConfig::seeded(3))
                .unwrap_or_else(|e| panic!("{preset}: {e}"));
            assert_eq!(plan.solver.name(), solver, "{preset}");
            assert!(plan.fit.score > 0);
        }
    }

    #[test]
    fn custom_table_plans_to_the_generic_solver_and_runs() {
        // 0/1 alternate with a wildcard: O(1).
        let table = PathTable::new(3, vec![(0, 1), (0, 2), (1, 2), (2, 2)], vec![0, 1, 2]);
        let problem = ProblemSpec::Path(table);
        let plan = plan(&problem, 600, &RunConfig::seeded(5)).unwrap();
        assert_eq!(plan.solver.name(), "path-lcl");
        assert_eq!(plan.classification.class, ComplexityClass::Constant);
        let record = plan.run().unwrap();
        assert!(record.verified);
        assert_eq!(record.rounds.len(), record.n);
    }

    #[test]
    fn tree_degree_bw_without_resolution_is_undecidable_or_classified() {
        // A degree-3 problem the family may or may not resolve; whichever
        // way it goes, the outcome must be a value, not a panic.
        let table = lcl_core::problem_spec::BwTable::new(
            2,
            3,
            vec![vec![0], vec![0, 1], vec![0, 1, 1]],
            vec![vec![1], vec![0, 1]],
        );
        match classify(&ProblemSpec::Bw(table)) {
            Ok(c) => assert_eq!(c.source, ClassSource::BwTesting),
            Err(e) => assert!(
                matches!(e, PlanError::Undecidable(_) | PlanError::Unsolvable(_)),
                "{e}"
            ),
        }
    }

    #[test]
    fn plan_error_display_is_informative() {
        let e = PlanError::NoSolver("bw(...)".into());
        assert!(e.to_string().contains("no registered solver"));
        let e = PlanError::Undecidable("x".into());
        assert!(e.to_string().contains("undecidable"));
        let e = PlanError::from(HarnessError::BadSpec("x".into()));
        assert!(matches!(e, PlanError::Harness(_)));
    }
}
