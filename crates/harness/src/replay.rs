//! Schedule replay: a migration oracle, not a production path.
//!
//! The structural algorithm implementations compute, for every node, an
//! output label and the round in which the simulated LOCAL algorithm
//! terminates. [`ReplayProtocol`] turns that solved schedule back into a
//! real message-passing execution: each node runs as a state machine that
//! stays silent until its scheduled round, then terminates and broadcasts
//! its label as final messages (the standard "neighbors observe the
//! output" convention). Replaying through an engine therefore exercises the
//! engine's full machinery — arenas, delivery, termination bookkeeping,
//! chunk scheduling — on exactly the round distributions the paper's
//! algorithms produce.
//!
//! Production adapters no longer replay anything: they run native
//! protocols (or `ScheduledCast` plans) on the chunked engine directly.
//! This module survives only behind `cfg(test)` and the `direct-oracle`
//! feature, as a harness for differential tests that want to drive both
//! engines with an arbitrary solved schedule.

use crate::instance::HarnessError;
use lcl_graph::Tree;
use lcl_local::engine::{
    run_sync_with, EngineConfig, Inbox, NodeContext, Outbox, Protocol, SyncOutcome,
};
use lcl_local::identifiers::Ids;

/// Per-node state machine replaying one node's slice of a solved schedule.
#[derive(Debug, Clone)]
pub struct ReplayProtocol {
    target_round: u64,
    label: u64,
}

impl ReplayProtocol {
    /// A node that terminates in `target_round` with output `label`.
    #[must_use]
    pub fn new(target_round: u64, label: u64) -> Self {
        ReplayProtocol {
            target_round,
            label,
        }
    }
}

impl Protocol for ReplayProtocol {
    type Message = u64;
    type Output = u64;

    fn step(
        &mut self,
        _ctx: &NodeContext,
        round: u64,
        _inbox: &Inbox<'_, u64>,
        outbox: &mut Outbox<'_, u64>,
    ) -> Option<u64> {
        if round == self.target_round {
            outbox.broadcast(self.label);
            return Some(self.label);
        }
        None
    }
}

/// A factory handing each node its slice of the schedule, usable with any
/// engine entry point (`run_sync_with`, `run_reference`).
///
/// # Panics
///
/// The returned closure indexes by `ctx.node`, so `labels` and `rounds`
/// must cover all nodes of the tree the engine runs on.
pub fn replay_factory<'a>(
    labels: &'a [u64],
    rounds: &'a [u64],
) -> impl FnMut(&NodeContext) -> ReplayProtocol + 'a {
    move |ctx| ReplayProtocol::new(rounds[ctx.node], labels[ctx.node])
}

/// A round budget that any faithful replay of `rounds` fits in.
#[must_use]
pub fn replay_round_budget(rounds: &[u64]) -> u64 {
    rounds.iter().copied().max().unwrap_or(0).saturating_add(2)
}

/// Replays a solved schedule end-to-end on the chunked engine and checks
/// the engine-observed outcome against the plan.
///
/// # Errors
///
/// [`HarnessError::EngineDivergence`] if the engine errors out or its
/// observed outputs/rounds differ from the schedule — either means an
/// engine bug, never a caller error.
///
/// # Panics
///
/// Panics if `labels`/`rounds` do not cover all nodes of `tree`.
pub fn replay_chunked(
    algorithm: &str,
    tree: &Tree,
    labels: &[u64],
    rounds: &[u64],
    config: &EngineConfig,
) -> Result<SyncOutcome<u64>, HarnessError> {
    let n = tree.node_count();
    assert_eq!(labels.len(), n, "labels must cover all nodes");
    assert_eq!(rounds.len(), n, "rounds must cover all nodes");
    let ids = Ids::sequential(n);
    let budget = replay_round_budget(rounds);
    let outcome = run_sync_with(tree, &ids, replay_factory(labels, rounds), budget, config)
        .map_err(|e| HarnessError::EngineDivergence {
            algorithm: algorithm.to_string(),
            detail: format!("chunked engine failed to complete the schedule: {e}"),
        })?;
    if outcome.outputs != labels {
        return Err(HarnessError::EngineDivergence {
            algorithm: algorithm.to_string(),
            detail: "engine outputs diverge from the solved schedule".to_string(),
        });
    }
    if outcome.stats.as_slice() != rounds {
        return Err(HarnessError::EngineDivergence {
            algorithm: algorithm.to_string(),
            detail: "engine termination rounds diverge from the solved schedule".to_string(),
        });
    }
    // The engine accumulates its termination profile from per-round
    // counters, independently of the per-node round slots; both paths must
    // tell the same story as the structural schedule.
    if outcome.profile != lcl_local::metrics::TerminationProfile::from_rounds(rounds) {
        return Err(HarnessError::EngineDivergence {
            algorithm: algorithm.to_string(),
            detail: "engine termination profile diverges from the solved schedule".to_string(),
        });
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::generators::path;

    #[test]
    fn replay_reproduces_the_schedule() {
        let tree = path(9);
        let labels: Vec<u64> = (0..9u64).map(|v| v % 3).collect();
        let rounds: Vec<u64> = (0..9u64).map(|v| v.max(8 - v)).collect();
        let out =
            replay_chunked("test", &tree, &labels, &rounds, &EngineConfig::sequential()).unwrap();
        assert_eq!(out.outputs, labels);
        assert_eq!(out.stats.as_slice(), &rounds[..]);
        assert_eq!(
            out.profile,
            lcl_local::metrics::TerminationProfile::from_rounds(&rounds)
        );
        // Final-message broadcasts: each node posts deg(v) messages, and a
        // message is consumed only if the neighbor is still running.
        assert!(out.messages > 0);
    }

    #[test]
    fn round_budget_covers_the_worst_node() {
        assert_eq!(replay_round_budget(&[0, 3, 1]), 5);
        assert_eq!(replay_round_budget(&[]), 2);
    }
}
