//! Batched, seeded, parallel execution of registry algorithms.

use crate::algorithm::{run_timed, Algorithm, RunConfig, RunRecord};
use crate::instance::{HarnessError, Instance, InstanceSpec};
use crate::planner::{plan, PlanError};
use crate::registry::find;
use lcl_core::problem_spec::ProblemSpec;
use lcl_local::math::fit_power_law;
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// One queued execution: an algorithm, an instance spec, and a config.
pub struct Job {
    /// The resolved registry entry.
    pub algorithm: &'static dyn Algorithm,
    /// The instance to run on.
    pub spec: InstanceSpec,
    /// Seed and parameter knobs.
    pub config: RunConfig,
}

/// Scaling knobs of a [`Session`], tuned for sweeps whose instances are
/// too large to keep resident all at once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Default chunk size injected into engine-backed jobs whose
    /// [`EngineConfig`](lcl_local::engine::EngineConfig) left `chunk_size`
    /// at `0`.
    pub chunk_size: usize,
    /// Worker threads for building instances and running jobs
    /// (`0` = available parallelism).
    pub threads: usize,
    /// Maximum number of distinct instances built and held in memory at
    /// once: the sweep streams through its unique specs in shards of this
    /// size, dropping each shard's instances before building the next.
    pub max_resident_instances: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            chunk_size: 0,
            threads: 0,
            max_resident_instances: 8,
        }
    }
}

/// A batch runner: queue jobs, then execute them on a std-thread pool.
///
/// Jobs with equal specs share one built instance (and its process-wide
/// cached peelings), so a size-swept, seed-replicated batch builds each
/// topology exactly once. Instead of materializing every instance up
/// front, the runner streams through the unique specs in shards of at
/// most [`ScaleConfig::max_resident_instances`], bounding peak memory to
/// `O(shard)` instances even for million-node sweeps. Results come back
/// in submission order regardless.
///
/// ```
/// use lcl_harness::{InstanceSpec, RunConfig, Session};
///
/// let mut session = Session::new();
/// for seed in 0..4u64 {
///     session.push(
///         "randomized",
///         InstanceSpec::Path { n: 2_000 },
///         RunConfig::seeded(seed),
///     )?;
/// }
/// let records = session.run()?;
/// assert_eq!(records.len(), 4);
/// assert!(records.iter().all(|r| r.verified));
/// # Ok::<(), lcl_harness::HarnessError>(())
/// ```
#[derive(Default)]
pub struct Session {
    jobs: Vec<Job>,
    scale: ScaleConfig,
}

impl Session {
    /// An empty session.
    #[must_use]
    pub fn new() -> Self {
        Session::default()
    }

    /// The problem-first entry point: a [`SessionBuilder`] that queues
    /// declarative problems (planned end-to-end) and raw
    /// algorithm/instance pairs interchangeably.
    #[must_use]
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// Caps the worker thread count (default: available parallelism).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.scale.threads = n.max(1);
        self
    }

    /// Replaces the full scaling configuration.
    #[must_use]
    pub fn scale(mut self, scale: ScaleConfig) -> Self {
        self.scale = scale;
        self
    }

    /// Number of queued jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no jobs are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Queues one run of the named algorithm.
    ///
    /// # Errors
    ///
    /// [`HarnessError::UnknownAlgorithm`] for names not in the registry,
    /// [`HarnessError::UnsupportedInstance`] when the algorithm rejects
    /// the spec's kind (caught at queue time, before any work runs).
    pub fn push(
        &mut self,
        algorithm: &str,
        spec: InstanceSpec,
        config: RunConfig,
    ) -> Result<&mut Self, HarnessError> {
        let algo =
            find(algorithm).ok_or_else(|| HarnessError::UnknownAlgorithm(algorithm.to_string()))?;
        if !algo.supports(spec.kind()) {
            return Err(HarnessError::UnsupportedInstance {
                algorithm: algo.name().to_string(),
                kind: spec.kind(),
            });
        }
        self.jobs.push(Job {
            algorithm: algo,
            spec,
            config,
        });
        Ok(self)
    }

    /// Executes all queued jobs and returns their records in submission
    /// order.
    ///
    /// Unique specs are processed in shards of at most
    /// [`ScaleConfig::max_resident_instances`]: each shard's instances are
    /// built in parallel, all of the shard's jobs run in parallel against
    /// them, and the instances are dropped before the next shard builds.
    ///
    /// # Errors
    ///
    /// The first job error in submission order (instance build failures,
    /// verification failures).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (propagated by `std::thread::scope`).
    pub fn run(self) -> Result<Vec<RunRecord>, HarnessError> {
        let mut jobs = self.jobs;
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        // Fill engine chunk sizes left at "defer to the session".
        if self.scale.chunk_size != 0 {
            for job in &mut jobs {
                if job.config.engine.chunk_size == 0 {
                    job.config.engine.chunk_size = self.scale.chunk_size;
                }
            }
        }
        // Group jobs by spec so each unique instance is built once; jobs
        // themselves (including many seeds on one instance) all run in
        // parallel against the shared, Sync instances.
        let mut groups: Vec<InstanceSpec> = Vec::new();
        let mut group_of = vec![0usize; jobs.len()];
        for (i, job) in jobs.iter().enumerate() {
            group_of[i] = match groups.iter().position(|s| *s == job.spec) {
                Some(g) => g,
                None => {
                    groups.push(job.spec.clone());
                    groups.len() - 1
                }
            };
        }
        let hardware = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let threads = match self.scale.threads {
            0 => hardware,
            t => t,
        };
        let shard_size = self.scale.max_resident_instances.max(1);

        let results: Vec<Mutex<Option<Result<RunRecord, HarnessError>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        for shard_start in (0..groups.len()).step_by(shard_size) {
            let shard = &groups[shard_start..(shard_start + shard_size).min(groups.len())];

            // Phase 1: build this shard's instances, in parallel over specs.
            let next_group = AtomicUsize::new(0);
            let built: Vec<Mutex<Option<Result<Instance, HarnessError>>>> =
                shard.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..threads.min(shard.len()) {
                    scope.spawn(|| loop {
                        let g = next_group.fetch_add(1, Ordering::Relaxed);
                        if g >= shard.len() {
                            break;
                        }
                        let outcome = shard[g].build();
                        *built[g].lock().unwrap_or_else(PoisonError::into_inner) = Some(outcome);
                    });
                }
            });
            let instances: Vec<Result<Instance, HarnessError>> = built
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .unwrap_or_else(PoisonError::into_inner)
                        .unwrap_or_else(|| {
                            unreachable!("the build scope fills every slot before joining")
                        })
                })
                .collect();

            // Phase 2: run this shard's jobs, in parallel over jobs; the
            // shard's instances drop at the end of the iteration.
            let shard_jobs: Vec<usize> = (0..jobs.len())
                .filter(|&i| group_of[i] >= shard_start && group_of[i] < shard_start + shard.len())
                .collect();
            let next_job = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..threads.min(shard_jobs.len()) {
                    scope.spawn(|| loop {
                        let j = next_job.fetch_add(1, Ordering::Relaxed);
                        if j >= shard_jobs.len() {
                            break;
                        }
                        let i = shard_jobs[j];
                        let job = &jobs[i];
                        let outcome = match &instances[group_of[i] - shard_start] {
                            Ok(instance) => run_timed(job.algorithm, instance, &job.config),
                            Err(e) => Err(e.clone()),
                        };
                        *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(outcome);
                    });
                }
            });
        }

        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .unwrap_or_else(|| {
                        unreachable!("the run scope executes every job before joining")
                    })
            })
            .collect()
    }
}

/// The problem-first [`Session`] builder: queues work by *problem* —
/// named presets or declarative [`ProblemSpec`]s, planned end-to-end by
/// the planner (classify → resolve → concretize) — or by raw
/// algorithm/instance pairs, interchangeably. `build()` hands back the
/// assembled [`Session`].
///
/// ```
/// use lcl_harness::{InstanceSpec, RunConfig, Session};
/// use lcl_core::problem_spec::ProblemSpec;
///
/// let mut builder = Session::builder().size(600).base_config(RunConfig::seeded(9));
/// builder
///     .problem(&ProblemSpec::Coloring { colors: 3 })?   // planned: → linial
///     .preset("bw-all-equal")?                          // planned: → path-lcl
///     .spec("two-coloring", InstanceSpec::Path { n: 600 }, RunConfig::seeded(9))?;
/// let records = builder.build().run()?;
/// assert_eq!(records.len(), 3);
/// assert!(records.iter().all(|r| r.verified));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct SessionBuilder {
    session: Session,
    size: usize,
    base: RunConfig,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder::new()
    }
}

impl SessionBuilder {
    /// An empty builder with a 10 000-node default problem size and the
    /// default [`RunConfig`] as the planning base.
    #[must_use]
    pub fn new() -> Self {
        SessionBuilder {
            session: Session::new(),
            size: 10_000,
            base: RunConfig::default(),
        }
    }

    /// Sets the target instance size subsequent problems are planned at.
    #[must_use]
    pub fn size(mut self, n: usize) -> Self {
        self.size = n.max(1);
        self
    }

    /// Sets the base [`RunConfig`] (seed, verification, engine knobs) the
    /// planner extends with each problem's parameters.
    #[must_use]
    pub fn base_config(mut self, base: RunConfig) -> Self {
        self.base = base;
        self
    }

    /// Replaces the scaling configuration of the underlying session.
    #[must_use]
    pub fn scale(mut self, scale: ScaleConfig) -> Self {
        self.session.scale = scale;
        self
    }

    /// Queues a declarative problem: plans it (classify → resolve →
    /// concretize) at the builder's size and base config, then queues the
    /// resulting solver/instance/config job.
    ///
    /// # Errors
    ///
    /// Every [`PlanError`] of [`plan`] — malformed specs, unsolvable or
    /// undecidable problems, capability gaps.
    pub fn problem(&mut self, problem: &ProblemSpec) -> Result<&mut Self, PlanError> {
        let planned = plan(problem, self.size, &self.base)?;
        self.session.jobs.push(Job {
            algorithm: planned.solver,
            spec: planned.spec,
            config: planned.config,
        });
        Ok(self)
    }

    /// Queues a named preset problem (see
    /// [`ProblemSpec::presets`]).
    ///
    /// # Errors
    ///
    /// [`PlanError::BadProblem`] for unknown names, then as
    /// [`SessionBuilder::problem`].
    pub fn preset(&mut self, name: &str) -> Result<&mut Self, PlanError> {
        let problem = ProblemSpec::preset(name)
            .ok_or_else(|| PlanError::BadProblem(format!("unknown preset `{name}`")))?;
        self.problem(&problem)
    }

    /// Queues a raw algorithm/instance pair, exactly like
    /// [`Session::push`] — the escape hatch for workloads that name
    /// their algorithm directly.
    ///
    /// # Errors
    ///
    /// As for [`Session::push`].
    pub fn spec(
        &mut self,
        algorithm: &str,
        spec: InstanceSpec,
        config: RunConfig,
    ) -> Result<&mut Self, HarnessError> {
        self.session.push(algorithm, spec, config)?;
        Ok(self)
    }

    /// Number of queued jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.session.len()
    }

    /// True when no jobs are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.session.is_empty()
    }

    /// The assembled session.
    #[must_use]
    pub fn build(self) -> Session {
        self.session
    }
}

/// One sweep point: the summary of a [`RunRecord`] without the per-node
/// round vector.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Rendered instance spec.
    pub spec: String,
    /// Actual node count.
    pub n: usize,
    /// Seed of the run.
    pub seed: u64,
    /// Node-averaged rounds.
    pub node_averaged: f64,
    /// Worst-case rounds.
    pub worst_case: u64,
    /// Median termination round.
    pub median_round: u64,
    /// Node-averaged rounds over the waiting mass.
    pub waiting_averaged: f64,
    /// Wall-clock milliseconds of the run.
    pub elapsed_ms: f64,
}

impl From<&RunRecord> for SweepPoint {
    fn from(r: &RunRecord) -> Self {
        SweepPoint {
            spec: r.spec.clone(),
            n: r.n,
            seed: r.seed,
            node_averaged: r.node_averaged,
            worst_case: r.worst_case,
            median_round: r.median_round,
            waiting_averaged: r.waiting_averaged,
            elapsed_ms: r.elapsed_ms,
        }
    }
}

/// A fitted power law `y ≈ coefficient · n^exponent`.
#[derive(Debug, Clone, Serialize)]
pub struct FitSummary {
    /// Fitted exponent.
    pub exponent: f64,
    /// Fitted multiplicative constant.
    pub coefficient: f64,
    /// Goodness of fit in log–log space.
    pub r_squared: f64,
}

/// The serializable outcome of one sweep: per-point summaries plus power
/// law fits of the node-averaged and waiting-mass curves over `n`.
#[derive(Debug, Clone, Serialize)]
pub struct SweepReport {
    /// Registry name of the swept algorithm.
    pub algorithm: String,
    /// One summary per run, in submission order.
    pub points: Vec<SweepPoint>,
    /// `node_averaged ≈ c · n^e` fit (absent with fewer than two distinct
    /// sizes).
    pub fit: Option<FitSummary>,
    /// Same fit over the waiting mass.
    pub waiting_fit: Option<FitSummary>,
}

impl SweepReport {
    /// Summarizes a slice of records (typically one algorithm's size
    /// sweep out of a [`Session::run`] batch).
    #[must_use]
    pub fn from_records(algorithm: &str, records: &[RunRecord]) -> Self {
        let points: Vec<SweepPoint> = records.iter().map(SweepPoint::from).collect();
        let distinct_sizes = {
            let mut sizes: Vec<usize> = points.iter().map(|p| p.n).collect();
            sizes.sort_unstable();
            sizes.dedup();
            sizes.len()
        };
        let (fit, waiting_fit) = if distinct_sizes >= 2 {
            let data: Vec<(f64, f64)> = points
                .iter()
                .map(|p| (p.n as f64, p.node_averaged.max(1e-9)))
                .collect();
            let wdata: Vec<(f64, f64)> = points
                .iter()
                .map(|p| (p.n as f64, p.waiting_averaged.max(1e-9)))
                .collect();
            (
                Some(to_summary(fit_power_law(&data))),
                Some(to_summary(fit_power_law(&wdata))),
            )
        } else {
            (None, None)
        };
        SweepReport {
            algorithm: algorithm.to_string(),
            points,
            fit,
            waiting_fit,
        }
    }
}

fn to_summary(fit: lcl_local::math::PowerLawFit) -> FitSummary {
    FitSummary {
        exponent: fit.exponent,
        coefficient: fit.coefficient,
        r_squared: fit.r_squared,
    }
}

/// Runs one size-swept batch of a single algorithm: for each `(spec,
/// seed)` pair one job, summarized into a [`SweepReport`].
///
/// # Errors
///
/// As for [`Session::push`] and [`Session::run`].
pub fn sweep(
    algorithm: &str,
    points: impl IntoIterator<Item = (InstanceSpec, u64)>,
) -> Result<SweepReport, HarnessError> {
    let mut session = Session::new();
    for (spec, seed) in points {
        session.push(algorithm, spec, RunConfig::seeded(seed))?;
    }
    let records = session.run()?;
    Ok(SweepReport::from_records(algorithm, &records))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_returns_in_submission_order() {
        let mut s = Session::new();
        for n in [64usize, 32, 128] {
            s.push(
                "two-coloring",
                InstanceSpec::Path { n },
                RunConfig::seeded(1),
            )
            .unwrap();
        }
        let records = s.run().unwrap();
        assert_eq!(
            records.iter().map(|r| r.n).collect::<Vec<_>>(),
            vec![64, 32, 128]
        );
        assert!(records.iter().all(|r| r.elapsed_ms >= 0.0));
    }

    #[test]
    fn seed_replicated_jobs_on_one_spec_keep_order() {
        // Many seeds on one instance: one build, jobs fan out across
        // threads, results still in submission order.
        let mut s = Session::new().threads(4);
        for seed in [9u64, 3, 7, 1] {
            s.push(
                "randomized",
                InstanceSpec::Path { n: 512 },
                RunConfig::seeded(seed),
            )
            .unwrap();
        }
        let records = s.run().unwrap();
        assert_eq!(
            records.iter().map(|r| r.seed).collect::<Vec<_>>(),
            vec![9, 3, 7, 1]
        );
    }

    #[test]
    fn sharded_streaming_preserves_order_and_results() {
        // Five distinct specs with max_resident_instances = 2 forces three
        // shards; records must still match the unsharded run, in order.
        let queue = |mut s: Session| {
            for n in [64usize, 96, 32, 128, 80] {
                s.push(
                    "two-coloring",
                    InstanceSpec::Path { n },
                    RunConfig::seeded(n as u64),
                )
                .unwrap();
            }
            s
        };
        let all_at_once = queue(Session::new().scale(ScaleConfig {
            max_resident_instances: usize::MAX,
            ..ScaleConfig::default()
        }))
        .run()
        .unwrap();
        let streamed = queue(Session::new().scale(ScaleConfig {
            max_resident_instances: 2,
            threads: 3,
            ..ScaleConfig::default()
        }))
        .run()
        .unwrap();
        assert_eq!(all_at_once.len(), streamed.len());
        for (a, b) in all_at_once.iter().zip(&streamed) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.labels, b.labels);
            assert_eq!(a.rounds, b.rounds);
        }
    }

    #[test]
    fn session_chunk_size_fills_deferred_engine_jobs() {
        use lcl_local::engine::EngineConfig;
        let mut s = Session::new().scale(ScaleConfig {
            chunk_size: 64,
            ..ScaleConfig::default()
        });
        s.push(
            "two-coloring",
            InstanceSpec::Path { n: 128 },
            RunConfig::seeded(1).with_engine(EngineConfig::default()),
        )
        .unwrap();
        let records = s.run().unwrap();
        assert_eq!(records[0].engine, "chunked");
        assert!(records[0].verified);
    }

    #[test]
    fn unknown_algorithm_rejected_at_queue_time() {
        let mut s = Session::new();
        let err = s
            .push("nope", InstanceSpec::Path { n: 4 }, RunConfig::default())
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, HarnessError::UnknownAlgorithm(_)));
    }

    #[test]
    fn mismatched_spec_rejected_at_queue_time() {
        let mut s = Session::new();
        let err = s
            .push(
                "two-coloring",
                InstanceSpec::RandomTree {
                    n: 32,
                    max_degree: 3,
                    seed: 1,
                },
                RunConfig::default(),
            )
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, HarnessError::UnsupportedInstance { .. }));
    }

    #[test]
    fn builder_mixes_problems_presets_and_raw_specs() {
        let mut builder = Session::builder()
            .size(300)
            .base_config(RunConfig::seeded(4));
        builder
            .problem(&ProblemSpec::Coloring { colors: 2 })
            .unwrap()
            .preset("bw-all-equal")
            .unwrap()
            .spec(
                "randomized",
                InstanceSpec::Path { n: 300 },
                RunConfig::seeded(4),
            )
            .unwrap();
        assert_eq!(builder.len(), 3);
        assert!(!builder.is_empty());
        let records = builder.build().run().unwrap();
        assert_eq!(
            records
                .iter()
                .map(|r| r.algorithm.as_str())
                .collect::<Vec<_>>(),
            vec!["two-coloring", "path-lcl", "randomized"]
        );
        assert!(records.iter().all(|r| r.verified));
    }

    #[test]
    fn builder_surfaces_plan_errors() {
        let mut builder = Session::builder();
        let err = builder.preset("no-such-problem").map(|_| ()).unwrap_err();
        assert!(matches!(err, PlanError::BadProblem(_)), "{err}");
        let err = builder
            .problem(&ProblemSpec::Coloring { colors: 1 })
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, PlanError::BadProblem(_)), "{err}");
        assert!(builder.is_empty());
    }

    #[test]
    fn sweep_fits_the_linear_baseline() {
        let report = sweep(
            "two-coloring",
            [500usize, 1_000, 2_000]
                .into_iter()
                .map(|n| (InstanceSpec::Path { n }, n as u64)),
        )
        .unwrap();
        assert_eq!(report.points.len(), 3);
        let fit = report.fit.expect("three sizes fit");
        assert!(fit.exponent > 0.9, "2-coloring is Θ(n), got {fit:?}");
    }
}
