//! Batched, seeded, parallel execution of registry algorithms.

use crate::algorithm::{run_timed, Algorithm, RunConfig, RunRecord};
use crate::instance::{HarnessError, Instance, InstanceSpec};
use crate::registry::find;
use lcl_local::math::fit_power_law;
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One queued execution: an algorithm, an instance spec, and a config.
pub struct Job {
    /// The resolved registry entry.
    pub algorithm: &'static dyn Algorithm,
    /// The instance to run on.
    pub spec: InstanceSpec,
    /// Seed and parameter knobs.
    pub config: RunConfig,
}

/// A batch runner: queue jobs, then execute them on a std-thread pool.
///
/// Jobs with equal specs share one built instance (and therefore its
/// cached peelings), so a size-swept, seed-replicated batch builds each
/// topology exactly once. Results come back in submission order.
///
/// ```
/// use lcl_harness::{InstanceSpec, RunConfig, Session};
///
/// let mut session = Session::new();
/// for seed in 0..4u64 {
///     session.push(
///         "randomized",
///         InstanceSpec::Path { n: 2_000 },
///         RunConfig::seeded(seed),
///     )?;
/// }
/// let records = session.run()?;
/// assert_eq!(records.len(), 4);
/// assert!(records.iter().all(|r| r.verified));
/// # Ok::<(), lcl_harness::HarnessError>(())
/// ```
#[derive(Default)]
pub struct Session {
    jobs: Vec<Job>,
    threads: Option<usize>,
}

impl Session {
    /// An empty session.
    #[must_use]
    pub fn new() -> Self {
        Session {
            jobs: Vec::new(),
            threads: None,
        }
    }

    /// Caps the worker thread count (default: available parallelism).
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n.max(1));
        self
    }

    /// Number of queued jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no jobs are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Queues one run of the named algorithm.
    ///
    /// # Errors
    ///
    /// [`HarnessError::UnknownAlgorithm`] for names not in the registry,
    /// [`HarnessError::UnsupportedInstance`] when the algorithm rejects
    /// the spec's kind (caught at queue time, before any work runs).
    pub fn push(
        &mut self,
        algorithm: &str,
        spec: InstanceSpec,
        config: RunConfig,
    ) -> Result<&mut Self, HarnessError> {
        let algo =
            find(algorithm).ok_or_else(|| HarnessError::UnknownAlgorithm(algorithm.to_string()))?;
        if !algo.supports(spec.kind()) {
            return Err(HarnessError::UnsupportedInstance {
                algorithm: algo.name().to_string(),
                kind: spec.kind(),
            });
        }
        self.jobs.push(Job {
            algorithm: algo,
            spec,
            config,
        });
        Ok(self)
    }

    /// Executes all queued jobs and returns their records in submission
    /// order.
    ///
    /// # Errors
    ///
    /// The first job error in submission order (instance build failures,
    /// verification failures).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (propagated by `std::thread::scope`).
    pub fn run(self) -> Result<Vec<RunRecord>, HarnessError> {
        let jobs = self.jobs;
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        // Group jobs by spec so each unique instance is built once; jobs
        // themselves (including many seeds on one instance) all run in
        // parallel against the shared, Sync instances.
        let mut groups: Vec<InstanceSpec> = Vec::new();
        let mut group_of = vec![0usize; jobs.len()];
        for (i, job) in jobs.iter().enumerate() {
            group_of[i] = match groups.iter().position(|s| *s == job.spec) {
                Some(g) => g,
                None => {
                    groups.push(job.spec.clone());
                    groups.len() - 1
                }
            };
        }
        let hardware = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let threads = self.threads.unwrap_or(hardware).max(1);

        // Phase 1: build every unique instance, in parallel over specs.
        let next_group = AtomicUsize::new(0);
        let built: Vec<Mutex<Option<Result<Instance, HarnessError>>>> =
            groups.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads.min(groups.len()) {
                scope.spawn(|| loop {
                    let g = next_group.fetch_add(1, Ordering::Relaxed);
                    if g >= groups.len() {
                        break;
                    }
                    let outcome = groups[g].build();
                    *built[g].lock().expect("build slot poisoned") = Some(outcome);
                });
            }
        });
        let instances: Vec<Result<Instance, HarnessError>> = built
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("build slot poisoned")
                    .expect("every instance was built")
            })
            .collect();

        // Phase 2: execute all jobs, in parallel over jobs.
        let next_job = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Result<RunRecord, HarnessError>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads.min(jobs.len()) {
                scope.spawn(|| loop {
                    let i = next_job.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    let job = &jobs[i];
                    let outcome = match &instances[group_of[i]] {
                        Ok(instance) => run_timed(job.algorithm, instance, &job.config),
                        Err(e) => Err(e.clone()),
                    };
                    *results[i].lock().expect("result slot poisoned") = Some(outcome);
                });
            }
        });

        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every job was executed")
            })
            .collect()
    }
}

/// One sweep point: the summary of a [`RunRecord`] without the per-node
/// round vector.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Rendered instance spec.
    pub spec: String,
    /// Actual node count.
    pub n: usize,
    /// Seed of the run.
    pub seed: u64,
    /// Node-averaged rounds.
    pub node_averaged: f64,
    /// Worst-case rounds.
    pub worst_case: u64,
    /// Node-averaged rounds over the waiting mass.
    pub waiting_averaged: f64,
    /// Wall-clock milliseconds of the run.
    pub elapsed_ms: f64,
}

impl From<&RunRecord> for SweepPoint {
    fn from(r: &RunRecord) -> Self {
        SweepPoint {
            spec: r.spec.clone(),
            n: r.n,
            seed: r.seed,
            node_averaged: r.node_averaged,
            worst_case: r.worst_case,
            waiting_averaged: r.waiting_averaged,
            elapsed_ms: r.elapsed_ms,
        }
    }
}

/// A fitted power law `y ≈ coefficient · n^exponent`.
#[derive(Debug, Clone, Serialize)]
pub struct FitSummary {
    /// Fitted exponent.
    pub exponent: f64,
    /// Fitted multiplicative constant.
    pub coefficient: f64,
    /// Goodness of fit in log–log space.
    pub r_squared: f64,
}

/// The serializable outcome of one sweep: per-point summaries plus power
/// law fits of the node-averaged and waiting-mass curves over `n`.
#[derive(Debug, Clone, Serialize)]
pub struct SweepReport {
    /// Registry name of the swept algorithm.
    pub algorithm: String,
    /// One summary per run, in submission order.
    pub points: Vec<SweepPoint>,
    /// `node_averaged ≈ c · n^e` fit (absent with fewer than two distinct
    /// sizes).
    pub fit: Option<FitSummary>,
    /// Same fit over the waiting mass.
    pub waiting_fit: Option<FitSummary>,
}

impl SweepReport {
    /// Summarizes a slice of records (typically one algorithm's size
    /// sweep out of a [`Session::run`] batch).
    #[must_use]
    pub fn from_records(algorithm: &str, records: &[RunRecord]) -> Self {
        let points: Vec<SweepPoint> = records.iter().map(SweepPoint::from).collect();
        let distinct_sizes = {
            let mut sizes: Vec<usize> = points.iter().map(|p| p.n).collect();
            sizes.sort_unstable();
            sizes.dedup();
            sizes.len()
        };
        let (fit, waiting_fit) = if distinct_sizes >= 2 {
            let data: Vec<(f64, f64)> = points
                .iter()
                .map(|p| (p.n as f64, p.node_averaged.max(1e-9)))
                .collect();
            let wdata: Vec<(f64, f64)> = points
                .iter()
                .map(|p| (p.n as f64, p.waiting_averaged.max(1e-9)))
                .collect();
            (
                Some(to_summary(fit_power_law(&data))),
                Some(to_summary(fit_power_law(&wdata))),
            )
        } else {
            (None, None)
        };
        SweepReport {
            algorithm: algorithm.to_string(),
            points,
            fit,
            waiting_fit,
        }
    }
}

fn to_summary(fit: lcl_local::math::PowerLawFit) -> FitSummary {
    FitSummary {
        exponent: fit.exponent,
        coefficient: fit.coefficient,
        r_squared: fit.r_squared,
    }
}

/// Runs one size-swept batch of a single algorithm: for each `(spec,
/// seed)` pair one job, summarized into a [`SweepReport`].
///
/// # Errors
///
/// As for [`Session::push`] and [`Session::run`].
pub fn sweep(
    algorithm: &str,
    points: impl IntoIterator<Item = (InstanceSpec, u64)>,
) -> Result<SweepReport, HarnessError> {
    let mut session = Session::new();
    for (spec, seed) in points {
        session.push(algorithm, spec, RunConfig::seeded(seed))?;
    }
    let records = session.run()?;
    Ok(SweepReport::from_records(algorithm, &records))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_returns_in_submission_order() {
        let mut s = Session::new();
        for n in [64usize, 32, 128] {
            s.push(
                "two-coloring",
                InstanceSpec::Path { n },
                RunConfig::seeded(1),
            )
            .unwrap();
        }
        let records = s.run().unwrap();
        assert_eq!(
            records.iter().map(|r| r.n).collect::<Vec<_>>(),
            vec![64, 32, 128]
        );
        assert!(records.iter().all(|r| r.elapsed_ms >= 0.0));
    }

    #[test]
    fn seed_replicated_jobs_on_one_spec_keep_order() {
        // Many seeds on one instance: one build, jobs fan out across
        // threads, results still in submission order.
        let mut s = Session::new().threads(4);
        for seed in [9u64, 3, 7, 1] {
            s.push(
                "randomized",
                InstanceSpec::Path { n: 512 },
                RunConfig::seeded(seed),
            )
            .unwrap();
        }
        let records = s.run().unwrap();
        assert_eq!(
            records.iter().map(|r| r.seed).collect::<Vec<_>>(),
            vec![9, 3, 7, 1]
        );
    }

    #[test]
    fn unknown_algorithm_rejected_at_queue_time() {
        let mut s = Session::new();
        let err = s
            .push("nope", InstanceSpec::Path { n: 4 }, RunConfig::default())
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, HarnessError::UnknownAlgorithm(_)));
    }

    #[test]
    fn mismatched_spec_rejected_at_queue_time() {
        let mut s = Session::new();
        let err = s
            .push(
                "two-coloring",
                InstanceSpec::RandomTree {
                    n: 32,
                    max_degree: 3,
                    seed: 1,
                },
                RunConfig::default(),
            )
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, HarnessError::UnsupportedInstance { .. }));
    }

    #[test]
    fn sweep_fits_the_linear_baseline() {
        let report = sweep(
            "two-coloring",
            [500usize, 1_000, 2_000]
                .into_iter()
                .map(|n| (InstanceSpec::Path { n }, n as u64)),
        )
        .unwrap();
        assert_eq!(report.points.len(), 3);
        let fit = report.fit.expect("three sizes fit");
        assert!(fit.exponent > 0.9, "2-coloring is Θ(n), got {fit:?}");
    }
}
