//! Golden-record serialization tests.
//!
//! One small, fully deterministic [`RunRecord`] per landscape class (one
//! per registry algorithm, on its smallest spec, fixed seed) is checked in
//! as a JSON fixture under `tests/golden/`. The test re-runs each
//! algorithm and asserts *byte-stable* serialization, catching accidental
//! schema drift (field added/renamed/reordered), label-encoding drift, and
//! determinism drift (an algorithm whose output stops being a pure
//! function of its seed) in `report.rs`/`session.rs`-adjacent code.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p lcl_harness --test golden_records
//! ```
//!
//! and review the fixture diff like any other code change.

use lcl_harness::{find, registry, InstanceSpec, RunConfig};
use std::path::PathBuf;

/// Seed fixed for every golden run; `elapsed_ms` stays `0.0` because the
/// fixtures go through `Algorithm::run`, not `run_timed`.
const GOLDEN_SEED: u64 = 42;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

#[test]
fn run_records_serialize_byte_stably() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    if update {
        std::fs::create_dir_all(&dir).expect("create golden dir");
    }
    let mut failures = Vec::new();
    for algo in registry() {
        let spec = algo.smallest_spec();
        let instance = spec.build().expect("smallest spec builds");
        let record = algo
            .run(&instance, &RunConfig::seeded(GOLDEN_SEED))
            .expect("smallest spec runs");
        let mut json = serde_json::to_string(&record).expect("serializable");
        json.push('\n');
        let path = dir.join(format!("{}.json", algo.name()));
        if update {
            std::fs::write(&path, &json).expect("write fixture");
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); run with UPDATE_GOLDEN=1 to create it",
                path.display()
            )
        });
        if expected != json {
            failures.push(algo.name());
        }
    }
    assert!(
        failures.is_empty(),
        "RunRecord serialization drifted for {failures:?}; if intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the fixture diff"
    );
}

/// One deterministic fixture per adversarial shape family, each run by a
/// free-tree solver that supports the `Adversarial` kind. Same
/// `UPDATE_GOLDEN=1` regeneration protocol as the registry fixtures.
fn adversarial_golden_cases() -> Vec<(&'static str, &'static str, InstanceSpec)> {
    vec![
        (
            "adversarial-caterpillar",
            "dfree-a",
            InstanceSpec::Caterpillar { spine: 6, legs: 2 },
        ),
        (
            "adversarial-ladder",
            "fast-decomposition",
            InstanceSpec::Ladder { rungs: 10 },
        ),
        (
            "adversarial-broom",
            "labeling-solver",
            InstanceSpec::Broom {
                spine: 8,
                bristles: 6,
            },
        ),
        (
            "adversarial-spider",
            "dfree-a",
            InstanceSpec::Spider {
                legs: 4,
                leg_len: 6,
            },
        ),
        (
            "adversarial-complete-ary",
            "fast-decomposition",
            InstanceSpec::CompleteAry {
                arity: 3,
                height: 3,
            },
        ),
        (
            "adversarial-heavy-path",
            "labeling-solver",
            InstanceSpec::HeavyPath { n: 48 },
        ),
    ]
}

#[test]
fn adversarial_records_serialize_byte_stably() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    if update {
        std::fs::create_dir_all(&dir).expect("create golden dir");
    }
    let mut failures = Vec::new();
    for (fixture, algo_name, spec) in adversarial_golden_cases() {
        let algo = find(algo_name).expect("registered solver");
        let instance = spec.build().expect("adversarial spec builds");
        let record = algo
            .run(&instance, &RunConfig::seeded(GOLDEN_SEED))
            .unwrap_or_else(|e| panic!("{algo_name} on {}: {e}", spec.describe()));
        assert!(record.verified, "{fixture}: golden run must verify");
        let mut json = serde_json::to_string(&record).expect("serializable");
        json.push('\n');
        let path = dir.join(format!("{fixture}.json"));
        if update {
            std::fs::write(&path, &json).expect("write fixture");
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); run with UPDATE_GOLDEN=1 to create it",
                path.display()
            )
        });
        if expected != json {
            failures.push(fixture);
        }
    }
    assert!(
        failures.is_empty(),
        "adversarial RunRecord serialization drifted for {failures:?}; if \
         intentional, regenerate with UPDATE_GOLDEN=1 and review the fixture diff"
    );
}

#[test]
fn golden_runs_are_deterministic_across_repetition() {
    // The byte-stability of the fixtures relies on every algorithm being a
    // pure function of (spec, seed); check it directly for two runs in one
    // process (fresh instances, shared peeling cache).
    for algo in registry() {
        let spec = algo.smallest_spec();
        let a = algo
            .run(&spec.build().unwrap(), &RunConfig::seeded(GOLDEN_SEED))
            .unwrap();
        let b = algo
            .run(&spec.build().unwrap(), &RunConfig::seeded(GOLDEN_SEED))
            .unwrap();
        assert_eq!(a.labels, b.labels, "{} labels drift", algo.name());
        assert_eq!(a.rounds, b.rounds, "{} rounds drift", algo.name());
    }
}
