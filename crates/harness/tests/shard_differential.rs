//! Differential suite for the partitioned out-of-core executor
//! (`lcl_shard`).
//!
//! Every registry algorithm runs through its production adapter twice: once
//! on the monolithic chunked engine (the baseline) and once per point of
//! the `ShardConfig` grid — shard counts `{1, 2, 4, 7}` × residency limits
//! `max_resident ∈ {1, 2, 0 (= all)}` × bit-`packing` on/off — with worker
//! threads alternating across seeds. Labels, per-node rounds, and
//! termination histograms must be **bit-identical** to the baseline at
//! every grid point; a small chunk size keeps shard boundaries non-trivial
//! even on the small differential instances, and `max_resident = 1` forces
//! real spill-pool traffic through every run. CI runs this suite plain and
//! under `--features arena-check` (the sharded double-write detector).
//!
//! The grid literals double as ground truth for the analyzer's `LCL-X05`
//! crosscheck: every `ShardConfig` knob (`shards`, `max_resident`,
//! `packing`) must stay exercised here.

use lcl_core::problem_spec::ProblemSpec;
use lcl_harness::{registry, Algorithm, InstanceSpec, RunConfig, RunRecord};
use lcl_local::engine::{EngineConfig, ShardConfig};

/// Small enough that shard differentials stay fast, small enough relative
/// to the specs below that every shard count in the grid yields several
/// chunks per shard.
const CHUNK_SIZE: usize = 5;

/// The `ShardConfig` grid of the acceptance criteria.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];
/// `0` resolves to "all shards resident" (no spilling).
const MAX_RESIDENTS: [usize; 3] = [1, 2, 0];
const PACKING: [bool; 2] = [true, false];

fn engine(shard: Option<ShardConfig>, threads: usize) -> EngineConfig {
    EngineConfig {
        chunk_size: CHUNK_SIZE,
        threads,
        check_arena: false,
        shard,
    }
}

fn run_with(
    algo: &dyn Algorithm,
    spec: &InstanceSpec,
    problem: Option<&ProblemSpec>,
    seed: u64,
    shard: Option<ShardConfig>,
    threads: usize,
) -> RunRecord {
    let instance = spec
        .build()
        .unwrap_or_else(|e| panic!("{}: {} failed to build: {e}", algo.name(), spec.describe()));
    let mut cfg = RunConfig::seeded(seed).with_engine(engine(shard, threads));
    if let Some(p) = problem {
        cfg = cfg.with_problem(p.clone());
    }
    algo.run(&instance, &cfg)
        .unwrap_or_else(|e| panic!("{}: {} failed to run: {e}", algo.name(), spec.describe()))
}

/// Runs the full shard grid for one algorithm on one spec and demands
/// bit-identity with the monolithic baseline everywhere.
fn shard_grid_matches(
    algo: &'static dyn Algorithm,
    spec: InstanceSpec,
    problem: Option<ProblemSpec>,
) {
    for seed in 0..2u64 {
        let threads = 1 + (seed % 2) as usize;
        let baseline = run_with(algo, &spec, problem.as_ref(), seed, None, threads);
        assert_eq!(baseline.engine, "chunked");
        for shards in SHARD_COUNTS {
            for max_resident in MAX_RESIDENTS {
                for packing in PACKING {
                    let shard = ShardConfig {
                        shards,
                        max_resident,
                        packing,
                    };
                    let ctx = format!(
                        "{} on {} seed {seed} threads {threads} {shard:?}",
                        algo.name(),
                        spec.describe()
                    );
                    let record =
                        run_with(algo, &spec, problem.as_ref(), seed, Some(shard), threads);
                    assert_eq!(record.engine, "sharded", "{ctx}");
                    assert!(record.verified, "{ctx}: verification");
                    assert_eq!(record.labels, baseline.labels, "{ctx}: labels");
                    assert_eq!(record.rounds, baseline.rounds, "{ctx}: rounds");
                    assert_eq!(record.histogram, baseline.histogram, "{ctx}: histogram");
                    assert_eq!(record.profile(), baseline.profile(), "{ctx}: profile");
                    assert_eq!(record.median_round, baseline.median_round, "{ctx}: median");
                    assert_eq!(
                        record.node_averaged, baseline.node_averaged,
                        "{ctx}: node-averaged"
                    );
                    assert!(
                        record.peak_arena_bytes > 0,
                        "{ctx}: sharded runs report their arena high-water mark"
                    );
                }
            }
        }
    }
}

fn by_name(name: &str) -> &'static dyn Algorithm {
    *registry()
        .iter()
        .find(|a| a.name() == name)
        .unwrap_or_else(|| panic!("`{name}` not in registry"))
}

// One test per algorithm so the suite parallelizes across test threads and
// a divergence names its algorithm in the failing test.

#[test]
fn shard_differential_two_coloring() {
    shard_grid_matches(by_name("two-coloring"), InstanceSpec::Path { n: 41 }, None);
}

#[test]
fn shard_differential_linial() {
    shard_grid_matches(by_name("linial"), InstanceSpec::Path { n: 41 }, None);
}

#[test]
fn shard_differential_randomized() {
    shard_grid_matches(by_name("randomized"), InstanceSpec::Path { n: 41 }, None);
}

#[test]
fn shard_differential_generic_coloring() {
    shard_grid_matches(
        by_name("generic-coloring"),
        InstanceSpec::Theorem11 { n: 400, k: 2 },
        None,
    );
}

#[test]
fn shard_differential_apoly() {
    shard_grid_matches(by_name("apoly"), by_name("apoly").smallest_spec(), None);
}

#[test]
fn shard_differential_a35() {
    shard_grid_matches(by_name("a35"), by_name("a35").smallest_spec(), None);
}

#[test]
fn shard_differential_weight_augmented() {
    shard_grid_matches(
        by_name("weight-augmented"),
        by_name("weight-augmented").smallest_spec(),
        None,
    );
}

#[test]
fn shard_differential_dfree_a() {
    shard_grid_matches(
        by_name("dfree-a"),
        InstanceSpec::BalancedWeight { w: 64, delta: 3 },
        None,
    );
}

#[test]
fn shard_differential_fast_decomposition() {
    shard_grid_matches(
        by_name("fast-decomposition"),
        InstanceSpec::BalancedWeight { w: 64, delta: 3 },
        None,
    );
}

#[test]
fn shard_differential_labeling_solver() {
    shard_grid_matches(
        by_name("labeling-solver"),
        InstanceSpec::RandomTree {
            n: 48,
            max_degree: 4,
            seed: 3,
        },
        None,
    );
}

#[test]
fn shard_differential_path_lcl() {
    shard_grid_matches(by_name("path-lcl"), InstanceSpec::Path { n: 41 }, None);
}

#[test]
fn shard_differential_path_lcl_rigid_table() {
    // 2-coloring decides Linear: the rigid endpoint-wave protocol streams
    // hop counts across every shard boundary for Θ(n) rounds — the
    // hardest halo-exchange workload in the registry.
    shard_grid_matches(
        by_name("path-lcl"),
        InstanceSpec::Path { n: 41 },
        Some(ProblemSpec::Coloring { colors: 2 }),
    );
}

#[test]
fn shard_differential_adversarial_shape() {
    // A spider's hub concentrates cut edges on one shard boundary node;
    // the halo routing must still be exact.
    shard_grid_matches(
        by_name("labeling-solver"),
        InstanceSpec::Spider {
            legs: 5,
            leg_len: 9,
        },
        None,
    );
}

#[test]
fn every_registry_algorithm_is_covered() {
    // The per-algorithm tests above must never silently fall out of sync
    // with the registry.
    let covered = [
        "two-coloring",
        "linial",
        "randomized",
        "generic-coloring",
        "apoly",
        "a35",
        "weight-augmented",
        "dfree-a",
        "fast-decomposition",
        "labeling-solver",
        "path-lcl",
    ];
    let mut names: Vec<&str> = registry().iter().map(|a| a.name()).collect();
    names.sort_unstable();
    let mut expected: Vec<&str> = covered.to_vec();
    expected.sort_unstable();
    assert_eq!(names, expected);
}

#[test]
fn spilling_is_actually_exercised() {
    // `max_resident = 1` with 4 shards must beat the all-resident peak:
    // proof the grid's residency limits genuinely spill instead of
    // silently keeping everything in memory.
    let algo = by_name("two-coloring");
    let spec = InstanceSpec::Path { n: 41 };
    let spilled = run_with(
        algo,
        &spec,
        None,
        0,
        Some(ShardConfig {
            shards: 4,
            max_resident: 1,
            packing: false,
        }),
        1,
    );
    let all = run_with(
        algo,
        &spec,
        None,
        0,
        Some(ShardConfig {
            shards: 4,
            max_resident: 0,
            packing: false,
        }),
        1,
    );
    assert!(
        spilled.peak_arena_bytes < all.peak_arena_bytes,
        "spilling must lower the high-water mark ({} vs {})",
        spilled.peak_arena_bytes,
        all.peak_arena_bytes
    );
    assert_eq!(spilled.labels, all.labels);
    assert_eq!(spilled.rounds, all.rounds);
}
