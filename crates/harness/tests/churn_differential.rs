//! Differential suite for dynamic-tree churn workloads.
//!
//! For every registry solver, a [`DynamicSession`] steps through churn
//! scripts on a solver-appropriate base instance, and after *every* batch
//! the session's (incrementally spliced where the solver is local)
//! labeling must be bit-identical — labels *and* per-node rounds — to a
//! from-scratch re-solve of the current tree under the same session
//! scope. The sweep covers the three preset script mixes, 8 seeds, chunk
//! sizes `{1, 7, 64, n}`, and 1–2 worker threads, with the arena checker
//! on throughout. Zero divergence is the acceptance bar.
//!
//! Sessions are deterministic given `(script, seed)`, so the suite also
//! demands that all chunk-size/thread variants of one session agree with
//! each other batch-by-batch — chunk invariance must survive the
//! dirty-region path, not just whole-tree runs.

use lcl_core::churn::ChurnScript;
use lcl_graph::generators::{
    broom, caterpillar, complete_ary_tree, heavy_path_skewed, ladder, spider,
};
use lcl_harness::{find, registry, DynamicSession, InstanceSpec, RunConfig};
use lcl_local::engine::EngineConfig;

/// The preset mixes, trimmed to a volume the full sweep can afford.
fn scripts() -> Vec<ChurnScript> {
    ChurnScript::presets()
        .into_iter()
        .map(|s| s.with_volume(2, 10))
        .collect()
}

/// A churn-appropriate base instance per solver: plain-tree solvers get
/// genuine surgery (paths large enough that the local solvers' radius-
/// `2T + 1` region is a strict subset, adversarial shapes for the
/// free-tree solvers); construction-bound solvers ride parameter mode on
/// their smallest spec.
fn base_spec(name: &str) -> InstanceSpec {
    match name {
        "two-coloring" => InstanceSpec::Path { n: 120 },
        "linial" => InstanceSpec::Path { n: 600 },
        "randomized" => InstanceSpec::Path { n: 700 },
        "generic-coloring" => InstanceSpec::Theorem11 { n: 400, k: 2 },
        "dfree-a" => InstanceSpec::Spider {
            legs: 3,
            leg_len: 8,
        },
        "fast-decomposition" => InstanceSpec::Caterpillar { spine: 8, legs: 2 },
        "labeling-solver" => InstanceSpec::CompleteAry {
            arity: 2,
            height: 4,
        },
        "path-lcl" => InstanceSpec::Path { n: 96 },
        other => find(other)
            .unwrap_or_else(|| panic!("`{other}` not in registry"))
            .smallest_spec(),
    }
}

/// Steps one session to completion, checking the incremental state
/// against the from-scratch baseline after every batch; returns the
/// per-batch labels and rounds for cross-variant comparison.
fn run_session(
    name: &str,
    script: &ChurnScript,
    seed: u64,
    chunk_size: usize,
    threads: usize,
) -> BatchTrace {
    let cfg = RunConfig::seeded(seed).with_engine(EngineConfig {
        chunk_size,
        threads,
        check_arena: true,
        shard: None,
    });
    let ctx = format!(
        "{name} × {} seed {seed} cs={chunk_size} t={threads}",
        script.name
    );
    let mut session = DynamicSession::new(name, base_spec(name), script.clone(), cfg)
        .unwrap_or_else(|e| panic!("{ctx}: session failed to open: {e}"));
    let mut labels_by_batch = Vec::new();
    let mut rounds_by_batch = Vec::new();
    while session.batches_remaining() > 0 {
        let out = session
            .step()
            .unwrap_or_else(|e| panic!("{ctx}: step failed: {e}"));
        assert_eq!(out.n, session.node_count(), "{ctx}: outcome node count");
        assert!(
            out.dirty <= out.region && out.region <= out.n,
            "{ctx}: dirty/region bounds"
        );
        let baseline = session
            .full_resolve()
            .unwrap_or_else(|e| panic!("{ctx}: baseline failed: {e}"));
        assert_eq!(
            baseline.labels,
            session.labels(),
            "{ctx}: labels diverged at batch {} (incremental={})",
            out.batch,
            out.incremental
        );
        assert_eq!(
            baseline.rounds,
            session.rounds(),
            "{ctx}: rounds diverged at batch {} (incremental={})",
            out.batch,
            out.incremental
        );
        assert!(baseline.verified, "{ctx}: baseline verification");
        labels_by_batch.push(session.labels().to_vec());
        rounds_by_batch.push(session.rounds().to_vec());
    }
    (labels_by_batch, rounds_by_batch)
}

/// Per-batch labels and rounds from one session — the cross-config
/// comparison unit of the sweep.
type BatchTrace = (Vec<Vec<u64>>, Vec<Vec<u64>>);

/// The full sweep for one solver: scripts × seeds × chunk sizes, with the
/// thread count alternating across seeds and all chunk-size variants
/// required to agree batch-by-batch.
fn churn_differential(name: &str) {
    let n0 = base_spec(name)
        .build()
        .unwrap_or_else(|e| panic!("{name}: base spec failed to build: {e}"))
        .node_count();
    for script in scripts() {
        for seed in 0..8u64 {
            let threads = 1 + (seed % 2) as usize;
            let mut reference: Option<BatchTrace> = None;
            for chunk_size in [1, 7, 64, n0.max(1)] {
                let got = run_session(name, &script, seed, chunk_size, threads);
                match &reference {
                    None => reference = Some(got),
                    Some(expected) => {
                        assert_eq!(
                            expected.0, got.0,
                            "{name} × {} seed {seed}: labels differ across chunk sizes",
                            script.name
                        );
                        assert_eq!(
                            expected.1, got.1,
                            "{name} × {} seed {seed}: rounds differ across chunk sizes",
                            script.name
                        );
                    }
                }
            }
        }
    }
}

// One test per solver so the sweep parallelizes across test threads and a
// divergence names its solver in the failing test.

#[test]
fn churn_two_coloring() {
    churn_differential("two-coloring");
}

#[test]
fn churn_linial() {
    churn_differential("linial");
}

#[test]
fn churn_randomized() {
    churn_differential("randomized");
}

#[test]
fn churn_generic_coloring() {
    churn_differential("generic-coloring");
}

#[test]
fn churn_apoly() {
    churn_differential("apoly");
}

#[test]
fn churn_a35() {
    churn_differential("a35");
}

#[test]
fn churn_weight_augmented() {
    churn_differential("weight-augmented");
}

#[test]
fn churn_dfree_a() {
    churn_differential("dfree-a");
}

#[test]
fn churn_fast_decomposition() {
    churn_differential("fast-decomposition");
}

#[test]
fn churn_labeling_solver() {
    churn_differential("labeling-solver");
}

#[test]
fn churn_path_lcl() {
    churn_differential("path-lcl");
}

#[test]
fn local_solvers_actually_splice() {
    // The suite is vacuous if the local solvers never take the dirty-
    // region path: on their long-path bases, at least one batch per
    // session must re-solve a strict subset of the tree.
    for name in ["linial", "randomized"] {
        let script = ChurnScript::preset("prune-regrow")
            .expect("preset exists")
            .with_volume(2, 10);
        let cfg = RunConfig::seeded(1).with_engine(EngineConfig {
            chunk_size: 64,
            threads: 1,
            check_arena: true,
            shard: None,
        });
        let mut session =
            DynamicSession::new(name, base_spec(name), script, cfg).expect("session opens");
        assert!(session.is_local(), "{name} must advertise a churn radius");
        let mut spliced = 0usize;
        while session.batches_remaining() > 0 {
            let out = session.step().expect("step");
            if out.incremental {
                assert!(out.region < out.n, "{name}: region must be strict");
                spliced += 1;
            }
        }
        assert!(spliced > 0, "{name}: no batch took the incremental path");
    }
}

#[test]
fn adversarial_shape_families_survive_churn() {
    // Every adversarial generator family, churned under the free-tree
    // discipline with a representative solver, stays differentially
    // clean. (The per-solver sweeps above cover spider/caterpillar/
    // complete-ary; this pins the remaining families and keeps all six
    // under churn by name.)
    let shapes = [
        InstanceSpec::Caterpillar { spine: 6, legs: 2 },
        InstanceSpec::Ladder { rungs: 12 },
        InstanceSpec::Broom {
            spine: 8,
            bristles: 6,
        },
        InstanceSpec::Spider {
            legs: 4,
            leg_len: 6,
        },
        InstanceSpec::CompleteAry {
            arity: 3,
            height: 3,
        },
        InstanceSpec::HeavyPath { n: 40 },
    ];
    let script = ChurnScript::preset("rehang-storm")
        .expect("preset exists")
        .with_volume(2, 8);
    for spec in shapes {
        for name in ["dfree-a", "labeling-solver"] {
            let cfg = RunConfig::seeded(4).with_engine(EngineConfig {
                chunk_size: 7,
                threads: 2,
                check_arena: true,
                shard: None,
            });
            let ctx = format!("{name} on {}", spec.describe());
            let mut session = DynamicSession::new(name, spec.clone(), script.clone(), cfg)
                .unwrap_or_else(|e| panic!("{ctx}: session failed to open: {e}"));
            while session.batches_remaining() > 0 {
                session
                    .step()
                    .unwrap_or_else(|e| panic!("{ctx}: step failed: {e}"));
                let baseline = session
                    .full_resolve()
                    .unwrap_or_else(|e| panic!("{ctx}: baseline failed: {e}"));
                assert_eq!(baseline.labels, session.labels(), "{ctx}: labels");
                assert_eq!(baseline.rounds, session.rounds(), "{ctx}: rounds");
            }
        }
    }
}

#[test]
fn adversarial_specs_match_their_generators() {
    // The spec layer must be a faithful veneer over the raw generators —
    // same node counts, same ports.
    let pairs = [
        (
            InstanceSpec::Caterpillar { spine: 6, legs: 2 },
            caterpillar(6, 2),
        ),
        (InstanceSpec::Ladder { rungs: 9 }, ladder(9)),
        (
            InstanceSpec::Broom {
                spine: 5,
                bristles: 7,
            },
            broom(5, 7).expect("valid broom"),
        ),
        (
            InstanceSpec::Spider {
                legs: 4,
                leg_len: 5,
            },
            spider(4, 5),
        ),
        (
            InstanceSpec::CompleteAry {
                arity: 3,
                height: 3,
            },
            complete_ary_tree(3, 3),
        ),
        (InstanceSpec::HeavyPath { n: 64 }, heavy_path_skewed(64)),
    ];
    for (spec, tree) in pairs {
        let instance = spec
            .build()
            .unwrap_or_else(|e| panic!("{} failed to build: {e}", spec.describe()));
        assert_eq!(
            instance.node_count(),
            tree.node_count(),
            "{}: node count",
            spec.describe()
        );
        assert_eq!(
            instance.node_count(),
            spec.requested_n(),
            "{}: requested_n",
            spec.describe()
        );
        for v in 0..tree.node_count() {
            assert_eq!(
                instance.tree().neighbors(v),
                tree.neighbors(v),
                "{}: ports of node {v}",
                spec.describe()
            );
        }
    }
}

#[test]
fn every_registry_solver_is_covered() {
    // The per-solver tests above must never silently fall out of sync
    // with the registry.
    let covered = [
        "two-coloring",
        "linial",
        "randomized",
        "generic-coloring",
        "apoly",
        "a35",
        "weight-augmented",
        "dfree-a",
        "fast-decomposition",
        "labeling-solver",
        "path-lcl",
    ];
    let mut names: Vec<&str> = registry().iter().map(|a| a.name()).collect();
    names.sort_unstable();
    let mut expected: Vec<&str> = covered.to_vec();
    expected.sort_unstable();
    assert_eq!(names, expected);
    for name in covered {
        // Every solver's churn base must build and be supported.
        let spec = base_spec(name);
        let kind = spec.kind();
        assert!(
            find(name).expect("registered").supports(kind),
            "{name} does not support its churn base {kind:?}"
        );
    }
}
