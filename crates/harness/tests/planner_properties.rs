//! Property and round-trip tests for the problem-first planner (ISSUE 5).
//!
//! Three guarantees of the new surface are pinned here:
//!
//! 1. **Resolution is unambiguous**: every named preset resolves to
//!    exactly one best-fit solver (a unique maximum among the bids).
//! 2. **Failures are values**: arbitrary — including malformed — specs
//!    produce typed [`PlanError`]s, never panics.
//! 3. **The deciders agree**: for every preset problem that both the
//!    path automaton and an [`Algorithm`] can express, the automaton's
//!    [`PathLcl::classify`] verdict equals the resolved solver's
//!    [`Algorithm::node_averaged_class`] — the decidability crate and the
//!    execution surface predict the same landscape cell.

use lcl_core::landscape::ComplexityClass;
use lcl_core::problem_spec::{BwTable, PathTable, ProblemRegime, ProblemSpec};
use lcl_decidability::{
    find_good_function, BwProblem, PathClass, PathLcl, TestOutcome, TestingConfig,
};
use lcl_harness::{classify, plan, resolver, ClassSource, PlanError, RunConfig};
use proptest::prelude::*;

#[test]
fn every_preset_resolves_to_exactly_one_best_fit_solver() {
    for (name, problem) in ProblemSpec::presets() {
        let bids = resolver().bids(&problem);
        assert!(!bids.is_empty(), "{name}: no solver bids");
        let top = bids.iter().map(|(_, fit)| fit.score).max().unwrap();
        let winners: Vec<&str> = bids
            .iter()
            .filter(|(_, fit)| fit.score == top)
            .map(|(algo, _)| algo.name())
            .collect();
        assert_eq!(
            winners.len(),
            1,
            "{name}: ambiguous best fit among {winners:?}"
        );
        let (resolved, fit) = resolver().resolve(&problem).unwrap();
        assert_eq!(resolved.name(), winners[0], "{name}");
        assert_eq!(fit.score, top, "{name}");
    }
}

#[test]
fn every_preset_plans_and_runs_small() {
    // End-to-end: each preset plans, runs at a small size, and verifies.
    for (name, problem) in ProblemSpec::presets() {
        let planned = plan(&problem, 1_200, &RunConfig::seeded(11))
            .unwrap_or_else(|e| panic!("{name}: planning failed: {e}"));
        let record = planned
            .run()
            .unwrap_or_else(|e| panic!("{name}: plan run failed: {e}"));
        assert!(record.verified, "{name}");
        assert_eq!(record.rounds.len(), record.n, "{name}");
        assert_eq!(record.algorithm, planned.solver.name(), "{name}");
    }
}

/// Maps an automaton verdict to the landscape vocabulary (solvable
/// classes only — unsolvable problems never reach a solver).
fn automaton_class(class: PathClass) -> ComplexityClass {
    match class {
        PathClass::Constant => ComplexityClass::Constant,
        PathClass::LogStar => ComplexityClass::log_star(),
        PathClass::Linear => ComplexityClass::poly(1.0),
        PathClass::Unsolvable => unreachable!("solvable presets only"),
    }
}

#[test]
fn automaton_and_solver_agree_on_every_path_expressible_preset() {
    let mut covered = 0;
    for (name, problem) in ProblemSpec::presets() {
        let Some(table) = problem.path_table() else {
            continue;
        };
        covered += 1;
        let verdict = PathLcl::new(table.matrix(), table.end_vec()).classify();
        assert_ne!(verdict, PathClass::Unsolvable, "{name}");
        let expected = automaton_class(verdict);
        // The planner's classification uses the same machinery…
        let classification = classify(&problem).unwrap();
        assert_eq!(classification.class, expected, "{name}: classification");
        // …and the resolved solver independently declares the same cell
        // under the plan's config (which carries the problem).
        let planned = plan(&problem, 800, &RunConfig::seeded(2)).unwrap();
        let declared = planned.solver.node_averaged_class(&planned.config);
        assert_eq!(
            declared,
            expected,
            "{name}: solver `{}` declares a different cell than the automaton",
            planned.solver.name()
        );
    }
    assert!(covered >= 4, "expected ≥ 4 path-expressible presets");
}

#[test]
fn weighted_classes_follow_the_planned_problem_parameters() {
    // Non-default (Δ, d) weighted problems must classify and resolve
    // without panicking, and the solver's declared class must be
    // computed at the *problem's* parameters, not the default spec's.
    for (regime, expected_solver) in [
        (ProblemRegime::Poly, "apoly"),
        (ProblemRegime::LogStar, "a35"),
    ] {
        let problem = ProblemSpec::Weighted {
            regime,
            delta: 7,
            d: 4,
            k: 3,
        };
        assert!(problem.validate().is_ok());
        let planned = plan(&problem, 2_000, &RunConfig::seeded(1)).unwrap();
        assert_eq!(planned.solver.name(), expected_solver);
        let declared = planned.solver.node_averaged_class(&planned.config);
        assert_eq!(
            Some(declared),
            problem.declared_class(),
            "{expected_solver}: solver class must match the problem's declared class"
        );
        // The default-parameter class (Δ = 5 or 6, d = 2 or 3, k = 2)
        // differs from the (7, 4, 3) one — the parameters genuinely flow.
        let default_class = planned.solver.node_averaged_class(&RunConfig::default());
        assert_ne!(declared, default_class, "{expected_solver}");
    }
}

#[test]
fn testing_machinery_is_reachable_from_the_harness_surface() {
    // The Section 11 testing procedure drives BW classification: the
    // planner must report it as the source, and the raw
    // TestingConfig/TestOutcome machinery must be usable directly.
    let preset = ProblemSpec::preset("bw-all-equal").unwrap();
    let c = classify(&preset).unwrap();
    assert_eq!(c.source, ClassSource::BwTesting);
    assert!(c.detail.contains("good function"), "{}", c.detail);

    let report = find_good_function(&BwProblem::all_equal(2, 2), &TestingConfig::for_delta(2));
    assert!(report.good_function.is_some());
    assert!(report
        .outcomes
        .iter()
        .any(|(_, outcome)| matches!(outcome, TestOutcome::Good { layers, .. } if *layers >= 2)));

    // Tree-degree configurations enumerate hairs without panicking.
    let tree_cfg = TestingConfig::for_delta(3);
    assert_eq!(tree_cfg.delta, 3);
    assert_eq!(tree_cfg.hair_budget, 1);
    let _ = find_good_function(&BwProblem::all_equal(2, 3), &tree_cfg);
}

#[test]
fn out_of_range_colorings_are_bad_problems() {
    for colors in [0usize, 1, 256, 100_000] {
        let err = classify(&ProblemSpec::Coloring { colors }).unwrap_err();
        assert!(matches!(err, PlanError::BadProblem(_)), "{colors}: {err}");
    }
}

/// Seed-expanded random path table (possibly degenerate), mirroring the
/// core crate's generator.
fn path_table_from_seed(seed: u64) -> PathTable {
    let labels = (seed % 5 + 1) as usize;
    let mut bits = seed / 5;
    let mut allowed = Vec::new();
    for a in 0..labels as u8 {
        for b in a..labels as u8 {
            if bits & 1 == 1 {
                allowed.push((a, b));
            }
            bits >>= 1;
        }
    }
    let mut ends = Vec::new();
    for l in 0..labels as u8 {
        if bits & 1 == 1 {
            ends.push(l);
        }
        bits >>= 1;
    }
    PathTable::new(labels, allowed, ends)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn planning_arbitrary_tables_never_panics(seed in any::<u64>(), n in 16usize..200) {
        let problem = ProblemSpec::Path(path_table_from_seed(seed));
        match plan(&problem, n, &RunConfig::seeded(seed)) {
            Ok(planned) => {
                // A planned table must actually run and verify.
                let record = planned.run().expect("planned problems run");
                prop_assert!(record.verified);
                prop_assert_eq!(planned.solver.name(), "path-lcl");
            }
            Err(
                PlanError::BadProblem(_)
                | PlanError::Unsolvable(_)
                | PlanError::Undecidable(_)
                | PlanError::NoSolver(_),
            ) => {}
            Err(PlanError::Harness(e)) => panic!("unexpected harness error: {e}"),
        }
    }

    #[test]
    fn malformed_parameterized_specs_are_typed_errors(
        // Colorings stay small: classifying a valid c-coloring runs the
        // automaton over c labels (quadratic DP), and the boundary cases
        // (0, 1, 2, 255+) are covered here and in the deterministic test
        // below.
        colors in 0usize..12,
        k in 0usize..32,
        delta in 0usize..10,
        d in 0usize..6,
    ) {
        for problem in [
            ProblemSpec::Coloring { colors },
            ProblemSpec::HierarchicalColoring { k },
            ProblemSpec::Weighted {
                regime: ProblemRegime::Poly,
                delta,
                d,
                k,
            },
            ProblemSpec::DfreeWeight { d, anchored: k % 2 == 0 },
            ProblemSpec::HierarchicalLabeling { k },
        ] {
            let outcome = classify(&problem);
            if problem.validate().is_err() {
                prop_assert!(
                    matches!(outcome, Err(PlanError::BadProblem(_))),
                    "invalid {} must be BadProblem, got {outcome:?}",
                    problem.describe()
                );
            } else {
                prop_assert!(outcome.is_ok(), "{}: {outcome:?}", problem.describe());
            }
        }
    }

    #[test]
    fn asymmetric_bw_tables_never_panic_the_planner(seed in any::<u64>()) {
        // Arbitrary binary BW tables, frequently asymmetric or
        // tree-degree: classification must end in a value.
        let out_labels = (seed % 2 + 1) as u8;
        let max_degree = (seed / 2 % 2 + 2) as usize;
        let mut bits = seed / 4;
        let side = |bits: &mut u64| {
            let mut sets = Vec::new();
            for len in 1..=max_degree {
                for first in 0..out_labels {
                    if *bits & 1 == 1 {
                        sets.push(vec![first; len]);
                    }
                    *bits >>= 1;
                }
            }
            sets
        };
        let table = BwTable::new(out_labels, max_degree, side(&mut bits), side(&mut bits));
        let _ = classify(&ProblemSpec::Bw(table));
    }
}
