//! Differential suite for the engine-native adapters.
//!
//! Since the Direct/replay split was retired, every adapter executes its
//! protocol on the chunked LOCAL engine — so the *structural*
//! implementations in `lcl_algorithms` now play the oracle role. For
//! every registry algorithm, on a small instance of every supported kind,
//! under 8 seeds, the engine-native run (across chunk sizes `{1, 7, 64,
//! n}` and 1–2 worker threads) must produce labels and per-node rounds
//! bit-identical to the direct structural computation, and the same
//! protocol driven through the frozen pre-chunking engine
//! (`lcl_local::reference_engine`) must agree as well. Zero divergence is
//! the acceptance bar.
//!
//! The u64 label encodings are deliberately *duplicated* here rather than
//! imported: golden fixtures depend on them, so a silent drift in the
//! adapters' encodings must fail this suite.

use lcl_algorithms::dfree_a::algorithm_a;
use lcl_algorithms::fast_decomposition::fast_dfree_standalone;
use lcl_algorithms::generic_coloring::generic_coloring_masked;
use lcl_algorithms::labeling_solver::solve_hierarchical_labeling;
use lcl_algorithms::linial::{linial_round_count, three_color_path};
use lcl_algorithms::path_lcl_solver::{solve_path_lcl, PathSolveClass};
use lcl_algorithms::protocols::linial::{cascade_space, LinialCascade};
use lcl_algorithms::protocols::path_lcl::PathLclProtocol;
use lcl_algorithms::protocols::randomized::RandomizedColoring;
use lcl_algorithms::protocols::two_coloring::WaveTwoColoring;
use lcl_algorithms::protocols::{plan_round_budget, scheduled_cast_factory, ScheduledCast};
use lcl_algorithms::randomized::randomized_three_color_path;
use lcl_algorithms::two_coloring::two_color_path;
use lcl_algorithms::weight_augmented_solver::solve_weight_augmented;
use lcl_core::coloring::{ColorLabel, Variant};
use lcl_core::dfree::{DfreeInput, DfreeOutput};
use lcl_core::labeling::LabelingOutput;
use lcl_core::problem_spec::{PathTable, ProblemSpec};
use lcl_core::weight_augmented::{AugmentedOutput, SecondaryOutput};
use lcl_core::weighted::WeightedOutput;
use lcl_decidability::path_lcl::{PathClass, PathLcl};
use lcl_graph::NodeMask;
use lcl_harness::{
    registry, run_on_construction, Algorithm, Instance, InstanceKind, InstanceSpec, RunConfig,
    WeightedRegime,
};
use lcl_local::engine::EngineConfig;
use lcl_local::identifiers::Ids;
use lcl_local::reference_engine::run_reference;
use std::sync::Arc;

// --- Independent copies of the adapters' stable label encodings. ---

fn color_code(c: ColorLabel) -> u64 {
    match c {
        ColorLabel::White => 0,
        ColorLabel::Black => 1,
        ColorLabel::Exempt => 2,
        ColorLabel::Decline => 3,
        ColorLabel::Red => 4,
        ColorLabel::Green => 5,
        ColorLabel::Yellow => 6,
    }
}

fn weighted_code(o: &WeightedOutput) -> u64 {
    match o {
        WeightedOutput::Active(c) => color_code(*c),
        WeightedOutput::Decline => 16,
        WeightedOutput::Connect => 17,
        WeightedOutput::Copy(c) => 32 + color_code(*c),
    }
}

fn dfree_code(o: DfreeOutput) -> u64 {
    match o {
        DfreeOutput::Decline => 0,
        DfreeOutput::Connect => 1,
        DfreeOutput::Copy => 2,
    }
}

fn labeling_code(o: &LabelingOutput) -> u64 {
    let port = o.out_port.map_or(0, |p| p as u64 + 1);
    (u64::from(o.label.order_key()) << 32) | port
}

fn augmented_code(o: &AugmentedOutput) -> u64 {
    match o {
        AugmentedOutput::Active(c) => color_code(*c),
        AugmentedOutput::Weight {
            labeling,
            secondary,
        } => {
            let sec = match secondary {
                SecondaryOutput::Color(c) => color_code(*c),
                SecondaryOutput::Decline => 15,
            };
            (1 << 60) | (labeling_code(labeling) << 8) | sec
        }
    }
}

/// The direct structural solution an engine run must reproduce.
struct Oracle {
    labels: Vec<u64>,
    rounds: Vec<u64>,
}

fn dfree_inputs(n: usize, with_anchor: bool) -> Vec<DfreeInput> {
    let mut input = vec![DfreeInput::Weight; n];
    if with_anchor && n > 0 {
        input[0] = DfreeInput::Adjacent;
    }
    input
}

fn path_lcl_plan(cfg: &RunConfig) -> (PathTable, PathSolveClass) {
    let table = cfg.problem.as_ref().map_or_else(
        || PathTable::proper_coloring(3),
        |p| {
            p.path_table()
                .expect("differential problems are path tables")
        },
    );
    let class = match PathLcl::new(table.matrix(), table.end_vec()).classify() {
        PathClass::Constant => PathSolveClass::Constant,
        PathClass::LogStar => PathSolveClass::LogStar,
        PathClass::Linear => PathSolveClass::Linear,
        PathClass::Unsolvable => panic!("differential problems are solvable"),
    };
    (table, class)
}

/// Computes what the adapter must produce by running the direct
/// structural implementation with the adapter's own parameter choices.
fn oracle(algo: &dyn Algorithm, instance: &Instance, cfg: &RunConfig) -> Oracle {
    let tree = instance.tree();
    let n = instance.node_count();
    match algo.name() {
        "two-coloring" => {
            let ids = Ids::random(n, cfg.seed);
            let run = two_color_path(tree, &ids);
            Oracle {
                labels: run.outputs.iter().map(|&c| color_code(c)).collect(),
                rounds: run.rounds,
            }
        }
        "linial" => {
            let ids = Ids::random(n, cfg.seed);
            let run = three_color_path(tree, &ids);
            Oracle {
                labels: run.outputs,
                rounds: run.rounds,
            }
        }
        "randomized" => {
            let run = randomized_three_color_path(tree, cfg.seed);
            Oracle {
                labels: run.outputs.iter().map(|&c| color_code(c)).collect(),
                rounds: run.rounds,
            }
        }
        "generic-coloring" => {
            let k = instance.spec().hierarchy_k().expect("spec carries k");
            let ids = Ids::random(n, cfg.seed);
            let gammas = lcl_core::params::theorem11_gammas(n.max(instance.requested_n()), k);
            let gammas = cfg.scale_gammas(&gammas);
            let mask = NodeMask::full(n);
            let levels = instance.levels(k);
            let masked =
                generic_coloring_masked(tree, &mask, &levels, Variant::ThreeHalf, &gammas, &ids);
            Oracle {
                labels: masked
                    .outputs
                    .into_iter()
                    .map(|o| color_code(o.expect("full mask decides everywhere")))
                    .collect(),
                rounds: masked.rounds,
            }
        }
        "apoly" | "a35" => {
            let regime = if algo.name() == "apoly" {
                WeightedRegime::Poly
            } else {
                WeightedRegime::LogStar
            };
            let construction = instance.construction().expect("weighted instance");
            let k = instance.spec().hierarchy_k().expect("spec carries k");
            let d = instance
                .spec()
                .decline_d()
                .or(cfg.d)
                .expect("spec carries d");
            let ids = Ids::random(n, cfg.seed);
            let run = run_on_construction(construction, k, d, &ids, regime);
            Oracle {
                labels: run.outputs.iter().map(weighted_code).collect(),
                rounds: run.rounds,
            }
        }
        "weight-augmented" => {
            let construction = instance.construction().expect("weighted instance");
            let k = instance.spec().hierarchy_k().expect("spec carries k");
            let ids = Ids::random(n, cfg.seed);
            let run = solve_weight_augmented(tree, construction.kinds(), k, &ids);
            Oracle {
                labels: run.outputs.iter().map(augmented_code).collect(),
                rounds: run.rounds,
            }
        }
        "dfree-a" => {
            let d = cfg.d.unwrap_or(2).max(1);
            let input = dfree_inputs(n, true);
            let run = algorithm_a(tree, &NodeMask::full(n), &input, d, n);
            Oracle {
                labels: run
                    .outputs
                    .into_iter()
                    .map(|o| dfree_code(o.expect("full-mask run decides everywhere")))
                    .collect(),
                rounds: vec![run.radius; n],
            }
        }
        "fast-decomposition" => {
            let d = cfg.d.unwrap_or(3).max(1);
            let input = dfree_inputs(n, false);
            let run = fast_dfree_standalone(tree, &NodeMask::full(n), &input, d);
            Oracle {
                labels: run
                    .outputs
                    .into_iter()
                    .map(|o| dfree_code(o.expect("standalone run decides everywhere")))
                    .collect(),
                rounds: run.rounds,
            }
        }
        "labeling-solver" => {
            let k = cfg.k.or(instance.spec().hierarchy_k()).unwrap_or(2).max(1);
            let solution = solve_hierarchical_labeling(tree, k);
            Oracle {
                labels: solution.run.outputs.iter().map(labeling_code).collect(),
                rounds: solution.run.rounds,
            }
        }
        "path-lcl" => {
            let (table, class) = path_lcl_plan(cfg);
            let ids = Ids::random(n, cfg.seed);
            let run = solve_path_lcl(tree, &table, class, &ids).expect("solvable table");
            Oracle {
                labels: run.outputs,
                rounds: run.rounds,
            }
        }
        other => panic!("no oracle for `{other}`"),
    }
}

/// Drives the algorithm's *native protocol* through the frozen
/// pre-chunking engine and demands agreement with the structural oracle.
fn reference_check(
    algo: &dyn Algorithm,
    instance: &Instance,
    cfg: &RunConfig,
    plan: &Oracle,
    ctx: &str,
) {
    let tree = instance.tree();
    let n = instance.node_count();
    let (labels, rounds): (Vec<u64>, Vec<u64>) = match algo.name() {
        "two-coloring" => {
            let ids = Ids::random(n, cfg.seed);
            let out = run_reference(tree, &ids, |_| WaveTwoColoring::new(), n as u64 + 2)
                .unwrap_or_else(|e| panic!("{ctx}: reference engine failed: {e}"));
            (
                out.outputs.iter().map(|&c| color_code(c)).collect(),
                out.stats.as_slice().to_vec(),
            )
        }
        "linial" => {
            let ids = Ids::random(n, cfg.seed);
            let space = cascade_space(&ids, 2);
            let budget = linial_round_count(space, 2) + 2;
            let out = run_reference(tree, &ids, |c| LinialCascade::new(c.id, space, 2), budget)
                .unwrap_or_else(|e| panic!("{ctx}: reference engine failed: {e}"));
            (out.outputs, out.stats.as_slice().to_vec())
        }
        "randomized" => {
            let ids = Ids::sequential(n);
            let seed = cfg.seed;
            let out = run_reference(
                tree,
                &ids,
                |c| RandomizedColoring::new(seed, c.node),
                RandomizedColoring::round_budget(n),
            )
            .unwrap_or_else(|e| panic!("{ctx}: reference engine failed: {e}"));
            (
                out.outputs.iter().map(|&c| color_code(c)).collect(),
                out.stats.as_slice().to_vec(),
            )
        }
        "path-lcl" => {
            let (_, class) = path_lcl_plan(cfg);
            let ids = Ids::random(n, cfg.seed);
            let l = plan.labels.clone();
            let r = plan.rounds.clone();
            let out = run_reference(
                tree,
                &ids,
                |c| match class {
                    PathSolveClass::Linear => PathLclProtocol::rigid(l[c.node]),
                    _ => PathLclProtocol::at_round(r[c.node], l[c.node]),
                },
                plan_round_budget(&plan.rounds),
            )
            .unwrap_or_else(|e| panic!("{ctx}: reference engine failed: {e}"));
            (out.outputs, out.stats.as_slice().to_vec())
        }
        // Plan-driven adapters: the reference engine executes the same
        // `ScheduledCast` machines the chunked engine runs in production.
        _ => {
            let ids = Ids::sequential(n);
            let out = run_reference(
                tree,
                &ids,
                scheduled_cast_factory(
                    Arc::new(plan.labels.clone()),
                    Arc::new(plan.rounds.clone()),
                ),
                plan_round_budget(&plan.rounds),
            )
            .unwrap_or_else(|e| panic!("{ctx}: reference engine failed: {e}"));
            (out.outputs, out.stats.as_slice().to_vec())
        }
    };
    assert_eq!(labels, plan.labels, "{ctx}: reference labels");
    assert_eq!(rounds, plan.rounds, "{ctx}: reference rounds");
}

/// One small spec per supported instance kind (plus the algorithm's own
/// smallest spec, which covers kinds with algorithm-specific parameters
/// such as the weighted constructions).
fn small_specs(algo: &dyn Algorithm) -> Vec<InstanceSpec> {
    let mut specs = vec![algo.smallest_spec()];
    for kind in algo.supported_kinds() {
        let extra = match kind {
            InstanceKind::Path => Some(InstanceSpec::Path { n: 24 }),
            InstanceKind::WeightTree => Some(InstanceSpec::BalancedWeight { w: 64, delta: 3 }),
            InstanceKind::RandomTree => Some(InstanceSpec::RandomTree {
                n: 48,
                max_degree: 4,
                seed: 3,
            }),
            InstanceKind::LowerBound => Some(InstanceSpec::Theorem11 { n: 400, k: 2 }),
            InstanceKind::Adversarial => Some(InstanceSpec::Spider {
                legs: 3,
                leg_len: 8,
            }),
            // Weighted parameters (Δ, d, k) are algorithm-specific; the
            // smallest spec above is the canonical small instance.
            InstanceKind::Weighted => None,
        };
        if let Some(s) = extra {
            if s.kind() == *kind && !specs.contains(&s) {
                specs.push(s);
            }
        }
    }
    specs
}

/// Runs the full differential protocol for one algorithm on one spec.
fn differential_on(algo: &'static dyn Algorithm, spec: InstanceSpec, problem: Option<ProblemSpec>) {
    let instance = spec
        .build()
        .unwrap_or_else(|e| panic!("{}: {} failed to build: {e}", algo.name(), spec.describe()));
    let n = instance.node_count();
    let chunk_sizes = [1, 7, 64, n.max(1)];
    for seed in 0..8u64 {
        let ctx = format!("{} on {} seed {seed}", algo.name(), spec.describe());
        let mut base = RunConfig::seeded(seed);
        if let Some(p) = &problem {
            base = base.with_problem(p.clone());
        }
        let plan = oracle(algo, &instance, &base);
        assert_eq!(plan.labels.len(), n, "{ctx}: oracle labels");
        assert_eq!(plan.rounds.len(), n, "{ctx}: oracle rounds");

        // Frozen pre-chunking engine, same protocol, same outcome.
        reference_check(algo, &instance, &base, &plan, &ctx);

        // Chunked engine: every chunk size in {1, 7, 64, n} for every
        // seed, alternating worker counts across the seeds.
        for chunk_size in chunk_sizes {
            let threads = 1 + (seed % 2) as usize;
            let mut cfg = RunConfig::seeded(seed).with_engine(EngineConfig {
                chunk_size,
                threads,
                check_arena: true,
                shard: None,
            });
            if let Some(p) = &problem {
                cfg = cfg.with_problem(p.clone());
            }
            let record = algo
                .run(&instance, &cfg)
                .unwrap_or_else(|e| panic!("{ctx}: engine run (cs={chunk_size}) failed: {e}"));
            assert_eq!(record.engine, "chunked", "{ctx}");
            assert!(record.verified, "{ctx}: verification cs={chunk_size}");
            assert_eq!(record.labels, plan.labels, "{ctx}: labels cs={chunk_size}");
            assert_eq!(record.rounds, plan.rounds, "{ctx}: rounds cs={chunk_size}");
            // The serialized histogram/median must agree with the raw
            // per-node rounds they summarize.
            let profile = record.profile();
            assert_eq!(
                record
                    .histogram
                    .iter()
                    .map(|b| (b.round, b.count))
                    .collect::<Vec<_>>(),
                profile.nonzero_bins(),
                "{ctx}: histogram"
            );
            assert_eq!(record.median_round, profile.quantile(0.5), "{ctx}: median");
            assert_eq!(
                record.histogram.iter().map(|b| b.count).sum::<u64>(),
                n as u64,
                "{ctx}: histogram mass"
            );
        }
    }
}

fn assert_engines_agree(algo: &'static dyn Algorithm) {
    for spec in small_specs(algo) {
        differential_on(algo, spec, None);
    }
}

fn by_name(name: &str) -> &'static dyn Algorithm {
    *registry()
        .iter()
        .find(|a| a.name() == name)
        .unwrap_or_else(|| panic!("`{name}` not in registry"))
}

// One test per algorithm so the suite parallelizes across test threads and
// a divergence names its algorithm in the failing test.

#[test]
fn differential_two_coloring() {
    assert_engines_agree(by_name("two-coloring"));
}

#[test]
fn differential_linial() {
    assert_engines_agree(by_name("linial"));
}

#[test]
fn differential_randomized() {
    assert_engines_agree(by_name("randomized"));
}

#[test]
fn differential_generic_coloring() {
    assert_engines_agree(by_name("generic-coloring"));
}

#[test]
fn differential_apoly() {
    assert_engines_agree(by_name("apoly"));
}

#[test]
fn differential_a35() {
    assert_engines_agree(by_name("a35"));
}

#[test]
fn differential_weight_augmented() {
    assert_engines_agree(by_name("weight-augmented"));
}

#[test]
fn differential_dfree_a() {
    assert_engines_agree(by_name("dfree-a"));
}

#[test]
fn differential_fast_decomposition() {
    assert_engines_agree(by_name("fast-decomposition"));
}

#[test]
fn differential_labeling_solver() {
    assert_engines_agree(by_name("labeling-solver"));
}

#[test]
fn differential_path_lcl() {
    assert_engines_agree(by_name("path-lcl"));
}

#[test]
fn differential_path_lcl_rigid_table() {
    // 2-coloring decides Linear: the rigid endpoint-wave protocol, the
    // one path-lcl timing the default 3-coloring problem never takes.
    differential_on(
        by_name("path-lcl"),
        InstanceSpec::Path { n: 24 },
        Some(ProblemSpec::Coloring { colors: 2 }),
    );
}

#[test]
fn differential_scheduled_cast_protocol() {
    // The `ScheduledCast` machine itself, outside any adapter: an
    // adversarial plan (wide round spread, duplicate rounds, round-0
    // nodes) must execute bit-identically on the chunked engine — every
    // chunk size and thread count — and the frozen reference engine.
    use lcl_local::engine::run_sync_with;

    let spec = InstanceSpec::RandomTree {
        n: 48,
        max_degree: 4,
        seed: 3,
    };
    let instance = spec.build().expect("random tree builds");
    let tree = instance.tree();
    let n = instance.node_count();
    let labels: Arc<Vec<u64>> = Arc::new((0..n as u64).map(|v| v.wrapping_mul(7) % 5).collect());
    let rounds: Arc<Vec<u64>> = Arc::new((0..n as u64).map(|v| (v * v) % 23).collect());
    let budget = plan_round_budget(&rounds);
    let ids = Ids::sequential(n);

    let reference = run_reference::<ScheduledCast, _>(
        tree,
        &ids,
        scheduled_cast_factory(labels.clone(), rounds.clone()),
        budget,
    )
    .expect("reference engine run");
    assert_eq!(reference.outputs, *labels, "reference labels");
    assert_eq!(reference.stats.as_slice(), &rounds[..], "reference rounds");

    for chunk_size in [1, 7, 64, n] {
        for threads in [1, 2] {
            let out = run_sync_with(
                tree,
                &ids,
                scheduled_cast_factory(labels.clone(), rounds.clone()),
                budget,
                &EngineConfig {
                    chunk_size,
                    threads,
                    check_arena: true,
                    shard: None,
                },
            )
            .expect("chunked engine run");
            let ctx = format!("scheduled-cast cs={chunk_size} t={threads}");
            assert_eq!(out.outputs, *labels, "{ctx}: labels");
            assert_eq!(out.stats.as_slice(), &rounds[..], "{ctx}: rounds");
            assert_eq!(out.profile, reference.profile, "{ctx}: profile");
        }
    }
}

#[test]
fn every_registry_algorithm_is_covered() {
    // The per-algorithm tests above must never silently fall out of sync
    // with the registry.
    let covered = [
        "two-coloring",
        "linial",
        "randomized",
        "generic-coloring",
        "apoly",
        "a35",
        "weight-augmented",
        "dfree-a",
        "fast-decomposition",
        "labeling-solver",
        "path-lcl",
    ];
    let mut names: Vec<&str> = registry().iter().map(|a| a.name()).collect();
    names.sort_unstable();
    let mut expected: Vec<&str> = covered.to_vec();
    expected.sort_unstable();
    assert_eq!(names, expected);
}
