//! Differential test oracle for the chunked LOCAL engine.
//!
//! Every registry algorithm, on a small instance of every supported kind,
//! under ≥ 8 seeds, must produce *identical* outputs — label vector, per-
//! node round vector, verification status — whether its solved schedule is
//! executed by the chunked engine (across chunk sizes `{1, 7, 64, n}` and
//! 1–2 worker threads) or by the frozen pre-chunking engine
//! (`lcl_local::reference_engine`), and both must agree with the direct
//! structural run. Zero divergence is the acceptance bar for the engine
//! rewrite.

use lcl_harness::replay::{replay_factory, replay_round_budget};
use lcl_harness::{registry, Algorithm, InstanceKind, InstanceSpec, RunConfig};
use lcl_local::engine::EngineConfig;
use lcl_local::identifiers::Ids;
use lcl_local::reference_engine::run_reference;

/// One small spec per supported instance kind (plus the algorithm's own
/// smallest spec, which covers kinds with algorithm-specific parameters
/// such as the weighted constructions).
fn small_specs(algo: &dyn Algorithm) -> Vec<InstanceSpec> {
    let mut specs = vec![algo.smallest_spec()];
    for kind in algo.supported_kinds() {
        let extra = match kind {
            InstanceKind::Path => Some(InstanceSpec::Path { n: 24 }),
            InstanceKind::WeightTree => Some(InstanceSpec::BalancedWeight { w: 64, delta: 3 }),
            InstanceKind::RandomTree => Some(InstanceSpec::RandomTree {
                n: 48,
                max_degree: 4,
                seed: 3,
            }),
            InstanceKind::LowerBound => Some(InstanceSpec::Theorem11 { n: 400, k: 2 }),
            // Weighted parameters (Δ, d, k) are algorithm-specific; the
            // smallest spec above is the canonical small instance.
            InstanceKind::Weighted => None,
        };
        if let Some(s) = extra {
            if s.kind() == *kind && !specs.contains(&s) {
                specs.push(s);
            }
        }
    }
    specs
}

/// Runs the full differential protocol for one algorithm.
fn assert_engines_agree(algo: &'static dyn Algorithm) {
    for spec in small_specs(algo) {
        let instance = spec.build().unwrap_or_else(|e| {
            panic!("{}: {} failed to build: {e}", algo.name(), spec.describe())
        });
        let n = instance.node_count();
        let chunk_sizes = [1, 7, 64, n.max(1)];
        for seed in 0..8u64 {
            let ctx = format!("{} on {} seed {seed}", algo.name(), spec.describe());
            let direct = algo
                .run(&instance, &RunConfig::seeded(seed))
                .unwrap_or_else(|e| panic!("{ctx}: direct run failed: {e}"));
            assert_eq!(direct.engine, "direct", "{ctx}");
            assert_eq!(direct.labels.len(), n, "{ctx}");
            assert_eq!(direct.rounds.len(), n, "{ctx}");
            // The serialized histogram/median must agree with the raw
            // per-node rounds they summarize.
            let profile = direct.profile();
            assert_eq!(
                direct
                    .histogram
                    .iter()
                    .map(|b| (b.round, b.count))
                    .collect::<Vec<_>>(),
                profile.nonzero_bins(),
                "{ctx}: histogram"
            );
            assert_eq!(direct.median_round, profile.quantile(0.5), "{ctx}: median");
            assert_eq!(
                direct.histogram.iter().map(|b| b.count).sum::<u64>(),
                n as u64,
                "{ctx}: histogram mass"
            );

            // Frozen oracle: replay the solved schedule through the
            // pre-chunking engine.
            let ids = Ids::sequential(n);
            let budget = replay_round_budget(&direct.rounds);
            let oracle = run_reference(
                instance.tree(),
                &ids,
                replay_factory(&direct.labels, &direct.rounds),
                budget,
            )
            .unwrap_or_else(|e| panic!("{ctx}: reference engine failed: {e}"));
            assert_eq!(oracle.outputs, direct.labels, "{ctx}: oracle labels");
            assert_eq!(
                oracle.stats.as_slice(),
                &direct.rounds[..],
                "{ctx}: oracle rounds"
            );

            // Chunked engine: every chunk size in {1, 7, 64, n} for every
            // seed, alternating worker counts across the seeds.
            for chunk_size in chunk_sizes {
                let threads = 1 + (seed % 2) as usize;
                let cfg = RunConfig::seeded(seed).with_engine(EngineConfig {
                    chunk_size,
                    threads,
                });
                let chunked = algo
                    .run(&instance, &cfg)
                    .unwrap_or_else(|e| panic!("{ctx}: chunked run (cs={chunk_size}) failed: {e}"));
                assert_eq!(chunked.engine, "chunked", "{ctx}");
                assert_eq!(
                    chunked.labels, direct.labels,
                    "{ctx}: labels cs={chunk_size}"
                );
                assert_eq!(
                    chunked.rounds, direct.rounds,
                    "{ctx}: rounds cs={chunk_size}"
                );
                assert_eq!(chunked.verified, direct.verified, "{ctx}: verification");
                assert_eq!(
                    chunked.node_averaged, direct.node_averaged,
                    "{ctx}: node-averaged"
                );
                assert_eq!(chunked.worst_case, direct.worst_case, "{ctx}: worst-case");
                assert_eq!(
                    chunked.median_round, direct.median_round,
                    "{ctx}: median round cs={chunk_size}"
                );
                assert_eq!(
                    chunked.histogram, direct.histogram,
                    "{ctx}: histogram cs={chunk_size}"
                );
            }
        }
    }
}

fn by_name(name: &str) -> &'static dyn Algorithm {
    *registry()
        .iter()
        .find(|a| a.name() == name)
        .unwrap_or_else(|| panic!("`{name}` not in registry"))
}

// One test per algorithm so the suite parallelizes across test threads and
// a divergence names its algorithm in the failing test.

#[test]
fn differential_two_coloring() {
    assert_engines_agree(by_name("two-coloring"));
}

#[test]
fn differential_linial() {
    assert_engines_agree(by_name("linial"));
}

#[test]
fn differential_randomized() {
    assert_engines_agree(by_name("randomized"));
}

#[test]
fn differential_generic_coloring() {
    assert_engines_agree(by_name("generic-coloring"));
}

#[test]
fn differential_apoly() {
    assert_engines_agree(by_name("apoly"));
}

#[test]
fn differential_a35() {
    assert_engines_agree(by_name("a35"));
}

#[test]
fn differential_weight_augmented() {
    assert_engines_agree(by_name("weight-augmented"));
}

#[test]
fn differential_dfree_a() {
    assert_engines_agree(by_name("dfree-a"));
}

#[test]
fn differential_fast_decomposition() {
    assert_engines_agree(by_name("fast-decomposition"));
}

#[test]
fn differential_labeling_solver() {
    assert_engines_agree(by_name("labeling-solver"));
}

#[test]
fn differential_path_lcl() {
    assert_engines_agree(by_name("path-lcl"));
}

#[test]
fn every_registry_algorithm_is_covered() {
    // The per-algorithm tests above must never silently fall out of sync
    // with the registry.
    let covered = [
        "two-coloring",
        "linial",
        "randomized",
        "generic-coloring",
        "apoly",
        "a35",
        "weight-augmented",
        "dfree-a",
        "fast-decomposition",
        "labeling-solver",
        "path-lcl",
    ];
    let mut names: Vec<&str> = registry().iter().map(|a| a.name()).collect();
    names.sort_unstable();
    let mut expected: Vec<&str> = covered.to_vec();
    expected.sort_unstable();
    assert_eq!(names, expected);
}
