//! Property tests for the registry (ISSUE 2): every registered algorithm
//! runs on its smallest supported instance under arbitrary seeds, its
//! `RunRecord` round vector covers exactly the node count, and the output
//! passes the problem verifier.

use lcl_harness::{registry, run_timed, RunConfig};
use proptest::prelude::*;

#[test]
fn every_algorithm_runs_on_its_smallest_instance() {
    for algo in registry() {
        let spec = algo.smallest_spec();
        let instance = spec
            .build()
            .unwrap_or_else(|e| panic!("{}: smallest spec failed to build: {e}", algo.name()));
        let record = algo
            .run(&instance, &RunConfig::seeded(42))
            .unwrap_or_else(|e| panic!("{}: run failed: {e}", algo.name()));
        assert_eq!(
            record.rounds.len(),
            instance.node_count(),
            "{}: round vector must cover every node",
            algo.name()
        );
        assert_eq!(record.n, instance.node_count(), "{}", algo.name());
        assert!(record.verified, "{}: output must verify", algo.name());
        assert!(
            record.node_averaged <= record.worst_case as f64,
            "{}: average cannot exceed worst case",
            algo.name()
        );
    }
}

#[test]
fn default_specs_are_supported_and_buildable() {
    for algo in registry() {
        let cfg = RunConfig::default();
        let spec = algo.default_spec(4_000, &cfg);
        assert!(
            algo.supports(spec.kind()),
            "{}: default spec kind unsupported",
            algo.name()
        );
        let instance = spec
            .build()
            .unwrap_or_else(|e| panic!("{}: default spec failed to build: {e}", algo.name()));
        assert!(instance.node_count() > 0);
    }
}

#[test]
fn classification_hooks_are_coherent() {
    use lcl_core::landscape::Regime;
    for algo in registry() {
        let cfg = RunConfig::default();
        // The classification family must be runnable by the algorithm
        // and buildable at sweep sizes.
        let spec = algo.classify_spec(4_000, &cfg);
        assert!(
            algo.supports(spec.kind()),
            "{}: classify spec kind unsupported",
            algo.name()
        );
        assert!(spec.build().is_ok(), "{}: classify spec", algo.name());
        // The machine-checkable class must agree in regime with the
        // display string (coarse sanity: a Θ(n^c) cell must not render
        // as a log* one and vice versa).
        let class = algo.node_averaged_class(&cfg);
        let display = algo.landscape_class();
        match class.regime() {
            Regime::Poly => assert!(
                display.contains("n^") || display.contains("Θ(n)"),
                "{}: {display} vs {class}",
                algo.name()
            ),
            Regime::LogStar => assert!(
                display.contains("log*"),
                "{}: {display} vs {class}",
                algo.name()
            ),
            Regime::Log => assert!(
                display.contains("log n"),
                "{}: {display} vs {class}",
                algo.name()
            ),
            Regime::Constant => assert!(
                display.contains("O(1)"),
                "{}: {display} vs {class}",
                algo.name()
            ),
        }
        if let Some(e) = class.exponent() {
            assert!(e > 0.0 && e <= 1.0, "{}: exponent {e}", algo.name());
        }
    }
}

#[test]
fn records_summarize_their_own_histogram() {
    for algo in registry() {
        let instance = algo.smallest_spec().build().expect("smallest spec builds");
        let record = algo
            .run(&instance, &RunConfig::seeded(9))
            .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        let mass: u64 = record.histogram.iter().map(|b| b.count).sum();
        assert_eq!(mass, record.n as u64, "{}", algo.name());
        let avg: f64 = record
            .histogram
            .iter()
            .map(|b| b.round as f64 * b.count as f64)
            .sum::<f64>()
            / record.n as f64;
        assert!(
            (avg - record.node_averaged).abs() < 1e-9,
            "{}: histogram mean {avg} vs node-averaged {}",
            algo.name(),
            record.node_averaged
        );
        assert!(record.median_round <= record.worst_case, "{}", algo.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Seeds are the only symmetry breaker of the LOCAL model; the registry
    // contract (runs, covers all nodes, verifies) must hold for all of
    // them, not just a lucky constant.
    #[test]
    fn registry_contract_holds_for_arbitrary_seeds(seed in any::<u64>()) {
        for algo in registry() {
            let instance = algo.smallest_spec().build().expect("smallest spec builds");
            let record = run_timed(*algo, &instance, &RunConfig::seeded(seed))
                .unwrap_or_else(|e| panic!("{} (seed {seed}): {e}", algo.name()));
            prop_assert_eq!(record.rounds.len(), instance.node_count());
            prop_assert!(record.verified);
            prop_assert!(record.elapsed_ms >= 0.0);
        }
    }
}
