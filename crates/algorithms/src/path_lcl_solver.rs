//! A table-driven solver for arbitrary (edge-symmetric, input-free) LCLs
//! on paths.
//!
//! Given any [`PathTable`] and its decided complexity class, this module
//! produces a *valid* labeling of a path together with per-node
//! termination rounds matching the class's locality (the \[BBC+19\]
//! classification the paper leans on through Lemma 16):
//!
//! - **`O(1)`** problems admit a tiling anchored at a self-loop label:
//!   every node terminates within a constant radius (`2·labels + 4`, the
//!   same horizon the classifier samples),
//! - **`Θ(log* n)`** problems are solved by splitting the path with a
//!   ruling structure derived from Linial's 3-coloring and filling the
//!   segments; every node pays the color-reduction cascade plus a
//!   constant,
//! - **`Θ(n)`** (rigid) problems propagate a single global decision:
//!   like the 2-coloring baseline, a node terminates once it has heard
//!   from both endpoints (`max` of the endpoint distances).
//!
//! The labeling itself is computed structurally by a reachability DP over
//! the compatibility table (forward reach sets from one endpoint, then a
//! deterministic backward selection), so the output is a pure function of
//! the instance — the per-node rounds carry the LOCAL complexity, exactly
//! as the other structural solvers in this crate do (e.g. algorithm `A`'s
//! uniform collection radius).

use crate::linial::three_color_path;
use crate::run::AlgorithmRun;
use lcl_core::problem_spec::PathTable;
use lcl_graph::Tree;
use lcl_local::identifiers::Ids;

/// The decided complexity class driving the round schedule (the solvable
/// subset of the path-LCL classification; unsolvable problems never reach
/// the solver).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathSolveClass {
    /// `O(1)`: constant-radius termination.
    Constant,
    /// `Θ(log* n)`: Linial cascade plus a constant.
    LogStar,
    /// `Θ(n)`: termination after hearing from both endpoints.
    Linear,
}

/// Solves `table` on the path `tree`, returning one label per node (the
/// table's label indices as `u64`) and the class-governed termination
/// rounds.
///
/// # Errors
///
/// Returns a description when `tree` is not a path or no valid labeling
/// of this exact length exists (possible for parity-constrained tables
/// even when the problem class is solvable in the large).
pub fn solve_path_lcl(
    tree: &Tree,
    table: &PathTable,
    class: PathSolveClass,
    ids: &Ids,
) -> Result<AlgorithmRun<u64>, String> {
    table.validate()?;
    let n = tree.node_count();
    if tree.max_degree() > 2 {
        return Err("path-LCL solver needs a path-shaped tree".into());
    }
    let order = path_order(tree)?;
    let labels = label_path(table, &order)?;

    // Scatter the position-ordered labels back to node indexing.
    let mut outputs = vec![0u64; n];
    for (pos, &v) in order.iter().enumerate() {
        outputs[v] = labels[pos] as u64;
    }

    let rounds = match class {
        PathSolveClass::Constant => {
            // The classifier's solvability horizon: a constant radius that
            // always suffices to anchor a self-loop tiling.
            let radius = (2 * table.labels + 4) as u64;
            vec![radius; n]
        }
        PathSolveClass::LogStar => {
            // Every node runs the color-reduction cascade, then a constant
            // number of segment-filling rounds.
            let cascade = three_color_path(tree, ids);
            cascade.rounds.iter().map(|r| r + 2).collect()
        }
        PathSolveClass::Linear => {
            // Rigid problems: a node's output is only safe once it has
            // seen both endpoints (same convention as the 2-coloring
            // baseline).
            if n == 1 {
                vec![0]
            } else {
                let a = order[0];
                let b = order[n - 1];
                let dist_a = tree.bfs_distances(a);
                let dist_b = tree.bfs_distances(b);
                (0..n).map(|v| dist_a[v].max(dist_b[v]) as u64).collect()
            }
        }
    };
    Ok(AlgorithmRun::new(outputs, rounds))
}

/// Verifies `outputs` (label indices) against the table; used by the
/// harness adapter after every run.
///
/// # Errors
///
/// The first violated constraint, rendered.
pub fn verify_path_lcl(tree: &Tree, table: &PathTable, outputs: &[u64]) -> Result<(), String> {
    let in_range = |v: usize| -> Result<u8, String> {
        u8::try_from(outputs[v])
            .ok()
            .filter(|&l| (l as usize) < table.labels)
            .ok_or_else(|| format!("node {v} outputs {} outside the label range", outputs[v]))
    };
    for (u, v) in tree.edges() {
        let (a, b) = (in_range(u)?, in_range(v)?);
        if !table.allows(a, b) {
            return Err(format!("edge ({u}, {v}) carries forbidden pair ({a}, {b})"));
        }
    }
    for v in tree.nodes() {
        if tree.degree(v) <= 1 && !table.end_allowed(in_range(v)?) {
            return Err(format!(
                "endpoint {v} outputs {} which is not endpoint-allowed",
                outputs[v]
            ));
        }
    }
    Ok(())
}

/// Nodes of the path in positional order, starting from the
/// smaller-indexed endpoint (deterministic in the topology alone).
fn path_order(tree: &Tree) -> Result<Vec<usize>, String> {
    let n = tree.node_count();
    if n == 1 {
        return Ok(vec![0]);
    }
    let endpoints: Vec<usize> = tree.nodes().filter(|&v| tree.degree(v) == 1).collect();
    if endpoints.len() != 2 {
        return Err("path-LCL solver needs a connected path".into());
    }
    let start = endpoints[0].min(endpoints[1]);
    let mut order = Vec::with_capacity(n);
    let mut prev = usize::MAX;
    let mut cur = start;
    loop {
        order.push(cur);
        let next = tree
            .neighbors(cur)
            .iter()
            .map(|&w| w as usize)
            .find(|&w| w != prev);
        match next {
            Some(w) => {
                prev = cur;
                cur = w;
            }
            None => break,
        }
    }
    if order.len() != n {
        return Err("path-LCL solver needs a connected path".into());
    }
    Ok(order)
}

/// A valid labeling in positional order via reachability DP: forward
/// reach sets from the left endpoint, then a smallest-label backward
/// selection anchored at a right-endpoint-allowed label.
fn label_path(table: &PathTable, order: &[usize]) -> Result<Vec<u8>, String> {
    let n = order.len();
    let labels = table.labels;
    let matrix = table.matrix();
    let ends = table.end_vec();
    if n == 1 {
        let l = (0..labels)
            .find(|&l| ends[l])
            .ok_or("no endpoint-allowed label")?;
        return Ok(vec![l as u8]);
    }
    // reach[i][l]: a valid prefix of length i+1 ending in label l exists.
    let mut reach = vec![vec![false; labels]; n];
    reach[0].clone_from(&ends);
    for i in 1..n {
        for prev in 0..labels {
            if reach[i - 1][prev] {
                for l in 0..labels {
                    if matrix[prev][l] {
                        reach[i][l] = true;
                    }
                }
            }
        }
    }
    let last = (0..labels)
        .find(|&l| reach[n - 1][l] && ends[l])
        .ok_or_else(|| format!("no valid labeling of a {n}-node path exists for this table"))?;
    let mut chosen = vec![0u8; n];
    chosen[n - 1] = last as u8;
    for i in (0..n - 1).rev() {
        let next = chosen[i + 1] as usize;
        let l = (0..labels)
            .find(|&l| reach[i][l] && matrix[l][next])
            .expect("reach DP guarantees a predecessor");
        chosen[i] = l as u8;
    }
    Ok(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::generators::path;

    fn ids(n: usize) -> Ids {
        Ids::random(n, 7)
    }

    #[test]
    fn solves_proper_colorings() {
        for (c, class) in [
            (2usize, PathSolveClass::Linear),
            (3, PathSolveClass::LogStar),
        ] {
            let table = PathTable::proper_coloring(c);
            let t = path(33);
            let run = solve_path_lcl(&t, &table, class, &ids(33)).unwrap();
            verify_path_lcl(&t, &table, &run.outputs).unwrap();
            assert_eq!(run.outputs.len(), 33);
        }
    }

    #[test]
    fn constant_class_rounds_are_uniform_and_size_independent() {
        // 0/1 alternate, label 2 is a wildcard self-loop: O(1).
        let table = PathTable::new(3, vec![(0, 1), (0, 2), (1, 2), (2, 2)], vec![0, 1, 2]);
        let small = solve_path_lcl(&path(20), &table, PathSolveClass::Constant, &ids(20)).unwrap();
        let large =
            solve_path_lcl(&path(500), &table, PathSolveClass::Constant, &ids(500)).unwrap();
        assert_eq!(small.rounds[0], large.rounds[0]);
        assert!(small.rounds.iter().all(|&r| r == small.rounds[0]));
        verify_path_lcl(&path(500), &table, &large.outputs).unwrap();
    }

    #[test]
    fn linear_rounds_match_endpoint_distances() {
        let table = PathTable::proper_coloring(2);
        let t = path(9);
        let run = solve_path_lcl(&t, &table, PathSolveClass::Linear, &ids(9)).unwrap();
        // On a 9-node path max(dist_a, dist_b) is 8 at the endpoints and
        // 4 in the middle.
        assert_eq!(run.rounds[0], 8);
        assert_eq!(run.rounds[4], 4);
    }

    #[test]
    fn single_node_and_unsolvable_lengths() {
        let table = PathTable::proper_coloring(2);
        let run = solve_path_lcl(&path(1), &table, PathSolveClass::Linear, &ids(1)).unwrap();
        assert_eq!(run.outputs, vec![0]);
        assert_eq!(run.rounds, vec![0]);
        // Endpoints must carry label 0 but 0 is incompatible with itself
        // and nothing else exists: length 2 unsolvable.
        let rigid = PathTable::new(1, vec![], vec![0]);
        assert!(solve_path_lcl(&path(2), &rigid, PathSolveClass::Linear, &ids(2)).is_err());
    }

    #[test]
    fn verification_catches_forbidden_pairs_and_ends() {
        let table = PathTable::proper_coloring(2);
        let t = path(3);
        assert!(verify_path_lcl(&t, &table, &[0, 0, 1]).is_err());
        let ends_only_zero = PathTable::new(2, vec![(0, 1)], vec![0]);
        assert!(verify_path_lcl(&t, &ends_only_zero, &[0, 1, 0]).is_ok());
        assert!(verify_path_lcl(&t, &ends_only_zero, &[1, 0, 1]).is_err());
        assert!(verify_path_lcl(&t, &table, &[0, 9, 0]).is_err());
    }

    #[test]
    fn rejects_non_paths() {
        use lcl_graph::generators::random_bounded_degree_tree;
        let t = random_bounded_degree_tree(16, 4, 3);
        let table = PathTable::proper_coloring(3);
        if t.max_degree() > 2 {
            assert!(solve_path_lcl(&t, &table, PathSolveClass::LogStar, &ids(16)).is_err());
        }
    }

    #[test]
    fn labeling_is_deterministic() {
        let table = PathTable::proper_coloring(3);
        let t = path(40);
        let a = solve_path_lcl(&t, &table, PathSolveClass::LogStar, &ids(40)).unwrap();
        let b = solve_path_lcl(&t, &table, PathSolveClass::LogStar, &ids(40)).unwrap();
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.rounds, b.rounds);
    }
}
