//! Solver for `k`-hierarchical weight-augmented 2½-coloring
//! (Definition 67, Lemma 69).
//!
//! Active components run the generic 2½ algorithm with the `x = 1` phase
//! parameters `γ_i = n^{1/k}` (with `x = 1` every `α_i = 1/k`). Weight
//! components solve the `k`-hierarchical labeling problem via Lemma 65;
//! rake-labeled chains then copy the adjacent active node's output as
//! secondary output (one hop per round), while compress-labeled nodes
//! decline — matching Lemma 68's `Ω(w)` copying mass, i.e. weight
//! efficiency `x = 1`.

use crate::generic_coloring::generic_coloring_masked;
use crate::labeling_solver::solve_hierarchical_labeling_rooted;
use crate::run::AlgorithmRun;
use lcl_core::coloring::{ColorLabel, Variant};
use lcl_core::labeling::LabelingOutput;
use lcl_core::weight_augmented::{AugmentedOutput, SecondaryOutput};
use lcl_graph::levels::Levels;
use lcl_graph::mask::extract_subtree;
use lcl_graph::weighted::NodeKind;
use lcl_graph::{induced_components, NodeId, NodeMask, Tree};
use lcl_local::identifiers::Ids;
use lcl_local::math::powf_round;

/// Runs the weight-augmented solver.
///
/// Weight components must hang off active nodes by a single attachment
/// node (the shape of the paper's constructions): the attachment node is
/// the component's labeling root and re-orients toward its active
/// neighbor, as Definition 67's rule 3 requires.
///
/// # Panics
///
/// Panics if a weight node adjacent to an active node would need its
/// orientation budget for the labeling itself (cannot happen for gadget
/// shaped components; see module docs), or if `k == 0`.
pub fn solve_weight_augmented(
    tree: &Tree,
    kinds: &[NodeKind],
    k: usize,
    ids: &Ids,
) -> AlgorithmRun<AugmentedOutput> {
    assert!(k >= 1, "k must be at least 1");
    let n = tree.node_count();
    assert_eq!(kinds.len(), n, "kinds must cover all nodes");
    let mut outputs: Vec<Option<AugmentedOutput>> = vec![None; n];
    let mut rounds: Vec<u64> = vec![0; n];

    // --- Active side: generic 2½ with x = 1 parameters. ---
    let gamma = powf_round(n as f64, 1.0 / k as f64);
    let gammas = vec![gamma.max(1); k - 1];
    let active_mask =
        NodeMask::from_nodes(n, tree.nodes().filter(|&v| kinds[v] == NodeKind::Active));
    for comp in induced_components(tree, &active_mask) {
        let comp_mask = NodeMask::from_nodes(n, comp.iter().copied());
        let levels = Levels::compute_masked(tree, &comp_mask, k);
        let run =
            generic_coloring_masked(tree, &comp_mask, &levels, Variant::TwoHalf, &gammas, ids);
        for v in comp {
            outputs[v] = Some(AugmentedOutput::Active(
                run.outputs[v].expect("component fully decided"),
            ));
            rounds[v] = run.rounds[v];
        }
    }
    let active_color = |outputs: &[Option<AugmentedOutput>], v: NodeId| match outputs[v] {
        Some(AugmentedOutput::Active(c)) => c,
        _ => unreachable!("active nodes decided above"),
    };

    // --- Weight side: per-component hierarchical labeling + secondaries. ---
    let weight_mask =
        NodeMask::from_nodes(n, tree.nodes().filter(|&v| kinds[v] == NodeKind::Weight));
    for comp in induced_components(tree, &weight_mask) {
        let (sub, mapping) = extract_subtree(tree, &comp);
        // Root the labeling at the attachment node (the component node
        // adjacent to an active node), so its orientation stays free for
        // Definition 67's rule 3.
        let attachment_local = mapping.iter().position(|&global| {
            tree.neighbors(global)
                .iter()
                .any(|&w| kinds[w as usize] == NodeKind::Active)
        });
        let solution = solve_hierarchical_labeling_rooted(&sub, k, attachment_local);

        // Translate ports back to the full tree and apply rule 3: nodes
        // adjacent to an active node re-orient toward it.
        let mut labeling: Vec<LabelingOutput> = Vec::with_capacity(comp.len());
        for (local, &global) in mapping.iter().enumerate() {
            let out = solution.run.outputs[local];
            let port = out.out_port.map(|p| {
                let local_target = sub.neighbors(local)[p] as usize;
                let global_target = mapping[local_target];
                tree.neighbors(global)
                    .iter()
                    .position(|&w| w as usize == global_target)
                    .expect("mapped neighbor exists")
            });
            labeling.push(LabelingOutput::new(out.label, port));
        }
        for (local, &global) in mapping.iter().enumerate() {
            let active_neighbor = tree
                .neighbors(global)
                .iter()
                .map(|&w| w as usize)
                .filter(|&w| kinds[w] == NodeKind::Active)
                .min_by_key(|&w| ids.id(w));
            if let Some(a) = active_neighbor {
                assert!(
                    labeling[local].out_port.is_none(),
                    "attachment node {global} needs its orientation for the labeling; \
                     weight components must hang off active nodes at their labeling root"
                );
                let port = tree
                    .neighbors(global)
                    .iter()
                    .position(|&w| w as usize == a)
                    .expect("active neighbor exists");
                labeling[local].out_port = Some(port);
            }
        }

        // Secondary outputs: process along oriented chains. Roots are
        // nodes pointing at an active node (copy its color), nodes with no
        // out-edge, and compress-labeled nodes (which decline).
        let mut secondary: Vec<Option<SecondaryOutput>> = vec![None; comp.len()];
        let mut ready: Vec<u64> = vec![0; comp.len()];
        let local_of = |global: NodeId| -> usize {
            mapping
                .iter()
                .position(|&g| g == global)
                .expect("in component")
        };
        // In-pointers within the component.
        let mut in_pointers: Vec<Vec<usize>> = vec![Vec::new(); comp.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (local, &global) in mapping.iter().enumerate() {
            let assign_round = solution.run.rounds[local];
            let target = labeling[local]
                .out_port
                .map(|p| tree.neighbors(global)[p] as usize);
            match target {
                Some(t) if kinds[t] == NodeKind::Active => {
                    secondary[local] = Some(SecondaryOutput::Color(active_color(&outputs, t)));
                    ready[local] = rounds[t].max(assign_round) + 1;
                    roots.push(local);
                }
                Some(t) => in_pointers[local_of(t)].push(local),
                None => {
                    // No out-edge: free choice (rake) or decline (compress).
                    secondary[local] = Some(if labeling[local].label.is_compress() {
                        SecondaryOutput::Decline
                    } else {
                        SecondaryOutput::Color(ColorLabel::White)
                    });
                    ready[local] = assign_round;
                    roots.push(local);
                }
            }
        }
        // Compress nodes decline regardless of their target (rule 5);
        // their dependents may then pick freely.
        for (local, lab) in labeling.iter().enumerate() {
            if lab.label.is_compress() && secondary[local].is_none() {
                secondary[local] = Some(SecondaryOutput::Decline);
                ready[local] = solution.run.rounds[local];
                roots.push(local);
            }
        }
        // Propagate down the in-pointer forest.
        let mut queue: std::collections::VecDeque<usize> = roots.into();
        while let Some(u) = queue.pop_front() {
            let su = secondary[u].expect("processed nodes have secondaries");
            for &w in &in_pointers[u] {
                if secondary[w].is_some() {
                    continue; // compress nodes were pre-resolved
                }
                secondary[w] = Some(match su {
                    // Pointing at a declining target frees the choice.
                    SecondaryOutput::Decline => SecondaryOutput::Color(ColorLabel::White),
                    color => color,
                });
                ready[w] = ready[u].max(solution.run.rounds[w]) + 1;
                queue.push_back(w);
            }
            // Dependents of pre-resolved compress nodes still need rounds.
            for &w in &in_pointers[u] {
                if ready[w] == 0 && w != u {
                    ready[w] = ready[u].max(solution.run.rounds[w]) + 1;
                }
            }
        }

        for (local, &global) in mapping.iter().enumerate() {
            outputs[global] = Some(AugmentedOutput::Weight {
                labeling: labeling[local],
                secondary: secondary[local]
                    .unwrap_or_else(|| panic!("node {global} missed secondary propagation")),
            });
            rounds[global] = ready[local].max(solution.run.rounds[local]);
        }
    }

    let outputs = outputs
        .into_iter()
        .map(|o| o.expect("every node decided"))
        .collect();
    AlgorithmRun::new(outputs, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::problem::LclProblem;
    use lcl_core::weight_augmented::WeightAugmented;
    use lcl_graph::weighted::{WeightedConstruction, WeightedParams};

    fn build(lengths: Vec<usize>, delta: usize, w: usize) -> WeightedConstruction {
        WeightedConstruction::new(&WeightedParams {
            lengths,
            delta,
            weight_per_level: w,
        })
        .unwrap()
    }

    fn solve_and_verify(
        c: &WeightedConstruction,
        k: usize,
        seed: u64,
    ) -> AlgorithmRun<AugmentedOutput> {
        let n = c.tree().node_count();
        let ids = Ids::random(n, seed);
        let run = solve_weight_augmented(c.tree(), c.kinds(), k, &ids);
        WeightAugmented::new(k)
            .verify(c.tree(), c.kinds(), &run.outputs)
            .unwrap_or_else(|e| panic!("invalid weight-augmented output: {e}"));
        run
    }

    #[test]
    fn small_construction_verifies() {
        let c = build(vec![5, 4], 5, 30);
        solve_and_verify(&c, 2, 3);
    }

    #[test]
    fn three_levels_verify() {
        let c = build(vec![3, 4, 4], 5, 50);
        solve_and_verify(&c, 3, 7);
    }

    #[test]
    fn zero_weight_reduces_to_coloring() {
        let c = build(vec![6, 6], 5, 0);
        let run = solve_and_verify(&c, 2, 1);
        assert!(run
            .outputs
            .iter()
            .all(|o| matches!(o, AugmentedOutput::Active(_))));
    }

    #[test]
    fn gadget_mass_waits_for_anchor_lemma_68() {
        // Lemma 68: an Ω(1) fraction of every gadget must copy the anchor's
        // output and hence wait for it.
        let c = build(vec![12, 10], 5, 600);
        let run = solve_and_verify(&c, 2, 5);
        let n = c.tree().node_count();
        let mut copying = 0usize;
        let mut waiting = 0usize;
        for v in c.active_count()..n {
            if let AugmentedOutput::Weight {
                secondary: SecondaryOutput::Color(_),
                ..
            } = run.outputs[v]
            {
                copying += 1;
                let (anchor, _) = c.weight_anchor(v).unwrap();
                if run.rounds[v] > run.rounds[anchor] {
                    waiting += 1;
                }
            }
        }
        let weight_total = c.weight_count();
        assert!(
            copying * 2 >= weight_total,
            "only {copying}/{weight_total} weight nodes copy (x = 1 needs Ω(w))"
        );
        assert!(
            waiting * 4 >= copying,
            "{waiting}/{copying} copying nodes wait for their anchor"
        );
    }

    #[test]
    fn secondary_matches_anchor_output() {
        let c = build(vec![6, 5], 5, 80);
        let run = solve_and_verify(&c, 2, 9);
        for g in c.gadgets() {
            let anchor_color = match run.outputs[g.anchor] {
                AugmentedOutput::Active(col) => col,
                _ => unreachable!(),
            };
            // The gadget root copies the anchor's output exactly.
            match run.outputs[g.root] {
                AugmentedOutput::Weight {
                    secondary: SecondaryOutput::Color(col),
                    ..
                } => assert_eq!(col, anchor_color, "gadget root {}", g.root),
                other => panic!("gadget root {} got {other:?}", g.root),
            }
        }
    }
}
