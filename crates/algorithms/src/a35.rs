//! The generic algorithm for `Π^{3.5}_{Δ,d,k}` (Section 8.2).
//!
//! Active components run the 3½ generic coloring with phase parameters
//! `γ_i = (log* n)^{α_i}`, where the `α_i` are the optimal exponents of
//! Lemma 36 evaluated at the upper-bound efficiency factor
//! `x' = log(Δ-d+1)/log(Δ-1)`. Weight components run the adapted fast
//! decomposition (Section 8.1): declines cost `O(1)` node-averaged rounds
//! (Lemma 56), while the reserve-pruned copy components `C'(v)` of
//! Lemmas 50–52 wait for their adjacent active node and then flood its
//! output — the `W_i` sets of Lemmas 54–55.

use crate::fast_decomposition::fast_dfree;
use crate::generic_coloring::generic_coloring_masked;
use crate::run::AlgorithmRun;
use lcl_core::coloring::Variant;
use lcl_core::dfree::{DfreeInput, DfreeOutput};
use lcl_core::weighted::WeightedOutput;
use lcl_graph::levels::Levels;
use lcl_graph::weighted::NodeKind;
use lcl_graph::{induced_components, NodeMask, Tree};
use lcl_local::identifiers::Ids;

/// Runs the `Π^{3.5}` algorithm on an `Active`/`Weight`-labeled tree.
///
/// Parameters mirror [`apoly`](crate::apoly::apoly): `k` and `d` are the
/// problem parameters, `gammas` the `k - 1` phase budgets (use
/// [`lcl_core::params::log_star_gammas`] with `x'` for the paper's
/// choice).
///
/// The output verifies against
/// [`WeightedColoring`](lcl_core::weighted::WeightedColoring) with
/// `Variant::ThreeHalf`.
///
/// # Panics
///
/// Panics if `gammas.len() != k - 1` or `d == 0`.
pub fn a35(
    tree: &Tree,
    kinds: &[NodeKind],
    k: usize,
    d: usize,
    gammas: &[usize],
    ids: &Ids,
) -> AlgorithmRun<WeightedOutput> {
    assert_eq!(gammas.len(), k - 1, "need k - 1 phase parameters");
    let n = tree.node_count();
    assert_eq!(kinds.len(), n, "kinds must cover all nodes");
    let mut outputs: Vec<Option<WeightedOutput>> = vec![None; n];
    let mut rounds: Vec<u64> = vec![0; n];

    // --- Active side: 3½ generic coloring per component. ---
    let active_mask =
        NodeMask::from_nodes(n, tree.nodes().filter(|&v| kinds[v] == NodeKind::Active));
    for comp in induced_components(tree, &active_mask) {
        let comp_mask = NodeMask::from_nodes(n, comp.iter().copied());
        let levels = Levels::compute_masked(tree, &comp_mask, k);
        let run =
            generic_coloring_masked(tree, &comp_mask, &levels, Variant::ThreeHalf, gammas, ids);
        for v in comp {
            outputs[v] = Some(WeightedOutput::Active(
                run.outputs[v].expect("component fully decided"),
            ));
            rounds[v] = run.rounds[v];
        }
    }

    // --- Weight side: adapted fast decomposition. ---
    let weight_mask =
        NodeMask::from_nodes(n, tree.nodes().filter(|&v| kinds[v] == NodeKind::Weight));
    let dfree_input: Vec<DfreeInput> = tree
        .nodes()
        .map(|v| {
            let adjacent_to_active = tree
                .neighbors(v)
                .iter()
                .any(|&w| kinds[w as usize] == NodeKind::Active);
            if adjacent_to_active {
                DfreeInput::Adjacent
            } else {
                DfreeInput::Weight
            }
        })
        .collect();
    let fast = fast_dfree(tree, &weight_mask, &dfree_input, d);

    for v in weight_mask.iter() {
        match fast.outputs[v] {
            Some(DfreeOutput::Decline) => {
                outputs[v] = Some(WeightedOutput::Decline);
                rounds[v] = fast.rounds[v];
            }
            Some(DfreeOutput::Connect) => {
                outputs[v] = Some(WeightedOutput::Connect);
                rounds[v] = fast.rounds[v];
            }
            Some(DfreeOutput::Copy) => unreachable!("components resolve below"),
            None => {} // component member, resolved below
        }
    }

    // --- Copy components: wait for the active neighbor, then flood. ---
    for comp in &fast.components {
        let anchor = comp.anchor;
        let (source, color) = tree
            .neighbors(anchor)
            .iter()
            .map(|&w| w as usize)
            .filter(|&w| kinds[w] == NodeKind::Active)
            .map(|w| {
                let c = match outputs[w] {
                    Some(WeightedOutput::Active(c)) => c,
                    _ => unreachable!("active nodes decided above"),
                };
                (w, c)
            })
            .min_by_key(|&(w, _)| (rounds[w], ids.id(w)))
            .expect("an A-labeled weight node has an active neighbor");
        // Case 1 of Section 8.2 (active neighbor already terminated when
        // the component formed) and case 2 (wait for it) share the same
        // accounting: flooding starts once both the component is formed
        // and the source has decided.
        let start = rounds[source].max(comp.formed_round) + 1;
        for &(u, depth) in &comp.members {
            outputs[u] = Some(WeightedOutput::Copy(color));
            rounds[u] = start + depth as u64;
        }
    }

    let outputs = outputs
        .into_iter()
        .map(|o| o.expect("every node decided"))
        .collect();
    AlgorithmRun::new(outputs, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::problem::LclProblem;
    use lcl_core::weighted::WeightedColoring;
    use lcl_graph::weighted::{WeightedConstruction, WeightedParams};

    fn build(lengths: Vec<usize>, delta: usize, w: usize) -> WeightedConstruction {
        WeightedConstruction::new(&WeightedParams {
            lengths,
            delta,
            weight_per_level: w,
        })
        .unwrap()
    }

    fn verify_run(
        construction: &WeightedConstruction,
        k: usize,
        d: usize,
        run: &AlgorithmRun<WeightedOutput>,
    ) {
        let problem =
            WeightedColoring::new(Variant::ThreeHalf, construction.delta(), d, k).unwrap();
        problem
            .verify(construction.tree(), construction.kinds(), &run.outputs)
            .unwrap_or_else(|e| panic!("invalid Π^3.5 output: {e}"));
    }

    #[test]
    fn small_construction_verifies() {
        let c = build(vec![6, 5], 6, 50);
        let n = c.tree().node_count();
        let ids = Ids::random(n, 21);
        let run = a35(c.tree(), c.kinds(), 2, 3, &[3], &ids);
        verify_run(&c, 2, 3, &run);
    }

    #[test]
    fn three_level_construction_verifies() {
        let c = build(vec![3, 4, 5], 6, 80);
        let n = c.tree().node_count();
        let ids = Ids::random(n, 8);
        let run = a35(c.tree(), c.kinds(), 3, 3, &[2, 3], &ids);
        verify_run(&c, 3, 3, &run);
    }

    #[test]
    fn paper_parameters_verify() {
        let c = build(vec![4, 200], 6, 800);
        let n = c.tree().node_count();
        let ids = Ids::random(n, 5);
        let x_prime = lcl_core::landscape::efficiency_x_prime(c.delta(), 3).min(1.0);
        let gammas = lcl_core::params::log_star_gammas(n, x_prime, 2);
        let run = a35(c.tree(), c.kinds(), 2, 3, &gammas, &ids);
        verify_run(&c, 2, 3, &run);
    }

    #[test]
    fn copying_weight_nodes_wait_for_actives() {
        let c = build(vec![8, 40], 6, 600);
        let n = c.tree().node_count();
        let ids = Ids::random(n, 9);
        let run = a35(c.tree(), c.kinds(), 2, 3, &[3], &ids);
        verify_run(&c, 2, 3, &run);
        let mut copies = 0;
        for v in 0..n {
            if let WeightedOutput::Copy(_) = run.outputs[v] {
                copies += 1;
                let (anchor, _) = c.weight_anchor(v).unwrap();
                assert!(
                    run.rounds[v] > run.rounds[anchor],
                    "copy node {v} should outlast active anchor {anchor}"
                );
            }
        }
        assert!(copies > 0, "some weight nodes must copy");
    }

    #[test]
    fn declining_weight_mass_is_fast() {
        // Most weight nodes decline in O(1)-ish rounds (Lemma 56): compare
        // the median weight-node round to the worst active round.
        let c = build(vec![6, 120], 6, 2_000);
        let n = c.tree().node_count();
        let ids = Ids::random(n, 12);
        let run = a35(c.tree(), c.kinds(), 2, 3, &[3], &ids);
        verify_run(&c, 2, 3, &run);
        let mut weight_rounds: Vec<u64> = (c.active_count()..n)
            .filter(|&v| matches!(run.outputs[v], WeightedOutput::Decline))
            .map(|v| run.rounds[v])
            .collect();
        assert!(!weight_rounds.is_empty());
        weight_rounds.sort_unstable();
        let median = weight_rounds[weight_rounds.len() / 2];
        assert!(median <= 40, "median declining round {median}");
    }
}
