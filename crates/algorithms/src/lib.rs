//! Distributed algorithms from *"Completing the Node-Averaged Complexity
//! Landscape of LCLs on Trees"* (PODC 2024).
//!
//! Every algorithm reports per-node termination rounds so node-averaged
//! complexity (Section 2 of the paper) can be measured directly:
//!
//! - [`linial`] — `O(log* n)` coloring by iterated polynomial reduction,
//! - [`two_coloring`] — the rigid `Θ(n)` baseline on paths,
//! - [`generic_coloring`] — the phase algorithm of Section 4.1,
//! - [`dfree_a`] — algorithm `A` for the `d`-free weight problem (Sec. 7),
//! - [`apoly`] — `A_poly` for `Π^{2.5}_{Δ,d,k}` (Section 7.1),
//! - [`fast_decomposition`] — the adapted fast decomposition (Section 8.1),
//! - [`a35`] — the `Π^{3.5}_{Δ,d,k}` algorithm (Section 8.2),
//! - [`labeling_solver`] — `k`-hierarchical labeling in `O(k n^{1/k})`
//!   (Lemma 65),
//! - [`randomized`] — the randomized O(1) node-averaged side of the
//!   landscape (3-coloring paths in O(1) expected average rounds),
//! - [`weight_augmented_solver`] — weight-augmented 2½-coloring
//!   (Section 10, Lemma 69),
//! - [`path_lcl_solver`] — a table-driven solver for *arbitrary*
//!   user-supplied path LCLs, with rounds matching their decided class.
//!
//! The [`protocols`] module carries the engine-native side: every solver
//! above also exists as a first-class `lcl_local` protocol (genuine
//! message rounds where the LOCAL model demands them, scheduled final
//! broadcasts where precomputation is legitimate), and the structural
//! implementations double as differential oracles for those protocols.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod a35;
pub mod apoly;
pub mod dfree_a;
pub mod fast_decomposition;
pub mod generic_coloring;
pub mod labeling_solver;
pub mod linial;
pub mod path_lcl_solver;
pub mod protocols;
pub mod randomized;
pub mod run;
pub mod two_coloring;
pub mod weight_augmented_solver;

pub use run::AlgorithmRun;
