//! Deterministic 2-coloring of paths — the canonical `Θ(n)` problem.
//!
//! A proper 2-coloring of a path is globally rigid: the color of one node
//! fixes every other node's color. The algorithm therefore waits until it
//! has seen the *entire* path (both endpoints, to agree on the convention
//! "the endpoint with the smaller ID is White") and its termination round
//! is its eccentricity within the path. Node-averaged complexity is
//! `Θ(n)`, matching Lemma 16 (Feuilloley) and Corollary 60 of the paper.

use crate::run::AlgorithmRun;
use lcl_core::coloring::ColorLabel;
use lcl_graph::Tree;
use lcl_local::identifiers::Ids;

/// 2-colors a path-shaped tree with `{White, Black}`.
///
/// Every node terminates in the round equal to its distance to the farther
/// endpoint (it must see both endpoint IDs to orient the parity), so the
/// per-node rounds realize worst case `n - 1` and node average `≈ 3n/4`.
///
/// # Panics
///
/// Panics if the tree is not a path (some node has degree `> 2`).
pub fn two_color_path(tree: &Tree, ids: &Ids) -> AlgorithmRun<ColorLabel> {
    let n = tree.node_count();
    assert!(
        tree.max_degree() <= 2,
        "two_color_path requires a path-shaped tree"
    );
    if n == 1 {
        return AlgorithmRun::new(vec![ColorLabel::White], vec![0]);
    }
    let endpoints: Vec<usize> = tree.nodes().filter(|&v| tree.degree(v) == 1).collect();
    assert_eq!(endpoints.len(), 2, "a multi-node path has two endpoints");
    let (a, b) = (endpoints[0], endpoints[1]);
    let anchor = if ids.id(a) < ids.id(b) { a } else { b };
    let dist_a = tree.bfs_distances(a);
    let dist_b = tree.bfs_distances(b);
    let dist_anchor = if anchor == a { &dist_a } else { &dist_b };

    let outputs = tree
        .nodes()
        .map(|v| {
            if dist_anchor[v] % 2 == 0 {
                ColorLabel::White
            } else {
                ColorLabel::Black
            }
        })
        .collect();
    let rounds = tree
        .nodes()
        .map(|v| dist_a[v].max(dist_b[v]) as u64)
        .collect();
    AlgorithmRun::new(outputs, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::generators::{path, star};

    fn assert_proper(tree: &Tree, out: &[ColorLabel]) {
        for (u, v) in tree.edges() {
            assert_ne!(out[u], out[v], "edge ({u}, {v})");
        }
    }

    #[test]
    fn colors_are_proper_and_anchored() {
        for n in [2usize, 3, 8, 101] {
            let tree = path(n);
            let ids = Ids::random(n, n as u64);
            let run = two_color_path(&tree, &ids);
            assert_proper(&tree, &run.outputs);
            // The smaller-ID endpoint is White.
            let (a, b) = (0, n - 1);
            let anchor = if ids.id(a) < ids.id(b) { a } else { b };
            assert_eq!(run.outputs[anchor], ColorLabel::White);
        }
    }

    #[test]
    fn rounds_are_eccentricities() {
        let n = 9;
        let tree = path(n);
        let ids = Ids::sequential(n);
        let run = two_color_path(&tree, &ids);
        for v in 0..n {
            assert_eq!(run.rounds[v], v.max(n - 1 - v) as u64);
        }
        let stats = run.stats();
        assert_eq!(stats.worst_case(), (n - 1) as u64);
        // Node average ≈ 3n/4.
        let avg = stats.node_averaged();
        assert!(avg > 0.6 * n as f64 && avg < 0.85 * n as f64, "avg = {avg}");
    }

    #[test]
    fn node_average_grows_linearly() {
        // The Θ(n) shape of Corollary 60: doubling n doubles the average.
        let a = two_color_path(&path(100), &Ids::sequential(100))
            .stats()
            .node_averaged();
        let b = two_color_path(&path(200), &Ids::sequential(200))
            .stats()
            .node_averaged();
        let ratio = b / a;
        assert!(ratio > 1.8 && ratio < 2.2, "ratio = {ratio}");
    }

    #[test]
    fn single_node() {
        let run = two_color_path(&path(1), &Ids::sequential(1));
        assert_eq!(run.outputs, vec![ColorLabel::White]);
        assert_eq!(run.rounds, vec![0]);
    }

    #[test]
    #[should_panic(expected = "path-shaped")]
    fn rejects_non_paths() {
        let _ = two_color_path(&star(4), &Ids::sequential(4));
    }
}
