//! Randomized node-averaged algorithms.
//!
//! The landscape's randomized side is radically simpler than the
//! deterministic one: \[BBK+23b\] (cited throughout the paper, and visible
//! in Fig. 1/2) shows every LCL solvable in subpolynomial worst-case time
//! has `O(1)` *randomized* node-averaged complexity — the entire dense
//! `(log* n)^c` region of Theorems 4–6 is a deterministic-only phenomenon.
//!
//! This module implements the canonical witness: randomized 3-coloring of
//! paths. Each round every undecided node proposes a uniformly random
//! color and finalizes if it conflicts with neither its finalized
//! neighbors nor its neighbors' simultaneous proposals; a node finalizes
//! with probability ≥ 1/3 per round independently of history, so its
//! expected termination round is `O(1)` and the node-averaged complexity
//! is `O(1)` in expectation — against the `Θ(log* n)` deterministic bound
//! of Corollary 17.

use crate::run::AlgorithmRun;
use lcl_core::coloring::ColorLabel;
use lcl_graph::Tree;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const COLORS: [ColorLabel; 3] = [ColorLabel::Red, ColorLabel::Green, ColorLabel::Yellow];

/// The independent randomness stream of node `v`: its `k`-th draw is its
/// round-`k` color proposal. Keying streams by node (splitmix-style mixing
/// of the run seed with the node index) makes the structural reference and
/// the engine-native protocol consume randomness identically regardless of
/// execution order, so their outputs match bit for bit.
pub(crate) fn node_rng(seed: u64, v: usize) -> SmallRng {
    SmallRng::seed_from_u64(seed.wrapping_add((v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// One uniform color proposal from a node's stream.
pub(crate) fn draw_color(rng: &mut SmallRng) -> ColorLabel {
    COLORS[rng.gen_range(0..3)]
}

/// The round budget after which a failed convergence indicates a bug
/// rather than bad luck (`64 + 4 log₂ n`; probability `≪ 2^{-64}`).
pub(crate) fn convergence_limit(n: usize) -> u64 {
    64 + 4 * (usize::BITS - n.leading_zeros()) as u64
}

/// Randomized proper 3-coloring of a bounded-degree-≤2 tree (a path), with
/// per-node termination rounds. Deterministic given the seed.
///
/// Each node finalizes in round `r` with constant probability, so the
/// expected node-averaged complexity is `O(1)` — the randomized side of
/// the paper's landscape at the `(log* n)^c` region.
///
/// # Panics
///
/// Panics if the tree has maximum degree above 2, or if some node fails to
/// finalize within `64 + 4 log₂ n` rounds (probability `≪ 2^{-64}`).
pub fn randomized_three_color_path(tree: &Tree, seed: u64) -> AlgorithmRun<ColorLabel> {
    assert!(
        tree.max_degree() <= 2,
        "randomized 3-coloring here targets paths"
    );
    let n = tree.node_count();
    let mut rngs: Vec<SmallRng> = (0..n).map(|v| node_rng(seed, v)).collect();
    let mut output: Vec<Option<ColorLabel>> = vec![None; n];
    let mut rounds: Vec<u64> = vec![0; n];
    let mut undecided: Vec<usize> = (0..n).collect();
    let limit = convergence_limit(n);

    let mut round = 0u64;
    while !undecided.is_empty() {
        round += 1;
        assert!(round <= limit, "randomized coloring failed to converge");
        // Simultaneous proposals, each from its node's own stream.
        let proposals: Vec<(usize, ColorLabel)> = undecided
            .iter()
            .map(|&v| (v, draw_color(&mut rngs[v])))
            .collect();
        let mut proposal_of = vec![None; n];
        for &(v, c) in &proposals {
            proposal_of[v] = Some(c);
        }
        let mut still = Vec::new();
        for &(v, c) in &proposals {
            let conflict = tree.neighbors(v).iter().any(|&w| {
                let w = w as usize;
                output[w] == Some(c) || proposal_of[w] == Some(c)
            });
            if conflict {
                still.push(v);
            } else {
                output[v] = Some(c);
                rounds[v] = round;
            }
        }
        undecided = still;
    }

    let outputs = output
        .into_iter()
        .map(|c| c.expect("all finalized"))
        .collect();
    AlgorithmRun::new(outputs, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::generators::path;

    fn assert_proper(tree: &Tree, out: &[ColorLabel]) {
        for (u, v) in tree.edges() {
            assert_ne!(out[u], out[v], "edge ({u}, {v})");
        }
    }

    #[test]
    fn colors_are_proper() {
        for n in [1usize, 2, 10, 500] {
            for seed in 0..5 {
                let tree = path(n);
                let run = randomized_three_color_path(&tree, seed);
                assert_proper(&tree, &run.outputs);
                assert!(run.outputs.iter().all(|c| c.is_rgy()));
            }
        }
    }

    #[test]
    fn node_average_is_constant_in_n() {
        // O(1) expected node-averaged rounds: the average must not grow
        // with n (contrast with the deterministic Θ(log* n) of Cor. 17 —
        // invisible at this scale — and the Θ(n) of 2-coloring).
        let mut avgs = Vec::new();
        for n in [1_000usize, 10_000, 100_000] {
            let tree = path(n);
            let run = randomized_three_color_path(&tree, 42);
            avgs.push(run.stats().node_averaged());
        }
        for &a in &avgs {
            assert!(a < 4.0, "averages: {avgs:?}");
        }
        assert!(
            (avgs[2] - avgs[0]).abs() < 0.5,
            "average drifted with n: {avgs:?}"
        );
    }

    #[test]
    fn worst_case_is_logarithmic_whp() {
        let n = 100_000;
        let tree = path(n);
        for seed in 0..3 {
            let run = randomized_three_color_path(&tree, seed);
            assert!(run.stats().worst_case() <= 40, "seed {seed}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let tree = path(200);
        let a = randomized_three_color_path(&tree, 7);
        let b = randomized_three_color_path(&tree, 7);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.rounds, b.rounds);
        let c = randomized_three_color_path(&tree, 8);
        assert_ne!(a.outputs, c.outputs);
    }

    #[test]
    #[should_panic(expected = "targets paths")]
    fn rejects_high_degree() {
        let tree = lcl_graph::generators::star(5);
        let _ = randomized_three_color_path(&tree, 0);
    }
}
