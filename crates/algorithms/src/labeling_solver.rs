//! Solver for the `k`-hierarchical labeling problem (Lemma 65).
//!
//! Computes a strict `(γ, 4, k)`-decomposition with
//! `γ ≈ n^{1/k} (ℓ/2)^{1-1/k}` (Lemma 72) and translates it into labels:
//! rake layer `i` becomes `R_i`; each compress piece keeps `C_i` on its
//! interior, promotes its two endpoints to `R_{i+1}`, and orients the
//! interior-to-endpoint and endpoint-to-higher edges. The worst-case round
//! cost is `O(k · n^{1/k})` — one rake sub-round per unit of `γ`.

use crate::run::AlgorithmRun;
use lcl_core::labeling::{HierLabel, LabelingOutput};
use lcl_graph::decompose::{Decomposition, LayerKind, RakeCompressParams};
use lcl_graph::{NodeId, Tree};

/// Compress threshold used by the solver (the paper's `ℓ = 4`).
const ELL: usize = 4;

/// Result of [`solve_hierarchical_labeling`].
#[derive(Debug, Clone)]
pub struct LabelingSolution {
    /// Outputs and per-node rounds.
    pub run: AlgorithmRun<LabelingOutput>,
    /// The rake budget `γ` that produced a `k`-layer decomposition.
    pub gamma: usize,
}

/// Solves `k`-hierarchical labeling on `tree` in `O(k · n^{1/k})` rounds.
///
/// Starts from the Lemma 72 budget `γ = ⌈n^{1/k} (ℓ/2)^{1-1/k}⌉` and
/// doubles it until the decomposition fits in `k` rake layers (at most a
/// few retries; Lemma 72 guarantees the asymptotic budget suffices).
///
/// # Panics
///
/// Panics if `k == 0` or if no admissible `γ ≤ 4n` exists (impossible:
/// `γ = n` rakes everything in one layer).
pub fn solve_hierarchical_labeling(tree: &Tree, k: usize) -> LabelingSolution {
    solve_hierarchical_labeling_rooted(tree, k, None)
}

/// Like [`solve_hierarchical_labeling`], but guarantees that `root` (when
/// given) receives the highest label of its neighborhood and **no
/// out-port** — it behaves as if it had a phantom edge to the rest of a
/// larger graph. The weight-augmented solver roots each gadget's labeling
/// at its attachment node this way, freeing that node's orientation for
/// the active anchor (Definition 67, rule 3).
///
/// # Panics
///
/// As for [`solve_hierarchical_labeling`]; additionally if `root` is out
/// of range.
pub fn solve_hierarchical_labeling_rooted(
    tree: &Tree,
    k: usize,
    root: Option<lcl_graph::NodeId>,
) -> LabelingSolution {
    assert!(k >= 1, "k must be at least 1");
    let n = tree.node_count();
    let mut gamma = ((n as f64).powf(1.0 / k as f64)
        * (ELL as f64 / 2.0).powf(1.0 - 1.0 / k as f64))
    .ceil() as usize;
    gamma = gamma.max(1);
    loop {
        let d = Decomposition::compute_pinned(
            tree,
            RakeCompressParams {
                gamma,
                ell: ELL,
                strict: true,
            },
            root,
        );
        // Compress layers up to k - 1 produce labels C_{k-1} and R_k at
        // most; deeper decompositions need a bigger budget.
        let max_compress = d
            .compress_paths()
            .iter()
            .map(|p| p.layer)
            .max()
            .unwrap_or(0) as usize;
        if d.layers_used() <= k && max_compress <= k.saturating_sub(1) {
            return LabelingSolution {
                run: translate(tree, &d, gamma),
                gamma,
            };
        }
        assert!(
            gamma <= 4 * n,
            "γ diverged; decomposition cannot fit in k layers"
        );
        gamma *= 2;
    }
}

/// Maps a strict decomposition to labels, orientations, and rounds.
fn translate(tree: &Tree, d: &Decomposition, gamma: usize) -> AlgorithmRun<LabelingOutput> {
    let n = tree.node_count();
    // Higher neighbor in the Definition 75 order (unique where it exists).
    let higher_neighbor = |v: NodeId| -> Option<NodeId> {
        tree.neighbors(v)
            .iter()
            .map(|&w| w as usize)
            .find(|&w| d.layer(w) > d.layer(v))
    };
    let port_of = |v: NodeId, target: NodeId| -> usize {
        tree.neighbors(v)
            .iter()
            .position(|&w| w as usize == target)
            .expect("target is a neighbor")
    };

    let mut outputs: Vec<LabelingOutput> = tree
        .nodes()
        .map(|v| {
            let layer = d.layer(v);
            match layer.kind {
                LayerKind::Rake => LabelingOutput::new(
                    HierLabel::Rake(layer.layer as u8),
                    higher_neighbor(v).map(|w| port_of(v, w)),
                ),
                LayerKind::Compress => LabelingOutput::new(
                    // Interior for now; endpoints are promoted below.
                    HierLabel::Compress(layer.layer as u8),
                    None,
                ),
            }
        })
        .collect();

    // Promote compress-piece endpoints to R_{i+1} and orient the piece.
    for piece in d.compress_paths() {
        let nodes = &piece.nodes;
        let len = nodes.len();
        let (first, last) = (nodes[0], nodes[len - 1]);
        for &end in [first, last].iter().take(if len == 1 { 1 } else { 2 }) {
            outputs[end] = LabelingOutput::new(
                HierLabel::Rake(piece.layer as u8 + 1),
                higher_neighbor(end).map(|w| port_of(end, w)),
            );
        }
        // Interior neighbors of the endpoints orient toward them.
        if len >= 2 {
            outputs[nodes[1]].out_port = Some(port_of(nodes[1], first));
        }
        if len >= 3 {
            outputs[nodes[len - 2]].out_port = Some(port_of(nodes[len - 2], last));
        }
    }

    // Rounds: rake sublayer (i, j) is fixed after (i-1)(γ+1) + j rounds of
    // the decomposition procedure; compress layer i after i(γ+1).
    let rounds: Vec<u64> = tree
        .nodes()
        .map(|v| {
            let layer = d.layer(v);
            match layer.kind {
                LayerKind::Rake => {
                    (layer.layer as u64 - 1) * (gamma as u64 + 1) + layer.sublayer as u64
                }
                LayerKind::Compress => layer.layer as u64 * (gamma as u64 + 1),
            }
        })
        .collect();
    let _ = n;
    AlgorithmRun::new(outputs, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::labeling::HierarchicalLabeling;
    use lcl_core::problem::LclProblem;
    use lcl_graph::generators::{
        balanced_weight_tree, caterpillar, path, random_bounded_degree_tree, spider, star,
    };

    fn solve_and_verify(tree: &Tree, k: usize) -> LabelingSolution {
        let sol = solve_hierarchical_labeling(tree, k);
        HierarchicalLabeling::new(k)
            .verify(tree, &vec![(); tree.node_count()], &sol.run.outputs)
            .unwrap_or_else(|e| panic!("invalid labeling (k = {k}): {e}"));
        sol
    }

    #[test]
    fn paths_all_k() {
        for n in [1usize, 2, 5, 40, 400] {
            for k in 1..=3 {
                solve_and_verify(&path(n), k);
            }
        }
    }

    #[test]
    fn stars_and_spiders() {
        solve_and_verify(&star(30), 1);
        solve_and_verify(&star(30), 2);
        solve_and_verify(&spider(4, 50), 2);
        solve_and_verify(&spider(4, 50), 3);
    }

    #[test]
    fn balanced_gadgets() {
        for delta in [4usize, 6] {
            for k in 1..=3 {
                solve_and_verify(&balanced_weight_tree(500, delta), k);
            }
        }
    }

    #[test]
    fn caterpillars_and_random_trees() {
        solve_and_verify(&caterpillar(80, 2), 2);
        for seed in 0..5 {
            let t = random_bounded_degree_tree(600, 4, seed);
            for k in 2..=3 {
                solve_and_verify(&t, k);
            }
        }
    }

    #[test]
    fn worst_case_rounds_scale_as_n_to_one_over_k() {
        // For paths, worst-case rounds should drop sharply from k = 1
        // (linear) to k = 2 (≈ √n).
        let n = 2_500;
        let t = path(n);
        let k1 = solve_and_verify(&t, 1).run.stats().worst_case();
        let k2 = solve_and_verify(&t, 2).run.stats().worst_case();
        assert!(k1 >= (n as u64) / 2, "k=1 worst {k1}");
        assert!(k2 < k1 / 5, "k=2 worst {k2} vs k=1 {k1}");
        assert!(k2 >= 50, "k=2 should still pay ~sqrt(n): {k2}");
    }

    #[test]
    fn gamma_follows_lemma_72() {
        let n = 10_000;
        let sol = solve_and_verify(&path(n), 2);
        // γ ≈ √n · √2 ≈ 141; retries double it at most a few times.
        assert!(sol.gamma >= 100 && sol.gamma <= 600, "γ = {}", sol.gamma);
    }

    #[test]
    fn k_one_uses_only_r1() {
        let t = star(12);
        let sol = solve_and_verify(&t, 1);
        assert!(sol
            .run
            .outputs
            .iter()
            .all(|o| matches!(o.label, HierLabel::Rake(1))));
    }
}
