//! Common result type for algorithm executions.

use lcl_local::metrics::RoundStats;

/// Outputs and per-node termination rounds of one algorithm execution.
#[derive(Debug, Clone)]
pub struct AlgorithmRun<O> {
    /// Output of every node, indexed by node id.
    pub outputs: Vec<O>,
    /// Termination round of every node.
    pub rounds: Vec<u64>,
}

impl<O> AlgorithmRun<O> {
    /// Bundles outputs with rounds.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn new(outputs: Vec<O>, rounds: Vec<u64>) -> Self {
        assert_eq!(
            outputs.len(),
            rounds.len(),
            "outputs and rounds must cover the same nodes"
        );
        AlgorithmRun { outputs, rounds }
    }

    /// Round statistics of the execution, borrowing the round vector
    /// (no copy is made).
    #[must_use]
    pub fn stats(&self) -> RoundStats<'_> {
        RoundStats::from_slice(&self.rounds)
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// True when no nodes are covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_roundtrip() {
        let run = AlgorithmRun::new(vec!['a', 'b'], vec![1, 3]);
        assert_eq!(run.stats().node_averaged(), 2.0);
        assert_eq!(run.len(), 2);
        assert!(!run.is_empty());
    }

    #[test]
    #[should_panic(expected = "same nodes")]
    fn mismatched_lengths_rejected() {
        let _ = AlgorithmRun::new(vec![0u8], vec![1, 2]);
    }
}
