//! The generic algorithm for `k`-hierarchical 2½- and 3½-coloring
//! (Section 4.1 of the paper).
//!
//! Phase `i ∈ {1, ..., k-1}` fixes the still-undecided level-`i` paths:
//! paths of length at least `γ_i` decline, shorter paths 2-color
//! consistently (within 2γ_i rounds a node has seen its whole path). After
//! each phase, exemption waves let higher-level nodes adjacent to a colored
//! lower-level node output `E` (at most `k` waves). Phase `k` colors the
//! surviving level-`k` paths: a proper 2-coloring in time linear in the
//! path length (2½), or a proper 3-coloring in `O(log* n)` rounds via
//! Linial reduction (3½).
//!
//! Round accounting follows the paper's analysis (Lemma 14): level-`i`
//! nodes are charged at most `2γ_i` rounds in phase `i` plus at most `k`
//! exemption-wave rounds, and phase `k` charges the 2-coloring time or the
//! Linial round count.

use crate::linial::linial_coloring;
use crate::run::AlgorithmRun;
use lcl_core::coloring::{ColorLabel, Variant};
use lcl_graph::levels::Levels;
use lcl_graph::{induced_paths, NodeId, NodeMask, Tree};
use lcl_local::identifiers::Ids;

/// A run restricted to a node mask: entries outside the mask are `None`.
#[derive(Debug, Clone)]
pub struct MaskedRun {
    /// Per-node output; `None` outside the executed mask.
    pub outputs: Vec<Option<ColorLabel>>,
    /// Per-node termination round; meaningful where `outputs` is `Some`.
    pub rounds: Vec<u64>,
}

/// Runs the generic algorithm on the subgraph induced by `mask`.
///
/// `levels` must be the masked peeling ([`Levels::compute_masked`]) of the
/// same mask, and `gammas` must contain `k - 1` phase parameters.
///
/// # Panics
///
/// Panics if `gammas.len() != levels.k() - 1`, if some `γ_i == 0`, or if an
/// internal invariant of the phase structure is violated.
pub fn generic_coloring_masked(
    tree: &Tree,
    mask: &NodeMask,
    levels: &Levels,
    variant: Variant,
    gammas: &[usize],
    ids: &Ids,
) -> MaskedRun {
    let k = levels.k();
    assert_eq!(gammas.len(), k - 1, "need k - 1 phase parameters");
    assert!(
        gammas.iter().all(|&g| g >= 1),
        "phase parameters must be positive"
    );
    let n = tree.node_count();
    let mut outputs: Vec<Option<ColorLabel>> = vec![None; n];
    let mut rounds: Vec<u64> = vec![0; n];
    let mut undecided = mask.clone();

    // Level-(k+1) nodes output E unconditionally (their constraint does not
    // depend on neighbors), at round 0.
    for v in mask.iter() {
        if levels.level(v) == k + 1 {
            outputs[v] = Some(ColorLabel::Exempt);
            rounds[v] = 0;
            undecided.remove(v);
        }
    }

    let mut phase_start: u64 = 0;
    for i in 1..k {
        let gamma = gammas[i - 1];
        fix_level_paths(
            tree,
            mask,
            levels,
            i,
            Some(gamma),
            phase_start,
            ids,
            &mut outputs,
            &mut rounds,
            &mut undecided,
        );
        let waves = exemption_waves(
            tree,
            mask,
            levels,
            k,
            phase_start + 2 * gamma as u64,
            &mut outputs,
            &mut rounds,
            &mut undecided,
        );
        assert!(waves <= k + 1, "exemption cascades are bounded by k");
        phase_start += 2 * gamma as u64 + k as u64;
    }

    // Phase k: color the surviving level-k paths.
    debug_assert!(undecided.iter().all(|v| levels.level(v) == k));
    match variant {
        Variant::TwoHalf => {
            let mask_k = NodeMask::from_nodes(n, undecided.iter());
            for p in induced_paths(tree, &mask_k) {
                color_path_two(&p.nodes, ids, phase_start, &mut outputs, &mut rounds);
                for &v in &p.nodes {
                    undecided.remove(v);
                }
            }
        }
        Variant::ThreeHalf => {
            let mask_k = NodeMask::from_nodes(n, undecided.iter());
            if !mask_k.is_empty() {
                let colored = linial_coloring(tree, ids, &mask_k, 2);
                for v in mask_k.iter() {
                    outputs[v] = Some(match colored.colors[v] {
                        0 => ColorLabel::Red,
                        1 => ColorLabel::Green,
                        _ => ColorLabel::Yellow,
                    });
                    rounds[v] = phase_start + colored.rounds;
                    undecided.remove(v);
                }
            }
        }
    }
    assert!(undecided.is_empty(), "all nodes must decide by phase k");
    MaskedRun { outputs, rounds }
}

/// Runs the generic algorithm on a whole tree (full mask), returning a
/// complete [`AlgorithmRun`] that verifies against
/// [`HierarchicalColoring`](lcl_core::coloring::HierarchicalColoring) with
/// hierarchy depth `gammas.len() + 1`.
pub fn generic_coloring(
    tree: &Tree,
    variant: Variant,
    gammas: &[usize],
    ids: &Ids,
) -> AlgorithmRun<ColorLabel> {
    let k = gammas.len() + 1;
    let mask = NodeMask::full(tree.node_count());
    let levels = Levels::compute(tree, k);
    let run = generic_coloring_masked(tree, &mask, &levels, variant, gammas, ids);
    let outputs = run
        .outputs
        .into_iter()
        .map(|o| o.expect("full mask decides everywhere"))
        .collect();
    AlgorithmRun::new(outputs, run.rounds)
}

/// Phase-`i` path fixing. With `threshold = Some(γ)`, paths of length
/// `≥ γ` decline (charged `phase_start + γ`) and shorter paths 2-color
/// (charged `phase_start + len`).
#[allow(clippy::too_many_arguments)]
fn fix_level_paths(
    tree: &Tree,
    _mask: &NodeMask,
    levels: &Levels,
    level: usize,
    threshold: Option<usize>,
    phase_start: u64,
    ids: &Ids,
    outputs: &mut [Option<ColorLabel>],
    rounds: &mut [u64],
    undecided: &mut NodeMask,
) {
    let n = tree.node_count();
    let level_mask =
        NodeMask::from_nodes(n, undecided.iter().filter(|&v| levels.level(v) == level));
    if level_mask.is_empty() {
        return;
    }
    for p in induced_paths(tree, &level_mask) {
        let gamma = threshold.expect("phase i < k always has a parameter");
        if p.nodes.len() >= gamma {
            for &v in &p.nodes {
                outputs[v] = Some(ColorLabel::Decline);
                rounds[v] = phase_start + gamma as u64;
                undecided.remove(v);
            }
        } else {
            color_path_two(&p.nodes, ids, phase_start, outputs, rounds);
            for &v in &p.nodes {
                undecided.remove(v);
            }
        }
    }
}

/// Properly 2-colors an ordered path, anchoring White at the endpoint with
/// the smaller ID; each node is charged `phase_start + len` (it must see
/// the entire path to learn both endpoint IDs).
fn color_path_two(
    nodes: &[NodeId],
    ids: &Ids,
    phase_start: u64,
    outputs: &mut [Option<ColorLabel>],
    rounds: &mut [u64],
) {
    let len = nodes.len();
    let first = nodes[0];
    let last = nodes[len - 1];
    let anchor_at_front = ids.id(first) <= ids.id(last);
    for (idx, &v) in nodes.iter().enumerate() {
        let dist = if anchor_at_front { idx } else { len - 1 - idx };
        outputs[v] = Some(if dist % 2 == 0 {
            ColorLabel::White
        } else {
            ColorLabel::Black
        });
        rounds[v] = phase_start + len as u64;
    }
}

/// Runs exemption waves until stable: an undecided node of level `2..=k`
/// adjacent (inside the mask) to a decided strictly-lower-level node
/// labeled `W`, `B`, or `E` outputs `E`. Wave `j` is charged
/// `base + j` rounds. Returns the number of waves executed.
#[allow(clippy::too_many_arguments)]
fn exemption_waves(
    tree: &Tree,
    mask: &NodeMask,
    levels: &Levels,
    k: usize,
    base: u64,
    outputs: &mut [Option<ColorLabel>],
    rounds: &mut [u64],
    undecided: &mut NodeMask,
) -> usize {
    let mut wave = 0usize;
    loop {
        let mut newly: Vec<NodeId> = Vec::new();
        for v in undecided.iter() {
            let lv = levels.level(v);
            if !(2..=k).contains(&lv) {
                continue;
            }
            let witnessed = tree.neighbors(v).iter().any(|&w| {
                let w = w as usize;
                mask.contains(w)
                    && (1..lv).contains(&levels.level(w))
                    && matches!(
                        outputs[w],
                        Some(ColorLabel::White | ColorLabel::Black | ColorLabel::Exempt)
                    )
            });
            if witnessed {
                newly.push(v);
            }
        }
        if newly.is_empty() {
            return wave;
        }
        wave += 1;
        for v in newly {
            outputs[v] = Some(ColorLabel::Exempt);
            rounds[v] = base + wave as u64;
            undecided.remove(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::coloring::HierarchicalColoring;
    use lcl_core::problem::LclProblem;
    use lcl_graph::generators::{caterpillar, path, random_bounded_degree_tree};
    use lcl_graph::hierarchical::LowerBoundGraph;

    fn check(
        tree: &Tree,
        variant: Variant,
        gammas: &[usize],
        seed: u64,
    ) -> AlgorithmRun<ColorLabel> {
        let n = tree.node_count();
        let ids = Ids::random(n, seed);
        let run = generic_coloring(tree, variant, gammas, &ids);
        let problem = HierarchicalColoring::new(gammas.len() + 1, variant);
        problem
            .verify(tree, &vec![(); n], &run.outputs)
            .unwrap_or_else(|e| panic!("invalid output on {n}-node tree: {e}"));
        run
    }

    #[test]
    fn plain_paths_both_variants() {
        for n in [1usize, 2, 7, 50] {
            check(&path(n), Variant::TwoHalf, &[], n as u64);
            check(&path(n), Variant::ThreeHalf, &[], n as u64);
        }
    }

    #[test]
    fn caterpillars_k2() {
        for legs in [1usize, 3] {
            let t = caterpillar(20, legs);
            check(&t, Variant::TwoHalf, &[4], 7);
            check(&t, Variant::ThreeHalf, &[4], 7);
        }
    }

    #[test]
    fn lower_bound_graphs_k2_and_k3() {
        for lengths in [vec![5usize, 8], vec![3, 4, 5], vec![10, 10]] {
            let g = LowerBoundGraph::new(&lengths).unwrap();
            let k = lengths.len();
            let gammas: Vec<usize> = (0..k - 1).map(|i| 3 + i).collect();
            check(g.tree(), Variant::TwoHalf, &gammas, 13);
            check(g.tree(), Variant::ThreeHalf, &gammas, 13);
        }
    }

    #[test]
    fn random_trees_verify() {
        for seed in 0..6 {
            let t = random_bounded_degree_tree(250, 4, seed);
            for k in 2..=3 {
                let gammas: Vec<usize> = vec![4; k - 1];
                check(&t, Variant::TwoHalf, &gammas, seed);
                check(&t, Variant::ThreeHalf, &gammas, seed);
            }
        }
    }

    #[test]
    fn long_level_paths_decline() {
        // k = 2 lower-bound graph with long level-1 paths and small γ₁:
        // all level-1 paths decline, so level-2 must color.
        let g = LowerBoundGraph::new(&[20, 6]).unwrap();
        let n = g.tree().node_count();
        let ids = Ids::random(n, 3);
        let run = generic_coloring(g.tree(), Variant::TwoHalf, &[5], &ids);
        let levels = Levels::compute(g.tree(), 2);
        let mut declined = 0;
        for v in g.tree().nodes() {
            if levels.level(v) == 1 && run.outputs[v] == ColorLabel::Decline {
                declined += 1;
            }
        }
        assert!(declined > n / 2, "most level-1 nodes should decline");
        // Level-2 nodes must then be colored W/B (2½).
        for v in g.tree().nodes() {
            if levels.level(v) == 2 {
                assert!(
                    run.outputs[v].is_wb(),
                    "level-2 node {v} got {:?}",
                    run.outputs[v]
                );
            }
        }
    }

    #[test]
    fn short_level_paths_color_and_exempt() {
        // γ₁ larger than every level-1 path: all level-1 paths color, so
        // all level-2 nodes become exempt.
        let g = LowerBoundGraph::new(&[4, 6]).unwrap();
        let n = g.tree().node_count();
        let ids = Ids::random(n, 4);
        let run = generic_coloring(g.tree(), Variant::TwoHalf, &[10], &ids);
        let levels = Levels::compute(g.tree(), 2);
        for v in g.tree().nodes() {
            match levels.level(v) {
                1 => assert!(
                    run.outputs[v].is_wb(),
                    "level-1 node {v}: {:?}",
                    run.outputs[v]
                ),
                2 => assert_eq!(run.outputs[v], ColorLabel::Exempt, "node {v}"),
                _ => {}
            }
        }
        // Colored level-1 nodes pay at most their path length; exemptions
        // are charged after the full phase budget 2γ (paper accounting),
        // plus one wave round.
        let max_round = run.rounds.iter().max().copied().unwrap();
        assert!(max_round <= 2 * 10 + 2, "rounds: {max_round}");
        for v in g.tree().nodes() {
            if run.outputs[v].is_wb() {
                assert!(run.rounds[v] <= 5, "colored node {v}: {}", run.rounds[v]);
            }
        }
    }

    #[test]
    fn decline_rounds_follow_gamma_charges() {
        let g = LowerBoundGraph::new(&[30, 5]).unwrap();
        let n = g.tree().node_count();
        let ids = Ids::random(n, 5);
        let gamma = 6u64;
        let run = generic_coloring(g.tree(), Variant::TwoHalf, &[gamma as usize], &ids);
        let levels = Levels::compute(g.tree(), 2);
        for v in g.tree().nodes() {
            if run.outputs[v] == ColorLabel::Decline {
                assert_eq!(run.rounds[v], gamma, "node {v}");
            }
            if levels.level(v) == 2 {
                // Level-2 work happens in phase 2 (after 2γ + k rounds).
                assert!(run.rounds[v] >= 2 * gamma, "node {v}: {}", run.rounds[v]);
            }
        }
    }

    #[test]
    fn three_half_uses_linial_at_level_k() {
        let g = LowerBoundGraph::new(&[40, 8]).unwrap();
        let n = g.tree().node_count();
        let ids = Ids::random(n, 6);
        let run = generic_coloring(g.tree(), Variant::ThreeHalf, &[4], &ids);
        let levels = Levels::compute(g.tree(), 2);
        for v in g.tree().nodes() {
            if levels.level(v) == 2 {
                assert!(
                    run.outputs[v].is_rgy() || run.outputs[v] == ColorLabel::Exempt,
                    "node {v}: {:?}",
                    run.outputs[v]
                );
            }
        }
    }

    #[test]
    fn masked_run_skips_outside_nodes() {
        let t = path(10);
        let ids = Ids::sequential(10);
        let mask = NodeMask::from_nodes(10, 0..5);
        let levels = Levels::compute_masked(&t, &mask, 1);
        let run = generic_coloring_masked(&t, &mask, &levels, Variant::TwoHalf, &[], &ids);
        for v in 0..5 {
            assert!(run.outputs[v].is_some());
        }
        for v in 5..10 {
            assert!(run.outputs[v].is_none());
        }
    }

    #[test]
    #[should_panic(expected = "k - 1 phase parameters")]
    fn gamma_arity_checked() {
        let t = path(5);
        let ids = Ids::sequential(5);
        let mask = NodeMask::full(5);
        let levels = Levels::compute(&t, 2);
        let _ = generic_coloring_masked(&t, &mask, &levels, Variant::TwoHalf, &[], &ids);
    }
}
