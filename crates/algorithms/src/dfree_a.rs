//! Algorithm `A` for the `d`-free weight problem (Section 7).
//!
//! Every node collects its `(3⌈log_{d+1} n⌉ + 3)`-hop neighborhood and
//! decides:
//!
//! - nodes on a path of length ≤ `2⌈log_{d+1} n⌉ + 2` between two `A`-nodes
//!   output `Connect`,
//! - every other `A`-node `v` runs the sequential witness `A*` of Lemma 37
//!   on its `(⌈log_{d+1} n⌉ + 1)`-ball: `v` copies, and each copying node
//!   declines its `d` heaviest child subtrees, so the copy set shrinks by a
//!   factor `d + 1` per level and dies before the ball boundary,
//! - everything else declines.
//!
//! The copy set around `v` has size `O(|ball|^x)` with
//! `x = log(Δ-1-d)/log(Δ-1)` (Lemma 40), which is the upper-bound
//! efficiency the weighted algorithms inherit.

use lcl_core::dfree::{DfreeInput, DfreeOutput};
use lcl_graph::{NodeId, NodeMask, Tree};
use lcl_local::math::ceil_log;
use std::collections::VecDeque;

/// One maximal connected copy component, grown around an `A`-node.
#[derive(Debug, Clone)]
pub struct CopyComponent {
    /// The `A`-node the component was grown around (Observation 39: each
    /// component contains exactly one).
    pub anchor: NodeId,
    /// Members with their distance from the anchor (the anchor itself is
    /// `(anchor, 0)`).
    pub members: Vec<(NodeId, u32)>,
}

/// Result of running algorithm `A` on the subgraph induced by a mask.
#[derive(Debug, Clone)]
pub struct DfreeRun {
    /// Output per node; `None` outside the mask.
    pub outputs: Vec<Option<DfreeOutput>>,
    /// The uniform termination round `3⌈log_{d+1} n⌉ + 3`.
    pub radius: u64,
    /// The copy components, one per non-`Connect` `A`-node that copies.
    pub copy_components: Vec<CopyComponent>,
}

/// Runs algorithm `A` on the subgraph of `tree` induced by `mask`.
///
/// `input` must label every mask node (`Adjacent` for nodes standing next
/// to active nodes, `Weight` otherwise); `n_hint` is the size of the whole
/// instance (nodes know `n` in the LOCAL model) and `d ≥ 1` the decline
/// budget.
///
/// # Panics
///
/// Panics if `d == 0` (algorithm `A`'s radius is `log_{d+1}` and the
/// paper requires positive `d`).
pub fn algorithm_a(
    tree: &Tree,
    mask: &NodeMask,
    input: &[DfreeInput],
    d: usize,
    n_hint: usize,
) -> DfreeRun {
    assert!(d >= 1, "algorithm A needs d >= 1");
    let n = tree.node_count();
    let r = ceil_log((d + 1) as u64, n_hint as u64) as usize;
    let connect_budget = 2 * r + 2;
    let mut outputs: Vec<Option<DfreeOutput>> = vec![None; n];

    let a_nodes: Vec<NodeId> = mask
        .iter()
        .filter(|&v| input[v] == DfreeInput::Adjacent)
        .collect();

    // --- Connect paths between nearby A-nodes. ---
    for &a in &a_nodes {
        for (b, _) in masked_ball(tree, mask, a, connect_budget as u32) {
            if b != a && input[b] == DfreeInput::Adjacent {
                for u in tree.path_between(a, b) {
                    debug_assert!(mask.contains(u), "tree paths stay inside components");
                    outputs[u] = Some(DfreeOutput::Connect);
                }
            }
        }
    }

    // --- Copy balls around the remaining A-nodes. ---
    let mut copy_components = Vec::new();
    for &v in &a_nodes {
        if outputs[v] == Some(DfreeOutput::Connect) {
            continue;
        }
        let ball = masked_ball(tree, mask, v, (r + 1) as u32);
        let copies = witness_phi(tree, mask, v, &ball, d, r);
        let mut members = Vec::with_capacity(copies.len());
        for &(u, dist) in &ball {
            if copies.contains(&u) {
                outputs[u] = Some(DfreeOutput::Copy);
                members.push((u, dist));
            } else if outputs[u].is_none() {
                outputs[u] = Some(DfreeOutput::Decline);
            }
        }
        copy_components.push(CopyComponent { anchor: v, members });
    }

    // --- Everything else declines. ---
    for u in mask.iter() {
        if outputs[u].is_none() {
            outputs[u] = Some(DfreeOutput::Decline);
        }
    }

    DfreeRun {
        outputs,
        radius: (3 * r + 3) as u64,
        copy_components,
    }
}

/// BFS ball of radius `radius` inside the mask: `(node, distance)` pairs in
/// BFS order.
fn masked_ball(tree: &Tree, mask: &NodeMask, center: NodeId, radius: u32) -> Vec<(NodeId, u32)> {
    let mut dist = std::collections::HashMap::new();
    let mut order = vec![(center, 0u32)];
    let mut queue = VecDeque::new();
    dist.insert(center, 0u32);
    queue.push_back(center);
    while let Some(u) = queue.pop_front() {
        let du = dist[&u];
        if du == radius {
            continue;
        }
        for &w in tree.neighbors(u) {
            let w = w as usize;
            if mask.contains(w) && !dist.contains_key(&w) {
                dist.insert(w, du + 1);
                order.push((w, du + 1));
                queue.push_back(w);
            }
        }
    }
    order
}

/// The sequential witness `A*` of Lemma 37: returns the set of nodes that
/// copy. Rooted at `v`; each copying node declines its `min(d, #children)`
/// heaviest child subtrees (sizes measured inside the truncated ball).
fn witness_phi(
    tree: &Tree,
    mask: &NodeMask,
    v: NodeId,
    ball: &[(NodeId, u32)],
    d: usize,
    r: usize,
) -> std::collections::HashSet<NodeId> {
    use std::collections::HashMap;
    let in_ball: HashMap<NodeId, u32> = ball.iter().copied().collect();
    // Children in the ball-rooted orientation; ball is in BFS order.
    let mut children: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
    for &(u, du) in ball {
        for &w in tree.neighbors(u) {
            let w = w as usize;
            if mask.contains(w) && in_ball.get(&w) == Some(&(du + 1)) && !parent.contains_key(&w) {
                parent.insert(w, u);
                children.entry(u).or_default().push(w);
            }
        }
    }
    // Subtree sizes, bottom-up over the BFS order.
    let mut size: HashMap<NodeId, usize> = ball.iter().map(|&(u, _)| (u, 1usize)).collect();
    for &(u, _) in ball.iter().rev() {
        if let Some(&p) = parent.get(&u) {
            *size.get_mut(&p).expect("parent in ball") += size[&u];
        }
    }
    // Greedy top-down: copy, declining the d heaviest subtrees.
    let mut copies = std::collections::HashSet::new();
    copies.insert(v);
    let mut queue = VecDeque::new();
    queue.push_back(v);
    while let Some(u) = queue.pop_front() {
        let mut kids: Vec<NodeId> = children.get(&u).cloned().unwrap_or_default();
        kids.sort_by_key(|c| std::cmp::Reverse(size[c]));
        for (rank, c) in kids.into_iter().enumerate() {
            if rank >= d {
                copies.insert(c);
                queue.push_back(c);
            }
        }
    }
    // Lemma 37: the copy set dies out before the ball boundary.
    debug_assert!(
        copies.iter().all(|u| (in_ball[u] as usize) <= r),
        "copy set must stay strictly inside the (r+1)-ball"
    );
    copies
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::dfree::DFreeWeight;
    use lcl_core::problem::LclProblem;
    use lcl_graph::generators::{balanced_weight_tree, path, random_bounded_degree_tree};

    fn full_inputs(tree: &Tree, a_nodes: &[NodeId]) -> Vec<DfreeInput> {
        let mut input = vec![DfreeInput::Weight; tree.node_count()];
        for &a in a_nodes {
            input[a] = DfreeInput::Adjacent;
        }
        input
    }

    fn run_and_verify(tree: &Tree, a_nodes: &[NodeId], d: usize) -> DfreeRun {
        let n = tree.node_count();
        let mask = NodeMask::full(n);
        let input = full_inputs(tree, a_nodes);
        let run = algorithm_a(tree, &mask, &input, d, n);
        let outputs: Vec<DfreeOutput> = run
            .outputs
            .iter()
            .map(|o| o.expect("full mask decides everywhere"))
            .collect();
        DFreeWeight::new(d)
            .verify(tree, &input, &outputs)
            .unwrap_or_else(|e| panic!("invalid d-free output: {e}"));
        run
    }

    #[test]
    fn lone_a_node_copies_a_small_set() {
        let tree = balanced_weight_tree(200, 5);
        // Root is the A-node (stands next to the active anchor).
        let run = run_and_verify(&tree, &[0], 2);
        assert_eq!(run.copy_components.len(), 1);
        let comp = &run.copy_components[0];
        assert_eq!(comp.anchor, 0);
        // Copy set is sublinear: |ball|^x with x = log(5-1-2)/log(4) = 0.5
        // plus the Lemma 40 constant.
        assert!(comp.members.len() < 120, "copied {}", comp.members.len());
        assert!(comp.members.len() >= 2, "someone besides the root copies");
    }

    #[test]
    fn no_a_nodes_means_all_decline() {
        let tree = random_bounded_degree_tree(100, 4, 1);
        let run = run_and_verify(&tree, &[], 2);
        assert!(run.outputs.iter().all(|&o| o == Some(DfreeOutput::Decline)));
        assert!(run.copy_components.is_empty());
    }

    #[test]
    fn nearby_a_nodes_connect() {
        // Two A-nodes at the ends of a short path: the whole path connects.
        let tree = path(6);
        let run = run_and_verify(&tree, &[0, 5], 1);
        assert!(run.outputs.iter().all(|&o| o == Some(DfreeOutput::Connect)));
        assert!(run.copy_components.is_empty());
    }

    #[test]
    fn distant_a_nodes_do_not_connect() {
        // A long path: the A-endpoints are farther apart than the connect
        // budget 2⌈log₂ n⌉ + 2, so each copies locally instead.
        let n = 600;
        let tree = path(n);
        let run = run_and_verify(&tree, &[0, n - 1], 1);
        assert_eq!(run.copy_components.len(), 2);
        assert_eq!(run.outputs[0], Some(DfreeOutput::Copy));
        assert_eq!(run.outputs[n - 1], Some(DfreeOutput::Copy));
        assert_eq!(run.outputs[n / 2], Some(DfreeOutput::Decline));
    }

    #[test]
    fn copy_components_are_separated() {
        // Spider with A-nodes on distinct legs far from each other.
        let tree = lcl_graph::generators::spider(3, 300);
        let a1 = 1 + 299; // end of leg 0
        let a2 = 1 + 300 + 299; // end of leg 1
        let run = run_and_verify(&tree, &[a1, a2], 1);
        assert_eq!(run.copy_components.len(), 2);
        // Components never touch: every neighbor of a copy member is Copy,
        // Decline, or Connect-free.
        for comp in &run.copy_components {
            for &(u, _) in &comp.members {
                for &w in tree.neighbors(u) {
                    let w = w as usize;
                    let in_other = run
                        .copy_components
                        .iter()
                        .filter(|c| c.anchor != comp.anchor)
                        .any(|c| c.members.iter().any(|&(m, _)| m == u || m == w));
                    assert!(!in_other, "components touch at ({u}, {w})");
                }
            }
        }
    }

    #[test]
    fn lemma_40_copy_bound() {
        // |Copy| <= 6 |ball|^x with x = log(Δ-1-d)/log(Δ-1).
        for (delta, d) in [(5usize, 2usize), (6, 2), (9, 4)] {
            let w = 3_000;
            let tree = balanced_weight_tree(w, delta);
            let run = run_and_verify(&tree, &[0], d);
            let comp = &run.copy_components[0];
            let x = ((delta - 1 - d) as f64).ln() / ((delta - 1) as f64).ln();
            let bound = 6.0 * (w as f64).powf(x);
            assert!(
                (comp.members.len() as f64) <= bound,
                "Δ={delta}, d={d}: copied {} > bound {bound:.1}",
                comp.members.len()
            );
        }
    }

    #[test]
    fn radius_formula() {
        let tree = path(100);
        let mask = NodeMask::full(100);
        let input = full_inputs(&tree, &[]);
        let run = algorithm_a(&tree, &mask, &input, 1, 100);
        // 3 * ceil(log2(100)) + 3 = 3 * 7 + 3.
        assert_eq!(run.radius, 24);
        let run = algorithm_a(&tree, &mask, &input, 3, 100);
        // 3 * ceil(log4(100)) + 3 = 3 * 4 + 3.
        assert_eq!(run.radius, 15);
    }

    #[test]
    fn masked_run_leaves_outside_untouched() {
        let tree = path(10);
        let mask = NodeMask::from_nodes(10, 0..5);
        let mut input = vec![DfreeInput::Weight; 10];
        input[0] = DfreeInput::Adjacent;
        let run = algorithm_a(&tree, &mask, &input, 1, 10);
        for v in 5..10 {
            assert!(run.outputs[v].is_none());
        }
        assert!(run.outputs[0].is_some());
    }

    #[test]
    fn anchor_distances_are_exact() {
        let tree = balanced_weight_tree(500, 4);
        let run = run_and_verify(&tree, &[0], 1);
        let dist = tree.bfs_distances(0);
        for comp in &run.copy_components {
            for &(u, du) in &comp.members {
                assert_eq!(dist[u], du, "member {u}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "d >= 1")]
    fn zero_d_rejected() {
        let tree = path(4);
        let mask = NodeMask::full(4);
        let input = full_inputs(&tree, &[]);
        let _ = algorithm_a(&tree, &mask, &input, 0, 4);
    }
}
