//! The adapted fast decomposition for the `d`-free weight problem
//! (Section 8.1 of the paper, after \[BBK+23a\]).
//!
//! The weight subgraph is consumed by iterated rake-and-compress steps
//! (`γ = 1`, relaxed compress with `ℓ = 3`). Edges are oriented from late
//! to early: a raked node receives its unique remaining edge, and the
//! first/last `ℓ` edges of a compress chain (including the boundary edges)
//! point inward. Declines are produced only by the paper's events —
//! *borders* of `A`-nodes (adapted rule 1), cascades from assigned borders
//! (rule 2), component roots / local maxima (rule 3), compress interiors
//! at distance ≥ `ℓ` from the chain ends (rule 4) — and propagate along
//! consistently oriented paths, one hop per round.
//!
//! **Reserve pruning (our realization of BBK's inserted compress paths).**
//! When a node is raked at iteration `i` it already knows its pendant
//! subtree (diameter `O(i)`, Observation 46). It keeps a *reserve* of its
//! pending children — all but the `d - 2` heaviest subtrees, the greedy of
//! Lemma 52 with two decline slots spared for structural neighbors — and
//! declines the pruned subtrees immediately. The surviving reserve has
//! fan-out at most `Δ - 1 - (d - 2) = Δ - d + 1`, which is precisely where
//! the upper-bound efficiency factor `x' = log(Δ-d+1)/log(Δ-1)` of
//! Theorem 5 comes from, and the pending set shrinks geometrically so
//! declines cost `O(1)` node-averaged rounds (Corollary 47 / Lemma 56).
//! When an `A`-node is assigned, its pending reachable set *is* the
//! (already pruned) copy component `C'(v)` of Lemmas 50–52.
//!
//! **Claim on contact.** Nodes that rake toward a (still unassigned)
//! `A`-node — and the first `ℓ` nodes of a compress chain whose outer
//! neighbor is an `A`-node — join that `A`-node's copy component
//! immediately, together with their pending reserves. This keeps every
//! neighbor of the component safe from unrelated decline cascades, so the
//! only declines ever adjacent to the anchor are its own borders and
//! prunes (the invariant of Lemma 48: at most `2 + (d - 2) = d`).

use lcl_core::dfree::{DfreeInput, DfreeOutput};
use lcl_graph::{induced_paths, NodeId, NodeMask, Tree};
use std::collections::VecDeque;

/// Rounds charged for the 5-hop `Connect` pre-step.
const PRESTEP_ROUNDS: u64 = 5;
/// Rounds charged per rake/compress iteration (constant-radius steps).
const ROUNDS_PER_ITERATION: u64 = 2;
/// Relaxed compress threshold `ℓ`.
const ELL: usize = 3;

/// A pending copy component around an `A`-node, already reserve-pruned.
#[derive(Debug, Clone)]
pub struct PendingComponent {
    /// The `A`-node the component formed around.
    pub anchor: NodeId,
    /// Iteration at which the anchor was assigned.
    pub iteration: u32,
    /// Members (including the anchor) with oriented depth from the anchor.
    pub members: Vec<(NodeId, u32)>,
    /// Round at which the component was fixed (`base(iteration)`).
    pub formed_round: u64,
}

/// Result of the adapted fast decomposition on the weight subgraph.
#[derive(Debug, Clone)]
pub struct FastWeightRun {
    /// Output per node: `Decline`/`Connect` decided here; members of
    /// [`Self::components`] are left `None` for the caller (the Π^{3.5}
    /// algorithm) to resolve into `Copy` with a secondary output.
    pub outputs: Vec<Option<DfreeOutput>>,
    /// Termination rounds for the decided nodes.
    pub rounds: Vec<u64>,
    /// Pending copy components, one per non-`Connect` `A`-node.
    pub components: Vec<PendingComponent>,
    /// Number of rake/compress iterations used (`O(log n)`).
    pub iterations: u32,
}

fn base_round(iteration: u32) -> u64 {
    PRESTEP_ROUNDS + ROUNDS_PER_ITERATION * iteration as u64
}

/// Runs the adapted fast decomposition on the subgraph induced by `mask`.
///
/// `input` labels every mask node with `Adjacent` (`A`) or `Weight`; `d`
/// is the decline budget (the paper's Theorem 5 uses `d ≥ 3`; smaller `d`
/// is accepted but leaves fewer reserve-pruning slots, degrading the
/// node-averaged guarantee).
///
/// # Panics
///
/// Panics if `d == 0` or if an internal invariant (every node eventually
/// decides) is violated.
pub fn fast_dfree(tree: &Tree, mask: &NodeMask, input: &[DfreeInput], d: usize) -> FastWeightRun {
    assert!(d >= 1, "the weighted problems require d >= 1");
    let n = tree.node_count();
    let mut outputs: Vec<Option<DfreeOutput>> = vec![None; n];
    let mut rounds: Vec<u64> = vec![0; n];
    let mut components: Vec<PendingComponent> = Vec::new();
    // Component index per A-node anchor (populated lazily on first claim).
    let mut component_of: Vec<Option<usize>> = vec![None; n];
    // `claimed` marks pending copy-component members; cascades skip them.
    let mut claimed = NodeMask::empty(n);
    // Oriented out-edges (late -> early).
    let mut oriented: Vec<Vec<u32>> = vec![Vec::new(); n];
    // Pending = assigned, not yet decided, not claimed.
    let mut pending = NodeMask::empty(n);
    // Pending subtree sizes (only maintained at pendant roots).
    let mut pending_size: Vec<u64> = vec![0; n];

    // --- Pre-step: Connect paths between A-nodes at distance <= 5. ---
    let a_nodes: Vec<NodeId> = mask
        .iter()
        .filter(|&v| input[v] == DfreeInput::Adjacent)
        .collect();
    for &a in &a_nodes {
        for (b, _) in masked_ball(tree, mask, a, 5) {
            if b != a && input[b] == DfreeInput::Adjacent {
                for u in tree.path_between(a, b) {
                    outputs[u] = Some(DfreeOutput::Connect);
                    rounds[u] = PRESTEP_ROUNDS;
                }
            }
        }
    }

    // --- Iterated rake-and-compress over the remaining graph. ---
    let mut remaining = NodeMask::empty(n);
    for v in mask.iter() {
        if outputs[v].is_none() {
            remaining.insert(v);
        }
    }
    let mut degree: Vec<usize> = (0..n)
        .map(|v| {
            if remaining.contains(v) {
                tree.neighbors(v)
                    .iter()
                    .filter(|&&w| remaining.contains(w as usize))
                    .count()
            } else {
                0
            }
        })
        .collect();

    let mut iteration = 0u32;
    let mut remaining_count = remaining.count();
    while remaining_count > 0 {
        iteration += 1;
        assert!(
            iteration as usize <= 2 * n + 4,
            "fast decomposition failed to make progress"
        );
        let base = base_round(iteration);

        // ---- Rake pass. ----
        let mut rake_set: Vec<NodeId> = Vec::new();
        let mut in_rake_set = NodeMask::empty(n);
        for v in remaining.iter() {
            if degree[v] == 0 {
                rake_set.push(v);
                in_rake_set.insert(v);
            } else if degree[v] == 1 {
                let u = tree
                    .neighbors(v)
                    .iter()
                    .map(|&w| w as usize)
                    .find(|&w| remaining.contains(w))
                    .expect("degree-1 node has a remaining neighbor");
                if degree[u] > 1 || v < u {
                    rake_set.push(v);
                    in_rake_set.insert(v);
                }
            }
        }
        for &v in &rake_set {
            let up = tree
                .neighbors(v)
                .iter()
                .map(|&w| w as usize)
                .find(|&w| remaining.contains(w) && !in_rake_set.contains(w));
            remaining.remove(v);
            remaining_count -= 1;
            if let Some(u) = up {
                degree[u] -= 1;
                oriented[u].push(v as u32);
            }
            process_assigned(
                tree,
                v,
                up,
                input,
                d,
                iteration,
                base,
                &oriented,
                &mut outputs,
                &mut rounds,
                &mut pending,
                &mut claimed,
                &mut pending_size,
                &mut components,
                &mut component_of,
            );
        }
        if remaining_count == 0 {
            break;
        }

        // ---- Compress pass (relaxed, chains of length >= ELL). ----
        let chain_mask = NodeMask::from_nodes(n, remaining.iter().filter(|&v| degree[v] == 2));
        if !chain_mask.is_empty() {
            for p in induced_paths(tree, &chain_mask) {
                if p.nodes.len() < ELL {
                    continue;
                }
                compress_chain(
                    tree,
                    &p.nodes,
                    input,
                    d,
                    iteration,
                    base,
                    &mut remaining,
                    &mut remaining_count,
                    &mut degree,
                    &mut oriented,
                    &mut outputs,
                    &mut rounds,
                    &mut pending,
                    &mut claimed,
                    &mut pending_size,
                    &mut components,
                    &mut component_of,
                );
            }
        }
    }

    // Every mask node must have decided or been claimed by a component.
    for v in mask.iter() {
        assert!(
            outputs[v].is_some() || claimed.contains(v),
            "node {v} left undecided by the fast decomposition"
        );
    }
    FastWeightRun {
        outputs,
        rounds,
        components,
        iterations: iteration,
    }
}

/// Handles a newly assigned (raked) node: reserve pruning, claim-on-contact
/// into adjacent `A`-nodes' components, border bookkeeping, and
/// component-root cascades.
#[allow(clippy::too_many_arguments)]
fn process_assigned(
    tree: &Tree,
    v: NodeId,
    up: Option<NodeId>,
    input: &[DfreeInput],
    d: usize,
    iteration: u32,
    base: u64,
    oriented: &[Vec<u32>],
    outputs: &mut [Option<DfreeOutput>],
    rounds: &mut [u64],
    pending: &mut NodeMask,
    claimed: &mut NodeMask,
    pending_size: &mut [u64],
    components: &mut Vec<PendingComponent>,
    component_of: &mut [Option<usize>],
) {
    // Adapted rule 2: a border node (declined while unassigned) that now
    // receives a layer cascades declines to everything reachable from it.
    if outputs[v].is_some() {
        cascade_decline_children(tree, v, base, oriented, outputs, rounds, pending, claimed);
        return;
    }
    // Reserve pruning: decline the (d - 2) heaviest pending child subtrees.
    let mut kids: Vec<NodeId> = oriented[v]
        .iter()
        .map(|&w| w as usize)
        .filter(|&w| pending.contains(w))
        .collect();
    kids.sort_by_key(|&k| std::cmp::Reverse(pending_size[k]));
    let prune = d.saturating_sub(2).min(kids.len());
    for &k in kids.iter().take(prune) {
        cascade_decline(tree, k, base, oriented, outputs, rounds, pending, claimed);
    }
    let kept: u64 = kids.iter().skip(prune).map(|&k| pending_size[k]).sum();

    if input[v] == DfreeInput::Adjacent {
        // Adapted rule 1: the border declines; v and everything claimed on
        // contact (plus any residual pending reachables) form C'(v).
        if let Some(u) = up {
            if outputs[u].is_none() && !claimed.contains(u) {
                outputs[u] = Some(DfreeOutput::Decline);
                rounds[u] = base;
                pending.remove(u);
            }
        }
        let idx = component_index(v, iteration, components, component_of);
        claimed.insert(v);
        components[idx].members.push((v, 0));
        claim_into(
            tree, v, 0, idx, oriented, outputs, pending, claimed, components,
        );
        components[idx].iteration = iteration;
        components[idx].formed_round = base;
        return;
    }

    // Claim on contact: raking toward a (still unassigned, non-Connect)
    // A-node attaches v and its reserve to that node's component.
    if let Some(u) = up {
        if input[u] == DfreeInput::Adjacent && outputs[u].is_none() {
            let idx = component_index(u, iteration, components, component_of);
            claimed.insert(v);
            components[idx].members.push((v, 1));
            claim_into(
                tree, v, 1, idx, oriented, outputs, pending, claimed, components,
            );
            return;
        }
        // v stays pending; it may serve a future component above.
        pending.insert(v);
        pending_size[v] = 1 + kept;
    } else {
        // Component root (no unassigned neighbor): everything reachable
        // that is still pending declines — adapted rule 3 cascades.
        cascade_decline(tree, v, base, oriented, outputs, rounds, pending, claimed);
    }
}

/// Looks up (or lazily registers) the component of an `A`-node anchor.
fn component_index(
    anchor: NodeId,
    iteration: u32,
    components: &mut Vec<PendingComponent>,
    component_of: &mut [Option<usize>],
) -> usize {
    if let Some(idx) = component_of[anchor] {
        return idx;
    }
    let idx = components.len();
    components.push(PendingComponent {
        anchor,
        iteration,
        members: Vec::new(),
        formed_round: base_round(iteration),
    });
    component_of[anchor] = Some(idx);
    idx
}

/// Claims the pending set reachable from `from` (exclusive) into component
/// `idx`, at depth offset `depth0`.
#[allow(clippy::too_many_arguments)]
fn claim_into(
    tree: &Tree,
    from: NodeId,
    depth0: u32,
    idx: usize,
    oriented: &[Vec<u32>],
    outputs: &[Option<DfreeOutput>],
    pending: &mut NodeMask,
    claimed: &mut NodeMask,
    components: &mut [PendingComponent],
) {
    let _ = tree;
    let mut queue = VecDeque::new();
    queue.push_back((from, depth0));
    while let Some((u, du)) = queue.pop_front() {
        for &w in &oriented[u] {
            let w = w as usize;
            if outputs[w].is_none() && pending.contains(w) && !claimed.contains(w) {
                claimed.insert(w);
                pending.remove(w);
                components[idx].members.push((w, du + 1));
                queue.push_back((w, du + 1));
            }
        }
    }
}

/// Handles one compressed chain: orientation, interior declines (adapted
/// rule 4), and A-nodes on the chain (adapted rule 1, compress case).
#[allow(clippy::too_many_arguments)]
fn compress_chain(
    tree: &Tree,
    chain: &[NodeId],
    input: &[DfreeInput],
    d: usize,
    iteration: u32,
    base: u64,
    remaining: &mut NodeMask,
    remaining_count: &mut usize,
    degree: &mut [usize],
    oriented: &mut [Vec<u32>],
    outputs: &mut [Option<DfreeOutput>],
    rounds: &mut [u64],
    pending: &mut NodeMask,
    claimed: &mut NodeMask,
    pending_size: &mut [u64],
    components: &mut Vec<PendingComponent>,
    component_of: &mut [Option<usize>],
) {
    let m = chain.len();
    // Remove the chain from the remaining graph.
    for &c in chain {
        remaining.remove(c);
        *remaining_count -= 1;
    }
    // Outer boundary neighbors (still remaining, exactly one per side in
    // the relaxed decomposition; absent for whole-component chains).
    let outer_of = |end: NodeId| -> Option<NodeId> {
        tree.neighbors(end)
            .iter()
            .map(|&w| w as usize)
            .find(|&w| remaining.contains(w))
    };
    let left_outer = outer_of(chain[0]);
    let right_outer = outer_of(chain[m - 1]);
    for out in [left_outer, right_outer].into_iter().flatten() {
        degree[out] -= 1;
    }
    // Orientation: boundary edge plus the first/last ELL-1 path edges point
    // inward (a total of ELL oriented edges per side, Fig. 5).
    if let Some(o) = left_outer {
        oriented[o].push(chain[0] as u32);
    }
    for e in 0..(ELL - 1).min(m - 1) {
        oriented[chain[e]].push(chain[e + 1] as u32);
    }
    if let Some(o) = right_outer {
        oriented[o].push(chain[m - 1] as u32);
    }
    for e in 0..(ELL - 1).min(m - 1) {
        oriented[chain[m - 1 - e]].push(chain[m - 2 - e] as u32);
    }

    // Per-node treatment.
    for (idx, &c) in chain.iter().enumerate() {
        let from_end = idx.min(m - 1 - idx);
        if outputs[c].is_some() {
            // Adapted rule 2: an assigned border cascades declines.
            cascade_decline_children(tree, c, base, oriented, outputs, rounds, pending, claimed);
        } else if input[c] == DfreeInput::Adjacent {
            // Adapted rule 1, compress case: both chain neighbors decline
            // (borders), the pending reachable set becomes the component.
            for nb in [idx.checked_sub(1), (idx + 1 < m).then_some(idx + 1)]
                .into_iter()
                .flatten()
            {
                let u = chain[nb];
                if outputs[u].is_none() && !claimed.contains(u) {
                    outputs[u] = Some(DfreeOutput::Decline);
                    rounds[u] = base;
                    pending.remove(u);
                    // Rule 1: cascades from already-assigned borders.
                    cascade_decline_children(
                        tree, u, base, oriented, outputs, rounds, pending, claimed,
                    );
                }
            }
            // Prune v's own pendant reserves before claiming.
            let mut kids: Vec<NodeId> = oriented[c]
                .iter()
                .map(|&w| w as usize)
                .filter(|&w| pending.contains(w))
                .collect();
            kids.sort_by_key(|&k| std::cmp::Reverse(pending_size[k]));
            let prune = d.saturating_sub(2).min(kids.len());
            for &k in kids.iter().take(prune) {
                cascade_decline(tree, k, base, oriented, outputs, rounds, pending, claimed);
            }
            let idx = component_index(c, iteration, components, component_of);
            claimed.insert(c);
            pending.remove(c);
            components[idx].members.push((c, 0));
            claim_into(
                tree, c, 0, idx, oriented, outputs, pending, claimed, components,
            );
            components[idx].iteration = iteration;
            components[idx].formed_round = base;
        } else if from_end >= ELL {
            // Adapted rule 4: deep interior declines with its reserves.
            if outputs[c].is_none() && !claimed.contains(c) {
                cascade_decline(tree, c, base, oriented, outputs, rounds, pending, claimed);
            }
        } else if outputs[c].is_none() && !claimed.contains(c) {
            // Near-end chain node: stays pending until a cascade arrives
            // through the inward-oriented boundary edges (or until the
            // boundary claim below attaches it to an A-node's component).
            pending.insert(c);
            pending_size[c] = 1 + oriented[c]
                .iter()
                .map(|&w| w as usize)
                .filter(|&w| pending.contains(w))
                .map(|w| pending_size[w])
                .sum::<u64>();
        }
    }

    // Claim on contact across the chain boundary: if an outer neighbor is
    // a still-unassigned A-node, the chain end it touches (and the pending
    // prefix reachable through the inward orientation) joins its component
    // now, protecting it from unrelated cascades.
    for (outer, end) in [(left_outer, chain[0]), (right_outer, chain[m - 1])] {
        let Some(o) = outer else { continue };
        if input[o] != DfreeInput::Adjacent || outputs[o].is_some() {
            continue;
        }
        if !pending.contains(end) || claimed.contains(end) {
            continue;
        }
        let idx_c = component_index(o, iteration, components, component_of);
        claimed.insert(end);
        pending.remove(end);
        components[idx_c].members.push((end, 1));
        claim_into(
            tree, end, 1, idx_c, oriented, outputs, pending, claimed, components,
        );
    }
}

/// Declines `start` and every pending node reachable from it along
/// oriented edges, charging `base + depth` rounds.
#[allow(clippy::too_many_arguments)]
fn cascade_decline(
    tree: &Tree,
    start: NodeId,
    base: u64,
    oriented: &[Vec<u32>],
    outputs: &mut [Option<DfreeOutput>],
    rounds: &mut [u64],
    pending: &mut NodeMask,
    claimed: &NodeMask,
) {
    let _ = tree;
    if outputs[start].is_some() || claimed.contains(start) {
        return;
    }
    let mut queue = VecDeque::new();
    outputs[start] = Some(DfreeOutput::Decline);
    rounds[start] = base;
    pending.remove(start);
    queue.push_back((start, 0u32));
    while let Some((u, du)) = queue.pop_front() {
        for &w in &oriented[u] {
            let w = w as usize;
            if outputs[w].is_none() && !claimed.contains(w) {
                outputs[w] = Some(DfreeOutput::Decline);
                rounds[w] = base + du as u64 + 1;
                pending.remove(w);
                queue.push_back((w, du + 1));
            }
        }
    }
}

/// Like [`cascade_decline`] but starting from the children of `start`
/// (used when `start` itself already declined as a border).
#[allow(clippy::too_many_arguments)]
fn cascade_decline_children(
    tree: &Tree,
    start: NodeId,
    base: u64,
    oriented: &[Vec<u32>],
    outputs: &mut [Option<DfreeOutput>],
    rounds: &mut [u64],
    pending: &mut NodeMask,
    claimed: &NodeMask,
) {
    for &w in oriented[start].clone().iter() {
        cascade_decline(
            tree,
            w as usize,
            base + 1,
            oriented,
            outputs,
            rounds,
            pending,
            claimed,
        );
    }
}

fn masked_ball(tree: &Tree, mask: &NodeMask, center: NodeId, radius: u32) -> Vec<(NodeId, u32)> {
    let mut dist = std::collections::HashMap::new();
    let mut order = vec![(center, 0u32)];
    let mut queue = VecDeque::new();
    dist.insert(center, 0u32);
    queue.push_back(center);
    while let Some(u) = queue.pop_front() {
        let du = dist[&u];
        if du == radius {
            continue;
        }
        for &w in tree.neighbors(u) {
            let w = w as usize;
            if mask.contains(w) && !dist.contains_key(&w) {
                dist.insert(w, du + 1);
                order.push((w, du + 1));
                queue.push_back(w);
            }
        }
    }
    order
}

/// Resolves all pending components into `Copy` outputs (members copy at
/// `formed_round + depth`), yielding a complete standalone solution of the
/// `d`-free weight problem. The Π^{3.5} algorithm instead resolves
/// components against the active nodes' termination times.
pub fn fast_dfree_standalone(
    tree: &Tree,
    mask: &NodeMask,
    input: &[DfreeInput],
    d: usize,
) -> FastWeightRun {
    let mut run = fast_dfree(tree, mask, input, d);
    for comp in &run.components {
        for &(u, depth) in &comp.members {
            run.outputs[u] = Some(DfreeOutput::Copy);
            run.rounds[u] = comp.formed_round + depth as u64;
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::dfree::DFreeWeight;
    use lcl_core::problem::LclProblem;
    use lcl_graph::generators::{
        balanced_weight_tree, caterpillar, path, random_bounded_degree_tree,
    };

    fn inputs_with_a(n: usize, a_nodes: &[NodeId]) -> Vec<DfreeInput> {
        let mut input = vec![DfreeInput::Weight; n];
        for &a in a_nodes {
            input[a] = DfreeInput::Adjacent;
        }
        input
    }

    fn run_standalone(tree: &Tree, a_nodes: &[NodeId], d: usize) -> FastWeightRun {
        let n = tree.node_count();
        let mask = NodeMask::full(n);
        let input = inputs_with_a(n, a_nodes);
        let run = fast_dfree_standalone(tree, &mask, &input, d);
        let outputs: Vec<DfreeOutput> = run
            .outputs
            .iter()
            .map(|o| o.expect("standalone run decides everywhere"))
            .collect();
        DFreeWeight::new(d)
            .verify(tree, &input, &outputs)
            .unwrap_or_else(|e| panic!("invalid fast d-free output: {e}"));
        run
    }

    #[test]
    fn pure_path_declines_fast() {
        let n = 500;
        let tree = path(n);
        let run = run_standalone(&tree, &[], 3);
        // Deep interior nodes decline in the first iteration.
        let early = run
            .rounds
            .iter()
            .zip(&run.outputs)
            .filter(|&(r, _)| *r <= base_round(1) + 1)
            .count();
        assert!(early > n / 2, "only {early} early deciders");
        // Everything finishes within O(log n)-like rounds.
        let worst = run.rounds.iter().max().unwrap();
        assert!(*worst <= base_round(run.iterations) + 10, "worst {worst}");
        assert!(run.iterations <= 6, "{} iterations", run.iterations);
    }

    #[test]
    fn random_trees_verify_and_average_constant() {
        for seed in 0..5 {
            let n = 2000;
            let tree = random_bounded_degree_tree(n, 4, seed);
            let run = run_standalone(&tree, &[], 3);
            let avg: f64 = run.rounds.iter().map(|&r| r as f64).sum::<f64>() / n as f64;
            // Node-averaged rounds stay near the pre-step constant;
            // doubling n must not move it much (checked across seeds here
            // and across sizes in the integration tests).
            assert!(avg < 40.0, "seed {seed}: node-avg {avg}");
        }
    }

    #[test]
    fn balanced_gadget_with_a_root() {
        let w = 3_000;
        let delta = 6;
        let d = 3;
        let tree = balanced_weight_tree(w, delta);
        let run = run_standalone(&tree, &[0], d);
        assert_eq!(run.components.len(), 1);
        let comp = &run.components[0];
        assert_eq!(comp.anchor, 0);
        // The reserve fan-out is Δ - d + 1 = 4 of Δ - 1 = 5 children: the
        // component must be sublinear, on the order of w^{x'}.
        let x_prime = ((delta - d + 1) as f64).ln() / ((delta - 1) as f64).ln();
        let bound = 8.0 * (w as f64).powf(x_prime);
        assert!(
            (comp.members.len() as f64) <= bound,
            "component {} > bound {bound:.0}",
            comp.members.len()
        );
        assert!(comp.members.len() >= 2, "the cascade must copy something");
    }

    #[test]
    fn component_neighbors_are_declined() {
        // Lemma 50: everything adjacent to a copy component has declined.
        let tree = balanced_weight_tree(800, 5);
        let run = run_standalone(&tree, &[0], 3);
        let comp = &run.components[0];
        let members: std::collections::HashSet<NodeId> =
            comp.members.iter().map(|&(u, _)| u).collect();
        for &(u, _) in &comp.members {
            for &w in tree.neighbors(u) {
                let w = w as usize;
                if !members.contains(&w) {
                    assert_eq!(
                        run.outputs[w],
                        Some(DfreeOutput::Decline),
                        "neighbor {w} of member {u}"
                    );
                }
            }
        }
    }

    #[test]
    fn copy_budget_respected_with_d3() {
        // Every member's declined-neighbor count stays within d (the d-free
        // verifier checks this too; here we count directly for clarity).
        let d = 3;
        for seed in 0..4 {
            let tree = random_bounded_degree_tree(1200, 5, seed);
            // Put an A-node somewhere in the middle of the tree.
            let a = 600;
            let run = run_standalone(&tree, &[a], d);
            for comp in &run.components {
                for &(u, _) in &comp.members {
                    let declines = tree
                        .neighbors(u)
                        .iter()
                        .filter(|&&w| run.outputs[w as usize] == Some(DfreeOutput::Decline))
                        .count();
                    assert!(declines <= d, "member {u} has {declines} decliners");
                }
            }
        }
    }

    #[test]
    fn close_a_nodes_connect() {
        let tree = path(4);
        let run = run_standalone(&tree, &[0, 3], 3);
        assert!(run.outputs.iter().all(|&o| o == Some(DfreeOutput::Connect)));
        assert!(run.components.is_empty());
    }

    #[test]
    fn caterpillar_mixed_structure() {
        let tree = caterpillar(100, 3);
        // A-node on a spine position.
        let run = run_standalone(&tree, &[50], 3);
        assert_eq!(run.components.len(), 1);
    }

    #[test]
    fn worst_case_rounds_logarithmic() {
        let mut prev: Option<u64> = None;
        for exp in [8usize, 10, 12] {
            let n = 1 << exp;
            let tree = balanced_weight_tree(n, 4);
            let run = run_standalone(&tree, &[], 3);
            let worst = *run.rounds.iter().max().unwrap();
            if let Some(p) = prev {
                // Worst case grows additively (logarithmically), not
                // multiplicatively, when n quadruples.
                assert!(worst <= p + 20, "n = {n}: worst {worst} prev {p}");
            }
            prev = Some(worst);
        }
    }

    #[test]
    fn node_average_stays_constant_as_n_grows() {
        let mut avgs = Vec::new();
        for exp in [9usize, 11, 13] {
            let n = 1 << exp;
            let tree = balanced_weight_tree(n, 5);
            let run = run_standalone(&tree, &[], 3);
            let avg: f64 = run.rounds.iter().map(|&r| r as f64).sum::<f64>() / n as f64;
            avgs.push(avg);
        }
        // Quadrupling n twice should leave the average nearly flat
        // (geometric pending decay, Corollary 47).
        assert!(avgs[2] <= avgs[0] * 1.5 + 3.0, "averages grew: {avgs:?}");
    }

    #[test]
    #[should_panic(expected = "d >= 1")]
    fn zero_d_rejected() {
        let tree = path(3);
        let mask = NodeMask::full(3);
        let input = inputs_with_a(3, &[]);
        let _ = fast_dfree(&tree, &mask, &input, 0);
    }
}
