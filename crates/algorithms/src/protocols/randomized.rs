//! Engine-native randomized 3-coloring of paths: propose/finalize rounds
//! with per-node randomness streams.
//!
//! Round 0 draws and broadcasts a first proposal. In every later round a
//! node checks its standing proposal against what its neighbors sent —
//! simultaneous proposals and final colors alike. A clean proposal
//! becomes the node's output (broadcast as a final message so sleeping
//! neighbors still observe it); a conflicted node redraws and broadcasts
//! again. Because every node draws from its own stream (`node_rng`
//! keyed by node index), the
//! k-th draw here is the k-th draw of the structural
//! [`randomized_three_color_path`](crate::randomized::randomized_three_color_path),
//! and outputs and termination rounds match it bit for bit.

use crate::randomized::{convergence_limit, draw_color, node_rng};
use lcl_core::coloring::ColorLabel;
use lcl_local::engine::{Inbox, NodeContext, Outbox, Protocol};
use lcl_local::packed::PackableMessage;
use rand::rngs::SmallRng;

/// One round's message: the sender's tentative proposal, or the color it
/// just finalized (its final broadcast).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColorNews {
    /// A still-tentative proposal for this round.
    Propose(ColorLabel),
    /// The sender terminated with this color.
    Final(ColorLabel),
}

/// `ColorNews` packs into 4 bits: a tag bit (`Final` = set) over a 3-bit
/// [`ColorLabel`] variant index.
impl PackableMessage for ColorNews {
    const CEIL_BITS: u32 = 4;

    fn pack(&self) -> u128 {
        let (tag, color) = match *self {
            ColorNews::Propose(c) => (0u128, c),
            ColorNews::Final(c) => (0b1000, c),
        };
        let index: u128 = match color {
            ColorLabel::White => 0,
            ColorLabel::Black => 1,
            ColorLabel::Exempt => 2,
            ColorLabel::Decline => 3,
            ColorLabel::Red => 4,
            ColorLabel::Green => 5,
            ColorLabel::Yellow => 6,
        };
        tag | index
    }

    fn unpack(bits: u128) -> Self {
        let color = match bits & 0b111 {
            0 => ColorLabel::White,
            1 => ColorLabel::Black,
            2 => ColorLabel::Exempt,
            3 => ColorLabel::Decline,
            4 => ColorLabel::Red,
            5 => ColorLabel::Green,
            6 => ColorLabel::Yellow,
            other => unreachable!("invalid packed ColorLabel index {other}"),
        };
        if bits & 0b1000 != 0 {
            ColorNews::Final(color)
        } else {
            ColorNews::Propose(color)
        }
    }
}

/// Per-node state machine of the randomized coloring.
#[derive(Debug, Clone)]
pub struct RandomizedColoring {
    rng: SmallRng,
    proposal: Option<ColorLabel>,
    fixed: [Option<ColorLabel>; 2],
}

impl RandomizedColoring {
    /// The state machine for node `node` under run seed `seed`; the pair
    /// selects the node's private randomness stream.
    #[must_use]
    pub fn new(seed: u64, node: usize) -> Self {
        RandomizedColoring {
            rng: node_rng(seed, node),
            proposal: None,
            fixed: [None, None],
        }
    }

    /// The round budget any successful run fits in, plus slack for the
    /// final broadcasts.
    #[must_use]
    pub fn round_budget(n: usize) -> u64 {
        convergence_limit(n) + 2
    }
}

impl Protocol for RandomizedColoring {
    type Message = ColorNews;
    type Output = ColorLabel;

    fn step(
        &mut self,
        ctx: &NodeContext,
        round: u64,
        inbox: &Inbox<'_, ColorNews>,
        outbox: &mut Outbox<'_, ColorNews>,
    ) -> Option<ColorLabel> {
        if round == 0 {
            assert!(ctx.degree <= 2, "randomized 3-coloring here targets paths");
            let first = draw_color(&mut self.rng);
            self.proposal = Some(first);
            outbox.broadcast(ColorNews::Propose(first));
            return None;
        }
        let mine = self.proposal.expect("proposal drawn in round 0");
        let mut conflict = false;
        for (port, news) in inbox.iter() {
            match *news {
                ColorNews::Propose(c) => conflict |= c == mine,
                ColorNews::Final(c) => self.fixed[port] = Some(c),
            }
        }
        conflict |= self.fixed.iter().flatten().any(|&c| c == mine);
        if !conflict {
            outbox.broadcast(ColorNews::Final(mine));
            return Some(mine);
        }
        let next = draw_color(&mut self.rng);
        self.proposal = Some(next);
        outbox.broadcast(ColorNews::Propose(next));
        None
    }

    fn message_bits(&self, _ctx: &NodeContext) -> Option<u32> {
        Some(ColorNews::CEIL_BITS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randomized::randomized_three_color_path;
    use lcl_graph::generators::path;
    use lcl_local::engine::run_sync;
    use lcl_local::identifiers::Ids;

    #[test]
    fn protocol_matches_the_structural_oracle() {
        for n in [1usize, 2, 10, 500] {
            for seed in 0..5u64 {
                let tree = path(n);
                let ids = Ids::sequential(n);
                let direct = randomized_three_color_path(&tree, seed);
                let sync = run_sync(
                    &tree,
                    &ids,
                    |c| RandomizedColoring::new(seed, c.node),
                    RandomizedColoring::round_budget(n),
                )
                .unwrap();
                assert_eq!(sync.outputs, direct.outputs, "n = {n}, seed = {seed}");
                assert_eq!(
                    sync.stats.as_slice(),
                    &direct.rounds[..],
                    "n = {n}, seed = {seed}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "targets paths")]
    fn protocol_rejects_high_degree() {
        let tree = lcl_graph::generators::star(5);
        let ids = Ids::sequential(5);
        let _ = run_sync(&tree, &ids, |c| RandomizedColoring::new(0, c.node), 10);
    }
}
