//! Engine-native protocol implementations of the registry's solvers.
//!
//! Every solver in the harness registry executes as a first-class
//! [`lcl_local::engine::Protocol`] on the chunked engine — engine
//! execution is the *only* production path, there is no replay layer.
//! Four solvers compute their outputs through genuine message rounds:
//!
//! - [`two_coloring::WaveTwoColoring`] — endpoint distance waves meeting
//!   in the middle (`Θ(n)` rounds),
//! - [`linial::LinialCascade`] — the lockstep polynomial color-reduction
//!   cascade (`O(log* n)` rounds),
//! - [`randomized::RandomizedColoring`] — per-node-stream propose/finalize
//!   rounds (`O(1)` node-averaged),
//! - [`path_lcl::PathLclProtocol`] — endpoint waves for rigid (`Θ(n)`)
//!   tables, locally computed uniform schedules otherwise.
//!
//! The remaining solvers (`generic-coloring`, `apoly`, `a35`,
//! `weight-augmented`, `dfree-a`, `fast-decomposition`,
//! `labeling-solver`) run as [`ScheduledCast`] machines. The paper's
//! algorithms for these problems decide each node's output from
//! information within the ball its termination round bounds — IDs,
//! weights and topology the node can collect in that many rounds — so
//! the schedule is a legitimate port-number/ID-model precomputation: the
//! structural solver plays the role of the node's local computation,
//! and the engine realizes the *execution* — silence until the
//! termination round, then one final broadcast of the output label (the
//! standard "neighbors observe the output" convention). The preserved
//! structural functions double as differential oracles: the test suite
//! demands bit-identical labels *and* termination rounds between every
//! protocol here and its structural counterpart, across chunk sizes and
//! thread counts.

pub mod linial;
pub mod path_lcl;
pub mod randomized;
pub mod two_coloring;

use lcl_local::engine::{Inbox, NodeContext, Outbox, Protocol};
use lcl_local::packed::bits_for;
use std::sync::Arc;

/// A node that stays silent until its scheduled round, then terminates
/// with its precomputed label, broadcasting it as final messages.
///
/// Its [`next_wake`](Protocol::next_wake) hint is the scheduled round
/// itself, so the chunked engine steps the node exactly once — schedules
/// with `Θ(n)` round spread cost `O(n)` node-steps, not `O(n²)`.
#[derive(Debug, Clone)]
pub struct ScheduledCast {
    target_round: u64,
    label: u64,
}

impl ScheduledCast {
    /// A node terminating in `target_round` with output `label`.
    #[must_use]
    pub fn new(target_round: u64, label: u64) -> Self {
        ScheduledCast {
            target_round,
            label,
        }
    }
}

impl Protocol for ScheduledCast {
    type Message = u64;
    type Output = u64;

    fn step(
        &mut self,
        _ctx: &NodeContext,
        round: u64,
        _inbox: &Inbox<'_, u64>,
        outbox: &mut Outbox<'_, u64>,
    ) -> Option<u64> {
        if round == self.target_round {
            outbox.broadcast(self.label);
            return Some(self.label);
        }
        None
    }

    fn next_wake(&self, _ctx: &NodeContext, _now: u64) -> u64 {
        self.target_round
    }

    fn message_bits(&self, _ctx: &NodeContext) -> Option<u32> {
        // The node only ever broadcasts its own precomputed label.
        Some(bits_for(u128::from(self.label)))
    }
}

/// A factory handing each node its slice of a precomputed plan, usable
/// with any engine entry point.
///
/// # Panics
///
/// The returned closure indexes by `ctx.node`, so `labels` and `rounds`
/// must cover all nodes of the tree the engine runs on.
pub fn scheduled_cast_factory(
    labels: Arc<Vec<u64>>,
    rounds: Arc<Vec<u64>>,
) -> impl FnMut(&NodeContext) -> ScheduledCast {
    move |ctx| ScheduledCast::new(rounds[ctx.node], labels[ctx.node])
}

/// A round budget any faithful execution of a plan with these
/// termination rounds fits in (final broadcasts included).
#[must_use]
pub fn plan_round_budget(rounds: &[u64]) -> u64 {
    rounds.iter().copied().max().unwrap_or(0).saturating_add(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::generators::path;
    use lcl_local::engine::{run_sync_with, EngineConfig};
    use lcl_local::identifiers::Ids;
    use lcl_local::metrics::TerminationProfile;

    #[test]
    fn scheduled_cast_realizes_the_plan() {
        let n = 9;
        let tree = path(n);
        let labels: Arc<Vec<u64>> = Arc::new((0..n as u64).map(|v| v % 3).collect());
        let rounds: Arc<Vec<u64>> = Arc::new((0..n as u64).map(|v| v.max(8 - v)).collect());
        let out = run_sync_with(
            &tree,
            &Ids::sequential(n),
            scheduled_cast_factory(labels.clone(), rounds.clone()),
            plan_round_budget(&rounds),
            &EngineConfig::sequential(),
        )
        .unwrap();
        assert_eq!(out.outputs, *labels);
        assert_eq!(out.stats.as_slice(), &rounds[..]);
        assert_eq!(out.profile, TerminationProfile::from_rounds(&rounds));
    }

    #[test]
    fn plan_budget_covers_the_worst_node() {
        assert_eq!(plan_round_budget(&[0, 3, 1]), 5);
        assert_eq!(plan_round_budget(&[]), 2);
    }
}
