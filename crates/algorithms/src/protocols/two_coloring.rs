//! Engine-native 2-coloring of paths: the rigid `Θ(n)` baseline computed
//! by genuine message rounds.
//!
//! Each endpoint launches a wave carrying `(its id, hop distance)` in
//! round 0; interior nodes forward each wave to the opposite port,
//! incrementing the distance. A node terminates the moment it has seen
//! both waves — i.e. in the round equal to its eccentricity — and colors
//! itself by the parity of its distance to the smaller-ID endpoint
//! ("the endpoint with the smaller ID is White"). This reproduces
//! [`two_color_path`](crate::two_coloring::two_color_path) exactly:
//! identical labels, identical per-node termination rounds.

use lcl_core::coloring::ColorLabel;
use lcl_local::engine::{Inbox, NodeContext, Outbox, Protocol};
use lcl_local::packed::bits_for;

/// One wave hop: `(originating endpoint's id, sender's distance to it)`.
pub type WaveMsg = (u64, u64);

/// Per-node state machine of the wave 2-coloring.
///
/// `waves` holds the two waves this node has seen, as
/// `(endpoint id, own distance to that endpoint)`; an interior node files
/// them by arrival port, an endpoint counts itself as the second entry
/// from round 0.
#[derive(Debug, Clone, Default)]
pub struct WaveTwoColoring {
    waves: [Option<(u64, u64)>; 2],
}

impl WaveTwoColoring {
    /// A fresh node; all state is discovered through messages.
    #[must_use]
    pub fn new() -> Self {
        WaveTwoColoring::default()
    }
}

impl Protocol for WaveTwoColoring {
    type Message = WaveMsg;
    type Output = ColorLabel;

    fn step(
        &mut self,
        ctx: &NodeContext,
        round: u64,
        inbox: &Inbox<'_, WaveMsg>,
        outbox: &mut Outbox<'_, WaveMsg>,
    ) -> Option<ColorLabel> {
        assert!(
            ctx.degree <= 2,
            "two_color_path requires a path-shaped tree"
        );
        if ctx.n == 1 {
            return Some(ColorLabel::White);
        }
        if round == 0 && ctx.degree == 1 {
            // Endpoint: launch the wave; its own side is known immediately.
            self.waves[1] = Some((ctx.id, 0));
            outbox.send(0, (ctx.id, 0));
        }
        for (port, &(endpoint, dist)) in inbox.iter() {
            let mine = dist + 1;
            self.waves[port] = Some((endpoint, mine));
            if ctx.degree == 2 {
                // Forward the wave; on the terminating step these are the
                // node's final messages.
                outbox.send(1 - port, (endpoint, mine));
            }
        }
        if let (Some((id_a, dist_a)), Some((id_b, dist_b))) = (self.waves[0], self.waves[1]) {
            let anchor_dist = if id_a < id_b { dist_a } else { dist_b };
            return Some(if anchor_dist % 2 == 0 {
                ColorLabel::White
            } else {
                ColorLabel::Black
            });
        }
        None
    }

    fn next_wake(&self, _ctx: &NodeContext, _now: u64) -> u64 {
        // Purely reactive after round 0: progress only happens when a wave
        // arrives, and mail always wakes the node.
        u64::MAX
    }

    fn message_bits(&self, ctx: &NodeContext) -> Option<u32> {
        // `(endpoint id, distance)` packs id-low/distance-high; the id can
        // use its full 64 bits, the hop distance is below `n`.
        Some(64 + bits_for(ctx.n as u128))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_coloring::two_color_path;
    use lcl_graph::generators::path;
    use lcl_local::engine::run_sync;
    use lcl_local::identifiers::Ids;

    #[test]
    fn waves_match_the_structural_oracle() {
        for n in [1usize, 2, 3, 8, 101] {
            let tree = path(n);
            let ids = Ids::random(n, n as u64);
            let direct = two_color_path(&tree, &ids);
            let sync = run_sync(&tree, &ids, |_| WaveTwoColoring::new(), n as u64 + 2).unwrap();
            assert_eq!(sync.outputs, direct.outputs, "n = {n}");
            assert_eq!(sync.stats.as_slice(), &direct.rounds[..], "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "path-shaped")]
    fn waves_reject_non_paths() {
        let tree = lcl_graph::generators::star(4);
        let ids = Ids::sequential(4);
        let _ = run_sync(&tree, &ids, |_| WaveTwoColoring::new(), 10);
    }
}
