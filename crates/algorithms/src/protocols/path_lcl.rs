//! Engine-native execution of the table-driven path-LCL solver.
//!
//! The label a node outputs is the structural solver's reachability-DP
//! label — a pure function of the instance, computed as the node's local
//! computation over the view its round bound grants it (see
//! [`solve_path_lcl`](crate::path_lcl_solver::solve_path_lcl)). What the
//! protocol realizes natively is the *round structure* of the decided
//! complexity class:
//!
//! - **`O(1)`** and **`Θ(log* n)`** tables terminate at a locally known
//!   round — a constant radius of the table, respectively the Linial
//!   cascade length (a function of the ID space) plus a constant — and
//!   broadcast their label as final messages,
//! - **`Θ(n)`** (rigid) tables genuinely wait: endpoint waves as in
//!   [`WaveTwoColoring`](crate::protocols::two_coloring::WaveTwoColoring)
//!   carry hop counts through the path, and a node terminates only once
//!   both waves passed it — the round equal to its eccentricity.

use lcl_local::engine::{Inbox, NodeContext, Outbox, Protocol};
use lcl_local::packed::bits_for;

/// How a node learns its termination round.
#[derive(Debug, Clone)]
enum Timing {
    /// Terminate at a locally computed round (constant-radius and
    /// log*-class tables).
    At(u64),
    /// Rigid tables: wait for the hop-count waves from both endpoints;
    /// entries hold this node's distance per side, filed as in the wave
    /// 2-coloring (arrival port; an endpoint is its own second entry).
    Waves([Option<u64>; 2]),
}

/// Per-node state machine executing one node's slice of a path-LCL plan.
#[derive(Debug, Clone)]
pub struct PathLclProtocol {
    label: u64,
    timing: Timing,
}

impl PathLclProtocol {
    /// A node that terminates at round `target` with output `label`.
    #[must_use]
    pub fn at_round(target: u64, label: u64) -> Self {
        PathLclProtocol {
            label,
            timing: Timing::At(target),
        }
    }

    /// A node of a rigid table: output `label` once both endpoint waves
    /// arrived.
    #[must_use]
    pub fn rigid(label: u64) -> Self {
        PathLclProtocol {
            label,
            timing: Timing::Waves([None, None]),
        }
    }
}

impl Protocol for PathLclProtocol {
    type Message = u64;
    type Output = u64;

    fn step(
        &mut self,
        ctx: &NodeContext,
        round: u64,
        inbox: &Inbox<'_, u64>,
        outbox: &mut Outbox<'_, u64>,
    ) -> Option<u64> {
        match &mut self.timing {
            Timing::At(target) => {
                if round == *target {
                    outbox.broadcast(self.label);
                    return Some(self.label);
                }
                None
            }
            Timing::Waves(seen) => {
                assert!(ctx.degree <= 2, "path-LCL solver needs a path-shaped tree");
                if ctx.n == 1 {
                    return Some(self.label);
                }
                if round == 0 && ctx.degree == 1 {
                    seen[1] = Some(0);
                    outbox.send(0, 0);
                }
                for (port, &dist) in inbox.iter() {
                    let mine = dist + 1;
                    seen[port] = Some(mine);
                    if ctx.degree == 2 {
                        outbox.send(1 - port, mine);
                    }
                }
                if seen[0].is_some() && seen[1].is_some() {
                    return Some(self.label);
                }
                None
            }
        }
    }

    fn next_wake(&self, _ctx: &NodeContext, _now: u64) -> u64 {
        match self.timing {
            // One wake at the scheduled round; stray mail earlier is a
            // no-op step.
            Timing::At(target) => target,
            // Purely reactive after round 0: mail wakes the node.
            Timing::Waves(_) => u64::MAX,
        }
    }

    fn message_bits(&self, ctx: &NodeContext) -> Option<u32> {
        match self.timing {
            // Scheduled nodes only broadcast their final label.
            Timing::At(_) => Some(bits_for(u128::from(self.label))),
            // Rigid waves carry hop distances below `n`.
            Timing::Waves(_) => Some(bits_for(ctx.n as u128)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path_lcl_solver::{solve_path_lcl, PathSolveClass};
    use lcl_core::problem_spec::PathTable;
    use lcl_graph::generators::path;
    use lcl_local::engine::run_sync;
    use lcl_local::identifiers::Ids;

    fn check(n: usize, table: &PathTable, class: PathSolveClass) {
        let tree = path(n);
        let ids = Ids::random(n, n as u64 + 1);
        let direct = solve_path_lcl(&tree, table, class, &ids).unwrap();
        let budget = direct.rounds.iter().max().unwrap() + 2;
        let sync = run_sync(
            &tree,
            &ids,
            |c| match class {
                PathSolveClass::Linear => PathLclProtocol::rigid(direct.outputs[c.node]),
                _ => PathLclProtocol::at_round(direct.rounds[c.node], direct.outputs[c.node]),
            },
            budget,
        )
        .unwrap();
        assert_eq!(sync.outputs, direct.outputs, "n = {n}, class = {class:?}");
        assert_eq!(
            sync.stats.as_slice(),
            &direct.rounds[..],
            "n = {n}, class = {class:?}"
        );
    }

    #[test]
    fn rigid_waves_match_the_structural_rounds() {
        let table = PathTable::proper_coloring(2);
        for n in [1usize, 2, 3, 17, 64] {
            check(n, &table, PathSolveClass::Linear);
        }
    }

    #[test]
    fn scheduled_classes_match_the_structural_rounds() {
        let table = PathTable::proper_coloring(3);
        for n in [1usize, 2, 17, 64] {
            check(n, &table, PathSolveClass::LogStar);
            check(n, &table, PathSolveClass::Constant);
        }
    }
}
