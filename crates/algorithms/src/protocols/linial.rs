//! Engine-native Linial coloring: the `O(log* n)` cascade as a lockstep
//! message-passing protocol.
//!
//! Round 0 broadcasts the initial colors (the unique IDs); every later
//! round applies exactly one update of the structural algorithm — a
//! polynomial color reduction while it shrinks the palette, then one
//! color-class elimination per round — to the colors received from the
//! previous round's broadcast. All nodes share the same palette-size
//! trajectory because it depends only on the ID-space parameter `space`
//! (knowledge of the ID space is part of the model, exactly as the
//! structural [`linial_coloring`](crate::linial::linial_coloring) assumes
//! it), so the cascade stays in lockstep and every node terminates in the
//! same round — the round of its last update, matching the structural
//! round count exactly.

use crate::linial::{eliminated_color, reduced_color, step_params};
use lcl_local::engine::{Inbox, NodeContext, Outbox, Protocol};
use lcl_local::identifiers::Ids;
use lcl_local::packed::bits_for;

/// The ID-space parameter the cascade must be seeded with to match
/// [`linial_coloring`](crate::linial::linial_coloring) on the same
/// instance: one more than the larger of the maximum ID and the target
/// palette's largest color.
#[must_use]
pub fn cascade_space(ids: &Ids, delta: u64) -> u64 {
    ids.as_slice()
        .iter()
        .copied()
        .max()
        .unwrap_or(0)
        .max(delta + 1)
        + 1
}

/// Per-node state machine of the Linial cascade.
#[derive(Debug, Clone)]
pub struct LinialCascade {
    color: u64,
    m: u64,
    delta: u64,
    target: u64,
    class: u64,
    /// Reused across rounds so `step` never allocates on the hot path;
    /// capacity is reserved once in [`LinialCascade::new`].
    scratch: Vec<u64>,
}

impl LinialCascade {
    /// A node starting from color `id` in an ID space of `space` values,
    /// on a graph of maximum degree `delta`. Pass
    /// [`cascade_space`]`(ids, delta)` for `space` to match the
    /// structural algorithm bit for bit.
    #[must_use]
    pub fn new(id: u64, space: u64, delta: u64) -> Self {
        let target = delta + 1;
        let m = space.max(target + 1);
        LinialCascade {
            color: id,
            m,
            delta,
            target,
            class: m,
            scratch: Vec::with_capacity(delta as usize),
        }
    }
}

impl Protocol for LinialCascade {
    type Message = u64;
    type Output = u64;

    fn step(
        &mut self,
        _ctx: &NodeContext,
        round: u64,
        inbox: &Inbox<'_, u64>,
        outbox: &mut Outbox<'_, u64>,
    ) -> Option<u64> {
        if round > 0 {
            // Apply one update to the previous round's exchange. The
            // palette trajectory is a pure function of `space`, so every
            // node switches from reduction to elimination in the same
            // round without coordination.
            self.scratch.clear();
            self.scratch.extend(inbox.iter().map(|(_, &c)| c));
            let p = step_params(self.m, self.delta);
            if p.q * p.q < self.m {
                self.color = reduced_color(self.color, &self.scratch, p);
                self.m = p.q * p.q;
                self.class = self.m;
            } else {
                self.class -= 1;
                self.color = eliminated_color(self.color, &self.scratch, self.class, self.target);
                if self.class == self.target {
                    return Some(self.color);
                }
            }
        }
        outbox.broadcast(self.color);
        None
    }

    fn message_bits(&self, _ctx: &NodeContext) -> Option<u32> {
        // Colors only ever shrink below the initial palette size `m`
        // (hinted before the first step, so `self.m` is still initial).
        Some(bits_for(u128::from(self.m - 1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linial::{linial_coloring, three_color_path};
    use lcl_graph::generators::{path, random_bounded_degree_tree};
    use lcl_graph::NodeMask;
    use lcl_local::engine::run_sync;

    #[test]
    fn cascade_matches_three_color_path() {
        for n in [1usize, 2, 16, 257] {
            let tree = path(n);
            let ids = Ids::random(n, n as u64);
            let direct = three_color_path(&tree, &ids);
            let space = cascade_space(&ids, 2);
            let sync =
                run_sync(&tree, &ids, |c| LinialCascade::new(c.id, space, 2), 10_000).unwrap();
            assert_eq!(sync.outputs, direct.outputs, "n = {n}");
            assert_eq!(sync.stats.as_slice(), &direct.rounds[..], "n = {n}");
        }
    }

    #[test]
    fn cascade_matches_on_bounded_degree_trees() {
        for seed in 0..3 {
            let n = 300;
            let tree = random_bounded_degree_tree(n, 4, seed);
            let ids = Ids::random(n, seed);
            let structural = linial_coloring(&tree, &ids, &NodeMask::full(n), 4);
            let space = cascade_space(&ids, 4);
            let sync =
                run_sync(&tree, &ids, |c| LinialCascade::new(c.id, space, 4), 10_000).unwrap();
            assert_eq!(sync.outputs, structural.colors, "seed = {seed}");
            assert!(sync
                .stats
                .as_slice()
                .iter()
                .all(|&r| r == structural.rounds));
        }
    }
}
