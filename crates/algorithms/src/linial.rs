//! Linial's `O(log* n)` coloring by iterated polynomial color reduction
//! \[Lin92\].
//!
//! From an `m`-coloring (initially the unique IDs) one synchronous round
//! reduces to a `q²`-coloring, where `q` is a small prime with
//! `q > Δ · (L - 1)` and `L = ⌈log_q m⌉`: a color is read as a polynomial
//! of degree `< L` over `F_q`, and the node picks an evaluation point on
//! which it differs from all ≤ Δ neighbors (two distinct degree-`< L`
//! polynomials agree on fewer than `L` points, so a free point exists).
//! Iterating shrinks the palette to a constant in `log* m + O(1)` rounds;
//! a final one-color-class-per-round stage reaches `Δ + 1` colors.
//!
//! This is the subroutine behind phase `k` of the 3½-coloring algorithms:
//! 3-coloring the surviving level-`k` paths (`Δ = 2`) in `Θ(log* n)`
//! worst-case rounds.

use crate::run::AlgorithmRun;
use lcl_graph::{NodeMask, Tree};
use lcl_local::identifiers::Ids;

/// Result of one Linial reduction-step parameter computation. Shared with
/// the engine-native protocol in [`crate::protocols::linial`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StepParams {
    /// The field size (a prime).
    pub(crate) q: u64,
    /// Number of base-`q` digits used to encode a color.
    pub(crate) digits: u32,
}

fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

fn next_prime(mut n: u64) -> u64 {
    while !is_prime(n) {
        n += 1;
    }
    n
}

/// Chooses the smallest usable prime `q` for reducing an `m`-coloring with
/// maximum degree `delta`: `q` must satisfy `q > delta * (⌈log_q m⌉ - 1)`.
pub(crate) fn step_params(m: u64, delta: u64) -> StepParams {
    let mut q = next_prime(delta + 1);
    loop {
        let digits = digits_base(m, q);
        if q > delta * (digits.saturating_sub(1)) as u64 {
            return StepParams { q, digits };
        }
        q = next_prime(q + 1);
    }
}

/// Number of base-`q` digits needed for values in `0..m`.
fn digits_base(m: u64, q: u64) -> u32 {
    let mut digits = 1;
    let mut cap = q;
    while cap < m {
        cap = cap.saturating_mul(q);
        digits += 1;
    }
    digits
}

/// Evaluates the polynomial whose coefficients are the base-`q` digits of
/// `color`, at point `a`, over `F_q`.
pub(crate) fn poly_eval(color: u64, q: u64, digits: u32, a: u64) -> u64 {
    let mut value = 0u64;
    let mut c = color;
    let mut power = 1u64;
    for _ in 0..digits {
        let coeff = c % q;
        c /= q;
        value = (value + coeff * power) % q;
        power = (power * a) % q;
    }
    value
}

/// The per-node rule of one reduction round: the collision-free reduced
/// color for a node colored `color` whose neighbors hold `neighbor_colors`,
/// under step parameters `p`. Pure function of one round's local view,
/// shared by the structural loop and the engine-native protocol.
///
/// # Panics
///
/// Panics if no collision-free evaluation point exists, which `p` being
/// computed by [`step_params`] rules out for degree ≤ `delta`.
pub(crate) fn reduced_color(color: u64, neighbor_colors: &[u64], p: StepParams) -> u64 {
    for a in 0..p.q {
        let own = poly_eval(color, p.q, p.digits, a);
        let clash = neighbor_colors
            .iter()
            .any(|&cw| cw != color && poly_eval(cw, p.q, p.digits, a) == own);
        if !clash {
            return a * p.q + own;
        }
    }
    panic!("a collision-free evaluation point exists")
}

/// The per-node rule of one elimination round: a node of color class
/// `class` recolors to the first of the `target` final colors unused by
/// its neighbors; everyone else keeps their color. Shared by the
/// structural loop and the engine-native protocol.
///
/// # Panics
///
/// Panics if all `target` colors are taken, which degree ≤ `target - 1`
/// rules out.
pub(crate) fn eliminated_color(
    color: u64,
    neighbor_colors: &[u64],
    class: u64,
    target: u64,
) -> u64 {
    if color != class {
        return color;
    }
    (0..target)
        .find(|cand| !neighbor_colors.contains(cand))
        .expect("degree <= delta leaves a free color")
}

/// One synchronous Linial reduction round on the subgraph induced by
/// `mask`: every node picks its new color from its own and its neighbors'
/// current colors.
fn linial_round(
    tree: &Tree,
    mask: &NodeMask,
    colors: &[u64],
    m: u64,
    delta: u64,
) -> (Vec<u64>, u64) {
    let p = step_params(m, delta);
    let mut next = colors.to_vec();
    for v in mask.iter() {
        let neighbor_colors: Vec<u64> = tree
            .neighbors(v)
            .iter()
            .map(|&w| w as usize)
            .filter(|&w| mask.contains(w))
            .map(|w| colors[w])
            .collect();
        next[v] = reduced_color(colors[v], &neighbor_colors, p);
    }
    (next, p.q * p.q)
}

/// A proper coloring computed by [`linial_coloring`], with its round cost.
#[derive(Debug, Clone)]
pub struct LinialColoring {
    /// Final colors in `0..palette`.
    pub colors: Vec<u64>,
    /// Palette size (`delta + 1`).
    pub palette: u64,
    /// Synchronous rounds used (identical for every node).
    pub rounds: u64,
}

/// Number of rounds [`linial_coloring`] will take for an ID space of
/// `id_space` values on degree-`delta` graphs, without running it. Used by
/// phase-based algorithms to schedule around the subroutine.
pub fn linial_round_count(id_space: u64, delta: u64) -> u64 {
    let target = delta + 1;
    let mut m = id_space.max(target + 1);
    let mut rounds = 0;
    loop {
        let p = step_params(m, delta);
        let next_m = p.q * p.q;
        if next_m >= m {
            break;
        }
        m = next_m;
        rounds += 1;
    }
    // One round per eliminated color class.
    rounds + m.saturating_sub(target)
}

/// Computes a proper `(delta + 1)`-coloring of the subgraph induced by
/// `mask`, where `delta` bounds the degree *inside* the mask, starting from
/// the unique IDs.
///
/// All nodes finish in the same round — `log*(id space) + O(1)` reduction
/// rounds plus a constant number of one-class elimination rounds; the
/// constant is the textbook one (a final palette of ~`q²` colors for the
/// smallest admissible prime `q`).
///
/// # Panics
///
/// Panics if some node in `mask` has induced degree exceeding `delta`.
pub fn linial_coloring(tree: &Tree, ids: &Ids, mask: &NodeMask, delta: u64) -> LinialColoring {
    for v in mask.iter() {
        assert!(
            mask.induced_degree(tree, v) as u64 <= delta,
            "node {v} exceeds declared degree bound {delta}"
        );
    }
    let target = delta + 1;
    let mut colors: Vec<u64> = (0..tree.node_count()).map(|v| ids.id(v)).collect();
    let mut m = ids
        .as_slice()
        .iter()
        .copied()
        .max()
        .unwrap_or(0)
        .max(target)
        + 1;
    let mut rounds = 0u64;

    // Phase 1: iterated polynomial reduction while it shrinks the palette.
    loop {
        let p = step_params(m, delta);
        if p.q * p.q >= m {
            break;
        }
        let (next, next_m) = linial_round(tree, mask, &colors, m, delta);
        colors = next;
        m = next_m;
        rounds += 1;
    }

    // Phase 2: eliminate one color class per round until `target` colors.
    let mut c = m;
    while c > target {
        c -= 1;
        for v in mask.iter() {
            if colors[v] == c {
                let used: Vec<u64> = tree
                    .neighbors(v)
                    .iter()
                    .map(|&w| w as usize)
                    .filter(|&w| mask.contains(w))
                    .map(|w| colors[w])
                    .collect();
                colors[v] = eliminated_color(colors[v], &used, c, target);
            }
        }
        rounds += 1;
    }

    debug_assert!(mask.iter().all(|v| colors[v] < target));
    LinialColoring {
        colors,
        palette: target,
        rounds,
    }
}

/// Convenience wrapper: 3-coloring of an entire path-shaped tree.
///
/// # Panics
///
/// Panics if the tree has maximum degree above 2.
pub fn three_color_path(tree: &Tree, ids: &Ids) -> AlgorithmRun<u64> {
    let mask = NodeMask::full(tree.node_count());
    let result = linial_coloring(tree, ids, &mask, 2);
    let rounds = vec![result.rounds; tree.node_count()];
    AlgorithmRun::new(result.colors, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::generators::{path, random_bounded_degree_tree};
    use lcl_local::engine::run_sync;
    use lcl_local::math::log_star;

    fn assert_proper(tree: &Tree, mask: &NodeMask, colors: &[u64]) {
        for v in mask.iter() {
            for &w in tree.neighbors(v) {
                let w = w as usize;
                if mask.contains(w) {
                    assert_ne!(colors[v], colors[w], "edge ({v}, {w}) monochromatic");
                }
            }
        }
    }

    #[test]
    fn primes_and_digits() {
        assert!(is_prime(2) && is_prime(3) && is_prime(13));
        assert!(!is_prime(1) && !is_prime(9));
        assert_eq!(next_prime(8), 11);
        assert_eq!(digits_base(10, 3), 3); // 3^2 = 9 < 10 <= 27
        assert_eq!(digits_base(9, 3), 2);
        assert_eq!(digits_base(1, 5), 1);
    }

    #[test]
    fn poly_eval_matches_horner() {
        // color 11 base 3 = digits [2, 0, 1]: f(a) = 2 + 0a + 1a² mod 3.
        assert_eq!(poly_eval(11, 3, 3, 0), 2);
        assert_eq!(poly_eval(11, 3, 3, 1), 0);
        assert_eq!(poly_eval(11, 3, 3, 2), 0);
    }

    #[test]
    fn paths_get_three_colored() {
        for n in [2usize, 3, 10, 257, 1000] {
            let tree = path(n);
            let ids = Ids::random(n, n as u64);
            let run = three_color_path(&tree, &ids);
            let mask = NodeMask::full(n);
            assert_proper(&tree, &mask, &run.outputs);
            assert!(run.outputs.iter().all(|&c| c < 3), "n = {n}");
        }
    }

    #[test]
    fn trees_get_delta_plus_one_colored() {
        for seed in 0..4 {
            let tree = random_bounded_degree_tree(300, 4, seed);
            let ids = Ids::random(300, seed);
            let mask = NodeMask::full(300);
            let res = linial_coloring(&tree, &ids, &mask, 4);
            assert_proper(&tree, &mask, &res.colors);
            assert!(res.colors.iter().all(|&c| c < 5));
            assert_eq!(res.palette, 5);
        }
    }

    #[test]
    fn masked_coloring_ignores_outside() {
        let tree = path(10);
        let ids = Ids::sequential(10);
        let mask = NodeMask::from_nodes(10, [2, 3, 4, 7, 8]);
        let res = linial_coloring(&tree, &ids, &mask, 2);
        assert_proper(&tree, &mask, &res.colors);
    }

    #[test]
    fn round_count_grows_like_log_star() {
        // Rounds = (log*-ish reduction count) + constant-palette cleanup;
        // verify the growth from 2^8 to 2^48 ID spaces is tiny (log*).
        let small = linial_round_count(1 << 8, 2);
        let large = linial_round_count(1 << 48, 2);
        assert!(large >= small);
        assert!(
            large - small <= 2 + (log_star(1 << 48) - log_star(1 << 8)) as u64 + 2,
            "small={small}, large={large}"
        );
    }

    #[test]
    fn round_count_matches_execution() {
        for n in [16usize, 100, 900] {
            let tree = path(n);
            let ids = Ids::sequential(n);
            let mask = NodeMask::full(n);
            let res = linial_coloring(&tree, &ids, &mask, 2);
            let space = ids.as_slice().iter().max().unwrap() + 1;
            assert_eq!(res.rounds, linial_round_count(space.max(3), 2), "n = {n}");
        }
    }

    #[test]
    fn message_passing_agrees_with_structural() {
        use crate::protocols::linial::{cascade_space, LinialCascade};
        let n = 64;
        let tree = path(n);
        let ids = Ids::random(n, 9);
        let mask = NodeMask::full(n);
        let structural = linial_coloring(&tree, &ids, &mask, 2);
        let space = cascade_space(&ids, 2);
        let sync = run_sync(&tree, &ids, |c| LinialCascade::new(c.id, space, 2), 10_000).unwrap();
        assert_eq!(sync.outputs, structural.colors);
        // Round counts agree exactly: the protocol's round 0 only exchanges
        // initial colors, and it outputs in the round of its last update.
        assert_eq!(sync.stats.worst_case(), structural.rounds);
    }
}
