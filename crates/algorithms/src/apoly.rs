//! The algorithm `A_poly` for `Π^{2.5}_{Δ,d,k}` (Section 7.1).
//!
//! Active components run the generic coloring algorithm with
//! `γ_i = n^{α_i}` (the optimal exponents of Lemma 33); weight components
//! solve the `d`-free weight problem with algorithm `A`; copy components
//! then flood the output of their adjacent active node as secondary
//! output. A weight node in the copy component of anchor `u` terminates
//! `O(log n) + depth` rounds after `u`'s active neighbor decides — which is
//! exactly how weight turns active-node latency into node-averaged cost.

use crate::dfree_a::algorithm_a;
use crate::generic_coloring::generic_coloring_masked;
use crate::run::AlgorithmRun;
use lcl_core::coloring::{ColorLabel, Variant};
use lcl_core::dfree::{DfreeInput, DfreeOutput};
use lcl_core::weighted::WeightedOutput;
use lcl_graph::levels::Levels;
use lcl_graph::weighted::NodeKind;
use lcl_graph::{induced_components, NodeMask, Tree};
use lcl_local::identifiers::Ids;

/// Runs `A_poly` on an `Active`/`Weight`-labeled tree.
///
/// * `kinds` — input labels;
/// * `k` — hierarchy depth of the underlying 2½-coloring;
/// * `d` — decline budget of `Π^{2.5}_{Δ,d,k}`;
/// * `gammas` — the `k - 1` phase parameters (`n^{α_i}` for the optimal
///   exponents; see [`lcl_core::params::poly_gammas`]).
///
/// The output verifies against
/// [`WeightedColoring`](lcl_core::weighted::WeightedColoring).
///
/// # Panics
///
/// Panics if `gammas.len() != k - 1` or `d == 0`.
pub fn apoly(
    tree: &Tree,
    kinds: &[NodeKind],
    k: usize,
    d: usize,
    gammas: &[usize],
    ids: &Ids,
) -> AlgorithmRun<WeightedOutput> {
    run_weighted(tree, kinds, k, d, gammas, ids, Variant::TwoHalf)
}

/// Shared skeleton of `A_poly` (2½) and the `log*`-regime variant that
/// reuses algorithm `A` for the weight side.
pub(crate) fn run_weighted(
    tree: &Tree,
    kinds: &[NodeKind],
    k: usize,
    d: usize,
    gammas: &[usize],
    ids: &Ids,
    variant: Variant,
) -> AlgorithmRun<WeightedOutput> {
    assert_eq!(gammas.len(), k - 1, "need k - 1 phase parameters");
    let n = tree.node_count();
    assert_eq!(kinds.len(), n, "kinds must cover all nodes");
    let mut outputs: Vec<Option<WeightedOutput>> = vec![None; n];
    let mut rounds: Vec<u64> = vec![0; n];

    // --- Active side: generic coloring per component. ---
    let active_mask =
        NodeMask::from_nodes(n, tree.nodes().filter(|&v| kinds[v] == NodeKind::Active));
    for comp in induced_components(tree, &active_mask) {
        let comp_mask = NodeMask::from_nodes(n, comp.iter().copied());
        let levels = Levels::compute_masked(tree, &comp_mask, k);
        let run = generic_coloring_masked(tree, &comp_mask, &levels, variant, gammas, ids);
        for v in comp {
            outputs[v] = Some(WeightedOutput::Active(
                run.outputs[v].expect("component fully decided"),
            ));
            rounds[v] = run.rounds[v];
        }
    }

    // --- Weight side: algorithm A on the weight subgraph. ---
    let weight_mask =
        NodeMask::from_nodes(n, tree.nodes().filter(|&v| kinds[v] == NodeKind::Weight));
    let dfree_input: Vec<DfreeInput> = tree
        .nodes()
        .map(|v| {
            let adjacent_to_active = tree
                .neighbors(v)
                .iter()
                .any(|&w| kinds[w as usize] == NodeKind::Active);
            if adjacent_to_active {
                DfreeInput::Adjacent
            } else {
                DfreeInput::Weight
            }
        })
        .collect();
    let dfree = algorithm_a(tree, &weight_mask, &dfree_input, d, n);

    for v in weight_mask.iter() {
        match dfree.outputs[v].expect("weight subgraph fully decided") {
            DfreeOutput::Decline => {
                outputs[v] = Some(WeightedOutput::Decline);
                rounds[v] = dfree.radius;
            }
            DfreeOutput::Connect => {
                outputs[v] = Some(WeightedOutput::Connect);
                rounds[v] = dfree.radius;
            }
            DfreeOutput::Copy => {} // handled per component below
        }
    }

    // --- Copy components: flood the adjacent active node's output. ---
    for comp in &dfree.copy_components {
        let anchor = comp.anchor;
        // The active neighbor whose output is copied: the one that decides
        // first (ties broken by smaller ID) — any choice satisfies
        // property 5 of Definition 22.
        let (source, color) = tree
            .neighbors(anchor)
            .iter()
            .map(|&w| w as usize)
            .filter(|&w| kinds[w] == NodeKind::Active)
            .map(|w| {
                let c = match outputs[w] {
                    Some(WeightedOutput::Active(c)) => c,
                    _ => unreachable!("active nodes decided above"),
                };
                (w, c)
            })
            .min_by_key(|&(w, _)| (rounds[w], ids.id(w)))
            .expect("an A-labeled weight node has an active neighbor");
        let copy_color: ColorLabel = color;
        // The anchor learns the output one round after the active node
        // decides (and not before algorithm A fixed the copy set); it then
        // floods through the component at one hop per round.
        let start = rounds[source].max(dfree.radius) + 1;
        for &(u, depth) in &comp.members {
            outputs[u] = Some(WeightedOutput::Copy(copy_color));
            rounds[u] = start + depth as u64;
        }
    }

    let outputs = outputs
        .into_iter()
        .map(|o| o.expect("every node decided"))
        .collect();
    AlgorithmRun::new(outputs, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::problem::LclProblem;
    use lcl_core::weighted::WeightedColoring;
    use lcl_graph::weighted::{WeightedConstruction, WeightedParams};

    fn build(lengths: Vec<usize>, delta: usize, w: usize) -> WeightedConstruction {
        WeightedConstruction::new(&WeightedParams {
            lengths,
            delta,
            weight_per_level: w,
        })
        .unwrap()
    }

    fn verify_run(
        construction: &WeightedConstruction,
        k: usize,
        d: usize,
        run: &AlgorithmRun<WeightedOutput>,
    ) {
        let problem = WeightedColoring::new(Variant::TwoHalf, construction.delta(), d, k).unwrap();
        problem
            .verify(construction.tree(), construction.kinds(), &run.outputs)
            .unwrap_or_else(|e| panic!("invalid Π^2.5 output: {e}"));
    }

    #[test]
    fn small_weighted_construction_verifies() {
        let c = build(vec![6, 5], 5, 40);
        let n = c.tree().node_count();
        let ids = Ids::random(n, 11);
        let run = apoly(c.tree(), c.kinds(), 2, 2, &[4], &ids);
        verify_run(&c, 2, 2, &run);
    }

    #[test]
    fn three_level_construction_verifies() {
        let c = build(vec![4, 4, 4], 6, 60);
        let n = c.tree().node_count();
        let ids = Ids::random(n, 3);
        let run = apoly(c.tree(), c.kinds(), 3, 2, &[3, 5], &ids);
        verify_run(&c, 3, 2, &run);
    }

    #[test]
    fn optimal_gammas_verify() {
        let c = build(vec![8, 6], 5, 100);
        let n = c.tree().node_count();
        let ids = Ids::random(n, 5);
        let x = lcl_core::landscape::efficiency_x(c.delta(), 2);
        let gammas = lcl_core::params::poly_gammas(n, x, 2);
        let run = apoly(c.tree(), c.kinds(), 2, 2, &gammas, &ids);
        verify_run(&c, 2, 2, &run);
    }

    #[test]
    fn copy_nodes_wait_for_their_anchor() {
        let c = build(vec![10, 8], 5, 120);
        let n = c.tree().node_count();
        let ids = Ids::random(n, 7);
        let run = apoly(c.tree(), c.kinds(), 2, 2, &[4], &ids);
        verify_run(&c, 2, 2, &run);
        // Every copying weight node terminates strictly after some active
        // neighbor of its gadget anchor.
        for v in 0..n {
            if let WeightedOutput::Copy(_) = run.outputs[v] {
                let (anchor, _) = c.weight_anchor(v).expect("copy nodes are weight nodes");
                assert!(
                    run.rounds[v] > run.rounds[anchor],
                    "copy node {v} at {} vs active anchor {anchor} at {}",
                    run.rounds[v],
                    run.rounds[anchor]
                );
            }
        }
    }

    #[test]
    fn weight_heavy_instance_has_waiting_mass() {
        // With long level-1 paths (which decline late) and lots of weight
        // on level 2, the weight nodes' rounds must reflect the level-2
        // coloring time.
        let c = build(vec![30, 6], 5, 400);
        let n = c.tree().node_count();
        let ids = Ids::random(n, 9);
        let gamma = 6;
        let run = apoly(c.tree(), c.kinds(), 2, 2, &[gamma], &ids);
        verify_run(&c, 2, 2, &run);
        let copying: Vec<usize> = (0..n)
            .filter(|&v| matches!(run.outputs[v], WeightedOutput::Copy(_)))
            .collect();
        assert!(!copying.is_empty());
        // Level-2 nodes color in phase 2, i.e. after 2γ + k rounds; their
        // copy components must wait at least as long.
        for &v in &copying {
            assert!(run.rounds[v] > (2 * gamma) as u64, "node {v}");
        }
    }

    #[test]
    fn all_weight_nodes_decide_with_zero_weight() {
        let c = build(vec![5, 4], 5, 0);
        let n = c.tree().node_count();
        let ids = Ids::random(n, 2);
        let run = apoly(c.tree(), c.kinds(), 2, 2, &[3], &ids);
        verify_run(&c, 2, 2, &run);
        assert_eq!(run.len(), n);
    }
}
