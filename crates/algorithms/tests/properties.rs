//! Property-based tests: every algorithm must produce verifier-accepted
//! outputs on randomized instances, with round counts obeying the paper's
//! structural bounds.

use lcl_algorithms::apoly::apoly;
use lcl_algorithms::fast_decomposition::fast_dfree_standalone;
use lcl_algorithms::generic_coloring::generic_coloring;
use lcl_algorithms::labeling_solver::solve_hierarchical_labeling;
use lcl_algorithms::linial::{linial_coloring, three_color_path};
use lcl_core::coloring::{HierarchicalColoring, Variant};
use lcl_core::dfree::{DFreeWeight, DfreeInput};
use lcl_core::labeling::HierarchicalLabeling;
use lcl_core::problem::LclProblem;
use lcl_core::weighted::WeightedColoring;
use lcl_graph::generators::{path, random_bounded_degree_tree};
use lcl_graph::weighted::{NodeKind, WeightedConstruction, WeightedParams};
use lcl_graph::NodeMask;
use lcl_local::identifiers::Ids;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generic_coloring_always_verifies(
        n in 5usize..200,
        max_deg in 3usize..5,
        seed in any::<u64>(),
        k in 1usize..4,
        variant_bit in any::<bool>(),
    ) {
        let tree = random_bounded_degree_tree(n, max_deg, seed);
        let ids = Ids::random(n, seed ^ 0xabc);
        let variant = if variant_bit { Variant::TwoHalf } else { Variant::ThreeHalf };
        let gammas: Vec<usize> = (0..k - 1).map(|i| 2 + (seed as usize + i) % 5).collect();
        let run = generic_coloring(&tree, variant, &gammas, &ids);
        let problem = HierarchicalColoring::new(k, variant);
        prop_assert!(problem.verify(&tree, &vec![(); n], &run.outputs).is_ok());
        // Termination rounds are bounded by the total phase budget plus
        // the final phase (linear 2-coloring or the Linial constant).
        let budget: u64 = gammas.iter().map(|&g| 2 * g as u64 + k as u64).sum::<u64>()
            + n as u64
            + 64;
        prop_assert!(run.stats().worst_case() <= budget);
    }

    #[test]
    fn linial_coloring_proper_on_random_trees(
        n in 2usize..300,
        max_deg in 2usize..6,
        seed in any::<u64>(),
    ) {
        let tree = random_bounded_degree_tree(n, max_deg, seed);
        let ids = Ids::random(n, seed);
        let mask = NodeMask::full(n);
        let delta = tree.max_degree().max(1) as u64;
        let res = linial_coloring(&tree, &ids, &mask, delta);
        for v in tree.nodes() {
            prop_assert!(res.colors[v] <= delta);
            for &w in tree.neighbors(v) {
                prop_assert_ne!(res.colors[v], res.colors[w as usize]);
            }
        }
    }

    #[test]
    fn three_coloring_rounds_are_uniformly_bounded(
        exp in 4u32..17,
        seed in any::<u64>(),
    ) {
        // Θ(log* n) with textbook constants: the final Linial palette is at
        // most 25 colors for degree 2, so rounds are bounded by
        // (25 - 3) + log*-many reduction rounds + slack, uniformly in n.
        // (The palette size sawtooths at small n, so bounds — not
        // doubling comparisons — are the right invariant.)
        let n = 1usize << exp;
        let r = three_color_path(&path(n), &Ids::random(n, seed))
            .stats()
            .worst_case();
        prop_assert!(r <= 22 + 8, "n = {n}: {r} rounds");
    }

    #[test]
    fn fast_dfree_verifies_on_random_weight_forests(
        n in 20usize..400,
        seed in any::<u64>(),
        a_position in any::<prop::sample::Index>(),
    ) {
        let tree = random_bounded_degree_tree(n, 5, seed);
        let mask = NodeMask::full(n);
        let mut input = vec![DfreeInput::Weight; n];
        input[a_position.index(n)] = DfreeInput::Adjacent;
        let d = 3;
        let run = fast_dfree_standalone(&tree, &mask, &input, d);
        let outputs: Vec<_> = run.outputs.iter().map(|o| o.unwrap()).collect();
        prop_assert!(DFreeWeight::new(d).verify(&tree, &input, &outputs).is_ok());
    }

    #[test]
    fn labeling_solver_verifies_on_random_trees(
        n in 2usize..250,
        seed in any::<u64>(),
        k in 1usize..4,
    ) {
        let tree = random_bounded_degree_tree(n, 4, seed);
        let sol = solve_hierarchical_labeling(&tree, k);
        prop_assert!(HierarchicalLabeling::new(k)
            .verify(&tree, &vec![(); n], &sol.run.outputs)
            .is_ok());
    }

    #[test]
    fn apoly_verifies_on_random_weighted_constructions(
        l1 in 3usize..10,
        l2 in 3usize..8,
        weight in 10usize..120,
        seed in any::<u64>(),
    ) {
        let c = WeightedConstruction::new(&WeightedParams {
            lengths: vec![l1, l2],
            delta: 5,
            weight_per_level: weight,
        })
        .unwrap();
        let n = c.tree().node_count();
        let ids = Ids::random(n, seed);
        let run = apoly(c.tree(), c.kinds(), 2, 2, &[3], &ids);
        let problem = WeightedColoring::new(Variant::TwoHalf, 5, 2, 2).unwrap();
        prop_assert!(problem.verify(c.tree(), c.kinds(), &run.outputs).is_ok());
        // Input discipline: active nodes keep active outputs.
        for v in c.tree().nodes() {
            let is_active_out = matches!(
                run.outputs[v],
                lcl_core::weighted::WeightedOutput::Active(_)
            );
            prop_assert_eq!(is_active_out, c.kind(v) == NodeKind::Active);
        }
    }
}
