//! Integration tests for `lcl_analysis`: each fixture under
//! `tests/fixtures/` is a known-bad mini-workspace, and every planted
//! violation must be reported with its exact rule id and `file:line`
//! span — no more, no less. The final test runs the analyzer on this
//! repository itself and demands a clean report modulo the shipped
//! baseline.

use lcl_analysis::{analyze, AnalysisConfig, AnalysisReport};
use std::path::{Path, PathBuf};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_fixture(name: &str) -> AnalysisReport {
    analyze(&AnalysisConfig {
        root: fixture_root(name),
        baseline: None,
    })
    .unwrap_or_else(|e| panic!("fixture `{name}` failed to analyze: {e}"))
}

/// The `(rule, file, line)` triple of every finding, in report order.
fn spans(report: &AnalysisReport) -> Vec<(&str, &str, u32)> {
    report
        .findings
        .iter()
        .map(|f| (f.rule, f.file.as_str(), f.line))
        .collect()
}

#[test]
fn hotpath_fixture_triggers_exact_rules_and_spans() {
    let report = run_fixture("hotpath");
    assert_eq!(
        spans(&report),
        vec![
            ("LCL-A01", "crates/algorithms/src/protocols/bad.rs", 13),
            ("LCL-A01", "crates/algorithms/src/protocols/bad.rs", 14),
            ("LCL-A01", "crates/local/src/engine.rs", 8),
            ("LCL-A02", "crates/local/src/engine.rs", 9),
            ("LCL-A03", "crates/local/src/engine.rs", 10),
            ("LCL-A01", "crates/local/src/engine.rs", 17),
        ],
        "{}",
        report.human()
    );
    // Spans carry the enclosing item path (the baseline key).
    assert_eq!(report.findings[0].item, "BadCast::step");
    assert_eq!(report.findings[2].item, "step_region");
    assert_eq!(report.findings[5].item, "Inbox::gather");
    // The `#[cfg(test)]` allocation in the protocol fixture is not
    // reported: hot-path rules skip test code.
    assert_eq!(report.files_scanned, 2);
}

#[test]
fn hygiene_fixture_triggers_exact_rules_and_spans() {
    let report = run_fixture("hygiene");
    assert_eq!(
        spans(&report),
        vec![
            ("LCL-H02", "crates/core/src/thing.rs", 9),
            ("LCL-H01", "crates/core/src/thing.rs", 15),
            ("LCL-H01", "crates/core/src/thing.rs", 16),
            ("LCL-H01", "crates/core/src/thing.rs", 20),
        ],
        "{}",
        report.human()
    );
    // `assert!` invariant documentation in `checked` is not a finding.
    assert!(report.findings.iter().all(|f| f.item != "Thing::checked"));
}

#[test]
fn determinism_fixture_triggers_exact_rules_and_spans() {
    let report = run_fixture("determinism");
    assert_eq!(
        spans(&report),
        vec![
            ("LCL-D01", "crates/local/src/foo.rs", 13),
            ("LCL-D02", "crates/local/src/foo.rs", 21),
            ("LCL-D03", "crates/local/src/foo.rs", 27),
        ],
        "{}",
        report.human()
    );
    // The order-free `values().count()` fold is allowed.
    assert!(report
        .findings
        .iter()
        .all(|f| f.item != "Registry::size_is_fine"));
}

#[test]
fn crosscheck_churn_fixture_triggers_exact_rules_and_spans() {
    // `caterpillar` is declared and named by the mini churn suite (clean);
    // four families have no generator fn at all (anchored at line 1);
    // `spider` is declared but never named by a suite file (anchored at
    // its fn).
    let report = run_fixture("crosscheck_churn");
    assert_eq!(
        spans(&report),
        vec![
            ("LCL-X03", "crates/graph/src/generators.rs", 1),
            ("LCL-X03", "crates/graph/src/generators.rs", 1),
            ("LCL-X03", "crates/graph/src/generators.rs", 1),
            ("LCL-X03", "crates/graph/src/generators.rs", 1),
            ("LCL-X03", "crates/graph/src/generators.rs", 11),
        ],
        "{}",
        report.human()
    );
    let items: Vec<&str> = report.findings.iter().map(|f| f.item.as_str()).collect();
    assert_eq!(
        items,
        vec![
            "broom",
            "complete_ary_tree",
            "heavy_path_skewed",
            "ladder",
            "spider"
        ]
    );
}

#[test]
fn shardpath_fixture_triggers_exact_rules_and_spans() {
    let report = run_fixture("shardpath");
    assert_eq!(
        spans(&report),
        vec![
            ("LCL-A04", "crates/shard/src/runner.rs", 6),
            ("LCL-A04", "crates/shard/src/runner.rs", 7),
            ("LCL-A04", "crates/shard/src/runner.rs", 8),
            ("LCL-A04", "crates/shard/src/runner.rs", 14),
            ("LCL-A04", "crates/shard/src/runner.rs", 15),
        ],
        "{}",
        report.human()
    );
    assert_eq!(report.findings[0].item, "shard_pass");
    assert_eq!(report.findings[3].item, "capture_halos");
    // The barrier-time helper and the `#[cfg(test)]` fn named
    // `shard_pass` are not reported: only the two pass fns are policed,
    // and never in test code.
    assert!(report.findings.iter().all(|f| f.item != "refill_residency"));
}

#[test]
fn crosscheck_shard_fixture_triggers_exact_rules_and_spans() {
    // The mini shard suite names every `ShardConfig` knob except
    // `max_resident`; `LCL-X05` must report exactly that one knob,
    // anchored at the suite file.
    let report = run_fixture("crosscheck_shard");
    assert_eq!(
        spans(&report),
        vec![("LCL-X05", "crates/harness/tests/shard_differential.rs", 1)],
        "{}",
        report.human()
    );
    assert_eq!(report.findings[0].item, "max_resident");
}

#[test]
fn crosscheck_service_fixture_triggers_exact_rules_and_spans() {
    // The mini round-trip suite names every wire tag except the
    // `overloaded` response kind; `LCL-X04` must report exactly that
    // one variant, anchored at the suite file.
    let report = run_fixture("crosscheck_service");
    assert_eq!(
        spans(&report),
        vec![("LCL-X04", "crates/service/tests/protocol_roundtrip.rs", 1)],
        "{}",
        report.human()
    );
    assert_eq!(report.findings[0].item, "overloaded");
}

#[test]
fn workspace_is_clean_modulo_shipped_baseline() {
    // The analyzer runs on this repository itself: the tree must stay
    // clean, every baseline entry must carry a justification, and no
    // entry may be stale. `workspace.rs` excludes `tests/fixtures/`, so
    // the known-bad fixtures above don't poison the self-run.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let baseline = root.join("ANALYSIS_BASELINE.txt");
    let report = analyze(&AnalysisConfig {
        root,
        baseline: Some(baseline),
    })
    .expect("self-analysis runs");
    assert!(
        report.is_clean(),
        "the workspace has unbaselined findings:\n{}",
        report.human()
    );
    assert!(
        report.stale_baseline.is_empty(),
        "stale baseline entries:\n{}",
        report.human()
    );
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
}
