//! Known-bad API-hygiene fixture for the H-rules.

pub struct Thing {
    value: u64,
}

impl Thing {
    /// Missing `#[must_use]` on a builder-style constructor.
    pub fn new(value: u64) -> Self {
        // line 9 is the `pub fn new` above: LCL-H02
        Thing { value }
    }

    pub fn read(path: &str) -> u64 {
        let text = std::fs::read_to_string(path).unwrap(); // line 15: LCL-H01
        text.parse().expect("a number") // line 16: LCL-H01
    }

    pub fn fail(&self) -> u64 {
        panic!("library code must not panic") // line 20: LCL-H01
    }

    pub fn checked(&self) -> u64 {
        // Invariant documentation is allowed: not findings.
        assert!(self.value < 1_000);
        self.value
    }
}
