//! Known-bad determinism fixture for the D-rules.

use std::collections::HashMap;
use std::time::Instant;

pub struct Registry {
    table: HashMap<u64, u64>,
}

impl Registry {
    pub fn dump(&self) -> u64 {
        let mut acc = 0;
        for (_k, v) in self.table.iter() {
            // line 13: LCL-D01
            acc += v;
        }
        acc
    }

    pub fn timed(&self) -> u64 {
        let start = Instant::now(); // line 21: LCL-D02
        let _ = start;
        0
    }

    pub fn who(&self) -> u64 {
        let id = std::thread::current().id(); // line 27: LCL-D03
        let _ = id;
        0
    }

    pub fn size_is_fine(&self) -> usize {
        // Order-free terminal fold over a hash container: allowed.
        self.table.values().count()
    }
}
