//! Known-bad shard-pass fixture: every violation below is asserted by
//! `tests/analyzer.rs` with its exact rule id and `file:line` span.
//! Line numbers matter — append only at the end.

fn shard_pass(slots: &mut [u64]) -> u64 {
    let mut spill: Vec<u64> = Vec::new(); // line 6: LCL-A04 (allocating constructor)
    spill.push(slots.len() as u64); // line 7: LCL-A04 (allocating call)
    let handle = File::open("halo.spill"); // line 8: LCL-A04 (file handle)
    drop(handle);
    spill[0]
}

fn capture_halos(sink: &mut Sink, slots: &[u64]) {
    sink.write_all(&[0u8]); // line 14: LCL-A04 (I/O call)
    let label = format!("{} slots", slots.len()); // line 15: LCL-A04 (alloc macro)
    drop(label);
}

fn refill_residency(slots: &[u64]) -> u64 {
    // Allowed: residency changes run at the round barrier, so only the
    // two pass fns above are policed.
    let staged = slots.to_vec();
    staged.len() as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn shard_pass() {
        // Allowed: shard-pass rules skip test code, even under the
        // policed fn name.
        let spilled = vec![1u64];
        assert_eq!(spilled.len(), 1);
    }
}
