//! Miniature generator registry: `caterpillar` is declared and named by
//! the churn suite, `spider` is declared but never named, and the other
//! four adversarial families are missing entirely.

/// A spine with pendant legs.
pub fn caterpillar(spine: usize, legs: usize) -> usize {
    spine * (1 + legs)
}

/// A hub with pendant paths — declared, but no suite names it.
pub fn spider(legs: usize, leg_len: usize) -> usize {
    1 + legs * leg_len
}
