//! Miniature churn suite: names `caterpillar` only.

#[test]
fn churns_a_caterpillar() {
    let _n = caterpillar(3, 2);
}
