//! Known-bad hot-path fixture: every violation below is asserted by
//! `tests/analyzer.rs` with its exact rule id and `file:line` span.
//! Line numbers matter — append only at the end.

pub struct Inbox;

fn step_region(xs: &[u32]) -> u64 {
    let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect(); // line 8: LCL-A01
    let guard = GLOBAL.lock(); // line 9: LCL-A02
    let total = unsafe { raw_sum(&doubled) }; // line 10: LCL-A03
    drop(guard);
    total
}

impl Inbox {
    fn gather(&self) -> String {
        format!("gathered") // line 17: LCL-A01 (alloc macro in hot type)
    }
}
