//! A protocol whose `step` allocates — the exact class of regression the
//! hot-path rules exist to stop.

pub struct BadCast {
    seen: Vec<u64>,
}

impl Protocol for BadCast {
    type Message = u64;
    type Output = u64;

    fn step(&mut self, inbox: &Inbox) -> Option<u64> {
        let snapshot = self.seen.to_vec(); // line 13: LCL-A01
        let boxed = Box::new(snapshot); // line 14: LCL-A01
        drop(boxed);
        None
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn alloc_in_tests_is_fine() {
        let v: Vec<u64> = (0..4).collect(); // test code: not flagged
        assert_eq!(v.len(), 4);
    }
}
