//! Fixture: a shard differential suite that sweeps every `ShardConfig`
//! knob except the resident-count one — `LCL-X05` must report exactly
//! that one missing knob.

#[test]
fn every_shard_knob_is_swept_here() {
    let swept = ["shards", "packing"];
    assert!(!swept.is_empty());
}
