//! Fixture: a round-trip suite that covers every wire variant except
//! the `overloaded` response kind — `LCL-X04` must report exactly that
//! one missing tag.

#[test]
fn every_wire_variant_round_trips_here() {
    let covered = [
        "classify", "solve", "stats", "shutdown", // request ops
        "plan", "record", "done", "error", // response kinds (one missing)
    ];
    assert!(!covered.is_empty());
}
