//! Findings and the analysis report: human text and JSON rendering.

use crate::baseline::BaselineEntry;
use serde::{Serialize, Value};

/// One rule violation at a source location.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// The rule id (`LCL-A01`).
    pub rule: &'static str,
    /// Workspace-relative file path with forward slashes.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Qualified path of the enclosing item (`Outbox::broadcast`), used
    /// as the baseline key.
    pub item: String,
    /// Human explanation of the violation.
    pub message: String,
}

/// A suppressed finding together with its baseline justification.
#[derive(Debug, Clone, Serialize)]
pub struct Suppressed {
    /// The finding the baseline swallowed.
    pub finding: Finding,
    /// The justification from the baseline entry.
    pub reason: String,
}

/// The result of one analysis run.
#[derive(Debug, Serialize)]
pub struct AnalysisReport {
    /// Findings not covered by the baseline, sorted by source position.
    pub findings: Vec<Finding>,
    /// Findings the baseline suppressed.
    pub suppressed: Vec<Suppressed>,
    /// Baseline entries that suppressed nothing (stale).
    pub stale_baseline: Vec<BaselineEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of baseline entries loaded.
    pub baseline_entries: usize,
}

impl AnalysisReport {
    /// Whether the workspace is clean: no active findings. Stale
    /// baseline entries are reported but do not fail the run.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The one-line-per-finding human rendering, ending with a summary.
    #[must_use]
    pub fn human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{} {}:{}:{} [{}] {}\n",
                f.rule, f.file, f.line, f.col, f.item, f.message
            ));
        }
        for s in &self.stale_baseline {
            out.push_str(&format!(
                "stale-baseline {}:{} `{} {} {}` suppresses nothing — delete it\n",
                "ANALYSIS_BASELINE.txt", s.line, s.rule, s.file, s.item
            ));
        }
        out.push_str(&format!(
            "analyze: {} finding(s), {} suppressed by baseline ({} entr{}, {} stale), \
             {} file(s) scanned\n",
            self.findings.len(),
            self.suppressed.len(),
            self.baseline_entries,
            if self.baseline_entries == 1 {
                "y"
            } else {
                "ies"
            },
            self.stale_baseline.len(),
            self.files_scanned,
        ));
        out
    }

    /// The machine-readable `ANALYSIS.json` payload.
    #[must_use]
    pub fn to_json_value(&self) -> Value {
        self.to_value()
    }
}

/// Sorts findings into the canonical report order: file, line, column,
/// rule id.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}
