//! A lightweight structural pass over the token stream.
//!
//! The analyzer does not build an AST. It recovers just enough item
//! structure for the rules to aim at: function boundaries (signature
//! and body token ranges), the impl context a function lives in (type
//! and trait names), attributes, `#[cfg(test)]` reach, and struct
//! fields (for hash-container taint). Everything inside a function
//! body stays a flat token slice — the rules scan it lexically.

use crate::lexer::{TokKind, Token};

/// The impl or trait declaration a function was found inside.
#[derive(Debug, Clone)]
pub struct ImplCtx {
    /// Base name of the self type (`Outbox` for `impl<M> Outbox<'_, M>`),
    /// or the trait's own name inside a `trait` declaration.
    pub type_name: String,
    /// Base name of the implemented trait, if this is a trait impl.
    pub trait_name: Option<String>,
    /// Whether this is a `trait` declaration body (default methods)
    /// rather than an `impl` block.
    pub is_trait_decl: bool,
}

/// One function item with spans into the file's token stream.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The bare function name.
    pub name: String,
    /// `Type::name` inside an impl or trait, plain `name` otherwise.
    pub qual_name: String,
    /// The enclosing impl block or trait declaration, if any.
    pub impl_ctx: Option<ImplCtx>,
    /// Whether the function is unrestricted `pub` (exported API).
    /// Restricted visibilities (`pub(crate)`, `pub(super)`, `pub(in …)`)
    /// do not count: they are internal surface.
    pub is_pub: bool,
    /// Whether the function is test-only: `#[test]`, `#[cfg(test)]`, or
    /// anywhere under a `#[cfg(test)]` module.
    pub in_test: bool,
    /// Whether the function carries `#[must_use]`.
    pub has_must_use: bool,
    /// Outer attributes, concatenated token texts (`cfg(test)`).
    pub attrs: Vec<String>,
    /// 1-based line of the function name.
    pub line: u32,
    /// 1-based column of the function name.
    pub col: u32,
    /// Token range `[start, end)` of the body, between the braces.
    /// `None` for bodyless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Return-type tokens, as texts (empty when the return is `()`).
    pub ret: Vec<String>,
}

impl FnInfo {
    /// Whether the declared return type is exactly the constructed type:
    /// literally `Self`, or the base name of the enclosing impl's self
    /// type. This is the builder-style shape `#[must_use]` should mark.
    #[must_use]
    pub fn returns_self(&self) -> bool {
        if self.ret.len() != 1 {
            return false;
        }
        if self.ret[0] == "Self" {
            return true;
        }
        self.impl_ctx
            .as_ref()
            .is_some_and(|ctx| !ctx.is_trait_decl && ctx.type_name == self.ret[0])
    }
}

/// One struct item with its named fields (for taint seeding).
#[derive(Debug, Clone)]
pub struct StructInfo {
    /// The struct name.
    pub name: String,
    /// Named fields as `(field, type-text)`; type text is the
    /// space-joined token texts of the declared type.
    pub fields: Vec<(String, String)>,
    /// 1-based line of the struct name.
    pub line: u32,
}

/// The recovered structure of one source file.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Every function item, in source order.
    pub fns: Vec<FnInfo>,
    /// Every struct with named fields, in source order.
    pub structs: Vec<StructInfo>,
}

/// Parses the token stream of one file into its item structure.
#[must_use]
pub fn parse_file(toks: &[Token]) -> FileModel {
    let mut parser = Parser {
        toks,
        pos: 0,
        model: FileModel::default(),
    };
    parser.items(false, None);
    parser.model
}

struct Parser<'t> {
    toks: &'t [Token],
    pos: usize,
    model: FileModel,
}

/// One parsed outer attribute: the concatenated display text plus the
/// individual token texts (for word-exact checks like `cfg(test)`).
struct Attr {
    text: String,
    words: Vec<String>,
}

impl Attr {
    fn is_test(&self) -> bool {
        if self.words.first().map(String::as_str) == Some("test") {
            return true;
        }
        self.words.first().map(String::as_str) == Some("cfg")
            && self.words.iter().any(|w| w == "test")
    }

    fn is_must_use(&self) -> bool {
        self.words.first().map(String::as_str) == Some("must_use")
    }
}

impl<'t> Parser<'t> {
    fn peek(&self) -> Option<&'t Token> {
        self.toks.get(self.pos)
    }

    fn peek_at(&self, ahead: usize) -> Option<&'t Token> {
        self.toks.get(self.pos + ahead)
    }

    fn bump(&mut self) -> Option<&'t Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        self.peek().is_some_and(|t| t.is_punct(ch))
    }

    fn at_ident(&self, text: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(text))
    }

    /// Consumes a balanced `open …ensure close` group, current token
    /// included. Tolerates EOF (stops there).
    fn skip_group(&mut self, open: char, close: char) {
        debug_assert!(self.at_punct(open));
        let mut depth = 0usize;
        while let Some(t) = self.bump() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Consumes a balanced generic-argument group starting at `<`. The
    /// `>` of a `->` arrow (which appears inside `Fn(…) -> T` bounds)
    /// does not close the group.
    fn skip_angles(&mut self) {
        debug_assert!(self.at_punct('<'));
        let mut depth = 0usize;
        while let Some(t) = self.peek() {
            if t.is_punct('-') && self.peek_at(1).is_some_and(|n| n.is_punct('>')) {
                self.pos += 2;
                continue;
            }
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// Consumes to the `;` ending a non-brace item (`use`, `const`,
    /// `static`, `type`), balancing every bracket flavor on the way.
    fn skip_stmt(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.bump() {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth = depth.saturating_sub(1);
            } else if t.is_punct(';') && depth == 0 {
                return;
            }
        }
    }

    /// Parses one outer attribute if the cursor is at `#`; inner
    /// attributes (`#![…]`) are consumed and dropped.
    fn attr(&mut self) -> Option<Attr> {
        if !self.at_punct('#') {
            return None;
        }
        let inner = self.peek_at(1).is_some_and(|t| t.is_punct('!'));
        self.bump();
        if inner {
            self.bump();
        }
        if !self.at_punct('[') {
            return None;
        }
        let start = self.pos;
        self.skip_group('[', ']');
        if inner {
            return None;
        }
        let body = &self.toks[start + 1..self.pos.saturating_sub(1)];
        Some(Attr {
            text: body.iter().map(|t| t.text.as_str()).collect(),
            words: body.iter().map(|t| t.text.clone()).collect(),
        })
    }

    /// Parses items until the matching `}` of the enclosing block (which
    /// it consumes) or EOF.
    fn items(&mut self, in_test: bool, impl_ctx: Option<&ImplCtx>) {
        loop {
            if self.peek().is_none() {
                return;
            }
            if self.at_punct('}') {
                self.bump();
                return;
            }
            let mut attrs: Vec<Attr> = Vec::new();
            while self.at_punct('#') {
                if let Some(a) = self.attr() {
                    attrs.push(a);
                }
            }
            let mut is_pub = false;
            loop {
                if self.at_ident("pub") {
                    self.bump();
                    if self.at_punct('(') {
                        // `pub(crate)` / `pub(super)` / `pub(in …)` are
                        // internal surface, not exported API.
                        self.skip_group('(', ')');
                    } else {
                        is_pub = true;
                    }
                    continue;
                }
                if self.at_ident("default") || self.at_ident("async") || self.at_ident("unsafe") {
                    self.bump();
                    continue;
                }
                if self.at_ident("const") {
                    // `const` is a fn qualifier only when the fn (or a
                    // further qualifier) follows directly; otherwise it
                    // starts a `const NAME: … = …;` item.
                    let next_is_fn = self.peek_at(1).is_some_and(|t| {
                        t.is_ident("fn") || t.is_ident("unsafe") || t.is_ident("extern")
                    });
                    if next_is_fn {
                        self.bump();
                        continue;
                    }
                }
                if self.at_ident("extern")
                    && self
                        .peek_at(1)
                        .is_some_and(|t| t.kind == TokKind::Str || t.is_ident("fn"))
                {
                    self.bump();
                    if self.peek().is_some_and(|t| t.kind == TokKind::Str) {
                        self.bump();
                    }
                    continue;
                }
                break;
            }
            if self.at_ident("fn") {
                self.parse_fn(&attrs, is_pub, in_test, impl_ctx);
            } else if self.at_ident("mod") {
                self.bump();
                let child_test = in_test || attrs.iter().any(Attr::is_test);
                self.bump(); // module name
                if self.at_punct('{') {
                    self.bump();
                    self.items(child_test, None);
                } else if self.at_punct(';') {
                    self.bump();
                }
            } else if self.at_ident("impl") {
                self.parse_impl(in_test);
            } else if self.at_ident("trait") {
                self.bump();
                let name = self
                    .peek()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map_or_else(|| "?".to_string(), |t| t.text.clone());
                while let Some(t) = self.peek() {
                    if t.is_punct('{') {
                        break;
                    }
                    if t.is_punct(';') {
                        self.bump();
                        break;
                    }
                    if t.is_punct('<') {
                        self.skip_angles();
                    } else {
                        self.bump();
                    }
                }
                if self.at_punct('{') {
                    self.bump();
                    let ctx = ImplCtx {
                        type_name: name,
                        trait_name: None,
                        is_trait_decl: true,
                    };
                    self.items(in_test, Some(&ctx));
                }
            } else if self.at_ident("struct") {
                self.parse_struct(in_test);
            } else if self.at_ident("enum") || self.at_ident("union") {
                self.bump();
                while let Some(t) = self.peek() {
                    if t.is_punct('{') {
                        self.skip_group('{', '}');
                        break;
                    }
                    if t.is_punct(';') {
                        self.bump();
                        break;
                    }
                    if t.is_punct('<') {
                        self.skip_angles();
                    } else {
                        self.bump();
                    }
                }
            } else if self.at_ident("macro_rules") {
                self.bump(); // macro_rules
                self.bump(); // !
                self.bump(); // name
                if self.at_punct('{') {
                    self.skip_group('{', '}');
                } else if self.at_punct('(') {
                    self.skip_group('(', ')');
                    if self.at_punct(';') {
                        self.bump();
                    }
                }
            } else if self.at_ident("use")
                || self.at_ident("type")
                || self.at_ident("static")
                || self.at_ident("const")
                || self.at_ident("extern")
            {
                self.skip_stmt();
            } else {
                // Unknown construct: advance one token and resync.
                self.bump();
            }
        }
    }

    fn parse_fn(
        &mut self,
        attrs: &[Attr],
        is_pub: bool,
        in_test: bool,
        impl_ctx: Option<&ImplCtx>,
    ) {
        self.bump(); // fn
        let Some(name_tok) = self.peek() else { return };
        if name_tok.kind != TokKind::Ident {
            return;
        }
        let (name, line, col) = (name_tok.text.clone(), name_tok.line, name_tok.col);
        self.bump();
        if self.at_punct('<') {
            self.skip_angles();
        }
        if self.at_punct('(') {
            self.skip_group('(', ')');
        }
        let mut ret: Vec<String> = Vec::new();
        let mut capturing = false;
        loop {
            let Some(t) = self.peek() else { return };
            if t.is_punct('{') || t.is_punct(';') {
                break;
            }
            if t.is_ident("where") {
                capturing = false;
                self.bump();
                continue;
            }
            if t.is_punct('-') && self.peek_at(1).is_some_and(|n| n.is_punct('>')) {
                self.pos += 2;
                capturing = true;
                continue;
            }
            if capturing {
                ret.push(t.text.clone());
            }
            if t.is_punct('<') {
                let before = self.pos;
                self.skip_angles();
                if capturing {
                    for inner in &self.toks[before + 1..self.pos] {
                        ret.push(inner.text.clone());
                    }
                }
            } else {
                self.bump();
            }
        }
        let body = if self.at_punct('{') {
            let start = self.pos + 1;
            self.skip_group('{', '}');
            Some((start, self.pos.saturating_sub(1)))
        } else {
            self.bump(); // ;
            None
        };
        let qual_name = impl_ctx.map_or_else(
            || name.clone(),
            |ctx| format!("{}::{}", ctx.type_name, name),
        );
        self.model.fns.push(FnInfo {
            name,
            qual_name,
            impl_ctx: impl_ctx.cloned(),
            is_pub,
            in_test: in_test || attrs.iter().any(Attr::is_test),
            has_must_use: attrs.iter().any(Attr::is_must_use),
            attrs: attrs.iter().map(|a| a.text.clone()).collect(),
            line,
            col,
            body,
            ret,
        });
    }

    fn parse_impl(&mut self, in_test: bool) {
        self.bump(); // impl
        if self.at_punct('<') {
            self.skip_angles();
        }
        // Collect header tokens up to `{` or `where`, splitting on a
        // depth-0 `for` (trait impl). `for<'a>` higher-ranked bounds are
        // not a split: the `for` there is directly followed by `<`.
        let mut parts: [Vec<&Token>; 2] = [Vec::new(), Vec::new()];
        let mut part = 0usize;
        loop {
            let Some(t) = self.peek() else { return };
            if t.is_punct('{') || t.is_ident("where") {
                break;
            }
            if t.is_ident("for") && !self.peek_at(1).is_some_and(|n| n.is_punct('<')) {
                part = 1;
                self.bump();
                continue;
            }
            if t.is_punct('<') {
                let before = self.pos;
                self.skip_angles();
                for inner in &self.toks[before..self.pos] {
                    parts[part].push(inner);
                }
                continue;
            }
            parts[part].push(t);
            self.bump();
        }
        while let Some(t) = self.peek() {
            if t.is_punct('{') {
                break;
            }
            self.bump();
        }
        let (trait_name, type_part) = if parts[1].is_empty() {
            (None, &parts[0])
        } else {
            (base_name(&parts[0]), &parts[1])
        };
        let ctx = ImplCtx {
            type_name: base_name(type_part).unwrap_or_else(|| "?".to_string()),
            trait_name,
            is_trait_decl: false,
        };
        if self.at_punct('{') {
            self.bump();
            self.items(in_test, Some(&ctx));
        }
    }

    fn parse_struct(&mut self, _in_test: bool) {
        self.bump(); // struct
        let Some(name_tok) = self.peek() else { return };
        let (name, line) = (name_tok.text.clone(), name_tok.line);
        self.bump();
        if self.at_punct('<') {
            self.skip_angles();
        }
        while let Some(t) = self.peek() {
            if t.is_punct('{') || t.is_punct('(') || t.is_punct(';') {
                break;
            }
            if t.is_punct('<') {
                self.skip_angles();
            } else {
                self.bump();
            }
        }
        if self.at_punct('(') {
            self.skip_group('(', ')');
            if self.at_punct(';') {
                self.bump();
            }
            return;
        }
        if self.at_punct(';') {
            self.bump();
            return;
        }
        if !self.at_punct('{') {
            return;
        }
        self.bump();
        let mut fields: Vec<(String, String)> = Vec::new();
        loop {
            while self.at_punct('#') {
                let _ = self.attr();
            }
            if self.at_punct('}') {
                self.bump();
                break;
            }
            if self.peek().is_none() {
                break;
            }
            if self.at_ident("pub") {
                self.bump();
                if self.at_punct('(') {
                    self.skip_group('(', ')');
                }
            }
            let Some(field_tok) = self.peek() else { break };
            if field_tok.kind != TokKind::Ident {
                self.bump();
                continue;
            }
            let field = field_tok.text.clone();
            self.bump();
            if !self.at_punct(':') {
                continue;
            }
            self.bump();
            let mut ty: Vec<String> = Vec::new();
            while let Some(t) = self.peek() {
                if t.is_punct(',') {
                    self.bump();
                    break;
                }
                if t.is_punct('}') {
                    break;
                }
                if t.is_punct('<') {
                    let before = self.pos;
                    self.skip_angles();
                    for inner in &self.toks[before..self.pos] {
                        ty.push(inner.text.clone());
                    }
                    continue;
                }
                ty.push(t.text.clone());
                self.bump();
            }
            fields.push((field, ty.join(" ")));
        }
        self.model.structs.push(StructInfo { name, fields, line });
    }
}

/// The base name of a path-ish token sequence: the last identifier of
/// the leading path, stopping at the first depth-0 `<`. Keywords that
/// can prefix a type (`mut`, `dyn`) are ignored.
fn base_name(toks: &[&Token]) -> Option<String> {
    let mut last: Option<String> = None;
    for t in toks {
        if t.is_punct('<') {
            break;
        }
        if t.kind == TokKind::Ident && t.text != "mut" && t.text != "dyn" {
            last = Some(t.text.clone());
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn model(src: &str) -> FileModel {
        parse_file(&tokenize(src))
    }

    #[test]
    fn finds_fns_with_impl_context() {
        let m = model(
            "impl<M: Clone> Outbox<'_, M> {\n\
             pub fn send(&mut self, port: usize, msg: M) {}\n\
             }\n\
             impl Protocol for LinialCascade {\n\
             fn step(&mut self) -> Option<u64> { None }\n\
             }\n\
             fn free() {}\n",
        );
        assert_eq!(m.fns.len(), 3);
        assert_eq!(m.fns[0].qual_name, "Outbox::send");
        assert!(m.fns[0].is_pub);
        assert_eq!(
            m.fns[1]
                .impl_ctx
                .as_ref()
                .and_then(|c| c.trait_name.clone()),
            Some("Protocol".to_string())
        );
        assert_eq!(
            m.fns[1].impl_ctx.as_ref().map(|c| c.type_name.clone()),
            Some("LinialCascade".to_string())
        );
        assert_eq!(m.fns[2].qual_name, "free");
    }

    #[test]
    fn cfg_test_modules_mark_contents() {
        let m = model(
            "fn lib_code() {}\n\
             #[cfg(test)]\nmod tests {\n\
             #[test]\nfn a_test() { x.unwrap(); }\n\
             struct Helper;\n\
             impl Helper { fn go(&self) {} }\n\
             }\n",
        );
        assert!(!m.fns[0].in_test);
        assert!(m.fns[1].in_test);
        assert!(m.fns[2].in_test);
        assert_eq!(m.fns[2].qual_name, "Helper::go");
    }

    #[test]
    fn returns_self_detects_builders() {
        let m = model(
            "impl RunConfig {\n\
             pub fn seeded(mut self, seed: u64) -> Self { self.seed = seed; self }\n\
             #[must_use]\npub fn named(self) -> RunConfig { self }\n\
             pub fn seed(&self) -> u64 { self.seed }\n\
             }\n",
        );
        assert!(m.fns[0].returns_self());
        assert!(!m.fns[0].has_must_use);
        assert!(m.fns[1].returns_self());
        assert!(m.fns[1].has_must_use);
        assert!(!m.fns[2].returns_self());
    }

    #[test]
    fn struct_fields_capture_types() {
        let m = model(
            "pub struct Cache {\n\
             pub dist: HashMap<(u32, u32), u64>,\n\
             names: Vec<String>,\n\
             }\n",
        );
        assert_eq!(m.structs.len(), 1);
        assert_eq!(m.structs[0].fields[0].0, "dist");
        assert!(m.structs[0].fields[0].1.contains("HashMap"));
        assert_eq!(m.structs[0].fields[1].0, "names");
    }

    #[test]
    fn hrtb_for_does_not_split_impl_headers() {
        let m = model(
            "impl<F> Runner<F> where F: for<'a> Fn(&'a str) -> u64 {\n\
             fn go(&self) {}\n\
             }\n",
        );
        assert_eq!(m.fns[0].qual_name, "Runner::go");
        assert!(m.fns[0]
            .impl_ctx
            .as_ref()
            .is_some_and(|c| c.trait_name.is_none()));
    }

    #[test]
    fn arrow_in_bounds_does_not_close_generics() {
        let m = model(
            "pub fn run_with<P, F: FnMut(&NodeContext) -> P>(factory: F) -> Option<P> { None }\n",
        );
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "run_with");
        assert_eq!(m.fns[0].ret, vec!["Option", "<", "P", ">"]);
    }

    #[test]
    fn trait_decl_methods_are_not_builder_candidates() {
        let m = model(
            "pub trait Builderish {\n\
             fn build(self) -> Self;\n\
             fn with_default(self) -> Self { self }\n\
             }\n",
        );
        assert_eq!(m.fns.len(), 2);
        assert!(m.fns[0].body.is_none());
        assert!(m.fns[1].body.is_some());
        // `-> Self` in a trait decl still reads as returns_self (literal
        // Self), which hygiene rules must filter via is_trait_decl.
        assert!(m.fns[0].impl_ctx.as_ref().is_some_and(|c| c.is_trait_decl));
    }
}
