//! Deterministic workspace source discovery.
//!
//! Walks the repository for `.rs` files, excluding build output
//! (`target/`), the vendored dependency stand-ins (`vendor/` — not our
//! code, not our invariants), version control, and the analyzer's own
//! known-bad test fixtures. Files are returned sorted by their
//! workspace-relative path so every downstream report is byte-stable.

use crate::lexer::{tokenize, Token};
use crate::model::{parse_file, FileModel};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One scanned source file: its workspace-relative path (forward
/// slashes), token stream, and recovered item structure.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// The full token stream of the file.
    pub toks: Vec<Token>,
    /// The structural model parsed from `toks`.
    pub model: FileModel,
}

/// Directory names never descended into, wherever they appear.
const EXCLUDED_DIRS: &[&str] = &["target", "vendor", ".git", "bench-results"];

/// Workspace-relative path prefixes excluded from scanning: the
/// analyzer's deliberately-bad fixture snippets must not lint the
/// workspace they test.
const EXCLUDED_PREFIXES: &[&str] = &["crates/analysis/tests/fixtures"];

/// Collects, tokenizes, and parses every analyzable `.rs` file under
/// `root`, sorted by relative path.
pub fn scan(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    walk(root, &mut paths)?;
    let mut rels: Vec<(String, PathBuf)> = paths
        .into_iter()
        .filter_map(|p| {
            let rel = p
                .strip_prefix(root)
                .ok()?
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            if EXCLUDED_PREFIXES.iter().any(|pre| rel.starts_with(pre)) {
                return None;
            }
            Some((rel, p))
        })
        .collect();
    rels.sort();
    let mut files = Vec::with_capacity(rels.len());
    for (rel, path) in rels {
        let src = fs::read_to_string(&path)?;
        let toks = tokenize(&src);
        let model = parse_file(&toks);
        files.push(SourceFile { rel, toks, model });
    }
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if EXCLUDED_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
