//! `LCL-D01`/`D02`/`D03`: determinism hygiene of the library crates.
//!
//! Everything the engine reports — labels, rounds, message counts —
//! must be a pure function of `(graph, ids, seed, protocol)`. These
//! rules flag the three classic ways nondeterminism leaks in:
//! iterating a randomized-order hash container, deriving values from
//! the wall clock, and branching on thread identity.
//!
//! `LCL-D01` is a lexical taint pass, not a type analysis: a local is
//! tainted when its `let` statement mentions `HashMap`/`HashSet`, a
//! field when its declared type does. Calling an *iteration* method on
//! a tainted name is a finding — unless the iterator chain terminates
//! in an order-independent fold (`count`, `sum`, `min`, `max`, `all`,
//! `any`), which is the one blessed pattern. Keyed access (`get`,
//! `entry`, `contains_key`) never taints anything.

use crate::lexer::{TokKind, Token};
use crate::model::FnInfo;
use crate::report::Finding;
use crate::rules::{body, skip_balanced};
use crate::workspace::SourceFile;
use std::collections::BTreeSet;

/// Crates whose `src/` trees carry the determinism contract. The bench
/// crate is deliberately out of scope: it is the measurement layer, and
/// wall-clock use is its job.
const SCOPE: &[&str] = &[
    "crates/graph/src/",
    "crates/local/src/",
    "crates/core/src/",
    "crates/algorithms/src/",
    "crates/decidability/src/",
    "crates/harness/src/",
];

/// Hash containers with randomized iteration order.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Methods that expose iteration order on a hash container.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Adapters that preserve the order question — scanning continues past
/// them to the chain's terminal.
const PASSTHROUGH: &[&str] = &["copied", "cloned", "by_ref"];

/// Order-independent terminals: folding every element commutatively.
const ORDER_FREE: &[&str] = &["count", "sum", "min", "max", "all", "any", "len"];

fn in_scope(rel: &str) -> bool {
    SCOPE.iter().any(|pre| rel.starts_with(pre))
}

/// Runs the three determinism rules over one file.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !in_scope(&file.rel) {
        return;
    }
    let field_taint: BTreeSet<String> = file
        .model
        .structs
        .iter()
        .flat_map(|s| s.fields.iter())
        .filter(|(_, ty)| HASH_TYPES.iter().any(|h| ty.contains(h)))
        .map(|(name, _)| name.clone())
        .collect();
    for f in &file.model.fns {
        if f.in_test {
            continue;
        }
        let toks = body(file, f);
        check_hash_iteration(file, f, toks, &field_taint, findings);
        for t in toks {
            if t.kind != TokKind::Ident {
                continue;
            }
            if t.text == "Instant" || t.text == "SystemTime" {
                findings.push(finding(
                    "LCL-D02",
                    file,
                    f,
                    t,
                    format!(
                        "wall-clock type `{}` in library fn `{}` — values derived \
                         from time are not a function of (graph, ids, seed)",
                        t.text, f.name
                    ),
                ));
            }
            if t.text == "ThreadId" {
                findings.push(finding(
                    "LCL-D03",
                    file,
                    f,
                    t,
                    format!("thread-identity type `ThreadId` in library fn `{}`", f.name),
                ));
            }
        }
        for i in 0..toks.len() {
            if toks[i].is_ident("thread")
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident("current"))
            {
                findings.push(finding(
                    "LCL-D03",
                    file,
                    f,
                    &toks[i],
                    format!(
                        "`thread::current()` in library fn `{}` — results must not \
                         depend on which worker runs a chunk",
                        f.name
                    ),
                ));
            }
        }
    }
}

/// The `LCL-D01` taint pass over one function body.
fn check_hash_iteration(
    file: &SourceFile,
    f: &FnInfo,
    toks: &[Token],
    field_taint: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    let mut taint: BTreeSet<String> = field_taint.clone();
    // Seed locals: `let [mut] name … = …;` statements whose tokens
    // mention a hash container type.
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name_tok) = toks.get(j).filter(|t| t.kind == TokKind::Ident) {
                let stmt_end = toks[j..]
                    .iter()
                    .position(|t| t.is_punct(';'))
                    .map_or(toks.len(), |off| j + off);
                if toks[j..stmt_end]
                    .iter()
                    .any(|t| HASH_TYPES.iter().any(|h| t.is_ident(h)))
                {
                    taint.insert(name_tok.text.clone());
                }
            }
        }
        i += 1;
    }
    if taint.is_empty() {
        return;
    }
    // Flag iteration-order exposure on tainted names.
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        let tainted_here = t.kind == TokKind::Ident && taint.contains(&t.text);
        if !tainted_here {
            i += 1;
            continue;
        }
        // `for pat in [&]tainted {` — direct iteration of the container.
        if toks.get(i + 1).is_some_and(|n| n.is_punct('{')) && preceded_by_in(toks, i) {
            findings.push(finding(
                "LCL-D01",
                file,
                f,
                t,
                format!(
                    "iteration over hash container `{}` in fn `{}` — order is \
                     randomized per process",
                    t.text, f.name
                ),
            ));
            i += 1;
            continue;
        }
        // `tainted.method(…)` with an iteration method: walk the chain.
        if toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && toks
                .get(i + 2)
                .is_some_and(|n| ITER_METHODS.contains(&n.text.as_str()))
            && toks.get(i + 3).is_some_and(|n| n.is_punct('('))
        {
            let method = &toks[i + 2];
            if !chain_is_order_free(toks, i + 3) {
                findings.push(finding(
                    "LCL-D01",
                    file,
                    f,
                    method,
                    format!(
                        "order-dependent use of `{}.{}()` in fn `{}` — hash \
                         iteration order is randomized; use a sorted or indexed \
                         container, or fold order-independently",
                        t.text, method.text, f.name
                    ),
                ));
            }
            i += 3;
            continue;
        }
        i += 1;
    }
}

/// Whether the tainted name at `i` sits in a `for … in …` header, i.e.
/// is preceded by `in` with only `&`/`mut`/`self`/`.` between.
fn preceded_by_in(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_punct('&') || t.is_punct('.') || t.is_ident("mut") || t.is_ident("self") {
            continue;
        }
        return t.is_ident("in");
    }
    false
}

/// Follows a method chain starting at the `(` of the flagged iteration
/// call; returns true when the chain ends in an order-independent
/// terminal.
fn chain_is_order_free(toks: &[Token], open_idx: usize) -> bool {
    let mut i = skip_balanced(toks, open_idx, '(', ')');
    loop {
        if !toks.get(i).is_some_and(|t| t.is_punct('.')) {
            // Chain ends without a terminal: the iterator escapes (a
            // `for` loop, an argument, a return) — order-dependent.
            return false;
        }
        let Some(m) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            return false;
        };
        if ORDER_FREE.contains(&m.text.as_str()) {
            return true;
        }
        if !PASSTHROUGH.contains(&m.text.as_str()) {
            return false;
        }
        let Some(open) = toks.get(i + 2).filter(|t| t.is_punct('(')) else {
            return false;
        };
        let _ = open;
        i = skip_balanced(toks, i + 2, '(', ')');
    }
}

fn finding(
    rule: &'static str,
    file: &SourceFile,
    f: &FnInfo,
    t: &Token,
    message: String,
) -> Finding {
    Finding {
        rule,
        file: file.rel.clone(),
        line: t.line,
        col: t.col,
        item: f.qual_name.clone(),
        message,
    }
}
