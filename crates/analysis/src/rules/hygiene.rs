//! `LCL-H01`/`H02`: API hygiene of the public-facing crates.
//!
//! `lcl_core`, `lcl_harness`, `lcl_local`, and `lcl_service` are the
//! crates a caller links against (the `lcld` service sits directly on
//! the first three and fronts them over a wire protocol), so their
//! non-test code must fail through typed errors, never
//! through `unwrap`/`expect`/`panic!`. Invariant *assertions*
//! (`assert!`, `debug_assert!`, `unreachable!`) stay allowed: they
//! document impossibilities rather than handle fallible paths.
//!
//! `LCL-H02` marks builder-style methods — `pub fn … -> Self` in an
//! inherent impl — that lack `#[must_use]`: dropping the return value
//! of a builder silently discards the configuration it carries.

use crate::model::FnInfo;
use crate::report::Finding;
use crate::rules::{body, macro_at, method_call_at};
use crate::workspace::SourceFile;

/// Crates under the typed-error contract.
const SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/harness/src/",
    "crates/local/src/",
    "crates/service/src/",
];

/// Panicking macros forbidden in library code.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

fn in_scope(rel: &str) -> bool {
    SCOPE.iter().any(|pre| rel.starts_with(pre))
}

/// Runs both hygiene rules over one file.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !in_scope(&file.rel) {
        return;
    }
    for f in &file.model.fns {
        if f.in_test {
            continue;
        }
        let toks = body(file, f);
        for i in 0..toks.len() {
            if let Some(m) = method_call_at(toks, i) {
                if m.text == "unwrap" || m.text == "expect" {
                    findings.push(finding(
                        "LCL-H01",
                        file,
                        f,
                        m.line,
                        m.col,
                        format!(
                            "`.{}()` in library fn `{}` — return a typed error \
                             instead of panicking",
                            m.text, f.name
                        ),
                    ));
                }
            }
            if let Some(m) = macro_at(toks, i) {
                if PANIC_MACROS.contains(&m.text.as_str()) {
                    findings.push(finding(
                        "LCL-H01",
                        file,
                        f,
                        m.line,
                        m.col,
                        format!(
                            "`{}!` in library fn `{}` — return a typed error \
                             instead of panicking",
                            m.text, f.name
                        ),
                    ));
                }
            }
        }
        if f.is_pub
            && f.returns_self()
            && !f.has_must_use
            && f.impl_ctx
                .as_ref()
                .is_some_and(|ctx| ctx.trait_name.is_none() && !ctx.is_trait_decl)
        {
            findings.push(finding(
                "LCL-H02",
                file,
                f,
                f.line,
                f.col,
                format!(
                    "builder-style `pub fn {}(…) -> Self` lacks `#[must_use]` — \
                     a dropped return value loses the configuration",
                    f.name
                ),
            ));
        }
    }
}

fn finding(
    rule: &'static str,
    file: &SourceFile,
    f: &FnInfo,
    line: u32,
    col: u32,
    message: String,
) -> Finding {
    Finding {
        rule,
        file: file.rel.clone(),
        line,
        col,
        item: f.qual_name.clone(),
        message,
    }
}
