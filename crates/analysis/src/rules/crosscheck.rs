//! `LCL-X01`/`X02`/`X03`: invariant cross-checks between workspace layers.
//!
//! These rules do not inspect single files; they assert that artifacts
//! which must stay in lockstep actually do:
//!
//! - `LCL-X01`: every `Protocol` impl under
//!   `crates/algorithms/src/protocols/` is named by the differential
//!   suite (`crates/harness/tests/engine_differential.rs`) or by the
//!   harness adapters that the suite drives — an unexercised protocol
//!   has no bit-identity guarantee.
//! - `LCL-X02`: every `ProblemSpec` preset's `describe()` string
//!   appears in the plan-schema golden
//!   (`crates/bench/golden/plan_schema.txt`) — a preset missing from
//!   the golden is a preset the classifier gate never sees. The ground
//!   truth comes from `lcl_core` itself, so adding a preset without
//!   regenerating the golden fails `lcl analyze` immediately.
//! - `LCL-X03`: every adversarial topology family has a generator fn in
//!   `crates/graph/src/generators.rs` *and* is named (exact ident) by at
//!   least one churn-suite file — a family outside the churn
//!   differential and classify gates is adversarial in name only.
//! - `LCL-X04`: every `lcld` wire-protocol variant — each request op in
//!   [`lcl_service::protocol::REQUEST_OPS`] and each response kind in
//!   [`lcl_service::protocol::RESPONSE_KINDS`] — is named by the
//!   round-trip suite (`crates/service/tests/protocol_roundtrip.rs`).
//!   The ground truth comes from `lcl_service` itself, so adding a wire
//!   variant without extending the round-trip coverage fails
//!   `lcl analyze` immediately.
//! - `LCL-X05`: every `ShardConfig` knob — each entry of
//!   [`lcl_local::engine::SHARD_KNOBS`] — is named by the shard
//!   differential suite (`crates/harness/tests/shard_differential.rs`).
//!   A knob the suite never sweeps is an execution shape with no
//!   bit-identity guarantee against the monolithic engine.
//!
//! All checks no-op when their subject files are absent (the analyzer
//! fixtures are miniature workspaces without a harness or golden).

use crate::lexer::TokKind;
use crate::report::Finding;
use crate::workspace::SourceFile;
use lcl_core::ProblemSpec;
use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

const PROTOCOLS_DIR: &str = "crates/algorithms/src/protocols/";
const DIFFERENTIAL: &str = "crates/harness/tests/engine_differential.rs";
const ADAPTERS: &str = "crates/harness/src/adapters.rs";
const PLAN_GOLDEN: &str = "crates/bench/golden/plan_schema.txt";
const GENERATORS: &str = "crates/graph/src/generators.rs";
const WIRE_SUITE: &str = "crates/service/tests/protocol_roundtrip.rs";
const SHARD_SUITE: &str = "crates/harness/tests/shard_differential.rs";
/// The files that together form the dynamic-churn gate surface: the
/// harness differential suite, the surgery property tests, and the bench
/// drivers. Naming a family in any one of them counts as coverage.
const CHURN_SUITES: &[&str] = &[
    "crates/harness/tests/churn_differential.rs",
    "crates/graph/tests/surgery_properties.rs",
    "crates/bench/src/churn.rs",
    "crates/bench/src/classify.rs",
];
/// The adversarial topology families, by generator fn name.
const ADVERSARIAL_FAMILIES: &[&str] = &[
    "broom",
    "caterpillar",
    "complete_ary_tree",
    "heavy_path_skewed",
    "ladder",
    "spider",
];

/// Runs the cross-checks over the scanned workspace.
pub fn check(files: &[SourceFile], root: &Path, findings: &mut Vec<Finding>) {
    check_protocol_coverage(files, findings);
    check_preset_coverage(files, root, findings);
    check_adversarial_coverage(files, findings);
    check_wire_coverage(files, findings);
    check_shard_knob_coverage(files, findings);
}

/// `LCL-X05`: every `ShardConfig` knob must be swept by the shard
/// differential suite. The ground truth is
/// [`lcl_local::engine::SHARD_KNOBS`] — the engine's own list of its
/// sharding knobs — so adding a knob to `ShardConfig` without teaching
/// the differential suite to vary it fails `lcl analyze` immediately.
fn check_shard_knob_coverage(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let Some(suite) = files.iter().find(|f| f.rel == SHARD_SUITE) else {
        return;
    };
    let mut named: BTreeSet<String> = BTreeSet::new();
    for t in &suite.toks {
        match t.kind {
            TokKind::Ident => {
                named.insert(t.text.clone());
            }
            // Knobs may be named via string literals (e.g. in a
            // coverage ledger); strip the quotes so they compare
            // exactly, as in the wire-coverage check.
            TokKind::Str => {
                named.insert(t.text.trim_matches('"').to_string());
            }
            _ => {}
        }
    }
    for &knob in lcl_local::engine::SHARD_KNOBS {
        if !named.contains(knob) {
            findings.push(Finding {
                rule: "LCL-X05",
                file: suite.rel.clone(),
                line: 1,
                col: 1,
                item: knob.to_string(),
                message: format!(
                    "`ShardConfig` knob `{knob}` is not named by the shard \
                     differential suite ({SHARD_SUITE}) — the knob has no \
                     bit-identity guarantee against the monolithic engine"
                ),
            });
        }
    }
}

/// `LCL-X04`: every wire-protocol variant must be round-tripped. The
/// suite names each covered variant by its wire tag (a string literal
/// in the coverage ledger); a tag in neither the suite's string
/// literals nor its idents is a variant that can silently drift from
/// the golden schema and from external clients.
fn check_wire_coverage(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let Some(suite) = files.iter().find(|f| f.rel == WIRE_SUITE) else {
        return;
    };
    let mut named: BTreeSet<String> = BTreeSet::new();
    for t in &suite.toks {
        match t.kind {
            TokKind::Ident => {
                named.insert(t.text.clone());
            }
            // String literals carry the wire tags (`"overloaded"`);
            // strip the quotes so tags compare exactly.
            TokKind::Str => {
                named.insert(t.text.trim_matches('"').to_string());
            }
            _ => {}
        }
    }
    let tags = lcl_service::protocol::REQUEST_OPS
        .iter()
        .map(|op| ("request op", *op))
        .chain(
            lcl_service::protocol::RESPONSE_KINDS
                .iter()
                .map(|kind| ("response kind", *kind)),
        );
    for (what, tag) in tags {
        if !named.contains(tag) {
            findings.push(Finding {
                rule: "LCL-X04",
                file: suite.rel.clone(),
                line: 1,
                col: 1,
                item: tag.to_string(),
                message: format!(
                    "wire {what} `{tag}` is not named by the round-trip suite \
                     ({WIRE_SUITE}) — the variant has no serialization \
                     round-trip or golden-schema guarantee"
                ),
            });
        }
    }
}

fn check_protocol_coverage(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let mut exercised: BTreeSet<&str> = BTreeSet::new();
    let mut harness_present = false;
    for file in files {
        if file.rel == DIFFERENTIAL || file.rel == ADAPTERS {
            harness_present = true;
            for t in &file.toks {
                if t.kind == TokKind::Ident {
                    exercised.insert(t.text.as_str());
                }
            }
        }
    }
    if !harness_present {
        return;
    }
    for file in files {
        if !file.rel.starts_with(PROTOCOLS_DIR) {
            continue;
        }
        for f in &file.model.fns {
            if f.in_test || f.name != "step" {
                continue;
            }
            let Some(ctx) = f.impl_ctx.as_ref() else {
                continue;
            };
            if ctx.trait_name.as_deref() != Some("Protocol") {
                continue;
            }
            if !exercised.contains(ctx.type_name.as_str()) {
                findings.push(Finding {
                    rule: "LCL-X01",
                    file: file.rel.clone(),
                    line: f.line,
                    col: f.col,
                    item: ctx.type_name.clone(),
                    message: format!(
                        "`Protocol` impl `{}` is not exercised by the engine \
                         differential suite ({DIFFERENTIAL}) or its adapters — \
                         it has no bit-identity guarantee across chunk sizes \
                         and thread counts",
                        ctx.type_name
                    ),
                });
            }
        }
    }
}

fn check_adversarial_coverage(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let Some(generators) = files.iter().find(|f| f.rel == GENERATORS) else {
        return;
    };
    let mut exercised: BTreeSet<&str> = BTreeSet::new();
    let mut suite_present = false;
    for file in files {
        if CHURN_SUITES.contains(&file.rel.as_str()) {
            suite_present = true;
            for t in &file.toks {
                if t.kind == TokKind::Ident {
                    exercised.insert(t.text.as_str());
                }
            }
        }
    }
    if !suite_present {
        return;
    }
    for &family in ADVERSARIAL_FAMILIES {
        let Some(f) = generators
            .model
            .fns
            .iter()
            .find(|f| f.name == family && !f.in_test)
        else {
            findings.push(Finding {
                rule: "LCL-X03",
                file: generators.rel.clone(),
                line: 1,
                col: 1,
                item: family.to_string(),
                message: format!(
                    "adversarial family `{family}` has no generator fn in \
                     {GENERATORS} — the churn and classify suites treat it as \
                     a first-class topology"
                ),
            });
            continue;
        };
        if !exercised.contains(family) {
            findings.push(Finding {
                rule: "LCL-X03",
                file: generators.rel.clone(),
                line: f.line,
                col: f.col,
                item: family.to_string(),
                message: format!(
                    "adversarial generator `{family}` is not named by any \
                     churn-suite file ({}) — the family is outside the \
                     dynamic-churn differential and classify gates",
                    CHURN_SUITES.join(", ")
                ),
            });
        }
    }
}

fn check_preset_coverage(files: &[SourceFile], root: &Path, findings: &mut Vec<Finding>) {
    // Only meaningful when analyzing the real workspace: the preset
    // registry file must be among the scanned sources and the golden on
    // disk.
    if !files
        .iter()
        .any(|f| f.rel == "crates/core/src/problem_spec.rs")
    {
        return;
    }
    let Ok(golden) = fs::read_to_string(root.join(PLAN_GOLDEN)) else {
        return;
    };
    for (name, spec) in ProblemSpec::presets() {
        let needle = format!("problem={}", spec.describe());
        if !golden.contains(&needle) {
            findings.push(Finding {
                rule: "LCL-X02",
                file: PLAN_GOLDEN.to_string(),
                line: 1,
                col: 1,
                item: name.to_string(),
                message: format!(
                    "preset `{name}` (`{needle}`) is missing from the \
                     plan-schema golden — regenerate it by piping \
                     `lcl solve <preset> | grep '^PLAN '` for every preset \
                     into {PLAN_GOLDEN} (see the CI golden-diff step) so \
                     the classifier gate covers the preset"
                ),
            });
        }
    }
}
