//! `LCL-A04`: purity of the sharded executor's per-round shard pass.
//!
//! The out-of-core contract (ARCHITECTURE.md, sharded execution) says
//! all allocation and I/O happen at run start — halo buffers, packed
//! arenas, and the spill pool are set up before round 0, and residency
//! changes (spill/reload) happen only at the round barrier on the main
//! thread. The per-round shard pass itself (`shard_pass`, which executes
//! every due node of one resident shard, and `capture_halos`, which
//! mirrors boundary slots into other shards' halo buffers) must neither
//! allocate nor touch the filesystem: any allocating call/constructor/
//! macro or file-I/O call inside those functions is a finding.

use crate::model::FnInfo;
use crate::report::Finding;
use crate::rules::{body, macro_at, method_call_at, path_call_at};
use crate::workspace::SourceFile;

const RUNNER_FILE: &str = "crates/shard/src/runner.rs";

/// The per-round functions of the sharded executor.
const SHARD_HOT_FNS: &[&str] = &["shard_pass", "capture_halos"];

/// Methods that allocate (or can reallocate) on their receiver — the
/// same surface the engine hot-path rule polices.
const ALLOC_METHODS: &[&str] = &[
    "push",
    "collect",
    "to_vec",
    "to_owned",
    "to_string",
    "clone",
    "insert",
    "reserve",
    "extend_from_slice",
    "append",
];

/// `Type::constructor` pairs that allocate.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("HashMap", "new"),
    ("BTreeMap", "new"),
    ("VecDeque", "new"),
    ("Rc", "new"),
    ("Arc", "new"),
];

/// Macros that allocate or format on every expansion.
const ALLOC_MACROS: &[&str] = &["vec", "format", "println", "eprintln", "print", "eprint"];

/// File/stream methods: a shard pass reading or writing spill storage
/// mid-round would serialize the pass on disk latency and break the
/// "residency changes only at the barrier" invariant.
const IO_METHODS: &[&str] = &[
    "read",
    "read_exact",
    "read_to_end",
    "write",
    "write_all",
    "seek",
    "flush",
    "sync_all",
    "set_len",
];

/// `Type::constructor` pairs that open file handles.
const IO_PATHS: &[(&str, &str)] = &[
    ("File", "open"),
    ("File", "create"),
    ("File", "create_new"),
    ("OpenOptions", "new"),
];

/// Runs the shard-pass purity rule over one file.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.rel != RUNNER_FILE {
        return;
    }
    for f in &file.model.fns {
        if f.in_test || !SHARD_HOT_FNS.contains(&f.name.as_str()) {
            continue;
        }
        let toks = body(file, f);
        for i in 0..toks.len() {
            if let Some(m) = method_call_at(toks, i) {
                if ALLOC_METHODS.contains(&m.text.as_str()) {
                    findings.push(finding(
                        file,
                        f,
                        m.line,
                        m.col,
                        format!(
                            "allocating call `.{}(…)` in shard-pass fn `{}` — \
                             halo buffers and scratch space are preallocated \
                             at run start",
                            m.text, f.name
                        ),
                    ));
                }
                if IO_METHODS.contains(&m.text.as_str()) {
                    findings.push(finding(
                        file,
                        f,
                        m.line,
                        m.col,
                        format!(
                            "I/O call `.{}(…)` in shard-pass fn `{}` — spill \
                             traffic belongs to the round barrier, never to \
                             the pass itself",
                            m.text, f.name
                        ),
                    ));
                }
            }
            if let Some((first, second)) = path_call_at(toks, i) {
                if ALLOC_PATHS
                    .iter()
                    .any(|(a, b)| first.is_ident(a) && second.is_ident(b))
                {
                    findings.push(finding(
                        file,
                        f,
                        first.line,
                        first.col,
                        format!(
                            "allocating constructor `{}::{}(…)` in shard-pass fn `{}`",
                            first.text, second.text, f.name
                        ),
                    ));
                }
                if IO_PATHS
                    .iter()
                    .any(|(a, b)| first.is_ident(a) && second.is_ident(b))
                {
                    findings.push(finding(
                        file,
                        f,
                        first.line,
                        first.col,
                        format!(
                            "file handle `{}::{}(…)` opened in shard-pass fn `{}` — \
                             the spill pool is created at run start",
                            first.text, second.text, f.name
                        ),
                    ));
                }
            }
            if let Some(m) = macro_at(toks, i) {
                if ALLOC_MACROS.contains(&m.text.as_str()) {
                    findings.push(finding(
                        file,
                        f,
                        m.line,
                        m.col,
                        format!(
                            "allocating macro `{}!` in shard-pass fn `{}`",
                            m.text, f.name
                        ),
                    ));
                }
            }
        }
    }
}

fn finding(file: &SourceFile, f: &FnInfo, line: u32, col: u32, message: String) -> Finding {
    Finding {
        rule: "LCL-A04",
        file: file.rel.clone(),
        line,
        col,
        item: f.qual_name.clone(),
        message,
    }
}
