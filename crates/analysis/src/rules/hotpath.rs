//! `LCL-A01`/`A02`/`A03`: purity of the engine's per-round hot path.
//!
//! The engine's performance contract (ARCHITECTURE.md, invariant 1)
//! says steady-state rounds allocate nothing: arenas are preallocated,
//! messages move by index, and a protocol `step` runs millions of times
//! per instance. These rules make the contract lexical: inside the
//! designated hot functions, any allocating call, lock, or `unsafe`
//! block is a finding.
//!
//! Hot functions are: the per-round/per-chunk core of
//! `crates/local/src/engine.rs` (`step_region`, `mail_waiting`, and all
//! methods of the `Inbox`/`InboxIter`/`Outbox` message views) and every
//! method of a `Protocol` impl under `crates/algorithms/src/protocols/`.

use crate::model::FnInfo;
use crate::report::Finding;
use crate::rules::{body, macro_at, method_call_at, path_call_at};
use crate::workspace::SourceFile;

const ENGINE_FILE: &str = "crates/local/src/engine.rs";
const PROTOCOLS_DIR: &str = "crates/algorithms/src/protocols/";

/// Engine functions that run per round or per chunk.
const ENGINE_HOT_FNS: &[&str] = &["step_region", "mail_waiting"];

/// Engine types whose methods sit on the message path of every step.
const ENGINE_HOT_TYPES: &[&str] = &["Inbox", "InboxIter", "Outbox"];

/// Methods that allocate (or can reallocate) on their receiver.
const ALLOC_METHODS: &[&str] = &[
    "push",
    "collect",
    "to_vec",
    "to_owned",
    "to_string",
    "clone",
    "insert",
    "reserve",
    "extend_from_slice",
    "append",
];

/// `Type::constructor` pairs that allocate.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("HashMap", "new"),
    ("HashMap", "with_capacity"),
    ("HashSet", "new"),
    ("HashSet", "with_capacity"),
    ("BTreeMap", "new"),
    ("BTreeSet", "new"),
    ("VecDeque", "new"),
    ("VecDeque", "with_capacity"),
    ("Rc", "new"),
    ("Arc", "new"),
];

/// Macros that allocate or format on every expansion.
const ALLOC_MACROS: &[&str] = &["vec", "format", "println", "eprintln", "print", "eprint"];

/// Identifiers of blocking synchronization primitives.
const LOCK_TYPES: &[&str] = &["Mutex", "RwLock", "Condvar", "Barrier", "mpsc"];

/// Whether `f` in `file` is part of the designated hot path.
#[must_use]
pub fn is_hot(file: &SourceFile, f: &FnInfo) -> bool {
    if f.in_test {
        return false;
    }
    if file.rel == ENGINE_FILE {
        let hot_free = ENGINE_HOT_FNS.contains(&f.name.as_str());
        let hot_impl = f
            .impl_ctx
            .as_ref()
            .is_some_and(|ctx| ENGINE_HOT_TYPES.contains(&ctx.type_name.as_str()));
        return hot_free || hot_impl;
    }
    file.rel.starts_with(PROTOCOLS_DIR)
        && f.impl_ctx
            .as_ref()
            .is_some_and(|ctx| ctx.trait_name.as_deref() == Some("Protocol"))
}

/// Runs the three hot-path rules over one file.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.rel != ENGINE_FILE && !file.rel.starts_with(PROTOCOLS_DIR) {
        return;
    }
    for f in &file.model.fns {
        if !is_hot(file, f) {
            continue;
        }
        let toks = body(file, f);
        for i in 0..toks.len() {
            if let Some(m) = method_call_at(toks, i) {
                if ALLOC_METHODS.contains(&m.text.as_str()) {
                    findings.push(finding(
                        "LCL-A01",
                        file,
                        f,
                        m.line,
                        m.col,
                        format!(
                            "allocating call `.{}(…)` in hot-path fn `{}` — \
                             hot rounds must reuse preallocated buffers",
                            m.text, f.name
                        ),
                    ));
                }
                if m.text == "lock" {
                    findings.push(finding(
                        "LCL-A02",
                        file,
                        f,
                        m.line,
                        m.col,
                        format!(
                            "lock acquisition `.lock(…)` in hot-path fn `{}` — \
                             chunk ownership must make locks unnecessary",
                            f.name
                        ),
                    ));
                }
            }
            if let Some((first, second)) = path_call_at(toks, i) {
                if ALLOC_PATHS
                    .iter()
                    .any(|(a, b)| first.is_ident(a) && second.is_ident(b))
                {
                    findings.push(finding(
                        "LCL-A01",
                        file,
                        f,
                        first.line,
                        first.col,
                        format!(
                            "allocating constructor `{}::{}(…)` in hot-path fn `{}`",
                            first.text, second.text, f.name
                        ),
                    ));
                }
            }
            if let Some(m) = macro_at(toks, i) {
                if ALLOC_MACROS.contains(&m.text.as_str()) {
                    findings.push(finding(
                        "LCL-A01",
                        file,
                        f,
                        m.line,
                        m.col,
                        format!("allocating macro `{}!` in hot-path fn `{}`", m.text, f.name),
                    ));
                }
            }
            let t = &toks[i];
            if t.kind == crate::lexer::TokKind::Ident && LOCK_TYPES.contains(&t.text.as_str()) {
                findings.push(finding(
                    "LCL-A02",
                    file,
                    f,
                    t.line,
                    t.col,
                    format!(
                        "synchronization primitive `{}` in hot-path fn `{}`",
                        t.text, f.name
                    ),
                ));
            }
            if t.is_ident("unsafe") {
                findings.push(finding(
                    "LCL-A03",
                    file,
                    f,
                    t.line,
                    t.col,
                    format!("`unsafe` block in hot-path fn `{}`", f.name),
                ));
            }
        }
    }
}

fn finding(
    rule: &'static str,
    file: &SourceFile,
    f: &FnInfo,
    line: u32,
    col: u32,
    message: String,
) -> Finding {
    Finding {
        rule,
        file: file.rel.clone(),
        line,
        col,
        item: f.qual_name.clone(),
        message,
    }
}
