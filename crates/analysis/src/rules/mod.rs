//! The rule set: each rule encodes one clause of the engine contract.
//!
//! | Rule id | Enforces |
//! |---|---|
//! | `LCL-A01` | no allocation in hot-path functions |
//! | `LCL-A02` | no locks or channels in hot-path functions |
//! | `LCL-A03` | no `unsafe` in hot-path functions |
//! | `LCL-A04` | no allocation or file I/O in the per-round shard pass |
//! | `LCL-D01` | no order-dependent `HashMap`/`HashSet` iteration in library code |
//! | `LCL-D02` | no wall-clock (`Instant`/`SystemTime`) values in library code |
//! | `LCL-D03` | no thread-identity-dependent logic in library code |
//! | `LCL-H01` | no `unwrap`/`expect`/`panic!` in library code of the API crates |
//! | `LCL-H02` | `#[must_use]` on builder-style returns |
//! | `LCL-X01` | every `Protocol` impl is exercised by the differential suite |
//! | `LCL-X02` | every `ProblemSpec` preset appears in the plan-schema golden |
//! | `LCL-X03` | every adversarial generator is named by the churn/classify suites |
//! | `LCL-X04` | every `lcld` wire-protocol variant is round-tripped by the protocol suite |
//! | `LCL-X05` | every `ShardConfig` knob is swept by the shard differential suite |
//!
//! The *dynamic* half of the hot-path contract — that every arena slot
//! is written at most once per round, only by its owning chunk — cannot
//! be a lexical rule; it is enforced by the engine's arena
//! write-discipline checker (`EngineConfig::check_arena` /
//! the `arena-check` feature of `lcl_local`).

pub mod crosscheck;
pub mod determinism;
pub mod hotpath;
pub mod hygiene;
pub mod shardpath;

use crate::lexer::{TokKind, Token};
use crate::model::FnInfo;
use crate::report::Finding;
use crate::workspace::SourceFile;
use std::path::Path;

/// Rule ids with one-line descriptions, for `lcl analyze --rules`.
pub const RULES: &[(&str, &str)] = &[
    (
        "LCL-A01",
        "hot-path purity: no allocating calls in per-round/per-chunk code",
    ),
    (
        "LCL-A02",
        "hot-path purity: no locks, channels, or blocking primitives",
    ),
    ("LCL-A03", "hot-path purity: no unsafe blocks"),
    (
        "LCL-A04",
        "shard-pass purity: no allocation or file I/O inside the per-round shard pass",
    ),
    (
        "LCL-D01",
        "determinism: no order-dependent HashMap/HashSet iteration",
    ),
    (
        "LCL-D02",
        "determinism: no Instant/SystemTime-derived values in library code",
    ),
    ("LCL-D03", "determinism: no thread-identity-dependent logic"),
    (
        "LCL-H01",
        "API hygiene: no unwrap/expect/panic! in library code (typed errors only)",
    ),
    (
        "LCL-H02",
        "API hygiene: #[must_use] on builder-style returns",
    ),
    (
        "LCL-X01",
        "cross-check: every Protocol impl runs in the differential suite",
    ),
    (
        "LCL-X02",
        "cross-check: every problem preset appears in the plan-schema golden",
    ),
    (
        "LCL-X03",
        "cross-check: every adversarial generator is named by the churn/classify suites",
    ),
    (
        "LCL-X04",
        "cross-check: every lcld wire-protocol variant is round-tripped by the protocol suite",
    ),
    (
        "LCL-X05",
        "cross-check: every ShardConfig knob is swept by the shard differential suite",
    ),
];

/// Runs every rule over the scanned workspace. `root` is used by the
/// cross-checks that consult non-Rust artifacts (the plan golden).
#[must_use]
pub fn run_all(files: &[SourceFile], root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        hotpath::check(file, &mut findings);
        shardpath::check(file, &mut findings);
        determinism::check(file, &mut findings);
        hygiene::check(file, &mut findings);
    }
    crosscheck::check(files, root, &mut findings);
    findings
}

/// The body token slice of a function, or an empty slice when bodyless.
#[must_use]
pub fn body<'a>(file: &'a SourceFile, f: &FnInfo) -> &'a [Token] {
    match f.body {
        Some((start, end)) => file.toks.get(start..end).unwrap_or(&[]),
        None => &[],
    }
}

/// Matches a method call `.name(` at `i` (the `.` token) and returns
/// the method-name token.
#[must_use]
pub fn method_call_at(toks: &[Token], i: usize) -> Option<&Token> {
    if !toks.get(i)?.is_punct('.') {
        return None;
    }
    let name = toks.get(i + 1)?;
    if name.kind != TokKind::Ident || !toks.get(i + 2)?.is_punct('(') {
        return None;
    }
    Some(name)
}

/// Matches a path call `First::second(` at `i` and returns the two
/// path-segment tokens.
#[must_use]
pub fn path_call_at(toks: &[Token], i: usize) -> Option<(&Token, &Token)> {
    let first = toks.get(i)?;
    if first.kind != TokKind::Ident
        || !toks.get(i + 1)?.is_punct(':')
        || !toks.get(i + 2)?.is_punct(':')
    {
        return None;
    }
    let second = toks.get(i + 3)?;
    if second.kind != TokKind::Ident || !toks.get(i + 4)?.is_punct('(') {
        return None;
    }
    Some((first, second))
}

/// Matches a macro invocation `name!` at `i` and returns the name token.
#[must_use]
pub fn macro_at(toks: &[Token], i: usize) -> Option<&Token> {
    let name = toks.get(i)?;
    if name.kind == TokKind::Ident && toks.get(i + 1)?.is_punct('!') {
        Some(name)
    } else {
        None
    }
}

/// The index just past a balanced group opened at `open_idx` (which
/// must hold the opening delimiter), or `toks.len()` at EOF.
#[must_use]
pub fn skip_balanced(toks: &[Token], open_idx: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    let mut i = open_idx;
    while let Some(t) = toks.get(i) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}
