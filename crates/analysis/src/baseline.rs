//! The per-rule allow-baseline.
//!
//! A baseline entry suppresses one known, justified finding so the
//! workspace gate can stay `--strict` without the rules losing their
//! teeth. Entries are keyed by `(rule, file, item)` — deliberately *not*
//! by line number, so routine edits above a blessed site do not churn
//! the baseline file.
//!
//! File format, one entry per line:
//!
//! ```text
//! LCL-A01 crates/local/src/engine.rs Outbox::broadcast  # clone of a Copy-like message
//! ```
//!
//! Blank lines and `#`-comment lines are ignored. The part after `#` on
//! an entry line is the justification, which is required.

use serde::Serialize;

/// One parsed baseline entry.
#[derive(Debug, Clone, Serialize)]
pub struct BaselineEntry {
    /// The rule id the entry suppresses (`LCL-A01`).
    pub rule: String,
    /// Workspace-relative file path with forward slashes.
    pub file: String,
    /// The qualified item path the finding anchors to (`Outbox::broadcast`).
    pub item: String,
    /// The justification comment.
    pub reason: String,
    /// 1-based line of the entry in the baseline file.
    pub line: u32,
}

/// A parsed baseline with per-entry use tracking.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: Vec<BaselineEntry>,
    used: Vec<bool>,
}

impl Baseline {
    /// The empty baseline: nothing is suppressed.
    #[must_use]
    pub fn empty() -> Self {
        Baseline::default()
    }

    /// Parses the baseline file format. Malformed lines are errors —
    /// a baseline that silently drops entries would un-suppress
    /// findings on a typo, or worse, hide that it no longer applies.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = u32::try_from(idx + 1).unwrap_or(u32::MAX);
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (entry, reason) = match line.split_once('#') {
                Some((e, r)) => (e.trim(), r.trim()),
                None => {
                    return Err(format!(
                        "baseline line {line_no}: missing `# justification` comment"
                    ))
                }
            };
            let fields: Vec<&str> = entry.split_whitespace().collect();
            let [rule, file, item] = fields[..] else {
                return Err(format!(
                    "baseline line {line_no}: expected `rule file item  # reason`, \
                     got {} fields",
                    fields.len()
                ));
            };
            if reason.is_empty() {
                return Err(format!("baseline line {line_no}: empty justification"));
            }
            entries.push(BaselineEntry {
                rule: rule.to_string(),
                file: file.to_string(),
                item: item.to_string(),
                reason: reason.to_string(),
                line: line_no,
            });
        }
        let used = vec![false; entries.len()];
        Ok(Baseline { entries, used })
    }

    /// Looks up the entry suppressing `(rule, file, item)`, marking it
    /// used. One entry may suppress several findings on the same item.
    pub fn suppress(&mut self, rule: &str, file: &str, item: &str) -> Option<&BaselineEntry> {
        let idx = self
            .entries
            .iter()
            .position(|e| e.rule == rule && e.file == file && e.item == item)?;
        self.used[idx] = true;
        Some(&self.entries[idx])
    }

    /// Entries that suppressed nothing this run — stale ballast that
    /// should be deleted from the baseline file.
    #[must_use]
    pub fn stale(&self) -> Vec<BaselineEntry> {
        self.entries
            .iter()
            .zip(&self.used)
            .filter(|(_, used)| !**used)
            .map(|(e, _)| e.clone())
            .collect()
    }

    /// Number of entries in the baseline.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_tracks_use() {
        let text = "\
# header comment

LCL-A01 crates/local/src/engine.rs Outbox::broadcast  # msg clone is Copy-like
LCL-D02 crates/harness/src/algorithm.rs run_timed  # timing metadata only
";
        let mut b = Baseline::parse(text).expect("parses");
        assert_eq!(b.len(), 2);
        let hit = b
            .suppress("LCL-A01", "crates/local/src/engine.rs", "Outbox::broadcast")
            .expect("matches");
        assert_eq!(hit.reason, "msg clone is Copy-like");
        assert!(b
            .suppress("LCL-A01", "crates/local/src/engine.rs", "other")
            .is_none());
        let stale = b.stale();
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].rule, "LCL-D02");
    }

    #[test]
    fn rejects_entries_without_justification() {
        assert!(Baseline::parse("LCL-A01 f.rs item\n").is_err());
        assert!(Baseline::parse("LCL-A01 f.rs item  #   \n").is_err());
        assert!(Baseline::parse("LCL-A01 f.rs  # too few fields\n").is_err());
    }
}
