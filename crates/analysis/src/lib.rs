//! In-house static analysis for the LCL workspace: `lcl analyze`.
//!
//! The chunked engine's trustworthiness rests on invariants the
//! compiler cannot see — hot rounds allocate nothing, results never
//! depend on hash order, wall clocks, or thread identity, the API
//! crates fail through typed errors, and the differential/golden
//! artifacts stay in lockstep with the code. This crate turns those
//! prose invariants (ARCHITECTURE.md) into machine-checked rules over
//! the workspace's own sources: a span-accurate tokenizer
//! ([`lexer`]), a lightweight item-structure pass ([`model`]), a rule
//! set ([`rules`]), a per-rule allow-baseline ([`baseline`]), and
//! human/JSON reporting ([`report`]).
//!
//! The analyzer is deliberately dependency-free (the container has no
//! crates.io): the tokenizer is hand-written in the same spirit as the
//! vendored `serde_derive`'s token-stream parsing, and every rule works
//! on token slices rather than an AST. It is a linter, not a compiler:
//! resilient to code it half-understands, precise on the patterns the
//! rules name.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod model;
pub mod report;
pub mod rules;
pub mod workspace;

use baseline::Baseline;
use report::{sort_findings, Suppressed};
pub use report::{AnalysisReport, Finding};
use std::fmt;
use std::io;
use std::path::PathBuf;

/// What to analyze and against which baseline.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Workspace root to scan.
    pub root: PathBuf,
    /// Baseline file to load; `None` runs with the empty baseline.
    /// A missing file at this path is an error — a strict gate must
    /// not silently degrade to "suppress nothing".
    pub baseline: Option<PathBuf>,
}

/// Analysis failed before producing a report.
#[derive(Debug)]
pub enum AnalysisError {
    /// Reading sources or the baseline file failed.
    Io {
        /// What was being read.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// The baseline file is malformed.
    Baseline(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Io { context, source } => {
                write!(f, "analysis i/o error ({context}): {source}")
            }
            AnalysisError::Baseline(msg) => write!(f, "bad baseline: {msg}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Scans the workspace, runs every rule, and applies the baseline.
pub fn analyze(config: &AnalysisConfig) -> Result<AnalysisReport, AnalysisError> {
    let mut base = match &config.baseline {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|source| AnalysisError::Io {
                context: format!("baseline {}", path.display()),
                source,
            })?;
            Baseline::parse(&text).map_err(AnalysisError::Baseline)?
        }
        None => Baseline::empty(),
    };
    let files = workspace::scan(&config.root).map_err(|source| AnalysisError::Io {
        context: format!("scanning {}", config.root.display()),
        source,
    })?;
    let mut raw = rules::run_all(&files, &config.root);
    sort_findings(&mut raw);
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    for finding in raw {
        match base.suppress(finding.rule, &finding.file, &finding.item) {
            Some(entry) => suppressed.push(Suppressed {
                finding,
                reason: entry.reason.clone(),
            }),
            None => findings.push(finding),
        }
    }
    Ok(AnalysisReport {
        findings,
        suppressed,
        stale_baseline: base.stale(),
        files_scanned: files.len(),
        baseline_entries: base.len(),
    })
}
