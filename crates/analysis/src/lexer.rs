//! A span-accurate Rust tokenizer.
//!
//! The analyzer never needs a full parse — every rule works on token
//! streams — but it does need *correct* tokens: braces inside string
//! literals must not look like block structure, `'a` must not swallow a
//! character literal, and `0..n` must not lex as a float. The lexer
//! therefore handles the full literal grammar the workspace uses: raw
//! and byte strings with arbitrary `#` fences, nested block comments,
//! lifetimes versus character literals, and numeric literals with
//! suffixes, underscores, and exponents.

/// The coarse class of a token. Rules match on kind plus text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `Vec`, `r#type`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`), without the quote.
    Lifetime,
    /// A string literal of any flavor, quotes included in the text.
    Str,
    /// A character or byte literal, quotes included in the text.
    Char,
    /// A numeric literal, suffix included.
    Num,
    /// A single punctuation character (`.`, `::` is two tokens).
    Punct,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token class.
    pub kind: TokKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

impl Token {
    /// Whether this token is the identifier `text`.
    #[must_use]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// Whether this token is the punctuation character `ch`.
    #[must_use]
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Tokenizes `src`, silently skipping whitespace and comments.
///
/// The lexer is total: malformed input (an unterminated string, say)
/// produces a best-effort token stream rather than an error, because a
/// linter must keep going on sources it half-understands.
#[must_use]
pub fn tokenize(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut toks = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek_at(1) == Some('/') {
            while let Some(n) = cur.peek() {
                if n == '\n' {
                    break;
                }
                cur.bump();
            }
            continue;
        }
        if c == '/' && cur.peek_at(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(), cur.peek_at(1)) {
                    (Some('/'), Some('*')) => {
                        cur.bump();
                        cur.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        cur.bump();
                        cur.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            continue;
        }
        if let Some(tok) = lex_string_like(&mut cur, line, col) {
            toks.push(tok);
            continue;
        }
        if is_ident_start(c) {
            let mut text = String::new();
            // Raw identifiers: `r#type` lexes as the ident `type`.
            if c == 'r' && cur.peek_at(1) == Some('#') && cur.peek_at(2).is_some_and(is_ident_start)
            {
                cur.bump();
                cur.bump();
            }
            while let Some(n) = cur.peek() {
                if is_ident_continue(n) {
                    text.push(n);
                    cur.bump();
                } else {
                    break;
                }
            }
            toks.push(Token {
                kind: TokKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }
        if c.is_ascii_digit() {
            toks.push(lex_number(&mut cur, line, col));
            continue;
        }
        if c == '\'' {
            toks.push(lex_quote(&mut cur, line, col));
            continue;
        }
        cur.bump();
        toks.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }
    toks
}

/// Lexes string literals in all their flavors (`"…"`, `r"…"`, `r#"…"#`,
/// `b"…"`, `br#"…"#`), or returns `None` if the cursor is not at one.
fn lex_string_like(cur: &mut Cursor, line: u32, col: u32) -> Option<Token> {
    let c = cur.peek()?;
    let (prefix_len, raw) = match c {
        '"' => (0, false),
        'r' | 'b' | 'c' => {
            // Scan past `r`, `b`, `br`, `cr` toward `"` or `#…"`.
            let mut ahead = 1;
            if (c == 'b' || c == 'c') && cur.peek_at(ahead) == Some('r') {
                ahead += 1;
            }
            let raw = c == 'r' || cur.peek_at(1) == Some('r');
            let mut fences = ahead;
            while raw && cur.peek_at(fences) == Some('#') {
                fences += 1;
            }
            if cur.peek_at(fences) != Some('"') {
                return None;
            }
            if !raw && cur.peek_at(ahead) != Some('"') {
                return None;
            }
            (ahead, raw)
        }
        _ => return None,
    };
    let mut text = String::new();
    for _ in 0..prefix_len {
        text.push(cur.bump()?);
    }
    let mut fences = 0usize;
    while raw && cur.peek() == Some('#') {
        text.push(cur.bump()?);
        fences += 1;
    }
    debug_assert_eq!(cur.peek(), Some('"'));
    text.push(cur.bump()?);
    loop {
        match cur.peek() {
            None => break,
            Some('\\') if !raw => {
                text.push(cur.bump().unwrap_or('\\'));
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            Some('"') => {
                text.push(cur.bump()?);
                if !raw {
                    break;
                }
                let mut closed = 0usize;
                while closed < fences && cur.peek() == Some('#') {
                    text.push(cur.bump()?);
                    closed += 1;
                }
                if closed == fences {
                    break;
                }
            }
            Some(_) => {
                text.push(cur.bump()?);
            }
        }
    }
    Some(Token {
        kind: TokKind::Str,
        text,
        line,
        col,
    })
}

/// Lexes a numeric literal: integers, floats, underscores, radix
/// prefixes, exponents, and type suffixes. `0..n` stays two tokens —
/// a trailing `.` is consumed only when a digit follows.
fn lex_number(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            text.push(c);
            cur.bump();
            // `1e-3` / `2E+10`: a sign directly after the exponent
            // marker belongs to the literal (decimal floats only).
            if (c == 'e' || c == 'E')
                && !text.starts_with("0x")
                && !text.starts_with("0b")
                && !text.starts_with("0o")
                && matches!(cur.peek(), Some('+' | '-'))
                && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit())
            {
                text.push(cur.bump().unwrap_or('+'));
            }
        } else if c == '.'
            && !text.contains('.')
            && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit())
        {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    Token {
        kind: TokKind::Num,
        text,
        line,
        col,
    }
}

/// Disambiguates `'a` (lifetime) from `'a'` (char literal) and lexes
/// whichever the source holds.
fn lex_quote(cur: &mut Cursor, line: u32, col: u32) -> Token {
    debug_assert_eq!(cur.peek(), Some('\''));
    let next = cur.peek_at(1);
    let lifetime = next.is_some_and(is_ident_start) && cur.peek_at(2) != Some('\'');
    if lifetime {
        cur.bump();
        let mut text = String::new();
        while let Some(c) = cur.peek() {
            if is_ident_continue(c) {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        return Token {
            kind: TokKind::Lifetime,
            text,
            line,
            col,
        };
    }
    let mut text = String::new();
    text.push(cur.bump().unwrap_or('\''));
    loop {
        match cur.peek() {
            None | Some('\n') => break,
            Some('\\') => {
                text.push(cur.bump().unwrap_or('\\'));
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            Some('\'') => {
                text.push(cur.bump().unwrap_or('\''));
                break;
            }
            Some(c) => {
                text.push(c);
                cur.bump();
            }
        }
    }
    Token {
        kind: TokKind::Char,
        text,
        line,
        col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_hide_braces_and_comments() {
        let toks = kinds(r#"let s = "{ /* not a comment */ }";"#);
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "let".into()),
                (TokKind::Ident, "s".into()),
                (TokKind::Punct, "=".into()),
                (TokKind::Str, r#""{ /* not a comment */ }""#.into()),
                (TokKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn raw_strings_respect_fences() {
        let toks = kinds(r###"r#"a "quoted" b"# x"###);
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[0].1, r###"r#"a "quoted" b"#"###);
        assert_eq!(toks[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn lifetimes_and_chars_disambiguate() {
        let toks = kinds("&'a str; 'x'; '\\n'; 'outer: loop");
        assert!(toks.contains(&(TokKind::Lifetime, "a".into())));
        assert!(toks.contains(&(TokKind::Char, "'x'".into())));
        assert!(toks.contains(&(TokKind::Char, "'\\n'".into())));
        assert!(toks.contains(&(TokKind::Lifetime, "outer".into())));
    }

    #[test]
    fn ranges_do_not_become_floats() {
        let toks = kinds("0..n 1.5 2.0e-3 0xFF_u32 7.max(3)");
        assert_eq!(toks[0], (TokKind::Num, "0".into()));
        assert_eq!(toks[1], (TokKind::Punct, ".".into()));
        assert_eq!(toks[2], (TokKind::Punct, ".".into()));
        assert_eq!(toks[3], (TokKind::Ident, "n".into()));
        assert_eq!(toks[4], (TokKind::Num, "1.5".into()));
        assert_eq!(toks[5], (TokKind::Num, "2.0e-3".into()));
        assert_eq!(toks[6], (TokKind::Num, "0xFF_u32".into()));
        assert_eq!(toks[7], (TokKind::Num, "7".into()));
        assert_eq!(toks[8], (TokKind::Punct, ".".into()));
        assert_eq!(toks[9], (TokKind::Ident, "max".into()));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(
            toks,
            vec![(TokKind::Ident, "a".into()), (TokKind::Ident, "b".into()),]
        );
    }

    #[test]
    fn spans_are_one_based_lines_and_cols() {
        let toks = tokenize("fn f() {\n    x.unwrap();\n}");
        let unwrap = toks.iter().find(|t| t.is_ident("unwrap")).expect("unwrap");
        assert_eq!((unwrap.line, unwrap.col), (2, 7));
    }

    #[test]
    fn raw_identifiers_lex_as_plain_idents() {
        let toks = kinds("r#type r#fn normal");
        assert_eq!(toks[0], (TokKind::Ident, "type".into()));
        assert_eq!(toks[1], (TokKind::Ident, "fn".into()));
        assert_eq!(toks[2], (TokKind::Ident, "normal".into()));
    }
}
