//! Unique identifier assignments for LOCAL-model executions.
//!
//! In the LOCAL model every node carries a unique identifier from a
//! polynomial ID space `{1, ..., n^c}`. Lower bounds quantify over ID
//! assignments, so the harness supports sequential, seeded-random, and
//! explicit assignments.

use lcl_graph::NodeId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A unique-ID assignment for `n` nodes.
///
/// # Examples
///
/// ```
/// use lcl_local::identifiers::Ids;
/// let ids = Ids::sequential(4);
/// assert_eq!(ids.id(2), 2);
/// let r = Ids::random(4, 99);
/// assert_ne!(r.as_slice(), ids.as_slice());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ids {
    values: Vec<u64>,
}

impl Ids {
    /// IDs `0, 1, ..., n - 1` in node order.
    #[must_use]
    pub fn sequential(n: usize) -> Self {
        Ids {
            values: (0..n as u64).collect(),
        }
    }

    /// A random permutation of `{0, ..., n - 1}`, seeded deterministically.
    #[must_use]
    pub fn random(n: usize, seed: u64) -> Self {
        let mut values: Vec<u64> = (0..n as u64).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        values.shuffle(&mut rng);
        Ids { values }
    }

    /// `n` distinct random IDs drawn from `{0, ..., space - 1}`, emulating a
    /// polynomial ID space (`space ≈ n^c`).
    ///
    /// # Panics
    ///
    /// Panics if `space < n as u64`.
    #[must_use]
    pub fn random_from_space(n: usize, space: u64, seed: u64) -> Self {
        assert!(space >= n as u64, "ID space must have at least n values");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut chosen = std::collections::HashSet::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        while values.len() < n {
            let candidate = rng.gen_range(0..space);
            if chosen.insert(candidate) {
                values.push(candidate);
            }
        }
        Ids { values }
    }

    /// Wraps an explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if the values are not pairwise distinct.
    #[must_use]
    pub fn from_vec(values: Vec<u64>) -> Self {
        let mut sorted = values.clone();
        sorted.sort_unstable();
        assert!(
            sorted.windows(2).all(|w| w[0] != w[1]),
            "IDs must be unique"
        );
        Ids { values }
    }

    /// The ID of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn id(&self, v: NodeId) -> u64 {
        self.values[v]
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for the empty assignment.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All IDs, indexed by node.
    pub fn as_slice(&self) -> &[u64] {
        &self.values
    }

    /// Number of bits needed to write the largest ID (at least 1).
    pub fn bit_length(&self) -> u32 {
        self.values
            .iter()
            .copied()
            .max()
            .map_or(1, |m| (64 - m.leading_zeros()).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_identity() {
        let ids = Ids::sequential(5);
        for v in 0..5 {
            assert_eq!(ids.id(v), v as u64);
        }
        assert_eq!(ids.len(), 5);
        assert!(!ids.is_empty());
    }

    #[test]
    fn random_is_permutation_and_deterministic() {
        let a = Ids::random(100, 7);
        let b = Ids::random(100, 7);
        assert_eq!(a, b);
        let mut sorted = a.as_slice().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u64>>());
        let c = Ids::random(100, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn random_from_space_is_distinct() {
        let ids = Ids::random_from_space(50, 1_000_000, 3);
        let mut sorted = ids.as_slice().to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
        assert!(ids.as_slice().iter().all(|&x| x < 1_000_000));
    }

    #[test]
    #[should_panic(expected = "at least n")]
    fn random_from_space_checks_capacity() {
        let _ = Ids::random_from_space(10, 5, 0);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn from_vec_rejects_duplicates() {
        let _ = Ids::from_vec(vec![3, 3]);
    }

    #[test]
    fn bit_length_is_sane() {
        assert_eq!(Ids::from_vec(vec![0]).bit_length(), 1);
        assert_eq!(Ids::from_vec(vec![1]).bit_length(), 1);
        assert_eq!(Ids::from_vec(vec![2]).bit_length(), 2);
        assert_eq!(Ids::from_vec(vec![255]).bit_length(), 8);
        assert_eq!(Ids::from_vec(vec![256]).bit_length(), 9);
    }
}
