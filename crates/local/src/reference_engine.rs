//! The frozen pre-chunking engine, kept as a differential-testing oracle.
//!
//! This is the straightforward message-passing executor the chunked engine
//! ([`crate::engine`]) replaced: one sequential pass over the nodes per
//! round, a freshly allocated outbound list per node per round, and
//! push-based delivery through an explicit reverse-port search. It is
//! deliberately naive — the point is maximal implementation distance from
//! the arena/gather machinery under test while sharing only the
//! [`Protocol`] trait, so that agreement between the two engines is strong
//! evidence of correctness.
//!
//! Compiled only for tests or under the `reference-engine` feature; it
//! never ships in release binaries.
//!
//! Semantics match [`crate::engine::run_sync`] exactly for outputs and
//! per-node termination rounds. The diagnostic message count may differ on
//! terminal rounds: this engine counts *deliveries* to nodes that are
//! still alive at the sender's turn (an iteration-order-dependent notion),
//! while the chunked engine counts messages *sent* by running nodes.

use crate::engine::{Inbox, NodeContext, Outbox, Protocol, RunError, SyncOutcome};
use crate::identifiers::Ids;
use crate::metrics::{RoundStats, TerminationProfile};
use lcl_graph::{NodeId, Tree};

/// Runs `factory`'s protocol on every node of `tree` with the frozen
/// sequential engine. See [`crate::engine::run_sync`] for the contract.
///
/// # Errors
///
/// Returns [`RunError::RoundLimitExceeded`] if any node is still running
/// after `max_rounds` rounds.
///
/// # Panics
///
/// Panics if `ids` does not cover all nodes.
pub fn run_reference<P, F>(
    tree: &Tree,
    ids: &Ids,
    mut factory: F,
    max_rounds: u64,
) -> Result<SyncOutcome<P::Output>, RunError>
where
    P: Protocol,
    F: FnMut(&NodeContext) -> P,
{
    let n = tree.node_count();
    assert_eq!(ids.len(), n, "ID assignment must cover all nodes");

    let contexts: Vec<NodeContext> = tree
        .nodes()
        .map(|v| NodeContext {
            node: v,
            id: ids.id(v),
            degree: tree.degree(v),
            n,
        })
        .collect();
    let mut machines: Vec<Option<P>> = contexts.iter().map(|c| Some(factory(c))).collect();
    let mut outputs: Vec<Option<P::Output>> = vec![None; n];
    let mut rounds: Vec<u64> = vec![0; n];
    let mut inboxes: Vec<Vec<(usize, P::Message)>> = vec![Vec::new(); n];
    let mut next_inboxes: Vec<Vec<(usize, P::Message)>> = vec![Vec::new(); n];
    let mut running = n;
    let mut messages: u64 = 0;

    // Port of `v` as seen from neighbor `w`: index of v in w's list.
    let reverse_port = |v: NodeId, w: NodeId| -> usize {
        tree.neighbors(w)
            .iter()
            .position(|&x| x as usize == v)
            .unwrap_or_else(|| unreachable!("neighbor lists of a tree are symmetric"))
    };

    let mut round = 0u64;
    while running > 0 {
        if round > max_rounds {
            return Err(RunError::RoundLimitExceeded {
                limit: max_rounds,
                unfinished: running,
            });
        }
        for v in 0..n {
            // The per-node per-round allocation the chunked engine removed;
            // kept here on purpose (`Vec::new` itself does not allocate).
            let mut outbound: Vec<(usize, P::Message)> = Vec::new();
            let decided = {
                let Some(machine) = machines[v].as_mut() else {
                    continue;
                };
                let inbox = Inbox::list(&inboxes[v]);
                let mut outbox = Outbox::list(&mut outbound, contexts[v].degree);
                machine.step(&contexts[v], round, &inbox, &mut outbox)
            };
            if let Some(output) = decided {
                outputs[v] = Some(output);
                rounds[v] = round;
                machines[v] = None;
                running -= 1;
            }
            for (port, msg) in outbound {
                let w = tree.neighbors(v)[port] as usize;
                // Messages to already-terminated nodes are dropped.
                if machines[w].is_some() {
                    next_inboxes[w].push((reverse_port(v, w), msg));
                    messages += 1;
                }
            }
        }
        for v in 0..n {
            inboxes[v].clear();
            std::mem::swap(&mut inboxes[v], &mut next_inboxes[v]);
        }
        round += 1;
    }

    let outputs: Vec<P::Output> = outputs.into_iter().flatten().collect();
    assert_eq!(
        outputs.len(),
        n,
        "every node has an output once `running` reaches 0"
    );
    // Independently derived from the per-node rounds (the chunked engine
    // accumulates its profile per round instead) so the differential tests
    // cross-check the two instrumentation paths against each other.
    let profile = TerminationProfile::from_rounds(&rounds);
    Ok(SyncOutcome {
        outputs,
        stats: RoundStats::new(rounds),
        profile,
        messages,
        // The reference engine keeps per-round message lists, not arenas.
        peak_arena_bytes: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_sync_with, EngineConfig};
    use lcl_graph::generators::{balanced_weight_tree, path, random_bounded_degree_tree, star};

    /// Gossip protocol with heap-allocated messages: every node floods the
    /// set of IDs it has heard of and outputs its final set size once the
    /// set is stable for two rounds. Exercises non-`Copy` message types and
    /// data-dependent termination times.
    struct Gossip {
        known: Vec<u64>,
        stable_for: u32,
    }

    impl Protocol for Gossip {
        type Message = Vec<u64>;
        type Output = u64;
        fn step(
            &mut self,
            _ctx: &NodeContext,
            round: u64,
            inbox: &Inbox<'_, Vec<u64>>,
            outbox: &mut Outbox<'_, Vec<u64>>,
        ) -> Option<u64> {
            let before = self.known.len();
            for (_, msg) in inbox.iter() {
                for &id in msg {
                    if !self.known.contains(&id) {
                        self.known.push(id);
                    }
                }
            }
            self.known.sort_unstable();
            if round > 0 && self.known.len() == before {
                self.stable_for += 1;
            } else {
                self.stable_for = 0;
            }
            if self.stable_for >= 2 {
                return Some(self.known.len() as u64);
            }
            outbox.broadcast(self.known.clone());
            None
        }
    }

    fn gossip_factory(c: &NodeContext) -> Gossip {
        Gossip {
            known: vec![c.id],
            stable_for: 0,
        }
    }

    /// Every tree/protocol pair must produce identical outputs and rounds
    /// from the chunked engine (all chunk sizes/thread counts) and this
    /// reference engine.
    fn assert_engines_agree<P, F>(tree: &Tree, ids: &Ids, factory: F, max_rounds: u64)
    where
        P: Protocol,
        P::Output: std::fmt::Debug + PartialEq,
        F: Fn(&NodeContext) -> P,
    {
        let reference = run_reference(tree, ids, &factory, max_rounds).unwrap();
        let n = tree.node_count();
        for chunk_size in [1, 7, 64, n] {
            for threads in [1, 2] {
                let chunked = run_sync_with(
                    tree,
                    ids,
                    &factory,
                    max_rounds,
                    // Arena checking on: agreement with the reference
                    // engine and write discipline are verified together.
                    &EngineConfig {
                        chunk_size,
                        threads,
                        check_arena: true,
                        shard: None,
                    },
                )
                .unwrap();
                assert_eq!(
                    chunked.outputs, reference.outputs,
                    "outputs diverge at cs={chunk_size} t={threads}"
                );
                assert_eq!(
                    chunked.stats, reference.stats,
                    "rounds diverge at cs={chunk_size} t={threads}"
                );
                assert_eq!(
                    chunked.profile, reference.profile,
                    "termination profiles diverge at cs={chunk_size} t={threads}"
                );
                assert_eq!(
                    chunked.profile,
                    chunked.stats.profile(),
                    "per-round counts disagree with per-node rounds at \
                     cs={chunk_size} t={threads}"
                );
            }
        }
    }

    #[test]
    fn gossip_agrees_on_paths_stars_and_random_trees() {
        for (tree, seed) in [
            (path(17), 1u64),
            (star(12), 2),
            (random_bounded_degree_tree(60, 4, 7), 3),
            (balanced_weight_tree(48, 3), 4),
        ] {
            let ids = Ids::random(tree.node_count(), seed);
            assert_engines_agree(&tree, &ids, gossip_factory, 1_000);
        }
    }

    #[test]
    fn min_flood_agrees_with_chunked_engine() {
        use crate::engine::tests::MinFlood;
        let tree = random_bounded_degree_tree(80, 3, 11);
        let ids = Ids::random(80, 5);
        assert_engines_agree(
            &tree,
            &ids,
            |c| MinFlood {
                best: c.id,
                budget: 9,
            },
            100,
        );
    }

    #[test]
    fn endpoint_flood_agrees_with_chunked_engine() {
        use crate::engine::tests::EndpointFlood;
        for n in [1usize, 2, 3, 9, 33] {
            let tree = path(n);
            let ids = Ids::sequential(n);
            assert_engines_agree(
                &tree,
                &ids,
                |_| EndpointFlood {
                    seen: vec![],
                    self_is_end: false,
                },
                200,
            );
        }
    }

    #[test]
    fn round_limit_errors_match() {
        struct Forever;
        impl Protocol for Forever {
            type Message = ();
            type Output = ();
            fn step(
                &mut self,
                _: &NodeContext,
                _: u64,
                _: &Inbox<'_, ()>,
                _: &mut Outbox<'_, ()>,
            ) -> Option<()> {
                None
            }
        }
        let tree = path(5);
        let ids = Ids::sequential(5);
        let a = run_reference(&tree, &ids, |_| Forever, 7).unwrap_err();
        let b =
            run_sync_with(&tree, &ids, |_| Forever, 7, &EngineConfig::sequential()).unwrap_err();
        assert_eq!(a, b);
    }
}
