//! Small numeric helpers shared by the simulator and the analysis code.

/// The iterated logarithm `log* n` (base 2): the number of times `log₂`
/// must be applied to `n` before the value drops to at most 1.
///
/// `log_star(1) == 0`, `log_star(2) == 1`, `log_star(16) == 3`,
/// `log_star(65536) == 4`; every `n` representable in a `u64` has
/// `log_star(n) <= 5`.
///
/// # Examples
///
/// ```
/// use lcl_local::math::log_star;
/// assert_eq!(log_star(65536), 4);
/// assert_eq!(log_star(1_000_000), 5);
/// ```
pub fn log_star(n: u64) -> u32 {
    let mut x = n as f64;
    let mut count = 0;
    while x > 1.0 {
        x = x.log2();
        count += 1;
    }
    count
}

/// `⌈log_b(n)⌉` for integer `b ≥ 2`, with `ceil_log(_, 0) == 0` and
/// `ceil_log(_, 1) == 0`.
///
/// # Panics
///
/// Panics if `b < 2`.
pub fn ceil_log(b: u64, n: u64) -> u32 {
    assert!(b >= 2, "logarithm base must be at least 2");
    if n <= 1 {
        return 0;
    }
    let mut power = 1u64;
    let mut count = 0;
    while power < n {
        power = power.saturating_mul(b);
        count += 1;
    }
    count
}

/// `x^y` rounded to the nearest integer, never below 1. Used to turn the
/// paper's real-valued path lengths (`ℓ_i = n^{α_i}`) into usable sizes.
pub fn powf_round(x: f64, y: f64) -> usize {
    (x.powf(y)).round().max(1.0) as usize
}

/// Ordinary least-squares fit of `ln y = a + c · ln x`, returning the
/// exponent `c`, the coefficient `e^a`, and the coefficient of
/// determination `R²`.
///
/// This is the estimator the benchmark harness uses to recover the
/// polynomial-regime exponents of Theorems 1–3 from measured node-averaged
/// round counts.
///
/// # Panics
///
/// Panics if fewer than two points are given or any coordinate is
/// non-positive.
pub fn fit_power_law(points: &[(f64, f64)]) -> PowerLawFit {
    assert!(points.len() >= 2, "need at least two points to fit");
    assert!(
        points.iter().all(|&(x, y)| x > 0.0 && y > 0.0),
        "power-law fit requires positive coordinates"
    );
    let logs: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.ln(), y.ln())).collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    let exponent = if denom.abs() < f64::EPSILON {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    };
    let intercept = (sy - exponent * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = logs.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = logs
        .iter()
        .map(|p| (p.1 - (intercept + exponent * p.0)).powi(2))
        .sum();
    let r_squared = if ss_tot < f64::EPSILON {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    PowerLawFit {
        exponent,
        coefficient: intercept.exp(),
        r_squared,
    }
}

/// Result of [`fit_power_law`]: `y ≈ coefficient · x^exponent`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// The fitted exponent `c`.
    pub exponent: f64,
    /// The fitted multiplicative constant.
    pub coefficient: f64,
    /// Goodness of fit in log–log space (1 = perfect).
    pub r_squared: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_star_table() {
        assert_eq!(log_star(0), 0);
        assert_eq!(log_star(1), 0);
        assert_eq!(log_star(2), 1);
        assert_eq!(log_star(3), 2);
        assert_eq!(log_star(4), 2);
        assert_eq!(log_star(5), 3);
        assert_eq!(log_star(16), 3);
        assert_eq!(log_star(17), 4);
        assert_eq!(log_star(65536), 4);
        assert_eq!(log_star(65537), 5);
        assert_eq!(log_star(u64::MAX), 5);
    }

    #[test]
    fn ceil_log_table() {
        assert_eq!(ceil_log(2, 1), 0);
        assert_eq!(ceil_log(2, 2), 1);
        assert_eq!(ceil_log(2, 3), 2);
        assert_eq!(ceil_log(2, 1024), 10);
        assert_eq!(ceil_log(2, 1025), 11);
        assert_eq!(ceil_log(3, 27), 3);
        assert_eq!(ceil_log(3, 28), 4);
        assert_eq!(ceil_log(10, 0), 0);
    }

    #[test]
    #[should_panic(expected = "base")]
    fn ceil_log_rejects_base_one() {
        ceil_log(1, 10);
    }

    #[test]
    fn powf_round_floors_at_one() {
        assert_eq!(powf_round(100.0, 0.5), 10);
        assert_eq!(powf_round(2.0, -3.0), 1);
        assert_eq!(powf_round(1000.0, 1.0 / 3.0), 10);
    }

    #[test]
    fn fit_exact_power_law() {
        let pts: Vec<(f64, f64)> = (1..=6)
            .map(|i| {
                let x = 10f64.powi(i);
                (x, 3.0 * x.powf(0.5))
            })
            .collect();
        let fit = fit_power_law(&pts);
        assert!((fit.exponent - 0.5).abs() < 1e-9, "{fit:?}");
        assert!((fit.coefficient - 3.0).abs() < 1e-6, "{fit:?}");
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn fit_noisy_power_law() {
        // Multiplicative noise should barely move the exponent.
        let noise = [1.1, 0.9, 1.05, 0.95, 1.02, 0.98];
        let pts: Vec<(f64, f64)> = (1..=6)
            .map(|i| {
                let x = 4f64.powi(i);
                (x, x.powf(0.33) * noise[(i - 1) as usize])
            })
            .collect();
        let fit = fit_power_law(&pts);
        assert!((fit.exponent - 0.33).abs() < 0.05, "{fit:?}");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn fit_needs_points() {
        fit_power_law(&[(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn fit_rejects_nonpositive() {
        fit_power_law(&[(1.0, 1.0), (0.0, 2.0)]);
    }
}
