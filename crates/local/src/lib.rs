//! Synchronous LOCAL-model simulator with node-averaged complexity metrics.
//!
//! The LOCAL model is the setting of the paper *"Completing the
//! Node-Averaged Complexity Landscape of LCLs on Trees"* (PODC 2024): an
//! anonymous synchronous network where per-round messages are unbounded and
//! the complexity measure is the number of rounds until each node commits to
//! an output. This crate provides:
//!
//! - a chunked, arena-backed message-passing engine ([`engine`]) that
//!   records the exact round in which every node terminates and scales to
//!   million-node trees (CSR-aligned double-buffered message arenas, no
//!   per-node per-round allocation, optional chunk-parallel execution),
//! - the frozen pre-chunking engine (`reference_engine`, test/feature
//!   gated) used as a differential-testing oracle for the engine above,
//! - a ball-view engine ([`view`]) implementing the equivalent
//!   "collect radius-*r* view, then decide" formulation, used as reference
//!   semantics for cross-validating fast structural implementations,
//! - bit-packable message encodings ([`packed`]) and the shard/packing
//!   knobs ([`engine::ShardConfig`]) consumed by the partitioned
//!   out-of-core executor (`lcl_shard`),
//! - unique-identifier assignments over polynomial ID spaces
//!   ([`identifiers`]),
//! - round statistics and the node-averaged complexity measure of Section 2
//!   of the paper ([`metrics`]),
//! - numeric helpers, notably `log*` and power-law fitting ([`math`]).
//!
//! # Examples
//!
//! ```
//! use lcl_graph::generators::path;
//! use lcl_local::engine::{run_sync, Inbox, NodeContext, Outbox, Protocol};
//! use lcl_local::identifiers::Ids;
//!
//! struct IdEcho;
//! impl Protocol for IdEcho {
//!     type Message = ();
//!     type Output = u64;
//!     fn step(&mut self, ctx: &NodeContext, _r: u64,
//!             _inbox: &Inbox<'_, ()>, _outbox: &mut Outbox<'_, ()>)
//!         -> Option<u64>
//!     {
//!         Some(ctx.id)
//!     }
//! }
//!
//! let tree = path(4);
//! let ids = Ids::sequential(4);
//! let out = run_sync(&tree, &ids, |_| IdEcho, 1)?;
//! assert_eq!(out.stats.node_averaged(), 0.0);
//! # Ok::<(), lcl_local::engine::RunError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
pub mod identifiers;
pub mod math;
pub mod metrics;
pub mod packed;
#[cfg(any(test, feature = "reference-engine"))]
pub mod reference_engine;
pub mod view;

pub use engine::{
    run_sync, run_sync_region, run_sync_with, EngineConfig, Inbox, NodeContext, Outbox, Protocol,
    RunError, ShardConfig, SyncOutcome,
};
pub use identifiers::Ids;
pub use metrics::RoundStats;
pub use packed::PackableMessage;
#[cfg(any(test, feature = "reference-engine"))]
pub use reference_engine::run_reference;
