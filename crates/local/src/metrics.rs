//! Complexity metrics for LOCAL executions.
//!
//! The central quantity of the paper is the *node-averaged complexity*
//! (Section 2): the average, over all nodes, of the round in which each node
//! terminates, maximized over instances. An execution yields one termination
//! round per node; [`RoundStats`] summarizes them.

use std::borrow::Cow;

/// Per-node termination rounds of one execution, with summary accessors.
///
/// Backed by a [`Cow`]: [`RoundStats::new`] takes ownership of a vector,
/// while [`RoundStats::from_slice`] borrows an existing round slice
/// without copying it — the cheap path for computing summaries of a run
/// that already owns its rounds.
///
/// # Examples
///
/// ```
/// use lcl_local::metrics::RoundStats;
/// let s = RoundStats::new(vec![0, 2, 4]);
/// assert_eq!(s.worst_case(), 4);
/// assert_eq!(s.node_averaged(), 2.0);
/// let rounds = [1u64, 3];
/// let borrowed = RoundStats::from_slice(&rounds);
/// assert_eq!(borrowed.node_averaged(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundStats<'a> {
    rounds: Cow<'a, [u64]>,
}

impl RoundStats<'static> {
    /// Wraps a vector of per-node termination rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is empty (the average would be undefined).
    pub fn new(rounds: Vec<u64>) -> Self {
        assert!(
            !rounds.is_empty(),
            "round statistics need at least one node"
        );
        RoundStats {
            rounds: Cow::Owned(rounds),
        }
    }
}

impl<'a> RoundStats<'a> {
    /// Borrows a slice of per-node termination rounds without copying.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is empty (the average would be undefined).
    pub fn from_slice(rounds: &'a [u64]) -> Self {
        assert!(
            !rounds.is_empty(),
            "round statistics need at least one node"
        );
        RoundStats {
            rounds: Cow::Borrowed(rounds),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Always false; kept for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Termination round of node `v`.
    #[must_use]
    pub fn round(&self, v: usize) -> u64 {
        self.rounds[v]
    }

    /// The raw per-node rounds.
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        &self.rounds
    }

    /// Total rounds summed over nodes, `Σ_v T_v`.
    #[must_use]
    pub fn total(&self) -> u128 {
        self.rounds.iter().map(|&r| r as u128).sum()
    }

    /// Node-averaged complexity `(Σ_v T_v) / n` of this execution.
    #[must_use]
    pub fn node_averaged(&self) -> f64 {
        self.total() as f64 / self.rounds.len() as f64
    }

    /// Worst-case complexity `max_v T_v` of this execution.
    #[must_use]
    pub fn worst_case(&self) -> u64 {
        *self.rounds.iter().max().expect("non-empty")
    }

    /// Fraction of nodes with termination round at most `r`.
    #[must_use]
    pub fn fraction_done_by(&self, r: u64) -> f64 {
        let done = self.rounds.iter().filter(|&&t| t <= r).count();
        done as f64 / self.rounds.len() as f64
    }

    /// Histogram of termination rounds as `(round, count)` pairs sorted by
    /// round. Useful for inspecting the phase structure of the generic
    /// algorithms.
    #[must_use]
    pub fn histogram(&self) -> Vec<(u64, usize)> {
        let mut map = std::collections::BTreeMap::new();
        for &r in self.rounds.iter() {
            *map.entry(r).or_insert(0usize) += 1;
        }
        map.into_iter().collect()
    }

    /// Merges two executions over disjoint node sets (concatenation).
    #[must_use]
    pub fn merged_with(&self, other: &RoundStats<'_>) -> RoundStats<'static> {
        let mut rounds = self.rounds.to_vec();
        rounds.extend_from_slice(&other.rounds);
        RoundStats {
            rounds: Cow::Owned(rounds),
        }
    }
}

impl FromIterator<u64> for RoundStats<'static> {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        RoundStats::new(iter.into_iter().collect())
    }
}

impl serde::Serialize for RoundStats<'_> {
    // Manual impl (the vendored derive does not handle lifetime
    // parameters); mirrors the shape the derive would emit.
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![(
            "rounds".to_string(),
            serde::Serialize::to_value(&self.rounds[..]),
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let s = RoundStats::new(vec![1, 1, 4, 10]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.total(), 16);
        assert_eq!(s.node_averaged(), 4.0);
        assert_eq!(s.worst_case(), 10);
        assert_eq!(s.round(2), 4);
    }

    #[test]
    fn fraction_done() {
        let s = RoundStats::new(vec![0, 1, 2, 3]);
        assert_eq!(s.fraction_done_by(0), 0.25);
        assert_eq!(s.fraction_done_by(1), 0.5);
        assert_eq!(s.fraction_done_by(5), 1.0);
    }

    #[test]
    fn histogram_orders_rounds() {
        let s = RoundStats::new(vec![3, 1, 3, 3, 1]);
        assert_eq!(s.histogram(), vec![(1, 2), (3, 3)]);
    }

    #[test]
    fn merging_concatenates() {
        let a = RoundStats::new(vec![1, 2]);
        let b = RoundStats::new(vec![3]);
        let m = a.merged_with(&b);
        assert_eq!(m.as_slice(), &[1, 2, 3]);
        assert_eq!(m.node_averaged(), 2.0);
    }

    #[test]
    fn from_iterator() {
        let s: RoundStats = (0..5u64).collect();
        assert_eq!(s.worst_case(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_rejected() {
        let _ = RoundStats::new(vec![]);
    }
}
