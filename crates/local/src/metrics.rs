//! Complexity metrics for LOCAL executions.
//!
//! The central quantity of the paper is the *node-averaged complexity*
//! (Section 2): the average, over all nodes, of the round in which each node
//! terminates, maximized over instances. An execution yields one termination
//! round per node; [`RoundStats`] summarizes them.

use std::borrow::Cow;

/// Per-node termination rounds of one execution, with summary accessors.
///
/// Backed by a [`Cow`]: [`RoundStats::new`] takes ownership of a vector,
/// while [`RoundStats::from_slice`] borrows an existing round slice
/// without copying it — the cheap path for computing summaries of a run
/// that already owns its rounds.
///
/// # Examples
///
/// ```
/// use lcl_local::metrics::RoundStats;
/// let s = RoundStats::new(vec![0, 2, 4]);
/// assert_eq!(s.worst_case(), 4);
/// assert_eq!(s.node_averaged(), 2.0);
/// let rounds = [1u64, 3];
/// let borrowed = RoundStats::from_slice(&rounds);
/// assert_eq!(borrowed.node_averaged(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundStats<'a> {
    rounds: Cow<'a, [u64]>,
}

impl RoundStats<'static> {
    /// Wraps a vector of per-node termination rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is empty (the average would be undefined).
    #[must_use]
    pub fn new(rounds: Vec<u64>) -> Self {
        assert!(
            !rounds.is_empty(),
            "round statistics need at least one node"
        );
        RoundStats {
            rounds: Cow::Owned(rounds),
        }
    }
}

impl<'a> RoundStats<'a> {
    /// Borrows a slice of per-node termination rounds without copying.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is empty (the average would be undefined).
    #[must_use]
    pub fn from_slice(rounds: &'a [u64]) -> Self {
        assert!(
            !rounds.is_empty(),
            "round statistics need at least one node"
        );
        RoundStats {
            rounds: Cow::Borrowed(rounds),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Always false; kept for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Termination round of node `v`.
    #[must_use]
    pub fn round(&self, v: usize) -> u64 {
        self.rounds[v]
    }

    /// The raw per-node rounds.
    #[must_use]
    pub fn as_slice(&self) -> &[u64] {
        &self.rounds
    }

    /// Total rounds summed over nodes, `Σ_v T_v`.
    #[must_use]
    pub fn total(&self) -> u128 {
        self.rounds.iter().map(|&r| r as u128).sum()
    }

    /// Node-averaged complexity `(Σ_v T_v) / n` of this execution.
    #[must_use]
    pub fn node_averaged(&self) -> f64 {
        self.total() as f64 / self.rounds.len() as f64
    }

    /// Worst-case complexity `max_v T_v` of this execution (0 when no
    /// nodes were recorded).
    #[must_use]
    pub fn worst_case(&self) -> u64 {
        self.rounds.iter().copied().max().unwrap_or(0)
    }

    /// Fraction of nodes with termination round at most `r`.
    #[must_use]
    pub fn fraction_done_by(&self, r: u64) -> f64 {
        let done = self.rounds.iter().filter(|&&t| t <= r).count();
        done as f64 / self.rounds.len() as f64
    }

    /// Histogram of termination rounds as `(round, count)` pairs sorted by
    /// round. Useful for inspecting the phase structure of the generic
    /// algorithms.
    #[must_use]
    pub fn histogram(&self) -> Vec<(u64, usize)> {
        let mut map = std::collections::BTreeMap::new();
        for &r in self.rounds.iter() {
            *map.entry(r).or_insert(0usize) += 1;
        }
        map.into_iter().collect()
    }

    /// Merges two executions over disjoint node sets (concatenation).
    #[must_use]
    pub fn merged_with(&self, other: &RoundStats<'_>) -> RoundStats<'static> {
        let mut rounds = self.rounds.to_vec();
        rounds.extend_from_slice(&other.rounds);
        RoundStats {
            rounds: Cow::Owned(rounds),
        }
    }
}

impl<'a> RoundStats<'a> {
    /// The smallest round `r` such that at least `⌈q · n⌉` nodes have
    /// terminated by round `r` (`q ∈ (0, 1]`; `q = 0.5` is the median
    /// termination round).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q <= 1`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        let mut sorted: Vec<u64> = self.rounds.to_vec();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// The aggregated per-round termination profile of this execution.
    #[must_use]
    pub fn profile(&self) -> TerminationProfile {
        TerminationProfile::from_rounds(&self.rounds)
    }
}

/// Aggregated per-round termination counts of one execution: `counts[r]`
/// is the number of nodes whose termination round is exactly `r`.
///
/// This is the dense histogram the chunked engine accumulates for free
/// while running (it already counts terminations per round), and the
/// summary the harness serializes instead of (or alongside) the raw
/// per-node round vector. All summary statistics of [`RoundStats`] are
/// recoverable from it; [`TerminationProfile::node_averaged`] and
/// [`RoundStats::node_averaged`] agree exactly.
///
/// # Examples
///
/// ```
/// use lcl_local::metrics::{RoundStats, TerminationProfile};
/// let stats = RoundStats::new(vec![0, 2, 2, 3]);
/// let profile = stats.profile();
/// assert_eq!(profile.nonzero_bins(), vec![(0, 1), (2, 2), (3, 1)]);
/// assert_eq!(profile.node_averaged(), stats.node_averaged());
/// assert_eq!(profile.worst_case(), 3);
/// assert_eq!(profile.quantile(0.5), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TerminationProfile {
    /// Dense counts indexed by round; the last entry is non-zero.
    counts: Vec<u64>,
}

impl TerminationProfile {
    /// Wraps dense per-round termination counts (`counts[r]` = nodes
    /// terminating in round `r`). Trailing zero rounds are trimmed.
    ///
    /// # Panics
    ///
    /// Panics if the counts sum to zero (no nodes).
    #[must_use]
    pub fn from_counts(mut counts: Vec<u64>) -> Self {
        while counts.last() == Some(&0) {
            counts.pop();
        }
        assert!(
            !counts.is_empty(),
            "termination profile needs at least one node"
        );
        TerminationProfile { counts }
    }

    /// Builds the profile from per-node termination rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is empty.
    #[must_use]
    pub fn from_rounds(rounds: &[u64]) -> Self {
        assert!(
            !rounds.is_empty(),
            "termination profile needs at least one node"
        );
        // The assert above guarantees a maximum exists.
        let worst = rounds.iter().copied().max().unwrap_or(0) as usize;
        let mut counts = vec![0u64; worst + 1];
        for &r in rounds {
            counts[r as usize] += 1;
        }
        TerminationProfile { counts }
    }

    /// Dense counts indexed by round (the last entry is non-zero).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sparse `(round, count)` bins with `count > 0`, sorted by round.
    #[must_use]
    pub fn nonzero_bins(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(r, &c)| (r as u64, c))
            .collect()
    }

    /// Total number of nodes.
    #[must_use]
    pub fn total_nodes(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Node-averaged complexity `(Σ_v T_v) / n`.
    #[must_use]
    pub fn node_averaged(&self) -> f64 {
        let total: u128 = self
            .counts
            .iter()
            .enumerate()
            .map(|(r, &c)| r as u128 * u128::from(c))
            .sum();
        total as f64 / self.total_nodes() as f64
    }

    /// Worst-case complexity `max_v T_v`.
    #[must_use]
    pub fn worst_case(&self) -> u64 {
        (self.counts.len() - 1) as u64
    }

    /// The smallest round by which a `q` fraction of nodes has terminated.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q <= 1`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
        let need = (q * self.total_nodes() as f64).ceil() as u64;
        let mut seen = 0u64;
        for (r, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= need {
                return r as u64;
            }
        }
        self.worst_case()
    }

    /// Fraction of nodes with termination round at most `r`.
    #[must_use]
    pub fn fraction_done_by(&self, r: u64) -> f64 {
        let done: u64 = self.counts.iter().take(r as usize + 1).sum();
        done as f64 / self.total_nodes() as f64
    }
}

impl serde::Serialize for TerminationProfile {
    // Sparse form: serializing million-node runs must not emit one entry
    // per empty round.
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![(
            "bins".to_string(),
            serde::Serialize::to_value(&self.nonzero_bins()),
        )])
    }
}

impl FromIterator<u64> for RoundStats<'static> {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        RoundStats::new(iter.into_iter().collect())
    }
}

impl serde::Serialize for RoundStats<'_> {
    // Manual impl (the vendored derive does not handle lifetime
    // parameters); mirrors the shape the derive would emit.
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![(
            "rounds".to_string(),
            serde::Serialize::to_value(&self.rounds[..]),
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let s = RoundStats::new(vec![1, 1, 4, 10]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.total(), 16);
        assert_eq!(s.node_averaged(), 4.0);
        assert_eq!(s.worst_case(), 10);
        assert_eq!(s.round(2), 4);
    }

    #[test]
    fn fraction_done() {
        let s = RoundStats::new(vec![0, 1, 2, 3]);
        assert_eq!(s.fraction_done_by(0), 0.25);
        assert_eq!(s.fraction_done_by(1), 0.5);
        assert_eq!(s.fraction_done_by(5), 1.0);
    }

    #[test]
    fn histogram_orders_rounds() {
        let s = RoundStats::new(vec![3, 1, 3, 3, 1]);
        assert_eq!(s.histogram(), vec![(1, 2), (3, 3)]);
    }

    #[test]
    fn merging_concatenates() {
        let a = RoundStats::new(vec![1, 2]);
        let b = RoundStats::new(vec![3]);
        let m = a.merged_with(&b);
        assert_eq!(m.as_slice(), &[1, 2, 3]);
        assert_eq!(m.node_averaged(), 2.0);
    }

    #[test]
    fn from_iterator() {
        let s: RoundStats = (0..5u64).collect();
        assert_eq!(s.worst_case(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_rejected() {
        let _ = RoundStats::new(vec![]);
    }

    #[test]
    fn quantiles_walk_the_sorted_rounds() {
        let s = RoundStats::new(vec![5, 0, 1, 3]);
        assert_eq!(s.quantile(0.25), 0);
        assert_eq!(s.quantile(0.5), 1);
        assert_eq!(s.quantile(0.75), 3);
        assert_eq!(s.quantile(1.0), 5);
    }

    #[test]
    fn profile_agrees_with_round_stats() {
        let s = RoundStats::new(vec![0, 0, 7, 3, 3, 3]);
        let p = s.profile();
        assert_eq!(p.total_nodes(), 6);
        assert_eq!(p.node_averaged(), s.node_averaged());
        assert_eq!(p.worst_case(), s.worst_case());
        assert_eq!(p.nonzero_bins(), vec![(0, 2), (3, 3), (7, 1)]);
        for q in [0.1, 0.34, 0.5, 0.99, 1.0] {
            assert_eq!(p.quantile(q), s.quantile(q), "q = {q}");
        }
        assert_eq!(p.fraction_done_by(3), s.fraction_done_by(3));
    }

    #[test]
    fn profile_from_counts_trims_trailing_zeros() {
        let p = TerminationProfile::from_counts(vec![2, 0, 1, 0, 0]);
        assert_eq!(p.counts(), &[2, 0, 1]);
        assert_eq!(p.worst_case(), 2);
        assert_eq!(p, TerminationProfile::from_rounds(&[0, 0, 2]));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn profile_rejects_empty() {
        let _ = TerminationProfile::from_counts(vec![0, 0]);
    }
}
