//! Complexity metrics for LOCAL executions.
//!
//! The central quantity of the paper is the *node-averaged complexity*
//! (Section 2): the average, over all nodes, of the round in which each node
//! terminates, maximized over instances. An execution yields one termination
//! round per node; [`RoundStats`] summarizes them.

use serde::Serialize;

/// Per-node termination rounds of one execution, with summary accessors.
///
/// # Examples
///
/// ```
/// use lcl_local::metrics::RoundStats;
/// let s = RoundStats::new(vec![0, 2, 4]);
/// assert_eq!(s.worst_case(), 4);
/// assert_eq!(s.node_averaged(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct RoundStats {
    rounds: Vec<u64>,
}

impl RoundStats {
    /// Wraps a vector of per-node termination rounds.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is empty (the average would be undefined).
    pub fn new(rounds: Vec<u64>) -> Self {
        assert!(
            !rounds.is_empty(),
            "round statistics need at least one node"
        );
        RoundStats { rounds }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Always false; kept for API completeness.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Termination round of node `v`.
    pub fn round(&self, v: usize) -> u64 {
        self.rounds[v]
    }

    /// The raw per-node rounds.
    pub fn as_slice(&self) -> &[u64] {
        &self.rounds
    }

    /// Total rounds summed over nodes, `Σ_v T_v`.
    pub fn total(&self) -> u128 {
        self.rounds.iter().map(|&r| r as u128).sum()
    }

    /// Node-averaged complexity `(Σ_v T_v) / n` of this execution.
    pub fn node_averaged(&self) -> f64 {
        self.total() as f64 / self.rounds.len() as f64
    }

    /// Worst-case complexity `max_v T_v` of this execution.
    pub fn worst_case(&self) -> u64 {
        *self.rounds.iter().max().expect("non-empty")
    }

    /// Fraction of nodes with termination round at most `r`.
    pub fn fraction_done_by(&self, r: u64) -> f64 {
        let done = self.rounds.iter().filter(|&&t| t <= r).count();
        done as f64 / self.rounds.len() as f64
    }

    /// Histogram of termination rounds as `(round, count)` pairs sorted by
    /// round. Useful for inspecting the phase structure of the generic
    /// algorithms.
    pub fn histogram(&self) -> Vec<(u64, usize)> {
        let mut map = std::collections::BTreeMap::new();
        for &r in &self.rounds {
            *map.entry(r).or_insert(0usize) += 1;
        }
        map.into_iter().collect()
    }

    /// Merges two executions over disjoint node sets (concatenation).
    pub fn merged_with(&self, other: &RoundStats) -> RoundStats {
        let mut rounds = self.rounds.clone();
        rounds.extend_from_slice(&other.rounds);
        RoundStats { rounds }
    }
}

impl FromIterator<u64> for RoundStats {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        RoundStats::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let s = RoundStats::new(vec![1, 1, 4, 10]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.total(), 16);
        assert_eq!(s.node_averaged(), 4.0);
        assert_eq!(s.worst_case(), 10);
        assert_eq!(s.round(2), 4);
    }

    #[test]
    fn fraction_done() {
        let s = RoundStats::new(vec![0, 1, 2, 3]);
        assert_eq!(s.fraction_done_by(0), 0.25);
        assert_eq!(s.fraction_done_by(1), 0.5);
        assert_eq!(s.fraction_done_by(5), 1.0);
    }

    #[test]
    fn histogram_orders_rounds() {
        let s = RoundStats::new(vec![3, 1, 3, 3, 1]);
        assert_eq!(s.histogram(), vec![(1, 2), (3, 3)]);
    }

    #[test]
    fn merging_concatenates() {
        let a = RoundStats::new(vec![1, 2]);
        let b = RoundStats::new(vec![3]);
        let m = a.merged_with(&b);
        assert_eq!(m.as_slice(), &[1, 2, 3]);
        assert_eq!(m.node_averaged(), 2.0);
    }

    #[test]
    fn from_iterator() {
        let s: RoundStats = (0..5u64).collect();
        assert_eq!(s.worst_case(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_rejected() {
        let _ = RoundStats::new(vec![]);
    }
}
