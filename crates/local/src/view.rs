//! Ball-view execution engine.
//!
//! A deterministic LOCAL algorithm with running time `T(v)` is equivalent to
//! a function mapping the radius-`T(v)` view of `v` to an output. This
//! engine runs algorithms stated in that form: for each node it grows the
//! ball radius by one per round and asks the algorithm to decide. The
//! termination round of a node is the first radius at which it decides.
//!
//! The engine is slower than structural implementations (it materializes
//! balls), so the workspace uses it as the *reference semantics* against
//! which the fast algorithm implementations are cross-validated on small
//! instances.

use crate::identifiers::Ids;
use crate::metrics::RoundStats;
use lcl_graph::{NodeId, Tree};
use std::collections::VecDeque;

/// The radius-`r` view of a node: all nodes within distance `r`, their IDs,
/// and (for nodes strictly inside the ball) their full adjacency.
#[derive(Debug)]
pub struct BallView<'a> {
    tree: &'a Tree,
    ids: &'a Ids,
    center: NodeId,
    radius: u32,
    /// Distance from the center for every ball member.
    dist: std::collections::HashMap<NodeId, u32>,
    members: Vec<NodeId>,
}

impl<'a> BallView<'a> {
    /// Materializes the radius-`radius` ball around `center`.
    #[must_use]
    pub fn collect(tree: &'a Tree, ids: &'a Ids, center: NodeId, radius: u32) -> Self {
        let mut dist = std::collections::HashMap::new();
        let mut members = Vec::new();
        let mut queue = VecDeque::new();
        dist.insert(center, 0);
        members.push(center);
        queue.push_back(center);
        while let Some(u) = queue.pop_front() {
            let du = dist[&u];
            if du == radius {
                continue;
            }
            for &w in tree.neighbors(u) {
                let w = w as usize;
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                    e.insert(du + 1);
                    members.push(w);
                    queue.push_back(w);
                }
            }
        }
        BallView {
            tree,
            ids,
            center,
            radius,
            dist,
            members,
        }
    }

    /// The center node.
    pub fn center(&self) -> NodeId {
        self.center
    }

    /// The view radius.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Nodes in the ball, in BFS order from the center.
    pub fn nodes(&self) -> &[NodeId] {
        &self.members
    }

    /// Whether `v` lies in the ball.
    pub fn contains(&self, v: NodeId) -> bool {
        self.dist.contains_key(&v)
    }

    /// Distance from the center, if `v` is in the ball.
    pub fn dist(&self, v: NodeId) -> Option<u32> {
        self.dist.get(&v).copied()
    }

    /// The ID of a ball member.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the ball — reading it would break locality.
    pub fn id(&self, v: NodeId) -> u64 {
        assert!(self.contains(v), "node {v} is outside the view");
        self.ids.id(v)
    }

    /// Whether the full adjacency of `v` is visible (true for nodes at
    /// distance `< radius`; frontier nodes may have unseen edges).
    pub fn knows_neighbors(&self, v: NodeId) -> bool {
        self.dist(v).is_some_and(|d| d < self.radius)
    }

    /// The degree of a ball member. Under the standard LOCAL convention
    /// the radius-`r` view includes the *half-edges* of frontier nodes, so
    /// degrees are visible even where adjacency is not
    /// (cf. [`Self::knows_neighbors`]).
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the ball.
    pub fn degree(&self, v: NodeId) -> usize {
        assert!(self.contains(v), "node {v} is outside the view");
        self.tree.degree(v)
    }

    /// Neighbors of an interior ball member.
    ///
    /// # Panics
    ///
    /// Panics if [`Self::knows_neighbors`] is false for `v`.
    pub fn neighbors(&self, v: NodeId) -> &[u32] {
        assert!(
            self.knows_neighbors(v),
            "adjacency of frontier node {v} is not visible at radius {}",
            self.radius
        );
        self.tree.neighbors(v)
    }

    /// True when the center has seen its entire connected component (in a
    /// tree: the whole tree).
    ///
    /// Uses the standard LOCAL convention that the radius-`r` view includes
    /// the *degrees* (half-edges) of frontier nodes: the ball is complete
    /// exactly when every node at distance `radius` is a leaf, since in a
    /// tree each of its non-parent edges would leave the ball.
    pub fn sees_whole_graph(&self) -> bool {
        self.members.iter().all(|&v| {
            self.dist[&v] < self.radius || self.tree.degree(v) == usize::from(self.dist[&v] > 0)
        })
    }
}

/// A deterministic view-based algorithm: inspect a growing ball, decide when
/// ready.
pub trait ViewAlgorithm {
    /// Output label type.
    type Output;

    /// Inspects the radius-`view.radius()` ball; `Some` terminates the node
    /// at round `view.radius()`.
    fn decide(&mut self, view: &BallView<'_>) -> Option<Self::Output>;
}

/// Outcome of [`run_views`].
#[derive(Debug, Clone)]
pub struct ViewOutcome<O> {
    /// Output of every node.
    pub outputs: Vec<O>,
    /// Per-node termination rounds (= deciding radius).
    pub stats: RoundStats<'static>,
}

/// A view algorithm failed to decide within the allotted radius.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Undecided {
    /// The node that never decided.
    pub node: NodeId,
    /// The radius budget that was exhausted.
    pub max_radius: u32,
}

impl std::fmt::Display for Undecided {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "node {} did not decide within radius {}",
            self.node, self.max_radius
        )
    }
}

impl std::error::Error for Undecided {}

/// Runs a view algorithm on every node, growing each node's radius until it
/// decides.
///
/// `factory` creates the per-node algorithm instance.
///
/// # Errors
///
/// Returns [`Undecided`] if some node does not decide by radius
/// `max_radius`.
pub fn run_views<A, F>(
    tree: &Tree,
    ids: &Ids,
    mut factory: F,
    max_radius: u32,
) -> Result<ViewOutcome<A::Output>, Undecided>
where
    A: ViewAlgorithm,
    F: FnMut(NodeId) -> A,
{
    let n = tree.node_count();
    assert_eq!(ids.len(), n, "ID assignment must cover all nodes");
    let mut outputs = Vec::with_capacity(n);
    let mut rounds = Vec::with_capacity(n);
    for v in tree.nodes() {
        let mut algo = factory(v);
        let mut decided = None;
        for r in 0..=max_radius {
            let view = BallView::collect(tree, ids, v, r);
            if let Some(out) = algo.decide(&view) {
                decided = Some((out, r));
                break;
            }
        }
        let Some((out, r)) = decided else {
            return Err(Undecided {
                node: v,
                max_radius,
            });
        };
        outputs.push(out);
        rounds.push(r as u64);
    }
    Ok(ViewOutcome {
        outputs,
        stats: RoundStats::new(rounds),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::generators::{path, star};

    #[test]
    fn ball_growth_on_path() {
        let tree = path(7);
        let ids = Ids::sequential(7);
        let b0 = BallView::collect(&tree, &ids, 3, 0);
        assert_eq!(b0.nodes(), &[3]);
        let b2 = BallView::collect(&tree, &ids, 3, 2);
        let mut nodes = b2.nodes().to_vec();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![1, 2, 3, 4, 5]);
        assert_eq!(b2.dist(1), Some(2));
        assert_eq!(b2.dist(0), None);
        assert!(b2.contains(4));
        assert!(!b2.contains(6));
    }

    #[test]
    fn frontier_adjacency_is_hidden() {
        let tree = path(5);
        let ids = Ids::sequential(5);
        let b = BallView::collect(&tree, &ids, 2, 1);
        assert!(b.knows_neighbors(2));
        assert!(!b.knows_neighbors(1));
        assert_eq!(b.neighbors(2), &[1, 3]);
    }

    #[test]
    #[should_panic(expected = "outside the view")]
    fn reading_outside_ids_panics() {
        let tree = path(5);
        let ids = Ids::sequential(5);
        let b = BallView::collect(&tree, &ids, 0, 1);
        let _ = b.id(4);
    }

    #[test]
    #[should_panic(expected = "not visible")]
    fn reading_frontier_neighbors_panics() {
        let tree = path(5);
        let ids = Ids::sequential(5);
        let b = BallView::collect(&tree, &ids, 2, 1);
        let _ = b.neighbors(3);
    }

    #[test]
    fn sees_whole_graph_detection() {
        let tree = star(5);
        let ids = Ids::sequential(5);
        // Center of a star: at radius 1 all frontier nodes are leaves, so
        // the half-edge convention confirms completeness immediately.
        let b1 = BallView::collect(&tree, &ids, 0, 1);
        assert!(b1.sees_whole_graph());
        assert!(!BallView::collect(&tree, &ids, 0, 0).sees_whole_graph());
        // From a leaf, radius 1 shows the center with degree 4 (incomplete);
        // radius 2 reaches the remaining leaves.
        assert!(!BallView::collect(&tree, &ids, 1, 1).sees_whole_graph());
        assert!(BallView::collect(&tree, &ids, 1, 2).sees_whole_graph());
    }

    /// Decide the minimum ID of the whole graph, terminating as soon as the
    /// whole graph is visible.
    struct GlobalMin;
    impl ViewAlgorithm for GlobalMin {
        type Output = u64;
        fn decide(&mut self, view: &BallView<'_>) -> Option<u64> {
            if view.sees_whole_graph() {
                Some(view.nodes().iter().map(|&v| view.id(v)).min().unwrap())
            } else {
                None
            }
        }
    }

    #[test]
    fn global_min_needs_eccentricity_rounds() {
        let tree = path(6);
        let ids = Ids::random(6, 2);
        let out = run_views(&tree, &ids, |_| GlobalMin, 10).expect("decides");
        assert!(out.outputs.iter().all(|&m| m == 0));
        // Node v requires radius max(v, n-1-v) to see the whole path, plus
        // one extra round to confirm the endpoints have no further edges
        // (endpoint itself knows its own degree, so its far side costs +1
        // only when the far node is at full distance).
        for v in 0..6 {
            let ecc = v.max(5 - v) as u64;
            let r = out.stats.round(v);
            assert!(
                r == ecc || r == ecc + 1,
                "node {v}: round {r}, eccentricity {ecc}"
            );
        }
    }

    #[test]
    fn max_radius_is_enforced() {
        struct Never;
        impl ViewAlgorithm for Never {
            type Output = ();
            fn decide(&mut self, _: &BallView<'_>) -> Option<()> {
                None
            }
        }
        let tree = path(3);
        let ids = Ids::sequential(3);
        let err = run_views(&tree, &ids, |_| Never, 2).unwrap_err();
        assert_eq!(
            err,
            Undecided {
                node: 0,
                max_radius: 2
            }
        );
    }
}
