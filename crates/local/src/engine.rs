//! Chunked, arena-backed synchronous engine for the LOCAL model.
//!
//! Time proceeds in rounds. In round `r` every non-terminated node consumes
//! the messages sent to it in round `r - 1`, updates its state, and either
//! sends messages for round `r + 1` or terminates with an output. A node
//! that terminates in round `r` has termination time `T_v = r` and may post
//! one final batch of messages (delivered in round `r + 1`) so that
//! neighbors can observe its output — the standard LOCAL convention.
//!
//! # Execution strategy
//!
//! The engine is built for million-node trees:
//!
//! - **CSR-aligned message arenas.** Messages live in two flat slot arenas
//!   with one slot per *directed edge*, laid out exactly like the tree's
//!   CSR adjacency array ([`lcl_graph::Tree::offsets`]). Slot
//!   `offsets[v] + p` of the write arena holds the message node `v` sent on
//!   port `p` this round, stamped with its delivery round. The arenas are
//!   allocated once per run and reused (double-buffered) across all rounds
//!   — no per-node per-round allocation.
//! - **Gather-based delivery.** A precomputed reverse-edge permutation maps
//!   each directed edge to its reversal, so a node's inbox is a zero-copy
//!   *view* over the previous round's write arena; nothing is moved or
//!   cloned between rounds. Readers accept only slots stamped with the
//!   current round, so stale slots of nodes the scheduler skipped (or that
//!   terminated) never resurface — no clearing passes are needed.
//! - **Chunked parallelism.** Nodes are split into fixed-size chunks;
//!   contiguous runs of chunks form per-worker regions executed on scoped
//!   std threads. Within a round, workers write disjoint CSR ranges of the
//!   write arena and read the (immutable) previous arena, so the engine
//!   stays free of `unsafe` and of locks on the hot path.
//! - **Event-driven scheduling.** A node is stepped only when it has mail
//!   or when its own [`Protocol::next_wake`] hint is due. Senders flag the
//!   recipient's chunk (one atomic bool per chunk, double-buffered by round
//!   parity like the arenas), each chunk tracks the minimum wake of its
//!   running nodes, and a chunk is visited only when flagged or due — so a
//!   two-front wave over a million-node path costs `O(chunk)` per round,
//!   not `O(n)`. When a round ends with no messages in flight the engine
//!   fast-forwards to the earliest wake instead of idling round by round.
//!
//! Results are bit-identical for every chunk size and thread count: a
//! node's step depends only on its own state and its inbox view, and the
//! skip conditions are functions of per-node facts (mail present, hint
//! due), never of chunk layout. Wake hints are *pure scheduling hints*: a
//! protocol promises that the skipped steps would have been no-ops, so the
//! reference engine (`crate::reference_engine`, test/feature-gated), which
//! steps every running node every round, remains a valid differential
//! oracle.
//!
//! Message size is unbounded, matching the model; the engine tracks message
//! counts only for diagnostics. At most one message per port per round may
//! be sent (the natural LOCAL convention; enforced by [`Outbox::send`]).

use crate::identifiers::Ids;
use crate::metrics::{RoundStats, TerminationProfile};
use lcl_graph::{NodeId, Tree};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// One message slot of an arena: the payload stamped with its delivery
/// round. Readers ignore slots whose stamp is not the round being read, so
/// slots left behind by skipped or terminated senders expire silently.
type ArenaSlot<M> = Option<(u32, M)>;

/// Static per-node information visible to a protocol.
#[derive(Debug, Clone, Copy)]
pub struct NodeContext {
    /// The node's index (for harness bookkeeping; protocols should treat it
    /// as opaque and use `id` for symmetry breaking).
    pub node: NodeId,
    /// The node's unique identifier.
    pub id: u64,
    /// The node's degree (number of ports).
    pub degree: usize,
    /// The number of nodes in the graph; LOCAL algorithms know `n`.
    pub n: usize,
}

/// A read-only view of the messages a node received this round.
///
/// Backed either by the chunked engine's message arena (a gather over the
/// reverse-edge permutation, no copies) or by the reference engine's
/// per-node message list. Iteration order is *unspecified* and differs
/// between engines (port order vs arrival order); protocols must not
/// depend on it.
pub struct Inbox<'a, M> {
    inner: InboxInner<'a, M>,
}

enum InboxInner<'a, M> {
    /// Chunked engine: gather from the previous round's arena.
    Gather {
        read: &'a [ArenaSlot<M>],
        rev: &'a [u32],
        base: usize,
        degree: usize,
        /// Only slots stamped with this delivery round are visible.
        expect: u32,
    },
    /// Explicit `(port, message)` list (reference engine, and the sharded
    /// engine's decoded packed-arena reads).
    List(&'a [(usize, M)]),
}

impl<'a, M> Inbox<'a, M> {
    pub(crate) fn gather(
        read: &'a [ArenaSlot<M>],
        rev: &'a [u32],
        base: usize,
        degree: usize,
        expect: u32,
    ) -> Self {
        Inbox {
            inner: InboxInner::Gather {
                read,
                rev,
                base,
                degree,
                expect,
            },
        }
    }

    /// An inbox over an explicit `(port, message)` list, sorted or not.
    /// Used by alternative executors (the reference engine, the sharded
    /// engine's decoded halo/arena reads) to drive unmodified protocols.
    #[must_use]
    pub fn list(list: &'a [(usize, M)]) -> Self {
        Inbox {
            inner: InboxInner::List(list),
        }
    }

    /// Iterates over `(port, message)` pairs received this round.
    #[must_use]
    pub fn iter(&self) -> InboxIter<'a, M> {
        InboxIter {
            inner: match &self.inner {
                InboxInner::Gather {
                    read,
                    rev,
                    base,
                    degree,
                    expect,
                } => InboxIterInner::Gather {
                    read,
                    rev,
                    base: *base,
                    degree: *degree,
                    expect: *expect,
                    port: 0,
                },
                InboxInner::List(list) => InboxIterInner::List(list.iter()),
            },
        }
    }

    /// The message received on `port`, if any.
    #[must_use]
    pub fn get(&self, port: usize) -> Option<&'a M> {
        match &self.inner {
            InboxInner::Gather {
                read,
                rev,
                base,
                degree,
                expect,
            } => {
                if port >= *degree {
                    return None;
                }
                match read[rev[base + port] as usize].as_ref() {
                    Some((stamp, m)) if stamp == expect => Some(m),
                    _ => None,
                }
            }
            InboxInner::List(list) => list.iter().find(|(p, _)| *p == port).map(|(_, m)| m),
        }
    }

    /// Number of messages received this round.
    #[must_use]
    pub fn count(&self) -> usize {
        self.iter().count()
    }

    /// True when no messages were received this round.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.iter().next().is_none()
    }
}

/// Iterator over an [`Inbox`], yielding `(port, &message)`.
pub struct InboxIter<'a, M> {
    inner: InboxIterInner<'a, M>,
}

enum InboxIterInner<'a, M> {
    Gather {
        read: &'a [ArenaSlot<M>],
        rev: &'a [u32],
        base: usize,
        degree: usize,
        expect: u32,
        port: usize,
    },
    List(std::slice::Iter<'a, (usize, M)>),
}

impl<'a, M> Iterator for InboxIter<'a, M> {
    type Item = (usize, &'a M);

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            InboxIterInner::Gather {
                read,
                rev,
                base,
                degree,
                expect,
                port,
            } => {
                while *port < *degree {
                    let p = *port;
                    *port += 1;
                    if let Some((stamp, m)) = read[rev[*base + p] as usize].as_ref() {
                        if stamp == expect {
                            return Some((p, m));
                        }
                    }
                }
                None
            }
            InboxIterInner::List(it) => it.next().map(|(p, m)| (*p, m)),
        }
    }
}

/// The send surface a protocol writes its outgoing messages to.
///
/// Backed either by the node's CSR slot range in the chunked engine's write
/// arena (zero-allocation) or by a plain list in the reference engine. At
/// most one message per port per round.
pub struct Outbox<'a, M> {
    degree: usize,
    sent: usize,
    inner: OutboxInner<'a, M>,
}

enum OutboxInner<'a, M> {
    Slots {
        slots: &'a mut [ArenaSlot<M>],
        /// Delivery-round stamp written next to every message.
        stamp: u32,
    },
    List(&'a mut Vec<(usize, M)>),
}

impl<'a, M> Outbox<'a, M> {
    pub(crate) fn slots(slots: &'a mut [ArenaSlot<M>], stamp: u32) -> Self {
        Outbox {
            degree: slots.len(),
            sent: 0,
            inner: OutboxInner::Slots { slots, stamp },
        }
    }

    /// An outbox collecting sends into an explicit `(port, message)`
    /// list. Used by alternative executors (the reference engine, the
    /// sharded engine's encode-after-step path) to drive unmodified
    /// protocols; the caller clears/reuses the backing vector.
    #[must_use]
    pub fn list(list: &'a mut Vec<(usize, M)>, degree: usize) -> Self {
        Outbox {
            degree,
            sent: 0,
            inner: OutboxInner::List(list),
        }
    }

    /// Number of ports (the node's degree).
    #[must_use]
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of messages sent through this outbox so far this round.
    #[must_use]
    pub fn sent(&self) -> usize {
        self.sent
    }

    /// Sends `msg` on `port` (delivered to that neighbor next round).
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree` or if a message was already sent on this
    /// port this round.
    pub fn send(&mut self, port: usize, msg: M) {
        assert!(
            port < self.degree,
            "port {port} out of range (degree {})",
            self.degree
        );
        match &mut self.inner {
            OutboxInner::Slots { slots, stamp } => {
                assert!(
                    slots[port].is_none(),
                    "duplicate message on port {port} in one round"
                );
                slots[port] = Some((*stamp, msg));
            }
            OutboxInner::List(list) => {
                assert!(
                    list.iter().all(|(p, _)| *p != port),
                    "duplicate message on port {port} in one round"
                );
                list.push((port, msg));
            }
        }
        self.sent += 1;
    }

    /// Sends a copy of `msg` on every port.
    pub fn broadcast(&mut self, msg: M)
    where
        M: Clone,
    {
        for port in 0..self.degree {
            self.send(port, msg.clone());
        }
    }
}

/// A per-node state machine. One instance is created per node by the
/// factory passed to [`run_sync`].
///
/// `step` executes one round: it reads this round's `inbox` (empty in round
/// 0), writes next round's messages into `outbox`, and returns `Some(out)`
/// to terminate with output `out` (messages written in the terminating step
/// are the node's *final messages*, delivered next round) or `None` to keep
/// running.
pub trait Protocol: Send {
    /// Message type exchanged with neighbors.
    type Message: Clone + Send + Sync;
    /// Output label type.
    type Output: Clone + Send;

    /// Executes one round; see the trait docs.
    fn step(
        &mut self,
        ctx: &NodeContext,
        round: u64,
        inbox: &Inbox<'_, Self::Message>,
        outbox: &mut Outbox<'_, Self::Message>,
    ) -> Option<Self::Output>;

    /// The earliest round in which this node's next [`step`](Protocol::step)
    /// does real work, assuming no messages arrive first.
    ///
    /// The chunked engine calls this right after a `step` at round `now`
    /// returns `None`. Returning `w > now` promises that every step in
    /// rounds `now + 1 .. w` with an **empty inbox** would be a no-op (no
    /// state change, no sends, no termination); the engine is then free to
    /// skip those steps. The node is stepped again no later than round
    /// `max(w, now + 1)`, and earlier as soon as a message arrives.
    /// `u64::MAX` means "sleep until mail".
    ///
    /// This is a pure scheduling hint: outcomes are bit-identical whether
    /// or not the engine honors it, and the reference engine ignores it.
    /// The default (`now`) schedules the node every round, which is always
    /// correct.
    fn next_wake(&self, _ctx: &NodeContext, now: u64) -> u64 {
        now
    }

    /// Width hint for bit-packed message arenas: an upper bound, in bits,
    /// on the packed form (see
    /// [`PackableMessage::pack`](crate::packed::PackableMessage::pack)) of
    /// every message **this node** ever sends during the run.
    ///
    /// The sharded engine sizes its packed arenas as the maximum hint over
    /// all nodes, so a node only needs to bound what it *originates*:
    /// protocols that forward other nodes' values verbatim are covered by
    /// the originators' own hints. Returning `None` (the default) on any
    /// node makes the engine fall back to the message type's declared
    /// ceiling ([`PackableMessage::CEIL_BITS`](crate::packed::PackableMessage::CEIL_BITS)),
    /// which is always safe. A hint that is too narrow fails loudly: the
    /// sharded engine asserts that every packed message fits.
    ///
    /// Purely an arena-sizing hint — outcomes are bit-identical whether or
    /// not it is honored, and the monolithic engine ignores it.
    fn message_bits(&self, _ctx: &NodeContext) -> Option<u32> {
        None
    }
}

/// Errors from [`run_sync`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// Some nodes failed to terminate within the round budget.
    RoundLimitExceeded {
        /// The budget that was exhausted.
        limit: u64,
        /// How many nodes were still running.
        unfinished: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::RoundLimitExceeded { limit, unfinished } => {
                write!(f, "{unfinished} nodes still running after {limit} rounds")
            }
        }
    }
}

impl Error for RunError {}

/// Result of a completed synchronous execution.
#[derive(Debug, Clone)]
pub struct SyncOutcome<O> {
    /// Output of every node.
    pub outputs: Vec<O>,
    /// Per-node termination rounds: `stats.round(v)` is the first round in
    /// which node `v`'s output is final. Recorded in one `u32` slot per
    /// node during the run (half the footprint of the summary's `u64`
    /// form at million-node scale) and widened once at the end.
    pub stats: RoundStats<'static>,
    /// Aggregated per-round termination counts. The chunked engine
    /// accumulates these for free (it already counts terminations per
    /// round to detect completion), so the histogram costs no per-node
    /// work; it is cross-checked against `stats` in the differential
    /// tests.
    pub profile: TerminationProfile,
    /// Number of messages sent by running nodes, including final messages
    /// (diagnostics; the reference engine counts deliveries to live nodes
    /// instead, which can differ on terminal rounds for messages sent to
    /// just-terminated nodes).
    pub messages: u64,
    /// Peak bytes of message-arena storage resident in memory at any point
    /// of the run. The monolithic engine reports its two full-tree arenas;
    /// the sharded engine reports the high-water mark of resident shard
    /// arenas plus halo buffers — the number that shrinks when spilling is
    /// on. Deterministic per `(instance, config)`; `0` from executors
    /// without arenas (the reference engine).
    pub peak_arena_bytes: u64,
}

/// Tuning knobs of the chunked engine. The all-zero [`Default`] resolves
/// both knobs automatically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineConfig {
    /// Nodes per scheduling chunk; worker regions are aligned to chunk
    /// boundaries. `0` means the default (1024). Never affects results.
    pub chunk_size: usize,
    /// Worker threads. `0` resolves to the available parallelism for large
    /// instances and `1` (inline, no spawns) for small ones; an explicit
    /// value is honored exactly.
    pub threads: usize,
    /// Runs the arena write-discipline checker alongside the round loop:
    /// every arena slot is verified to be written at most once per round,
    /// only by the chunk that owns its sender node, and read only from the
    /// previous round's arena (never the one being written). Costs two
    /// atomic words per directed edge plus one atomic op per send/receive,
    /// so it is off by default; the `arena-check` crate feature forces it
    /// on for every run without a config change. Never affects results —
    /// a violation panics instead of corrupting the run.
    pub check_arena: bool,
    /// Partitioned out-of-core execution (the `lcl_shard` crate): `None`
    /// runs the monolithic in-memory engine, `Some` splits the CSR into
    /// contiguous node-range shards with bounded residency, halo exchange
    /// at round barriers, and bit-packed message arenas. Never affects
    /// results — the shard differential suite pins bit-identity.
    pub shard: Option<ShardConfig>,
}

/// Knobs of the partitioned out-of-core executor. Carried on
/// [`EngineConfig::shard`]; interpreted by the `lcl_shard` crate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of contiguous node-range shards to split the CSR into
    /// (shard boundaries align to chunk boundaries). `0` means one shard.
    pub shards: usize,
    /// Maximum number of shard arena sets resident in memory at once;
    /// the rest spill to a per-run on-disk pool. `0` means "all resident"
    /// (no spilling); any other value is clamped to at least 1.
    pub max_resident: usize,
    /// Bit-pack message arenas using per-protocol
    /// [`Protocol::message_bits`] hints; when `false` (or whenever any
    /// node declines to hint) slots use the message type's full declared
    /// ceiling. Never affects results, only arena width.
    pub packing: bool,
}

/// The knob names of [`ShardConfig`], as spelled in configs and CLI flags.
/// Ground truth for the `lcl analyze` cross-check that every knob is
/// exercised by the shard differential suite.
pub const SHARD_KNOBS: &[&str] = &["shards", "max_resident", "packing"];

impl ShardConfig {
    /// Shard count with the `0 = one shard` default applied.
    #[must_use]
    pub fn resolved_shards(&self) -> usize {
        self.shards.max(1)
    }

    /// Residency limit with defaults applied: `0` means all shards
    /// resident, other values are clamped to at least 1 and at most the
    /// shard count.
    #[must_use]
    pub fn resolved_max_resident(&self) -> usize {
        let shards = self.resolved_shards();
        if self.max_resident == 0 {
            shards
        } else {
            self.max_resident.clamp(1, shards)
        }
    }
}

/// Below this node count the auto thread policy stays sequential: per-round
/// spawn overhead would dominate the work.
const AUTO_PARALLEL_MIN_NODES: usize = 16_384;

/// Default chunk size when [`EngineConfig::chunk_size`] is `0`.
const DEFAULT_CHUNK_SIZE: usize = 1024;

impl EngineConfig {
    /// A config that always runs inline on the caller's thread.
    #[must_use]
    pub fn sequential() -> Self {
        EngineConfig {
            chunk_size: 0,
            threads: 1,
            check_arena: false,
            shard: None,
        }
    }

    /// True when the arena write-discipline checker is active, either via
    /// [`check_arena`](EngineConfig::check_arena) or the `arena-check`
    /// crate feature.
    #[must_use]
    pub fn arena_check_enabled(&self) -> bool {
        self.check_arena || cfg!(feature = "arena-check")
    }

    /// Chunk size with the `0 = default (1024)` rule applied.
    #[must_use]
    pub fn resolved_chunk_size(&self) -> usize {
        if self.chunk_size == 0 {
            DEFAULT_CHUNK_SIZE
        } else {
            self.chunk_size
        }
    }

    /// Worker count for an `n`-node run with the `0 = auto` rule applied.
    #[must_use]
    pub fn resolved_threads(&self, n: usize) -> usize {
        match self.threads {
            0 if n < AUTO_PARALLEL_MIN_NODES => 1,
            0 => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            t => t,
        }
    }
}

/// Lifecycle of a node inside a run. Stale arena slots of `Done` nodes are
/// invalidated by their delivery-round stamps, so no clearing phase exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeState {
    Running,
    Done,
}

/// The reverse-edge permutation: for each directed edge `offsets[v] + p`
/// (node `v`, port `p`, neighbor `w`), the index of the reverse edge
/// `(w -> v)` in the CSR layout. Computed once per run in `O(n)`.
/// Public for the sharded executor (`lcl_shard`), which shares the
/// monolithic engine's arena geometry.
#[must_use]
pub fn reverse_edges(tree: &Tree) -> Vec<u32> {
    let offsets = tree.offsets();
    let adjacency = tree.adjacency();
    let mut rev = vec![0u32; adjacency.len()];
    let mut open: HashMap<(u32, u32), u32> = HashMap::with_capacity(adjacency.len() / 2 + 1);
    for v in tree.nodes() {
        let base = offsets[v] as usize;
        for (p, &w) in tree.neighbors(v).iter().enumerate() {
            let e = (base + p) as u32;
            let vu = v as u32;
            let key = if vu < w { (vu, w) } else { (w, vu) };
            match open.entry(key) {
                Entry::Vacant(slot) => {
                    slot.insert(e);
                }
                Entry::Occupied(slot) => {
                    let e0 = slot.remove();
                    rev[e as usize] = e0;
                    rev[e0 as usize] = e;
                }
            }
        }
    }
    rev
}

/// Region cut points: `workers + 1` node indices, every internal cut on a
/// chunk boundary, chunks distributed as evenly as possible. Public for
/// the sharded executor, whose shard partitioner and intra-shard worker
/// split both reuse this geometry.
#[must_use]
pub fn region_bounds(n: usize, chunk_size: usize, workers: usize) -> Vec<usize> {
    let chunks = n.div_ceil(chunk_size);
    let workers = workers.clamp(1, chunks.max(1));
    let base = chunks / workers;
    let extra = chunks % workers;
    let mut bounds = Vec::with_capacity(workers + 1);
    bounds.push(0);
    let mut c = 0;
    for t in 0..workers {
        c += base + usize::from(t < extra);
        bounds.push((c * chunk_size).min(n));
    }
    bounds
}

/// Dynamic twin of the static hot-path rules (`lcl analyze`, LCL-A0x):
/// verifies at run time that the arena protocol the engine's correctness
/// argument rests on is actually observed.
///
/// One epoch word per directed-edge slot per arena parity records the
/// round (+1, so `0` = never) in which the slot was last written. Three
/// invariants are enforced on every send and receive:
///
/// 1. **Single writer per round** — a slot's epoch moves to `round + 1`
///    at most once per round; a second write in the same round is a
///    double-write race.
/// 2. **Chunk ownership** — a slot may only be written while its sender
///    node's chunk is being stepped; regions writing outside their CSR
///    range would corrupt a neighbor worker's output.
/// 3. **Read after barrier** — reads in round `r` touch only the arena
///    written in rounds `< r`; an epoch of `r + 1` on the read side means
///    a same-round write leaked across the round barrier.
///
/// The epochs are deliberately *independent* of the slice-splitting that
/// makes the engine safe by construction: the checker would still catch a
/// bug introduced through an incorrect `split_regions` or a wrong
/// reverse-edge permutation.
struct ArenaChecker {
    /// `epochs[parity][slot]`: last-write round + 1 for that arena.
    epochs: [Vec<AtomicU64>; 2],
    /// Global chunk index owning each slot's sender node.
    owner: Vec<u32>,
}

impl ArenaChecker {
    fn new(offsets: &[u32], n: usize, chunk_size: usize, slots: usize) -> Self {
        let mut owner = vec![0u32; slots];
        for v in 0..n {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            for o in &mut owner[lo..hi] {
                *o = (v / chunk_size) as u32;
            }
        }
        let fresh = |_| AtomicU64::new(0);
        ArenaChecker {
            epochs: [
                (0..slots).map(fresh).collect(),
                (0..slots).map(fresh).collect(),
            ],
            owner,
        }
    }

    /// The arena parity written in `round` (even rounds write arena A).
    fn write_parity(round: u64) -> usize {
        (round % 2) as usize
    }

    /// Registers a write of `slot` during `round` by `writer_chunk`.
    ///
    /// # Panics
    ///
    /// Panics on a double-write within the round or a write from a chunk
    /// that does not own the slot's sender node.
    fn record_write(&self, slot: usize, round: u64, writer_chunk: usize) {
        assert_eq!(
            self.owner[slot] as usize, writer_chunk,
            "arena ownership violation: slot {slot} (owner chunk {}) written by chunk \
             {writer_chunk} in round {round}",
            self.owner[slot]
        );
        let epoch = round + 1;
        let prev = self.epochs[Self::write_parity(round)][slot].swap(epoch, Ordering::Relaxed);
        assert!(
            prev < epoch,
            "arena double-write: slot {slot} written twice in round {round} \
             (previous epoch {prev})"
        );
    }

    /// Registers a read of `slot` from the *read* arena during `round`.
    ///
    /// # Panics
    ///
    /// Panics if the slot was written in the current round: the read
    /// arena must only carry messages from before the round barrier.
    fn record_read(&self, slot: usize, round: u64) {
        // Round `r` reads the arena of parity `1 - r % 2` — the one
        // written in round `r - 1`.
        let parity = 1 - Self::write_parity(round);
        let epoch = self.epochs[parity][slot].load(Ordering::Relaxed);
        assert!(
            epoch <= round,
            "arena read-before-barrier: slot {slot} read in round {round} but written in \
             round {} of the same parity",
            epoch - 1
        );
    }
}

/// Read-only (or atomically shared) state every worker sees during one
/// round.
struct RoundShared<'a, M> {
    read: &'a [ArenaSlot<M>],
    rev: &'a [u32],
    offsets: &'a [u32],
    adjacency: &'a [u32],
    contexts: &'a [NodeContext],
    chunk_size: usize,
    /// Mail flags consumed this round (set by last round's senders).
    /// Indexed by global chunk; each flag is cleared by the chunk's owner.
    mail_now: &'a [AtomicBool],
    /// Mail flags senders set this round for next round's recipients.
    mail_next: &'a [AtomicBool],
    round: u64,
    /// Write-discipline checker, present only when arena checking is on.
    checker: Option<&'a ArenaChecker>,
}

/// One worker's contiguous slice of every per-node array plus its CSR
/// range of the write arena. Regions are chunk-aligned, so each also owns
/// a contiguous slice of the per-chunk wake array.
struct Region<'a, P: Protocol> {
    start: NodeId,
    slot_base: usize,
    /// Global index of the region's first chunk.
    first_chunk: usize,
    machines: &'a mut [Option<P>],
    outputs: &'a mut [Option<P::Output>],
    /// One `u32` slot per node: the first round in which the node's
    /// output is final, written exactly once (at termination).
    rounds: &'a mut [u32],
    states: &'a mut [NodeState],
    /// Per-node wake hints: the next round in which the node must be
    /// stepped absent mail (`0` initially, so round 0 steps everyone).
    wakes: &'a mut [u64],
    /// Per-chunk minimum of the running nodes' wakes; a lower bound that
    /// is exact after every visit and untouched (hence still valid)
    /// between visits.
    chunk_wakes: &'a mut [u64],
    write: &'a mut [ArenaSlot<P::Message>],
}

/// Does the node with CSR `base` and `degree` have a message stamped for
/// this round?
fn mail_waiting<M>(
    read: &[ArenaSlot<M>],
    rev: &[u32],
    base: usize,
    degree: usize,
    expect: u32,
) -> bool {
    (0..degree)
        .any(|p| matches!(&read[rev[base + p] as usize], Some((stamp, _)) if *stamp == expect))
}

/// Executes one round over one region, visiting only chunks that are due
/// or flagged for mail. Returns `(terminated, sent)`.
fn step_region<P: Protocol>(
    region: &mut Region<'_, P>,
    shared: &RoundShared<'_, P::Message>,
) -> (usize, u64) {
    let round = shared.round;
    let expect = round as u32;
    let stamp = expect + 1;
    let mut terminated = 0usize;
    let mut sent = 0u64;
    for c in 0..region.chunk_wakes.len() {
        let flag = &shared.mail_now[region.first_chunk + c];
        // The owner is the only clearer; a plain load first keeps idle
        // chunks' cache lines in the shared state.
        let mail = flag.load(Ordering::Relaxed);
        if mail {
            flag.store(false, Ordering::Relaxed);
        } else if region.chunk_wakes[c] > round {
            continue;
        }
        let node_lo = c * shared.chunk_size;
        let node_hi = (node_lo + shared.chunk_size).min(region.machines.len());
        let mut chunk_wake = u64::MAX;
        for i in node_lo..node_hi {
            if region.states[i] == NodeState::Done {
                continue;
            }
            let v = region.start + i;
            let base = shared.offsets[v] as usize;
            let ctx = &shared.contexts[v];
            let due = region.wakes[i] <= round;
            let stepping =
                due || (mail && mail_waiting(shared.read, shared.rev, base, ctx.degree, expect));
            if !stepping {
                chunk_wake = chunk_wake.min(region.wakes[i]);
                continue;
            }
            let lo = base - region.slot_base;
            let hi = shared.offsets[v + 1] as usize - region.slot_base;
            let out_slots = &mut region.write[lo..hi];
            for slot in out_slots.iter_mut() {
                *slot = None;
            }
            if let Some(checker) = shared.checker {
                for p in 0..ctx.degree {
                    checker.record_read(shared.rev[base + p] as usize, round);
                }
            }
            let inbox = Inbox::gather(shared.read, shared.rev, base, ctx.degree, expect);
            let mut outbox = Outbox::slots(out_slots, stamp);
            let Some(machine) = region.machines[i].as_mut() else {
                unreachable!("a node in the Running state has a machine")
            };
            let decided = machine.step(ctx, round, &inbox, &mut outbox);
            let wrote = outbox.sent();
            if wrote > 0 {
                sent += wrote as u64;
                for (p, slot) in region.write[lo..hi].iter().enumerate() {
                    if slot.is_some() {
                        if let Some(checker) = shared.checker {
                            checker.record_write(base + p, round, region.first_chunk + c);
                        }
                        let w = shared.adjacency[base + p] as usize;
                        shared.mail_next[w / shared.chunk_size].store(true, Ordering::Relaxed);
                    }
                }
            }
            if let Some(output) = decided {
                region.outputs[i] = Some(output);
                region.rounds[i] = expect;
                region.machines[i] = None;
                region.states[i] = NodeState::Done;
                terminated += 1;
            } else {
                let Some(machine) = region.machines[i].as_ref() else {
                    unreachable!("a node in the Running state has a machine")
                };
                let wake = machine.next_wake(ctx, round).max(round + 1);
                region.wakes[i] = wake;
                chunk_wake = chunk_wake.min(wake);
            }
        }
        region.chunk_wakes[c] = chunk_wake;
    }
    (terminated, sent)
}

/// Splits all per-node and per-chunk arrays plus the write arena into
/// per-region slices.
#[allow(clippy::too_many_arguments)]
fn split_regions<'a, P: Protocol>(
    bounds: &[usize],
    offsets: &[u32],
    chunk_size: usize,
    mut machines: &'a mut [Option<P>],
    mut outputs: &'a mut [Option<P::Output>],
    mut rounds: &'a mut [u32],
    mut states: &'a mut [NodeState],
    mut wakes: &'a mut [u64],
    mut chunk_wakes: &'a mut [u64],
    mut write: &'a mut [ArenaSlot<P::Message>],
) -> Vec<Region<'a, P>> {
    let mut regions = Vec::with_capacity(bounds.len() - 1);
    for w in bounds.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let nodes = hi - lo;
        let chunks = nodes.div_ceil(chunk_size);
        let slots = offsets[hi] as usize - offsets[lo] as usize;
        let (m, m_rest) = std::mem::take(&mut machines).split_at_mut(nodes);
        machines = m_rest;
        let (o, o_rest) = std::mem::take(&mut outputs).split_at_mut(nodes);
        outputs = o_rest;
        let (r, r_rest) = std::mem::take(&mut rounds).split_at_mut(nodes);
        rounds = r_rest;
        let (s, s_rest) = std::mem::take(&mut states).split_at_mut(nodes);
        states = s_rest;
        let (wk, wk_rest) = std::mem::take(&mut wakes).split_at_mut(nodes);
        wakes = wk_rest;
        let (cw, cw_rest) = std::mem::take(&mut chunk_wakes).split_at_mut(chunks);
        chunk_wakes = cw_rest;
        let (ws, w_rest) = std::mem::take(&mut write).split_at_mut(slots);
        write = w_rest;
        regions.push(Region {
            start: lo,
            slot_base: offsets[lo] as usize,
            first_chunk: lo / chunk_size,
            machines: m,
            outputs: o,
            rounds: r,
            states: s,
            wakes: wk,
            chunk_wakes: cw,
            write: ws,
        });
    }
    regions
}

/// Runs a protocol on every node of `tree` until all nodes terminate,
/// using the default [`EngineConfig`].
///
/// `factory` is called once per node to create its state machine.
///
/// # Errors
///
/// Returns [`RunError::RoundLimitExceeded`] if any node is still running
/// after `max_rounds` rounds.
///
/// # Examples
///
/// ```
/// use lcl_graph::generators::path;
/// use lcl_local::engine::{run_sync, Inbox, NodeContext, Outbox, Protocol};
/// use lcl_local::identifiers::Ids;
///
/// // Every node immediately outputs its own degree.
/// struct DegreeEcho;
/// impl Protocol for DegreeEcho {
///     type Message = ();
///     type Output = usize;
///     fn step(&mut self, ctx: &NodeContext, _round: u64,
///             _inbox: &Inbox<'_, ()>, _outbox: &mut Outbox<'_, ()>)
///         -> Option<usize>
///     {
///         Some(ctx.degree)
///     }
/// }
///
/// let tree = path(3);
/// let ids = Ids::sequential(3);
/// let out = run_sync(&tree, &ids, |_| DegreeEcho, 10)?;
/// assert_eq!(out.outputs, vec![1, 2, 1]);
/// assert_eq!(out.stats.worst_case(), 0);
/// # Ok::<(), lcl_local::engine::RunError>(())
/// ```
pub fn run_sync<P, F>(
    tree: &Tree,
    ids: &Ids,
    factory: F,
    max_rounds: u64,
) -> Result<SyncOutcome<P::Output>, RunError>
where
    P: Protocol,
    F: FnMut(&NodeContext) -> P,
{
    run_sync_with(tree, ids, factory, max_rounds, &EngineConfig::default())
}

/// [`run_sync`] with explicit engine tuning. Outputs and rounds are
/// independent of `config`; only scheduling changes.
///
/// # Errors
///
/// Returns [`RunError::RoundLimitExceeded`] if any node is still running
/// after `max_rounds` rounds.
///
/// # Panics
///
/// Panics if `ids` does not cover all nodes, or if a worker thread panics
/// (protocol panics propagate).
pub fn run_sync_with<P, F>(
    tree: &Tree,
    ids: &Ids,
    factory: F,
    max_rounds: u64,
    config: &EngineConfig,
) -> Result<SyncOutcome<P::Output>, RunError>
where
    P: Protocol,
    F: FnMut(&NodeContext) -> P,
{
    run_sync_inner(tree, ids, factory, max_rounds, config, tree.node_count())
}

/// [`run_sync_with`] on an extracted *dirty region* of a larger ambient
/// tree: nodes see `ambient_n` as the network size in their
/// [`NodeContext`], while topology, ids, scheduling, and buffers all come
/// from the (small) region tree.
///
/// This is the dirty-region entry point for incremental re-solving: after
/// tree surgery, a dynamic session extracts the churn-adjacent component,
/// re-runs the protocol here, and splices the fresh labels over the
/// preserved ones. Nothing else differs from [`run_sync_with`] — in
/// particular the outcome is bit-identical across chunk sizes and thread
/// counts, so the differential guarantees carry over to region runs.
///
/// # Errors
///
/// Returns [`RunError::RoundLimitExceeded`] if any node is still running
/// after `max_rounds` rounds.
///
/// # Panics
///
/// Panics if `ids` does not cover all region nodes, or if a worker thread
/// panics (protocol panics propagate).
pub fn run_sync_region<P, F>(
    tree: &Tree,
    ids: &Ids,
    factory: F,
    max_rounds: u64,
    config: &EngineConfig,
    ambient_n: usize,
) -> Result<SyncOutcome<P::Output>, RunError>
where
    P: Protocol,
    F: FnMut(&NodeContext) -> P,
{
    run_sync_inner(tree, ids, factory, max_rounds, config, ambient_n)
}

fn run_sync_inner<P, F>(
    tree: &Tree,
    ids: &Ids,
    mut factory: F,
    max_rounds: u64,
    config: &EngineConfig,
    ambient_n: usize,
) -> Result<SyncOutcome<P::Output>, RunError>
where
    P: Protocol,
    F: FnMut(&NodeContext) -> P,
{
    let n = tree.node_count();
    assert_eq!(ids.len(), n, "ID assignment must cover all nodes");
    let offsets = tree.offsets();
    let adjacency = tree.adjacency();
    let rev = reverse_edges(tree);
    let slots = adjacency.len();

    let contexts: Vec<NodeContext> = tree
        .nodes()
        .map(|v| NodeContext {
            node: v,
            id: ids.id(v),
            degree: tree.degree(v),
            n: ambient_n,
        })
        .collect();
    let mut machines: Vec<Option<P>> = contexts.iter().map(|c| Some(factory(c))).collect();
    let mut outputs: Vec<Option<P::Output>> = vec![None; n];
    let mut rounds: Vec<u32> = vec![0; n];
    let mut states: Vec<NodeState> = vec![NodeState::Running; n];
    // Per-round termination counts: `terminated_in[r]` nodes fixed their
    // output in round `r`. One push per round, no per-node work.
    let mut terminated_in: Vec<u64> = Vec::new();
    // The double-buffered arenas: one message slot per directed edge,
    // allocated once, reused every round.
    let mut arena_a: Vec<ArenaSlot<P::Message>> = vec![None; slots];
    let mut arena_b: Vec<ArenaSlot<P::Message>> = vec![None; slots];

    let chunk_size = config.resolved_chunk_size();
    let workers = config.resolved_threads(n);
    let bounds = region_bounds(n, chunk_size, workers);
    let chunk_count = n.div_ceil(chunk_size);

    // Event-driven scheduling state: everyone is due at round 0, no mail.
    let mut wakes: Vec<u64> = vec![0; n];
    let mut chunk_wakes: Vec<u64> = vec![0; chunk_count];
    let mail_a: Vec<AtomicBool> = (0..chunk_count).map(|_| AtomicBool::new(false)).collect();
    let mail_b: Vec<AtomicBool> = (0..chunk_count).map(|_| AtomicBool::new(false)).collect();

    // The checker's epochs persist across rounds (stale-slot expiry is
    // part of what it validates), so it lives outside the round loop.
    let checker = config
        .arena_check_enabled()
        .then(|| ArenaChecker::new(offsets, n, chunk_size, slots));

    let mut running = n;
    let mut messages: u64 = 0;
    let mut round = 0u64;
    while running > 0 {
        if round > max_rounds {
            return Err(RunError::RoundLimitExceeded {
                limit: max_rounds,
                unfinished: running,
            });
        }
        assert!(
            round < u64::from(u32::MAX),
            "termination rounds are recorded in u32 slots"
        );
        // Even rounds write arena A and read arena B; odd rounds swap. The
        // mail flags are double-buffered on the same parity.
        let (read, write) = if round.is_multiple_of(2) {
            (&arena_b, &mut arena_a)
        } else {
            (&arena_a, &mut arena_b)
        };
        let (mail_now, mail_next) = if round.is_multiple_of(2) {
            (&mail_a, &mail_b)
        } else {
            (&mail_b, &mail_a)
        };
        let shared = RoundShared {
            read,
            rev: &rev,
            offsets,
            adjacency,
            contexts: &contexts,
            chunk_size,
            mail_now,
            mail_next,
            round,
            checker: checker.as_ref(),
        };
        let mut regions = split_regions(
            &bounds,
            offsets,
            chunk_size,
            &mut machines,
            &mut outputs,
            &mut rounds,
            &mut states,
            &mut wakes,
            &mut chunk_wakes,
            write,
        );
        let (terminated, sent) = if regions.len() == 1 {
            let Some(mut region) = regions.pop() else {
                unreachable!("regions.len() == 1")
            };
            step_region(&mut region, &shared)
        } else {
            let shared = &shared;
            std::thread::scope(|scope| {
                let handles: Vec<_> = regions
                    .into_iter()
                    .map(|mut region| scope.spawn(move || step_region(&mut region, shared)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        // Re-raise a worker panic with its original payload
                        // instead of swallowing it behind a generic message.
                        h.join()
                            .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                    })
                    .fold((0usize, 0u64), |(t, c), (dt, dc)| (t + dt, c + dc))
            })
        };
        running -= terminated;
        messages += sent;
        terminated_in.push(terminated as u64);
        round += 1;
        // Round fast-forward: with nothing in flight the next event is the
        // earliest wake; skip the quiet rounds wholesale (they would all be
        // zero-visit scans). The histogram keeps one (zero) entry per
        // skipped round so profiles stay dense.
        if running > 0 && sent == 0 {
            let next = chunk_wakes.iter().copied().min().unwrap_or(u64::MAX);
            if next > round {
                let target = next.min(max_rounds.saturating_add(1));
                terminated_in.resize(target as usize, 0);
                round = target;
            }
        }
    }

    let outputs: Vec<P::Output> = outputs.into_iter().flatten().collect();
    assert_eq!(
        outputs.len(),
        n,
        "every node has an output once `running` reaches 0"
    );
    let profile = TerminationProfile::from_counts(terminated_in);
    debug_assert_eq!(profile.total_nodes() as usize, n);
    Ok(SyncOutcome {
        outputs,
        stats: RoundStats::new(rounds.into_iter().map(u64::from).collect()),
        profile,
        messages,
        // Both full-tree double-buffered arenas live for the whole run.
        peak_arena_bytes: 2 * (slots * std::mem::size_of::<ArenaSlot<P::Message>>()) as u64,
    })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use lcl_graph::generators::{path, star};

    /// Floods the minimum ID for exactly `budget` rounds, then outputs it.
    pub(crate) struct MinFlood {
        pub(crate) best: u64,
        pub(crate) budget: u64,
    }

    impl Protocol for MinFlood {
        type Message = u64;
        type Output = u64;
        fn step(
            &mut self,
            _ctx: &NodeContext,
            round: u64,
            inbox: &Inbox<'_, u64>,
            outbox: &mut Outbox<'_, u64>,
        ) -> Option<u64> {
            for (_, &m) in inbox.iter() {
                self.best = self.best.min(m);
            }
            if round == self.budget {
                return Some(self.best);
            }
            outbox.broadcast(self.best);
            None
        }
    }

    #[test]
    fn min_flood_on_path_needs_diameter_rounds() {
        let n = 12;
        let tree = path(n);
        // Sequential IDs put the minimum at endpoint node 0, so the far
        // endpoint genuinely needs `diameter` rounds to hear about it.
        let ids = Ids::sequential(n);
        let diam = tree.diameter() as u64;
        let out = run_sync(
            &tree,
            &ids,
            |c| MinFlood {
                best: c.id,
                budget: diam,
            },
            100,
        )
        .unwrap();
        assert!(out.outputs.iter().all(|&m| m == 0));
        assert_eq!(out.stats.worst_case(), diam);
        // One budget short misses the minimum for some node.
        let short = run_sync(
            &tree,
            &ids,
            |c| MinFlood {
                best: c.id,
                budget: diam - 1,
            },
            100,
        )
        .unwrap();
        assert!(short.outputs.iter().any(|&m| m != 0));
    }

    #[test]
    fn min_flood_on_star_is_fast() {
        let tree = star(9);
        let ids = Ids::random(9, 1);
        let out = run_sync(
            &tree,
            &ids,
            |c| MinFlood {
                best: c.id,
                budget: 2,
            },
            100,
        )
        .unwrap();
        assert!(out.outputs.iter().all(|&m| m == 0));
    }

    #[test]
    fn results_identical_across_chunk_sizes_and_threads() {
        let n = 40;
        let tree = path(n);
        let ids = Ids::random(n, 5);
        let baseline = run_sync_with(
            &tree,
            &ids,
            |c| MinFlood {
                best: c.id,
                budget: 17,
            },
            100,
            &EngineConfig::sequential(),
        )
        .unwrap();
        for chunk_size in [1, 7, 64, n] {
            for threads in [1, 2, 3] {
                let out = run_sync_with(
                    &tree,
                    &ids,
                    |c| MinFlood {
                        best: c.id,
                        budget: 17,
                    },
                    100,
                    // The write-discipline checker rides along on the
                    // engine's own differential matrix: every chunk size
                    // and thread count must also be race-clean.
                    &EngineConfig {
                        chunk_size,
                        threads,
                        check_arena: true,
                        shard: None,
                    },
                )
                .unwrap();
                assert_eq!(out.outputs, baseline.outputs, "cs={chunk_size} t={threads}");
                assert_eq!(out.stats, baseline.stats, "cs={chunk_size} t={threads}");
                assert_eq!(out.profile, baseline.profile, "cs={chunk_size} t={threads}");
                assert_eq!(
                    out.messages, baseline.messages,
                    "cs={chunk_size} t={threads}"
                );
            }
        }
    }

    /// Endpoint flood on a path: endpoints start a token carrying a hop
    /// count; nodes output (distance to first endpoint seen per side) once
    /// both sides arrived. Endpoints treat themselves as one side.
    pub(crate) struct EndpointFlood {
        pub(crate) seen: Vec<Option<u64>>, // per port: hop distance to that side's end
        pub(crate) self_is_end: bool,
    }

    impl Protocol for EndpointFlood {
        type Message = u64;
        type Output = u64; // eccentricity within the path

        fn step(
            &mut self,
            ctx: &NodeContext,
            round: u64,
            inbox: &Inbox<'_, u64>,
            outbox: &mut Outbox<'_, u64>,
        ) -> Option<u64> {
            if round == 0 {
                self.seen = vec![None; ctx.degree];
                self.self_is_end = ctx.degree == 1;
                if ctx.n == 1 {
                    return Some(0);
                }
                if self.self_is_end {
                    outbox.send(0, 1);
                }
                return None;
            }
            for (port, &hops) in inbox.iter() {
                if self.seen[port].is_none() {
                    self.seen[port] = Some(hops);
                    // Forward to the opposite port if any.
                    if ctx.degree == 2 {
                        outbox.send(1 - port, hops + 1);
                    }
                }
            }
            let done = if self.self_is_end {
                self.seen[0].is_some()
            } else {
                self.seen.iter().all(Option::is_some)
            };
            if done {
                let far = self.seen.iter().flatten().copied().max().unwrap_or(0);
                return Some(far);
            }
            None
        }

        fn next_wake(&self, _ctx: &NodeContext, now: u64) -> u64 {
            // After round 0 this protocol only reacts to arriving tokens.
            if now == 0 {
                now
            } else {
                u64::MAX
            }
        }
    }

    #[test]
    fn endpoint_flood_measures_eccentricity() {
        let n = 9;
        let tree = path(n);
        let ids = Ids::sequential(n);
        let out = run_sync(
            &tree,
            &ids,
            |_| EndpointFlood {
                seen: vec![],
                self_is_end: false,
            },
            100,
        )
        .unwrap();
        // Node v on a path of n nodes has eccentricity max(v, n-1-v).
        for v in 0..n {
            assert_eq!(out.outputs[v], (v.max(n - 1 - v)) as u64, "node {v}");
            assert_eq!(out.stats.round(v), out.outputs[v], "node {v}");
        }
        // Node-averaged ~ 3n/4, worst-case = n-1.
        assert_eq!(out.stats.worst_case(), (n - 1) as u64);
        // The per-round termination counts agree with the per-node rounds:
        // two nodes fix their output per round from the middle outward.
        assert_eq!(out.profile, out.stats.profile());
        assert_eq!(out.profile.worst_case(), (n - 1) as u64);
        assert_eq!(out.profile.total_nodes(), n as u64);
    }

    #[test]
    fn round_limit_is_enforced() {
        struct Forever;
        impl Protocol for Forever {
            type Message = ();
            type Output = ();
            fn step(
                &mut self,
                _: &NodeContext,
                _: u64,
                _: &Inbox<'_, ()>,
                _: &mut Outbox<'_, ()>,
            ) -> Option<()> {
                None
            }
        }
        let tree = path(3);
        let ids = Ids::sequential(3);
        let err = run_sync(&tree, &ids, |_| Forever, 5).unwrap_err();
        assert_eq!(
            err,
            RunError::RoundLimitExceeded {
                limit: 5,
                unfinished: 3
            }
        );
        assert!(err.to_string().contains("3 nodes"));
    }

    #[test]
    fn sleeping_forever_still_hits_the_round_limit() {
        // A protocol that never terminates and also never wants to wake:
        // the fast-forward path must land on the budget, not loop or hang.
        struct Dormant;
        impl Protocol for Dormant {
            type Message = ();
            type Output = ();
            fn step(
                &mut self,
                _: &NodeContext,
                _: u64,
                _: &Inbox<'_, ()>,
                _: &mut Outbox<'_, ()>,
            ) -> Option<()> {
                None
            }
            fn next_wake(&self, _: &NodeContext, _: u64) -> u64 {
                u64::MAX
            }
        }
        let tree = path(3);
        let ids = Ids::sequential(3);
        let err = run_sync(&tree, &ids, |_| Dormant, 5).unwrap_err();
        assert_eq!(
            err,
            RunError::RoundLimitExceeded {
                limit: 5,
                unfinished: 3
            }
        );
    }

    #[test]
    fn single_node_graph() {
        let tree = path(1);
        let ids = Ids::sequential(1);
        let out = run_sync(
            &tree,
            &ids,
            |_| EndpointFlood {
                seen: vec![],
                self_is_end: false,
            },
            10,
        )
        .unwrap();
        assert_eq!(out.outputs, vec![0]);
        assert_eq!(out.stats.worst_case(), 0);
    }

    #[test]
    fn message_count_is_tracked() {
        let tree = path(4);
        let ids = Ids::sequential(4);
        let out = run_sync(
            &tree,
            &ids,
            |c| MinFlood {
                best: c.id,
                budget: 3,
            },
            100,
        )
        .unwrap();
        // 6 directed edges * 3 sending rounds = 18 (rounds 0, 1, 2 send).
        assert_eq!(out.messages, 18);
    }

    #[test]
    fn duplicate_port_send_panics() {
        struct DoubleSend;
        impl Protocol for DoubleSend {
            type Message = u8;
            type Output = ();
            fn step(
                &mut self,
                _: &NodeContext,
                _: u64,
                _: &Inbox<'_, u8>,
                outbox: &mut Outbox<'_, u8>,
            ) -> Option<()> {
                outbox.send(0, 1);
                outbox.send(0, 2);
                Some(())
            }
        }
        let tree = path(2);
        let ids = Ids::sequential(2);
        let result = std::panic::catch_unwind(|| run_sync(&tree, &ids, |_| DoubleSend, 5));
        assert!(result.is_err(), "duplicate send must panic");
    }

    #[test]
    fn region_bounds_align_to_chunks() {
        assert_eq!(region_bounds(10, 4, 2), vec![0, 8, 10]);
        assert_eq!(region_bounds(10, 100, 4), vec![0, 10]);
        assert_eq!(region_bounds(1, 1, 8), vec![0, 1]);
        let b = region_bounds(1_000, 16, 3);
        assert_eq!(b.first(), Some(&0));
        assert_eq!(b.last(), Some(&1_000));
        for w in b.windows(2) {
            assert!(w[0] < w[1]);
            assert!(w[1] == 1_000 || w[1] % 16 == 0);
        }
    }

    #[test]
    fn reverse_edges_are_involutive() {
        let tree = lcl_graph::generators::random_bounded_degree_tree(200, 5, 3);
        let rev = reverse_edges(&tree);
        let offsets = tree.offsets();
        let adjacency = tree.adjacency();
        for v in tree.nodes() {
            for (p, &w) in tree.neighbors(v).iter().enumerate() {
                let e = offsets[v] as usize + p;
                let r = rev[e] as usize;
                // The reverse edge belongs to w and points back at v.
                assert_eq!(adjacency[r] as usize, v);
                assert!(r >= offsets[w as usize] as usize);
                assert!(r < offsets[w as usize + 1] as usize);
                assert_eq!(rev[r] as usize, e, "involution");
            }
        }
    }

    /// Silent until `target`, then broadcasts `label` and terminates with
    /// it. With `hint` the sleep is declared via `next_wake`; without it
    /// the node is stepped every round and does nothing — both must yield
    /// identical outcomes.
    pub(crate) struct Sleeper {
        pub(crate) target: u64,
        pub(crate) label: u64,
        pub(crate) hint: bool,
    }

    impl Protocol for Sleeper {
        type Message = u64;
        type Output = u64;
        fn step(
            &mut self,
            _ctx: &NodeContext,
            round: u64,
            _inbox: &Inbox<'_, u64>,
            outbox: &mut Outbox<'_, u64>,
        ) -> Option<u64> {
            if round == self.target {
                outbox.broadcast(self.label);
                return Some(self.label);
            }
            None
        }
        fn next_wake(&self, _ctx: &NodeContext, now: u64) -> u64 {
            if self.hint {
                self.target
            } else {
                now
            }
        }
    }

    #[test]
    fn wake_hints_do_not_change_outcomes() {
        let n = 23;
        let tree = path(n);
        let ids = Ids::sequential(n);
        // A spread-out schedule exercising skips, simultaneous wakes, and
        // final-message delivery into sleeping neighbors.
        let target = |v: usize| ((v as u64) * 7 % 19) + (v as u64 % 3) * 11;
        let hinted = run_sync(
            &tree,
            &ids,
            |c| Sleeper {
                target: target(c.node),
                label: c.id,
                hint: true,
            },
            100,
        )
        .unwrap();
        let plain = run_sync(
            &tree,
            &ids,
            |c| Sleeper {
                target: target(c.node),
                label: c.id,
                hint: false,
            },
            100,
        )
        .unwrap();
        assert_eq!(hinted.outputs, plain.outputs);
        assert_eq!(hinted.stats, plain.stats);
        assert_eq!(hinted.profile, plain.profile);
        assert_eq!(hinted.messages, plain.messages);
        for chunk_size in [1, 7, 64, n] {
            for threads in [1, 2, 3] {
                let out = run_sync_with(
                    &tree,
                    &ids,
                    |c| Sleeper {
                        target: target(c.node),
                        label: c.id,
                        hint: true,
                    },
                    100,
                    &EngineConfig {
                        chunk_size,
                        threads,
                        check_arena: true,
                        shard: None,
                    },
                )
                .unwrap();
                assert_eq!(out.outputs, plain.outputs, "cs={chunk_size} t={threads}");
                assert_eq!(out.stats, plain.stats, "cs={chunk_size} t={threads}");
                assert_eq!(out.profile, plain.profile, "cs={chunk_size} t={threads}");
            }
        }
    }

    #[test]
    fn declared_sleepers_are_not_stepped() {
        // Panics if the engine steps a node in a round its wake hint (and
        // the absence of mail) said to skip — proving chunk skipping and
        // fast-forward actually happen.
        struct Strict {
            target: u64,
        }
        impl Protocol for Strict {
            type Message = ();
            type Output = u64;
            fn step(
                &mut self,
                _ctx: &NodeContext,
                round: u64,
                _inbox: &Inbox<'_, ()>,
                _outbox: &mut Outbox<'_, ()>,
            ) -> Option<u64> {
                assert!(
                    round == 0 || round == self.target,
                    "stepped while asleep (round {round}, target {})",
                    self.target
                );
                if round == self.target {
                    Some(round)
                } else {
                    None
                }
            }
            fn next_wake(&self, _ctx: &NodeContext, _now: u64) -> u64 {
                self.target
            }
        }
        let n = 5;
        let tree = path(n);
        let ids = Ids::sequential(n);
        // Far-apart targets force fast-forward across long quiet spans.
        let out = run_sync(
            &tree,
            &ids,
            |c| Strict {
                target: 1 + 10_000 * (c.node as u64 + 1),
            },
            100_000,
        )
        .unwrap();
        for v in 0..n {
            let t = 1 + 10_000 * (v as u64 + 1);
            assert_eq!(out.outputs[v], t);
            assert_eq!(out.stats.round(v), t);
        }
        assert_eq!(out.profile.total_nodes(), n as u64);
        assert_eq!(out.profile.worst_case(), 1 + 10_000 * n as u64);
    }

    #[test]
    fn mail_wakes_a_sleeping_node_early() {
        // Node 0 pings its neighbor at round 0; every other node sleeps
        // until round 50 but must observe mail the moment it arrives.
        struct PingOnce {
            is_source: bool,
            heard: Option<u64>,
        }
        impl Protocol for PingOnce {
            type Message = u64;
            type Output = u64;
            fn step(
                &mut self,
                _ctx: &NodeContext,
                round: u64,
                inbox: &Inbox<'_, u64>,
                outbox: &mut Outbox<'_, u64>,
            ) -> Option<u64> {
                if round == 0 && self.is_source {
                    outbox.broadcast(round);
                    return Some(0);
                }
                if self.heard.is_none() && !inbox.is_empty() {
                    self.heard = Some(round);
                }
                if round >= 50 {
                    return Some(self.heard.unwrap_or(u64::MAX));
                }
                None
            }
            fn next_wake(&self, _ctx: &NodeContext, _now: u64) -> u64 {
                50
            }
        }
        let tree = path(3);
        let ids = Ids::sequential(3);
        let out = run_sync(
            &tree,
            &ids,
            |c| PingOnce {
                is_source: c.node == 0,
                heard: None,
            },
            100,
        )
        .unwrap();
        // Node 1 hears the ping at round 1 (woken by mail, not its hint);
        // node 2 never hears anything and wakes at 50 on its own.
        assert_eq!(out.outputs, vec![0, 1, u64::MAX]);
        assert_eq!(out.stats.round(1), 50);
    }

    #[test]
    fn stale_messages_are_not_redelivered() {
        // The sender fires once at round 0 and then sleeps; its arena slot
        // is never rewritten. The receiver steps every round and counts
        // deliveries — the stamp check must make it see the message exactly
        // once (a stale slot would resurface at round 3, 5, ...).
        struct OneShotSender;
        impl Protocol for OneShotSender {
            type Message = u64;
            type Output = u64;
            fn step(
                &mut self,
                _ctx: &NodeContext,
                round: u64,
                _inbox: &Inbox<'_, u64>,
                outbox: &mut Outbox<'_, u64>,
            ) -> Option<u64> {
                if round == 0 {
                    outbox.broadcast(7);
                } else if round == 8 {
                    return Some(0);
                }
                None
            }
            fn next_wake(&self, _ctx: &NodeContext, _now: u64) -> u64 {
                8
            }
        }
        struct Counter {
            seen: u64,
        }
        impl Protocol for Counter {
            type Message = u64;
            type Output = u64;
            fn step(
                &mut self,
                _ctx: &NodeContext,
                round: u64,
                inbox: &Inbox<'_, u64>,
                _outbox: &mut Outbox<'_, u64>,
            ) -> Option<u64> {
                self.seen += inbox.count() as u64;
                assert_eq!(inbox.is_empty(), inbox.count() == 0);
                if round == 8 {
                    return Some(self.seen);
                }
                None
            }
        }
        enum Either {
            Send(OneShotSender),
            Count(Counter),
        }
        impl Protocol for Either {
            type Message = u64;
            type Output = u64;
            fn step(
                &mut self,
                ctx: &NodeContext,
                round: u64,
                inbox: &Inbox<'_, u64>,
                outbox: &mut Outbox<'_, u64>,
            ) -> Option<u64> {
                match self {
                    Either::Send(p) => p.step(ctx, round, inbox, outbox),
                    Either::Count(p) => p.step(ctx, round, inbox, outbox),
                }
            }
            fn next_wake(&self, ctx: &NodeContext, now: u64) -> u64 {
                match self {
                    Either::Send(p) => p.next_wake(ctx, now),
                    Either::Count(p) => p.next_wake(ctx, now),
                }
            }
        }
        let tree = path(2);
        let ids = Ids::sequential(2);
        for chunk_size in [1, 2] {
            let out = run_sync_with(
                &tree,
                &ids,
                |c| {
                    if c.node == 0 {
                        Either::Send(OneShotSender)
                    } else {
                        Either::Count(Counter { seen: 0 })
                    }
                },
                20,
                &EngineConfig {
                    chunk_size,
                    threads: 1,
                    check_arena: true,
                    shard: None,
                },
            )
            .unwrap();
            assert_eq!(out.outputs[1], 1, "cs={chunk_size}: delivered exactly once");
        }
    }

    /// Negative coverage for the arena write-discipline checker: each
    /// invariant violation is injected directly and must be caught. The
    /// positive direction (clean runs stay clean) rides along on every
    /// test above that sets `check_arena: true`.
    mod arena_checker {
        use super::*;

        fn checker_for_path(n: usize, chunk_size: usize) -> ArenaChecker {
            let tree = path(n);
            ArenaChecker::new(tree.offsets(), n, chunk_size, tree.adjacency().len())
        }

        #[test]
        fn normal_rounds_and_stale_slots_are_clean() {
            let ck = checker_for_path(4, 2);
            ck.record_write(0, 0, 0);
            // Round 1 legitimately reads what round 0 wrote.
            ck.record_read(0, 1);
            // Re-writing the same slot in a later same-parity round is the
            // double-buffer reuse the engine lives on.
            ck.record_write(0, 2, 0);
            ck.record_read(0, 3);
            // Stale slots linger (stamps expire them); re-reads much later
            // are fine.
            ck.record_read(0, 5);
        }

        #[test]
        #[should_panic(expected = "arena double-write")]
        fn injected_double_write_is_caught() {
            let ck = checker_for_path(4, 2);
            ck.record_write(0, 5, 0);
            ck.record_write(0, 5, 0);
        }

        #[test]
        #[should_panic(expected = "arena ownership violation")]
        fn injected_foreign_chunk_write_is_caught() {
            let ck = checker_for_path(4, 2);
            // Slot 0 is node 0's, owned by chunk 0; chunk 1 writes it.
            ck.record_write(0, 0, 1);
        }

        #[test]
        #[should_panic(expected = "arena read-before-barrier")]
        fn injected_cross_barrier_read_is_caught() {
            let ck = checker_for_path(4, 2);
            // A worker racing ahead writes round 4 (arena parity 0) while
            // another is still reading round 3 — whose read side is the
            // same parity-0 arena.
            ck.record_write(0, 4, 0);
            ck.record_read(0, 3);
        }

        #[test]
        fn full_matrix_is_race_clean_under_checking() {
            // A chatty protocol (every node broadcasts every round) across
            // the full chunk-size × thread matrix with checking on: the
            // production write path must satisfy all three invariants.
            let n = 96;
            let tree = lcl_graph::generators::star(n);
            let ids = Ids::random(n, 9);
            for chunk_size in [1, 7, 64, n] {
                for threads in [1, 2, 3] {
                    let out = run_sync_with(
                        &tree,
                        &ids,
                        |c| MinFlood {
                            best: c.id,
                            budget: 4,
                        },
                        100,
                        &EngineConfig {
                            chunk_size,
                            threads,
                            check_arena: true,
                            shard: None,
                        },
                    )
                    .unwrap();
                    assert!(out.outputs.iter().all(|&m| m == 0));
                }
            }
        }
    }
}
