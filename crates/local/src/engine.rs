//! Faithful synchronous message-passing engine for the LOCAL model.
//!
//! Time proceeds in rounds. In round `r` every non-terminated node consumes
//! the messages sent to it in round `r - 1`, updates its state, and either
//! sends messages for round `r + 1` or terminates with an output. A node
//! that terminates in round `r` has termination time `T_v = r` and may post
//! one final batch of messages (delivered in round `r + 1`) so that
//! neighbors can observe its output — the standard LOCAL convention.
//!
//! Message size is unbounded, matching the model; the engine tracks message
//! counts only for diagnostics.

use crate::identifiers::Ids;
use crate::metrics::RoundStats;
use lcl_graph::{NodeId, Tree};
use std::error::Error;
use std::fmt;

/// Static per-node information visible to a protocol.
#[derive(Debug, Clone, Copy)]
pub struct NodeContext {
    /// The node's index (for harness bookkeeping; protocols should treat it
    /// as opaque and use `id` for symmetry breaking).
    pub node: NodeId,
    /// The node's unique identifier.
    pub id: u64,
    /// The node's degree (number of ports).
    pub degree: usize,
    /// The number of nodes in the graph; LOCAL algorithms know `n`.
    pub n: usize,
}

/// What a node does at the end of a round.
#[derive(Debug, Clone)]
pub enum Action<M, O> {
    /// Keep running and send the given `(port, message)` pairs.
    Send(Vec<(usize, M)>),
    /// Terminate now with `output`; `final_messages` are delivered next
    /// round so neighbors can read the decision.
    Output {
        /// The node's final output label.
        output: O,
        /// Messages posted together with termination.
        final_messages: Vec<(usize, M)>,
    },
}

/// A per-node state machine. One instance is created per node by the
/// factory passed to [`run_sync`].
pub trait Protocol {
    /// Message type exchanged with neighbors.
    type Message: Clone;
    /// Output label type.
    type Output: Clone;

    /// Executes one round. `round` starts at 0 (where the inbox is empty);
    /// `inbox` holds `(port, message)` pairs from the previous round.
    fn step(
        &mut self,
        ctx: &NodeContext,
        round: u64,
        inbox: &[(usize, Self::Message)],
    ) -> Action<Self::Message, Self::Output>;
}

/// Errors from [`run_sync`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// Some nodes failed to terminate within the round budget.
    RoundLimitExceeded {
        /// The budget that was exhausted.
        limit: u64,
        /// How many nodes were still running.
        unfinished: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::RoundLimitExceeded { limit, unfinished } => {
                write!(f, "{unfinished} nodes still running after {limit} rounds")
            }
        }
    }
}

impl Error for RunError {}

/// Result of a completed synchronous execution.
#[derive(Debug, Clone)]
pub struct SyncOutcome<O> {
    /// Output of every node.
    pub outputs: Vec<O>,
    /// Per-node termination rounds.
    pub stats: RoundStats<'static>,
    /// Total number of messages delivered.
    pub messages: u64,
}

/// Runs a protocol on every node of `tree` until all nodes terminate.
///
/// `factory` is called once per node to create its state machine.
///
/// # Errors
///
/// Returns [`RunError::RoundLimitExceeded`] if any node is still running
/// after `max_rounds` rounds.
///
/// # Examples
///
/// ```
/// use lcl_graph::generators::path;
/// use lcl_local::engine::{run_sync, Action, NodeContext, Protocol};
/// use lcl_local::identifiers::Ids;
///
/// // Every node immediately outputs its own degree.
/// struct DegreeEcho;
/// impl Protocol for DegreeEcho {
///     type Message = ();
///     type Output = usize;
///     fn step(&mut self, ctx: &NodeContext, _round: u64, _inbox: &[(usize, ())])
///         -> Action<(), usize>
///     {
///         Action::Output { output: ctx.degree, final_messages: vec![] }
///     }
/// }
///
/// let tree = path(3);
/// let ids = Ids::sequential(3);
/// let out = run_sync(&tree, &ids, |_| DegreeEcho, 10)?;
/// assert_eq!(out.outputs, vec![1, 2, 1]);
/// assert_eq!(out.stats.worst_case(), 0);
/// # Ok::<(), lcl_local::engine::RunError>(())
/// ```
pub fn run_sync<P, F>(
    tree: &Tree,
    ids: &Ids,
    mut factory: F,
    max_rounds: u64,
) -> Result<SyncOutcome<P::Output>, RunError>
where
    P: Protocol,
    F: FnMut(&NodeContext) -> P,
{
    let n = tree.node_count();
    assert_eq!(ids.len(), n, "ID assignment must cover all nodes");

    let contexts: Vec<NodeContext> = tree
        .nodes()
        .map(|v| NodeContext {
            node: v,
            id: ids.id(v),
            degree: tree.degree(v),
            n,
        })
        .collect();
    let mut machines: Vec<Option<P>> = contexts.iter().map(|c| Some(factory(c))).collect();
    let mut outputs: Vec<Option<P::Output>> = vec![None; n];
    let mut rounds: Vec<u64> = vec![0; n];
    let mut inboxes: Vec<Vec<(usize, P::Message)>> = vec![Vec::new(); n];
    let mut next_inboxes: Vec<Vec<(usize, P::Message)>> = vec![Vec::new(); n];
    let mut running = n;
    let mut messages: u64 = 0;

    // Port of `v` as seen from neighbor `w`: index of v in w's list.
    let reverse_port = |v: NodeId, w: NodeId| -> usize {
        tree.neighbors(w)
            .iter()
            .position(|&x| x as usize == v)
            .expect("neighbor lists are symmetric")
    };

    let mut round = 0u64;
    while running > 0 {
        if round > max_rounds {
            return Err(RunError::RoundLimitExceeded {
                limit: max_rounds,
                unfinished: running,
            });
        }
        for v in 0..n {
            let Some(machine) = machines[v].as_mut() else {
                continue;
            };
            let action = machine.step(&contexts[v], round, &inboxes[v]);
            let outbound = match action {
                Action::Send(msgs) => msgs,
                Action::Output {
                    output,
                    final_messages,
                } => {
                    outputs[v] = Some(output);
                    rounds[v] = round;
                    machines[v] = None;
                    running -= 1;
                    final_messages
                }
            };
            for (port, msg) in outbound {
                let w = tree.neighbors(v)[port] as usize;
                // Messages to already-terminated nodes are dropped.
                if machines[w].is_some() {
                    next_inboxes[w].push((reverse_port(v, w), msg));
                    messages += 1;
                }
            }
        }
        for v in 0..n {
            inboxes[v].clear();
            std::mem::swap(&mut inboxes[v], &mut next_inboxes[v]);
        }
        round += 1;
    }

    let outputs = outputs
        .into_iter()
        .map(|o| o.expect("all nodes terminated"))
        .collect();
    Ok(SyncOutcome {
        outputs,
        stats: RoundStats::new(rounds),
        messages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::generators::{path, star};

    /// Floods the minimum ID for exactly `budget` rounds, then outputs it.
    struct MinFlood {
        best: u64,
        budget: u64,
    }

    impl Protocol for MinFlood {
        type Message = u64;
        type Output = u64;
        fn step(
            &mut self,
            ctx: &NodeContext,
            round: u64,
            inbox: &[(usize, u64)],
        ) -> Action<u64, u64> {
            for &(_, m) in inbox {
                self.best = self.best.min(m);
            }
            if round == self.budget {
                return Action::Output {
                    output: self.best,
                    final_messages: vec![],
                };
            }
            let msgs = (0..ctx.degree).map(|p| (p, self.best)).collect();
            Action::Send(msgs)
        }
    }

    #[test]
    fn min_flood_on_path_needs_diameter_rounds() {
        let n = 12;
        let tree = path(n);
        // Sequential IDs put the minimum at endpoint node 0, so the far
        // endpoint genuinely needs `diameter` rounds to hear about it.
        let ids = Ids::sequential(n);
        let diam = tree.diameter() as u64;
        let out = run_sync(
            &tree,
            &ids,
            |c| MinFlood {
                best: c.id,
                budget: diam,
            },
            100,
        )
        .unwrap();
        assert!(out.outputs.iter().all(|&m| m == 0));
        assert_eq!(out.stats.worst_case(), diam);
        // One budget short misses the minimum for some node.
        let short = run_sync(
            &tree,
            &ids,
            |c| MinFlood {
                best: c.id,
                budget: diam - 1,
            },
            100,
        )
        .unwrap();
        assert!(short.outputs.iter().any(|&m| m != 0));
    }

    #[test]
    fn min_flood_on_star_is_fast() {
        let tree = star(9);
        let ids = Ids::random(9, 1);
        let out = run_sync(
            &tree,
            &ids,
            |c| MinFlood {
                best: c.id,
                budget: 2,
            },
            100,
        )
        .unwrap();
        assert!(out.outputs.iter().all(|&m| m == 0));
    }

    /// Endpoint flood on a path: endpoints start a token carrying a hop
    /// count; nodes output (distance to first endpoint seen per side) once
    /// both sides arrived. Endpoints treat themselves as one side.
    struct EndpointFlood {
        seen: Vec<Option<u64>>, // per port: hop distance to that side's end
        self_is_end: bool,
    }

    impl Protocol for EndpointFlood {
        type Message = u64;
        type Output = u64; // eccentricity within the path

        fn step(
            &mut self,
            ctx: &NodeContext,
            round: u64,
            inbox: &[(usize, u64)],
        ) -> Action<u64, u64> {
            if round == 0 {
                self.seen = vec![None; ctx.degree];
                self.self_is_end = ctx.degree == 1;
                if ctx.n == 1 {
                    return Action::Output {
                        output: 0,
                        final_messages: vec![],
                    };
                }
                if self.self_is_end {
                    return Action::Send(vec![(0, 1)]);
                }
                return Action::Send(vec![]);
            }
            let mut to_send = Vec::new();
            for &(port, hops) in inbox {
                if self.seen[port].is_none() {
                    self.seen[port] = Some(hops);
                    // Forward to the opposite port if any.
                    if ctx.degree == 2 {
                        to_send.push((1 - port, hops + 1));
                    }
                }
            }
            let done = if self.self_is_end {
                self.seen[0].is_some()
            } else {
                self.seen.iter().all(Option::is_some)
            };
            if done {
                let far = self.seen.iter().flatten().copied().max().unwrap_or(0);
                return Action::Output {
                    output: far,
                    final_messages: to_send,
                };
            }
            Action::Send(to_send)
        }
    }

    #[test]
    fn endpoint_flood_measures_eccentricity() {
        let n = 9;
        let tree = path(n);
        let ids = Ids::sequential(n);
        let out = run_sync(
            &tree,
            &ids,
            |_| EndpointFlood {
                seen: vec![],
                self_is_end: false,
            },
            100,
        )
        .unwrap();
        // Node v on a path of n nodes has eccentricity max(v, n-1-v).
        for v in 0..n {
            assert_eq!(out.outputs[v], (v.max(n - 1 - v)) as u64, "node {v}");
            assert_eq!(out.stats.round(v), out.outputs[v], "node {v}");
        }
        // Node-averaged ~ 3n/4, worst-case = n-1.
        assert_eq!(out.stats.worst_case(), (n - 1) as u64);
    }

    #[test]
    fn round_limit_is_enforced() {
        struct Forever;
        impl Protocol for Forever {
            type Message = ();
            type Output = ();
            fn step(&mut self, _: &NodeContext, _: u64, _: &[(usize, ())]) -> Action<(), ()> {
                Action::Send(vec![])
            }
        }
        let tree = path(3);
        let ids = Ids::sequential(3);
        let err = run_sync(&tree, &ids, |_| Forever, 5).unwrap_err();
        assert_eq!(
            err,
            RunError::RoundLimitExceeded {
                limit: 5,
                unfinished: 3
            }
        );
        assert!(err.to_string().contains("3 nodes"));
    }

    #[test]
    fn single_node_graph() {
        let tree = path(1);
        let ids = Ids::sequential(1);
        let out = run_sync(
            &tree,
            &ids,
            |_| EndpointFlood {
                seen: vec![],
                self_is_end: false,
            },
            10,
        )
        .unwrap();
        assert_eq!(out.outputs, vec![0]);
        assert_eq!(out.stats.worst_case(), 0);
    }

    #[test]
    fn message_count_is_tracked() {
        let tree = path(4);
        let ids = Ids::sequential(4);
        let out = run_sync(
            &tree,
            &ids,
            |c| MinFlood {
                best: c.id,
                budget: 3,
            },
            100,
        )
        .unwrap();
        // 6 directed edges * 3 sending rounds = 18 (rounds 0,1,2 send).
        assert_eq!(out.messages, 18);
    }
}
