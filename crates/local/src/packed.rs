//! Bit-packable message encodings for the sharded engine's packed arenas.
//!
//! The monolithic engine stores each in-flight message as a full
//! `Option<(u32, M)>` slot. The sharded engine (`lcl_shard`) instead
//! packs messages into dense bit arrays: every message type it can carry
//! implements [`PackableMessage`], a reversible encoding into the low
//! bits of a `u128`. The *declared* width ([`PackableMessage::CEIL_BITS`])
//! is an upper bound that is always safe; protocols can narrow it per run
//! through [`Protocol::message_bits`](crate::engine::Protocol::message_bits)
//! hints (e.g. a 3-coloring cascade fits each message in a handful of
//! bits), and the engine falls back to the full ceiling whenever any node
//! declines to hint.
//!
//! The contract is exact round-tripping: for every value `m` a protocol
//! ever sends, `unpack(pack(m)) == m`, and `pack(m)` fits in the width
//! the engine selected. The sharded engine asserts the latter on every
//! send, so a wrong hint fails loudly instead of corrupting messages.

/// A message type with a reversible fixed-ceiling bit encoding.
pub trait PackableMessage: Sized {
    /// Upper bound on the significant bits of any [`pack`](Self::pack)
    /// result; must be ≤ 128. Using exactly this many bits per arena slot
    /// is always correct.
    const CEIL_BITS: u32;

    /// Encodes the message into the low `CEIL_BITS` bits of a `u128`.
    fn pack(&self) -> u128;

    /// Decodes a value produced by [`pack`](Self::pack).
    fn unpack(bits: u128) -> Self;
}

/// Number of significant bits of `value` (0 for 0): the minimal slot
/// width that can hold it.
#[must_use]
pub fn bits_for(value: u128) -> u32 {
    128 - value.leading_zeros()
}

impl PackableMessage for () {
    const CEIL_BITS: u32 = 0;

    fn pack(&self) -> u128 {
        0
    }

    fn unpack(_bits: u128) -> Self {}
}

impl PackableMessage for u64 {
    const CEIL_BITS: u32 = 64;

    fn pack(&self) -> u128 {
        u128::from(*self)
    }

    fn unpack(bits: u128) -> Self {
        bits as u64
    }
}

/// Pairs pack as `high << 64 | low`: `.0` in the low half, `.1` in the
/// high half, so a small `.1` (e.g. a hop distance) keeps the packed
/// value — and thus a [`bits_for`]-derived hint — small.
impl PackableMessage for (u64, u64) {
    const CEIL_BITS: u32 = 128;

    fn pack(&self) -> u128 {
        (u128::from(self.1) << 64) | u128::from(self.0)
    }

    fn unpack(bits: u128) -> Self {
        (bits as u64, (bits >> 64) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_matches_significant_bits() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u128::MAX), 128);
    }

    #[test]
    fn unit_round_trips_in_zero_bits() {
        assert_eq!(<()>::CEIL_BITS, 0);
        assert_eq!(().pack(), 0);
        <()>::unpack(0);
    }

    #[test]
    fn u64_round_trips() {
        for v in [0u64, 1, 42, u64::MAX] {
            assert_eq!(u64::unpack(v.pack()), v);
            assert!(bits_for(v.pack()) <= u64::CEIL_BITS);
        }
    }

    #[test]
    fn pair_round_trips_with_low_first() {
        for pair in [(0u64, 0u64), (7, 3), (u64::MAX, 0), (0, u64::MAX)] {
            assert_eq!(<(u64, u64)>::unpack(pair.pack()), pair);
        }
        // `.1` occupies the high half: a small distance keeps hints small.
        assert_eq!(bits_for((u64::MAX, 0).pack()), 64);
        assert_eq!(bits_for((3u64, 1u64).pack()), 65);
    }
}
