//! Declarative LCL problem descriptions — the problem-first vocabulary of
//! the public surface.
//!
//! The paper's object of study is the LCL *problem*: Fig. 2 maps problem
//! classes, not algorithms, to node-averaged complexities. A
//! [`ProblemSpec`] names one problem declaratively — either as an explicit
//! constraint table (path LCLs as allowed-pair/endpoint tables, black-white
//! problems as constraint multisets) or as a named paper family
//! (`c`-coloring, the Theorem 11 hierarchy, the Definition 25 weighted
//! problems, `d`-free weight sets, …). The harness planner turns a spec
//! into a classified, solvable `Plan`; this module owns only the
//! vocabulary: construction, canonicalization, validation, JSON
//! (de)serialization, and the declared complexity metadata of the families
//! whose class is not decided by an automaton.
//!
//! Specs are cheap, comparable value objects; every constructor
//! canonicalizes (sorted, deduplicated tables) so that equality after a
//! serialization round trip is exact.
//!
//! # Examples
//!
//! ```
//! use lcl_core::problem_spec::{PathTable, ProblemSpec};
//!
//! // Proper 3-coloring of paths, written as an explicit table.
//! let table = PathTable::proper_coloring(3);
//! assert!(table.allows(0, 1) && !table.allows(2, 2));
//!
//! // The same problem as a named preset.
//! let preset = ProblemSpec::preset("3-coloring").expect("known preset");
//! assert_eq!(preset.describe(), "coloring(colors=3)");
//! ```

use crate::landscape::{
    alpha1_log_star, alpha1_poly, efficiency_x, efficiency_x_prime, ComplexityClass,
};
use serde::{Serialize, Value};

/// An input-free LCL on paths, as a symmetric allowed-pair table plus
/// endpoint permissions — the Lemma 16 / \[BBC+19\] problem format.
///
/// Canonical form: `allowed` holds each unordered pair once with
/// `a ≤ b`, sorted; `ends` is sorted and deduplicated. Both constructors
/// and the JSON parser canonicalize, so equality is semantic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathTable {
    /// Number of output labels (`0..labels`).
    pub labels: usize,
    /// Unordered label pairs allowed on an edge (`a ≤ b`, sorted).
    pub allowed: Vec<(u8, u8)>,
    /// Labels permitted on degree-1 endpoints (sorted).
    pub ends: Vec<u8>,
}

impl PathTable {
    /// Builds a table, canonicalizing the pair list and endpoint set.
    /// Use [`PathTable::validate`] to check label ranges.
    #[must_use]
    pub fn new(labels: usize, mut allowed: Vec<(u8, u8)>, mut ends: Vec<u8>) -> Self {
        for pair in &mut allowed {
            if pair.0 > pair.1 {
                *pair = (pair.1, pair.0);
            }
        }
        allowed.sort_unstable();
        allowed.dedup();
        ends.sort_unstable();
        ends.dedup();
        PathTable {
            labels,
            allowed,
            ends,
        }
    }

    /// Proper coloring with `c` colors: all unequal pairs allowed, every
    /// label usable at endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `c == 0` or `c > 255`.
    #[must_use]
    pub fn proper_coloring(c: usize) -> Self {
        assert!(c >= 1 && c <= u8::MAX as usize, "1..=255 colors");
        let mut allowed = Vec::new();
        for a in 0..c as u8 {
            for b in (a + 1)..c as u8 {
                allowed.push((a, b));
            }
        }
        PathTable::new(c, allowed, (0..c as u8).collect())
    }

    /// Checks label ranges and non-degeneracy.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.labels == 0 {
            return Err("path table needs at least one label".into());
        }
        if self.labels > u8::MAX as usize {
            return Err(format!("path table has {} labels; max 255", self.labels));
        }
        let in_range = |l: u8| (l as usize) < self.labels;
        if let Some(&(a, b)) = self
            .allowed
            .iter()
            .find(|&&(a, b)| !in_range(a) || !in_range(b))
        {
            return Err(format!(
                "pair ({a}, {b}) references a label outside 0..{}",
                self.labels
            ));
        }
        if let Some(&l) = self.ends.iter().find(|&&l| !in_range(l)) {
            return Err(format!("endpoint label {l} outside 0..{}", self.labels));
        }
        if self.ends.is_empty() {
            return Err(
                "path table allows no endpoint label (degree-1 nodes cannot output)".into(),
            );
        }
        Ok(())
    }

    /// True when labels `a` and `b` may be adjacent.
    #[must_use]
    pub fn allows(&self, a: u8, b: u8) -> bool {
        let key = (a.min(b), a.max(b));
        self.allowed.binary_search(&key).is_ok()
    }

    /// True when `l` is permitted on a degree-1 endpoint.
    #[must_use]
    pub fn end_allowed(&self, l: u8) -> bool {
        self.ends.binary_search(&l).is_ok()
    }

    /// The full symmetric adjacency matrix (`labels × labels`).
    #[must_use]
    pub fn matrix(&self) -> Vec<Vec<bool>> {
        let mut m = vec![vec![false; self.labels]; self.labels];
        for &(a, b) in &self.allowed {
            m[a as usize][b as usize] = true;
            m[b as usize][a as usize] = true;
        }
        m
    }

    /// Endpoint permissions as a `labels`-sized boolean vector.
    #[must_use]
    pub fn end_vec(&self) -> Vec<bool> {
        let mut e = vec![false; self.labels];
        for &l in &self.ends {
            e[l as usize] = true;
        }
        e
    }

    /// `Some(c)` when this table is exactly the proper `c`-coloring
    /// (all unequal pairs allowed, no self-loops, all endpoints free).
    /// Total over arbitrary tables, including invalid ones.
    #[must_use]
    pub fn as_proper_coloring(&self) -> Option<usize> {
        if self.labels == 0 || self.labels > u8::MAX as usize {
            return None;
        }
        (*self == PathTable::proper_coloring(self.labels)).then_some(self.labels)
    }
}

/// An input-free black-white problem (Definition 70 restricted to one
/// input label): white/black constraint multisets over a small output
/// alphabet, written for trees of maximum degree `max_degree`.
///
/// Canonical form: each multiset is sorted; the white/black lists are
/// sorted and deduplicated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BwTable {
    /// Number of output labels (`0..out_labels`); the planner's testing
    /// procedure is designed for small (binary) alphabets.
    pub out_labels: u8,
    /// Maximum tree degree the constraints are written for. `2` means the
    /// problem lives on paths, where its complexity is decidable.
    pub max_degree: usize,
    /// Output-label multisets accepted around a white node.
    pub white: Vec<Vec<u8>>,
    /// Output-label multisets accepted around a black node.
    pub black: Vec<Vec<u8>>,
}

impl BwTable {
    /// Builds a table, canonicalizing the constraint lists.
    /// Use [`BwTable::validate`] to check ranges.
    #[must_use]
    pub fn new(
        out_labels: u8,
        max_degree: usize,
        mut white: Vec<Vec<u8>>,
        mut black: Vec<Vec<u8>>,
    ) -> Self {
        let canon = |sets: &mut Vec<Vec<u8>>| {
            for m in sets.iter_mut() {
                m.sort_unstable();
            }
            sets.sort();
            sets.dedup();
        };
        canon(&mut white);
        canon(&mut black);
        BwTable {
            out_labels,
            max_degree,
            white,
            black,
        }
    }

    /// The binary "all incident edges share one label" problem on paths.
    #[must_use]
    pub fn all_equal_binary() -> Self {
        let sets = vec![vec![0], vec![1], vec![0, 0], vec![1, 1]];
        BwTable::new(2, 2, sets.clone(), sets)
    }

    /// Checks alphabet and degree ranges.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.out_labels == 0 || self.out_labels > 8 {
            return Err(format!(
                "bw table needs 1..=8 output labels, got {}",
                self.out_labels
            ));
        }
        if !(2..=6).contains(&self.max_degree) {
            return Err(format!(
                "bw table needs max_degree in 2..=6, got {}",
                self.max_degree
            ));
        }
        for (side, sets) in [("white", &self.white), ("black", &self.black)] {
            if sets.is_empty() {
                return Err(format!("bw table has an empty {side} constraint set"));
            }
            for m in sets {
                if m.is_empty() {
                    return Err(format!("bw {side} constraint contains an empty multiset"));
                }
                if m.len() > self.max_degree {
                    return Err(format!(
                        "bw {side} multiset {m:?} exceeds max_degree {}",
                        self.max_degree
                    ));
                }
                if let Some(&l) = m.iter().find(|&&l| l >= self.out_labels) {
                    return Err(format!(
                        "bw {side} label {l} outside 0..{}",
                        self.out_labels
                    ));
                }
            }
        }
        Ok(())
    }

    /// True if `multiset` (any order) is accepted by the given side's
    /// constraint (`white = true` selects the white set).
    #[must_use]
    pub fn accepts(&self, white: bool, multiset: &[u8]) -> bool {
        let mut m = multiset.to_vec();
        m.sort_unstable();
        let sets = if white { &self.white } else { &self.black };
        sets.binary_search(&m).is_ok()
    }

    /// Lowers a *side-symmetric* path problem (`white == black`,
    /// `max_degree ≤ 2`) to its equivalent [`PathTable`] over the edge
    /// labels: a degree-2 node accepting `{a, b}` becomes the allowed pair
    /// `(a, b)`, a degree-1 node accepting `{a}` the endpoint label `a`.
    /// `None` when the sides differ or the problem is written for trees.
    #[must_use]
    pub fn symmetric_path_table(&self) -> Option<PathTable> {
        if self.white != self.black || self.max_degree > 2 {
            return None;
        }
        let n = self.out_labels;
        let mut allowed = Vec::new();
        for a in 0..n {
            for b in a..n {
                if self.accepts(true, &[a, b]) {
                    allowed.push((a, b));
                }
            }
        }
        let ends = (0..n).filter(|&a| self.accepts(true, &[a])).collect();
        Some(PathTable::new(n as usize, allowed, ends))
    }
}

/// The weighted-family regime selector (Definition 25): which phase
/// schedule the problem is built for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemRegime {
    /// `Π^{2.5}_{Δ,d,k}` — polynomial regime (`Θ(n^{α₁})`, Theorems 2–3).
    Poly,
    /// `Π^{3.5}_{Δ,d,k}` — `log*` regime (Theorems 4–5).
    LogStar,
}

impl ProblemRegime {
    /// Stable JSON tag of the regime.
    #[must_use]
    pub fn tag(&self) -> &'static str {
        match self {
            ProblemRegime::Poly => "poly",
            ProblemRegime::LogStar => "logstar",
        }
    }
}

/// A declarative, serializable description of one LCL problem — the unit
/// the planner (`lcl_harness::planner`) classifies and resolves a solver
/// for.
///
/// Explicit-table problems ([`ProblemSpec::Path`], [`ProblemSpec::Bw`])
/// are classified by the decidability machinery; named families carry
/// their class as declared metadata ([`ProblemSpec::declared_class`])
/// computed from the paper's closed-form exponents.
#[derive(Debug, Clone, PartialEq)]
pub enum ProblemSpec {
    /// An explicit path LCL given as an allowed-pair/endpoint table.
    Path(PathTable),
    /// Proper `c`-coloring of paths (`c = 2` is the rigid `Θ(n)` baseline,
    /// `c ≥ 3` the `Θ(log* n)` cell).
    Coloring {
        /// Number of colors.
        colors: usize,
    },
    /// An explicit input-free black-white problem.
    Bw(BwTable),
    /// The Theorem 11 `k`-hierarchical 3½-coloring family on the
    /// Definition 18 lower-bound instances.
    HierarchicalColoring {
        /// Hierarchy depth.
        k: usize,
    },
    /// The Definition 25 weighted problems `Π^{2.5}/Π^{3.5}_{Δ,d,k}`.
    Weighted {
        /// Regime (polynomial or `log*`).
        regime: ProblemRegime,
        /// Degree bound of the active core.
        delta: usize,
        /// Decline budget.
        d: usize,
        /// Hierarchy depth.
        k: usize,
    },
    /// The Lemma 69 weight-augmented 2½-coloring (`Θ(n^{1/k})`).
    WeightAugmented {
        /// Hierarchy depth.
        k: usize,
    },
    /// The `d`-free weight-set problem (Section 7): `anchored` plants an
    /// `A`-node (Algorithm `A`'s workload), unanchored is the pure
    /// geometric-decay workload (Corollary 47).
    DfreeWeight {
        /// Decline budget.
        d: usize,
        /// Whether an adjacency anchor node is present.
        anchored: bool,
    },
    /// The Definition 63 `k`-hierarchical labeling problem
    /// (`O(k · n^{1/k})`, Lemma 65).
    HierarchicalLabeling {
        /// Hierarchy depth.
        k: usize,
    },
}

impl ProblemSpec {
    /// Checks the spec's internal consistency (label ranges, parameter
    /// domains of the closed-form exponents).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ProblemSpec::Path(t) => t.validate(),
            ProblemSpec::Coloring { colors } => {
                if *colors < 2 || *colors > u8::MAX as usize {
                    Err(format!("coloring needs 2..=255 colors, got {colors}"))
                } else {
                    Ok(())
                }
            }
            ProblemSpec::Bw(t) => t.validate(),
            ProblemSpec::HierarchicalColoring { k } => check_k(*k),
            ProblemSpec::Weighted { delta, d, k, .. } => {
                check_k(*k)?;
                if *d == 0 {
                    return Err("weighted problem needs d >= 1".into());
                }
                if *delta < d + 3 {
                    return Err(format!(
                        "weighted problem needs Δ ≥ d + 3 (got Δ = {delta}, d = {d})"
                    ));
                }
                Ok(())
            }
            ProblemSpec::WeightAugmented { k } => check_k(*k),
            ProblemSpec::DfreeWeight { d, .. } => {
                if *d == 0 {
                    Err("d-free problem needs d >= 1".into())
                } else {
                    Ok(())
                }
            }
            ProblemSpec::HierarchicalLabeling { k } => check_k(*k),
        }
    }

    /// A compact human-readable rendering, used in tables and JSON.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            ProblemSpec::Path(t) => format!(
                "path-lcl(labels={},pairs={},ends={})",
                t.labels,
                t.allowed.len(),
                t.ends.len()
            ),
            ProblemSpec::Coloring { colors } => format!("coloring(colors={colors})"),
            ProblemSpec::Bw(t) => format!(
                "bw(out_labels={},max_degree={},white={},black={})",
                t.out_labels,
                t.max_degree,
                t.white.len(),
                t.black.len()
            ),
            ProblemSpec::HierarchicalColoring { k } => format!("hierarchical-coloring(k={k})"),
            ProblemSpec::Weighted {
                regime,
                delta,
                d,
                k,
            } => format!("weighted-{}(delta={delta},d={d},k={k})", regime.tag()),
            ProblemSpec::WeightAugmented { k } => format!("weight-augmented(k={k})"),
            ProblemSpec::DfreeWeight { d, anchored } => {
                format!("dfree(d={d},anchored={anchored})")
            }
            ProblemSpec::HierarchicalLabeling { k } => format!("hierarchical-labeling(k={k})"),
        }
    }

    /// The hierarchy depth `k` the problem carries, when it has one.
    #[must_use]
    pub fn hierarchy_k(&self) -> Option<usize> {
        match *self {
            ProblemSpec::HierarchicalColoring { k }
            | ProblemSpec::Weighted { k, .. }
            | ProblemSpec::WeightAugmented { k }
            | ProblemSpec::HierarchicalLabeling { k } => Some(k),
            _ => None,
        }
    }

    /// The decline budget `d` the problem carries, when it has one.
    #[must_use]
    pub fn decline_d(&self) -> Option<usize> {
        match *self {
            ProblemSpec::Weighted { d, .. } | ProblemSpec::DfreeWeight { d, .. } => Some(d),
            _ => None,
        }
    }

    /// The problem as a path table, when it is one (explicit tables,
    /// colorings, and side-symmetric path-degree BW problems).
    #[must_use]
    pub fn path_table(&self) -> Option<PathTable> {
        match self {
            ProblemSpec::Path(t) => Some(t.clone()),
            // Guarded so the conversion stays total over invalid specs
            // (the resolver probes before validation).
            ProblemSpec::Coloring { colors } if (1..=u8::MAX as usize).contains(colors) => {
                Some(PathTable::proper_coloring(*colors))
            }
            ProblemSpec::Bw(t) => t.symmetric_path_table(),
            _ => None,
        }
    }

    /// The theoretical node-averaged class declared by the paper for the
    /// named families — the classification source where no decision
    /// procedure applies. `None` for explicit tables (those are decided
    /// by the planner's automaton/testing machinery).
    ///
    /// The formulas mirror the corresponding theorems: `Θ((log*
    /// n)^{1/2^{k-1}})` for the Theorem 11 hierarchy, `Θ(n^{α₁(x)})` /
    /// `Θ((log* n)^{α₁(x')})` for the weighted families (Lemmas 33/36),
    /// `Θ(n^{1/k})` for weight augmentation and hierarchical labeling,
    /// `Θ(log n)` for the `d`-free weight problem.
    ///
    /// Total over arbitrary specs: invalid parameters (outside the
    /// closed-form formulas' domains) yield `None` rather than a panic.
    #[must_use]
    pub fn declared_class(&self) -> Option<ComplexityClass> {
        if self.validate().is_err() {
            return None;
        }
        match *self {
            ProblemSpec::Path(_) | ProblemSpec::Coloring { .. } | ProblemSpec::Bw(_) => None,
            ProblemSpec::HierarchicalColoring { k } => Some(ComplexityClass::log_star_pow(
                1.0 / (1u64 << (k.max(1) - 1)) as f64,
            )),
            ProblemSpec::Weighted {
                regime,
                delta,
                d,
                k,
            } => Some(match regime {
                ProblemRegime::Poly => {
                    ComplexityClass::poly(alpha1_poly(efficiency_x(delta, d), k))
                }
                ProblemRegime::LogStar => ComplexityClass::log_star_pow(alpha1_log_star(
                    efficiency_x_prime(delta, d).min(1.0),
                    k,
                )),
            }),
            ProblemSpec::WeightAugmented { k } => Some(ComplexityClass::poly(1.0 / k as f64)),
            ProblemSpec::DfreeWeight { .. } => Some(ComplexityClass::Log),
            ProblemSpec::HierarchicalLabeling { k } => Some(ComplexityClass::poly(1.0 / k as f64)),
        }
    }

    /// The named presets: one spec per problem family the registry's
    /// algorithms solve, under stable kebab-case names. `lcl solve
    /// <name>` and [`ProblemSpec::preset`] accept exactly these.
    #[must_use]
    pub fn presets() -> Vec<(&'static str, ProblemSpec)> {
        vec![
            ("2-coloring", ProblemSpec::Coloring { colors: 2 }),
            ("3-coloring", ProblemSpec::Coloring { colors: 3 }),
            ("5-coloring", ProblemSpec::Coloring { colors: 5 }),
            ("theorem11-k2", ProblemSpec::HierarchicalColoring { k: 2 }),
            ("theorem11-k3", ProblemSpec::HierarchicalColoring { k: 3 }),
            (
                "weighted-poly",
                ProblemSpec::Weighted {
                    regime: ProblemRegime::Poly,
                    delta: 5,
                    d: 2,
                    k: 2,
                },
            ),
            (
                "weighted-logstar",
                ProblemSpec::Weighted {
                    regime: ProblemRegime::LogStar,
                    delta: 6,
                    d: 3,
                    k: 2,
                },
            ),
            ("weight-augmented-k2", ProblemSpec::WeightAugmented { k: 2 }),
            ("weight-augmented-k3", ProblemSpec::WeightAugmented { k: 3 }),
            (
                "dfree-anchored",
                ProblemSpec::DfreeWeight {
                    d: 2,
                    anchored: true,
                },
            ),
            (
                "dfree-decay",
                ProblemSpec::DfreeWeight {
                    d: 3,
                    anchored: false,
                },
            ),
            ("labeling-k2", ProblemSpec::HierarchicalLabeling { k: 2 }),
            ("bw-all-equal", ProblemSpec::Bw(BwTable::all_equal_binary())),
        ]
    }

    /// Looks a preset up by name.
    #[must_use]
    pub fn preset(name: &str) -> Option<ProblemSpec> {
        ProblemSpec::presets()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, spec)| spec)
    }

    /// Parses a spec from the JSON value model (the inverse of
    /// [`Serialize`]; see the module docs for the format).
    ///
    /// # Errors
    ///
    /// A human-readable parse error; malformed input never panics.
    pub fn from_value(value: &Value) -> Result<ProblemSpec, String> {
        let tag = get_str(value, "problem")?;
        let spec = match tag {
            "path" => ProblemSpec::Path(PathTable::new(
                get_usize(value, "labels")?,
                get_pairs(value, "allowed")?,
                get_u8_list(value, "ends")?,
            )),
            "coloring" => ProblemSpec::Coloring {
                colors: get_usize(value, "colors")?,
            },
            "bw" => ProblemSpec::Bw(BwTable::new(
                u8::try_from(get_usize(value, "out_labels")?)
                    .map_err(|_| "field `out_labels` exceeds 255".to_string())?,
                get_usize(value, "max_degree")?,
                get_multisets(value, "white")?,
                get_multisets(value, "black")?,
            )),
            "hierarchical-coloring" => ProblemSpec::HierarchicalColoring {
                k: get_usize(value, "k")?,
            },
            "weighted" => ProblemSpec::Weighted {
                regime: match get_str(value, "regime")? {
                    "poly" => ProblemRegime::Poly,
                    "logstar" => ProblemRegime::LogStar,
                    other => return Err(format!("unknown regime `{other}` (poly|logstar)")),
                },
                delta: get_usize(value, "delta")?,
                d: get_usize(value, "d")?,
                k: get_usize(value, "k")?,
            },
            "weight-augmented" => ProblemSpec::WeightAugmented {
                k: get_usize(value, "k")?,
            },
            "dfree" => ProblemSpec::DfreeWeight {
                d: get_usize(value, "d")?,
                anchored: get_bool(value, "anchored")?,
            },
            "hierarchical-labeling" => ProblemSpec::HierarchicalLabeling {
                k: get_usize(value, "k")?,
            },
            other => return Err(format!("unknown problem tag `{other}`")),
        };
        Ok(spec)
    }
}

fn check_k(k: usize) -> Result<(), String> {
    if k == 0 || k > 16 {
        Err(format!("hierarchy depth k must be in 1..=16, got {k}"))
    } else {
        Ok(())
    }
}

// --- JSON value-model helpers (the vendored serde has no Deserialize) ------

fn get_field<'a>(value: &'a Value, key: &str) -> Result<&'a Value, String> {
    match value {
        Value::Object(entries) => entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field `{key}`")),
        _ => Err(format!("expected an object with field `{key}`")),
    }
}

fn get_str<'a>(value: &'a Value, key: &str) -> Result<&'a str, String> {
    match get_field(value, key)? {
        Value::Str(s) => Ok(s),
        other => Err(format!("field `{key}` must be a string, got {other:?}")),
    }
}

fn get_bool(value: &Value, key: &str) -> Result<bool, String> {
    match get_field(value, key)? {
        Value::Bool(b) => Ok(*b),
        other => Err(format!("field `{key}` must be a boolean, got {other:?}")),
    }
}

fn value_as_usize(v: &Value) -> Option<usize> {
    match *v {
        Value::UInt(u) => usize::try_from(u).ok(),
        Value::Int(i) => usize::try_from(i).ok(),
        _ => None,
    }
}

fn get_usize(value: &Value, key: &str) -> Result<usize, String> {
    let v = get_field(value, key)?;
    value_as_usize(v).ok_or_else(|| format!("field `{key}` must be a non-negative integer"))
}

fn value_as_u8(v: &Value, key: &str) -> Result<u8, String> {
    value_as_usize(v)
        .and_then(|u| u8::try_from(u).ok())
        .ok_or_else(|| format!("field `{key}` must hold labels in 0..=255"))
}

fn get_u8_list(value: &Value, key: &str) -> Result<Vec<u8>, String> {
    match get_field(value, key)? {
        Value::Array(items) => items.iter().map(|v| value_as_u8(v, key)).collect(),
        _ => Err(format!("field `{key}` must be an array of labels")),
    }
}

fn get_pairs(value: &Value, key: &str) -> Result<Vec<(u8, u8)>, String> {
    match get_field(value, key)? {
        Value::Array(items) => items
            .iter()
            .map(|item| match item {
                Value::Array(pair) if pair.len() == 2 => {
                    Ok((value_as_u8(&pair[0], key)?, value_as_u8(&pair[1], key)?))
                }
                _ => Err(format!("field `{key}` must hold two-element [a, b] pairs")),
            })
            .collect(),
        _ => Err(format!("field `{key}` must be an array of pairs")),
    }
}

fn get_multisets(value: &Value, key: &str) -> Result<Vec<Vec<u8>>, String> {
    match get_field(value, key)? {
        Value::Array(items) => items
            .iter()
            .map(|item| match item {
                Value::Array(labels) => labels.iter().map(|v| value_as_u8(v, key)).collect(),
                _ => Err(format!("field `{key}` must hold arrays of labels")),
            })
            .collect(),
        _ => Err(format!("field `{key}` must be an array of multisets")),
    }
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

impl Serialize for PathTable {
    fn to_value(&self) -> Value {
        obj(vec![
            ("problem", Value::Str("path".into())),
            ("labels", Value::UInt(self.labels as u64)),
            (
                "allowed",
                Value::Array(
                    self.allowed
                        .iter()
                        .map(|&(a, b)| {
                            Value::Array(vec![Value::UInt(a.into()), Value::UInt(b.into())])
                        })
                        .collect(),
                ),
            ),
            (
                "ends",
                Value::Array(self.ends.iter().map(|&l| Value::UInt(l.into())).collect()),
            ),
        ])
    }
}

impl Serialize for BwTable {
    fn to_value(&self) -> Value {
        let sets = |sets: &[Vec<u8>]| {
            Value::Array(
                sets.iter()
                    .map(|m| Value::Array(m.iter().map(|&l| Value::UInt(l.into())).collect()))
                    .collect(),
            )
        };
        obj(vec![
            ("problem", Value::Str("bw".into())),
            ("out_labels", Value::UInt(self.out_labels.into())),
            ("max_degree", Value::UInt(self.max_degree as u64)),
            ("white", sets(&self.white)),
            ("black", sets(&self.black)),
        ])
    }
}

impl Serialize for ProblemSpec {
    fn to_value(&self) -> Value {
        match self {
            ProblemSpec::Path(t) => t.to_value(),
            ProblemSpec::Coloring { colors } => obj(vec![
                ("problem", Value::Str("coloring".into())),
                ("colors", Value::UInt(*colors as u64)),
            ]),
            ProblemSpec::Bw(t) => t.to_value(),
            ProblemSpec::HierarchicalColoring { k } => obj(vec![
                ("problem", Value::Str("hierarchical-coloring".into())),
                ("k", Value::UInt(*k as u64)),
            ]),
            ProblemSpec::Weighted {
                regime,
                delta,
                d,
                k,
            } => obj(vec![
                ("problem", Value::Str("weighted".into())),
                ("regime", Value::Str(regime.tag().into())),
                ("delta", Value::UInt(*delta as u64)),
                ("d", Value::UInt(*d as u64)),
                ("k", Value::UInt(*k as u64)),
            ]),
            ProblemSpec::WeightAugmented { k } => obj(vec![
                ("problem", Value::Str("weight-augmented".into())),
                ("k", Value::UInt(*k as u64)),
            ]),
            ProblemSpec::DfreeWeight { d, anchored } => obj(vec![
                ("problem", Value::Str("dfree".into())),
                ("d", Value::UInt(*d as u64)),
                ("anchored", Value::Bool(*anchored)),
            ]),
            ProblemSpec::HierarchicalLabeling { k } => obj(vec![
                ("problem", Value::Str("hierarchical-labeling".into())),
                ("k", Value::UInt(*k as u64)),
            ]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::landscape::Regime;

    #[test]
    fn path_table_canonicalizes() {
        let t = PathTable::new(3, vec![(1, 0), (0, 1), (2, 1)], vec![2, 0, 2]);
        assert_eq!(t.allowed, vec![(0, 1), (1, 2)]);
        assert_eq!(t.ends, vec![0, 2]);
        assert!(t.allows(1, 0) && t.allows(0, 1));
        assert!(!t.allows(0, 2));
        assert!(t.end_allowed(2) && !t.end_allowed(1));
    }

    #[test]
    fn proper_coloring_table_round_trips_to_matrix() {
        let t = PathTable::proper_coloring(3);
        assert_eq!(t.as_proper_coloring(), Some(3));
        let m = t.matrix();
        for (a, row) in m.iter().enumerate() {
            for (b, &cell) in row.iter().enumerate() {
                assert_eq!(cell, a != b);
            }
        }
        assert_eq!(t.end_vec(), vec![true; 3]);
        // A self-loop disqualifies the proper-coloring shape.
        let mut loopy = t.clone();
        loopy.allowed.push((0, 0));
        let loopy = PathTable::new(3, loopy.allowed, loopy.ends);
        assert_eq!(loopy.as_proper_coloring(), None);
    }

    #[test]
    fn validation_catches_out_of_range_labels() {
        assert!(PathTable::new(2, vec![(0, 3)], vec![0]).validate().is_err());
        assert!(PathTable::new(2, vec![(0, 1)], vec![5]).validate().is_err());
        assert!(PathTable::new(2, vec![(0, 1)], vec![]).validate().is_err());
        assert!(PathTable::new(0, vec![], vec![]).validate().is_err());
        assert!(PathTable::proper_coloring(4).validate().is_ok());
    }

    #[test]
    fn bw_table_accepts_and_reduces() {
        let t = BwTable::all_equal_binary();
        assert!(t.validate().is_ok());
        assert!(t.accepts(true, &[0, 0]) && t.accepts(false, &[1]));
        assert!(!t.accepts(true, &[0, 1]));
        let path = t.symmetric_path_table().expect("symmetric path problem");
        assert_eq!(path.labels, 2);
        assert!(path.allows(0, 0) && path.allows(1, 1) && !path.allows(0, 1));
        assert_eq!(path.ends, vec![0, 1]);
    }

    #[test]
    fn asymmetric_or_tree_bw_does_not_reduce() {
        let mut t = BwTable::all_equal_binary();
        t.black.push(vec![0, 1]);
        assert!(t.symmetric_path_table().is_none());
        let tree = BwTable::new(2, 3, vec![vec![0]], vec![vec![0]]);
        assert!(tree.symmetric_path_table().is_none());
    }

    #[test]
    fn bw_validation_catches_ranges() {
        assert!(BwTable::new(0, 2, vec![vec![0]], vec![vec![0]])
            .validate()
            .is_err());
        assert!(BwTable::new(2, 1, vec![vec![0]], vec![vec![0]])
            .validate()
            .is_err());
        assert!(BwTable::new(2, 2, vec![], vec![vec![0]])
            .validate()
            .is_err());
        assert!(BwTable::new(2, 2, vec![vec![5]], vec![vec![0]])
            .validate()
            .is_err());
        assert!(BwTable::new(2, 2, vec![vec![0, 0, 0]], vec![vec![0]])
            .validate()
            .is_err());
    }

    #[test]
    fn presets_are_unique_named_and_valid() {
        let presets = ProblemSpec::presets();
        assert!(presets.len() >= 6, "at least six named presets");
        let mut names: Vec<&str> = presets.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), presets.len(), "preset names collide");
        for (name, spec) in &presets {
            spec.validate()
                .unwrap_or_else(|e| panic!("preset `{name}` invalid: {e}"));
            assert_eq!(
                ProblemSpec::preset(name).as_ref(),
                Some(spec),
                "preset lookup round trip"
            );
        }
        assert!(ProblemSpec::preset("no-such-problem").is_none());
    }

    #[test]
    fn declared_classes_cover_the_named_families() {
        assert!(ProblemSpec::Coloring { colors: 3 }
            .declared_class()
            .is_none());
        let hier = ProblemSpec::HierarchicalColoring { k: 2 }
            .declared_class()
            .unwrap();
        assert_eq!(hier.regime(), Regime::LogStar);
        assert!((hier.exponent().unwrap() - 0.5).abs() < 1e-12);
        let poly = ProblemSpec::Weighted {
            regime: ProblemRegime::Poly,
            delta: 5,
            d: 2,
            k: 2,
        }
        .declared_class()
        .unwrap();
        assert_eq!(poly.regime(), Regime::Poly);
        assert_eq!(
            ProblemSpec::DfreeWeight {
                d: 2,
                anchored: true
            }
            .declared_class(),
            Some(ComplexityClass::Log)
        );
        let lab = ProblemSpec::HierarchicalLabeling { k: 4 }
            .declared_class()
            .unwrap();
        assert!((lab.exponent().unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trips_every_preset() {
        for (name, spec) in ProblemSpec::presets() {
            let value = spec.to_value();
            let parsed = ProblemSpec::from_value(&value)
                .unwrap_or_else(|e| panic!("preset `{name}` failed to parse back: {e}"));
            assert_eq!(parsed, spec, "preset `{name}` round trip");
        }
    }

    #[test]
    fn from_value_rejects_malformed_input() {
        let bad = [
            Value::Null,
            Value::Object(vec![]),
            obj(vec![("problem", Value::Str("nope".into()))]),
            obj(vec![("problem", Value::Str("coloring".into()))]),
            obj(vec![
                ("problem", Value::Str("coloring".into())),
                ("colors", Value::Str("three".into())),
            ]),
            obj(vec![
                ("problem", Value::Str("weighted".into())),
                ("regime", Value::Str("exp".into())),
                ("delta", Value::UInt(5)),
                ("d", Value::UInt(2)),
                ("k", Value::UInt(2)),
            ]),
            obj(vec![
                ("problem", Value::Str("path".into())),
                ("labels", Value::UInt(2)),
                ("allowed", Value::Array(vec![Value::UInt(3)])),
                ("ends", Value::Array(vec![])),
            ]),
        ];
        for value in &bad {
            assert!(
                ProblemSpec::from_value(value).is_err(),
                "accepted malformed {value:?}"
            );
        }
    }

    #[test]
    fn validate_rejects_bad_parameters() {
        assert!(ProblemSpec::Coloring { colors: 1 }.validate().is_err());
        assert!(ProblemSpec::HierarchicalColoring { k: 0 }
            .validate()
            .is_err());
        assert!(ProblemSpec::Weighted {
            regime: ProblemRegime::Poly,
            delta: 4,
            d: 2,
            k: 2
        }
        .validate()
        .is_err());
        assert!(ProblemSpec::DfreeWeight {
            d: 0,
            anchored: false
        }
        .validate()
        .is_err());
        assert!(ProblemSpec::HierarchicalLabeling { k: 17 }
            .validate()
            .is_err());
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(
            ProblemSpec::Coloring { colors: 3 }.describe(),
            "coloring(colors=3)"
        );
        assert_eq!(
            ProblemSpec::Weighted {
                regime: ProblemRegime::LogStar,
                delta: 6,
                d: 3,
                k: 2
            }
            .describe(),
            "weighted-logstar(delta=6,d=3,k=2)"
        );
        assert_eq!(
            ProblemSpec::Path(PathTable::proper_coloring(3)).describe(),
            "path-lcl(labels=3,pairs=3,ends=3)"
        );
    }
}
