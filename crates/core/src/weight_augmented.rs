//! The `k`-hierarchical weight-augmented 2½-coloring problem
//! (Definition 67, Section 10).
//!
//! The "more efficient weight" construction: weight nodes must solve the
//! `k`-hierarchical labeling problem (worst case `Θ(n^{1/k})`, Lemma 65)
//! instead of the `O(log n)`-solvable `d`-free weight problem, which makes
//! the weight gadgets perfectly efficient (`x = 1`, Lemma 68) and realizes
//! node-averaged complexity `Θ(n^{1/k})` exactly (Lemma 69).

use crate::coloring::{ColorLabel, HierarchicalColoring, Variant};
use crate::labeling::{HierarchicalLabeling, LabelingOutput};
use crate::problem::{check_labeling_shape, LclProblem, Violation};
use lcl_graph::levels::Levels;
use lcl_graph::weighted::NodeKind;
use lcl_graph::{induced_components, NodeId, NodeMask, Tree};
use std::fmt;

/// Secondary output of a weight node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecondaryOutput {
    /// Copy of an active node's coloring output.
    Color(ColorLabel),
    /// Refusal; permitted only for compress-labeled nodes with no active
    /// neighbor (rule 5).
    Decline,
}

impl fmt::Display for SecondaryOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecondaryOutput::Color(c) => write!(f, "{c}"),
            SecondaryOutput::Decline => f.write_str("Decline"),
        }
    }
}

/// Output alphabet of the weight-augmented problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AugmentedOutput {
    /// An active node's 2½-coloring label.
    Active(ColorLabel),
    /// A weight node's labeling output plus secondary output.
    Weight {
        /// The hierarchical-labeling part (label + orientation).
        labeling: LabelingOutput,
        /// The secondary output.
        secondary: SecondaryOutput,
    },
}

/// The `k`-hierarchical weight-augmented 2½-coloring LCL (Definition 67).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightAugmented {
    k: usize,
}

impl WeightAugmented {
    /// Creates the problem for `k ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is outside `1..=127`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!((1..=127).contains(&k), "k must be in 1..=127");
        WeightAugmented { k }
    }

    /// The hierarchy depth `k` (shared by the coloring and the labeling).
    pub fn k(&self) -> usize {
        self.k
    }
}

impl LclProblem for WeightAugmented {
    type Input = NodeKind;
    type Output = AugmentedOutput;

    fn name(&self) -> String {
        format!("{}-hierarchical weight-augmented 2.5-coloring", self.k)
    }

    fn checkability_radius(&self) -> usize {
        self.k + 1
    }

    fn verify(
        &self,
        tree: &Tree,
        input: &[Self::Input],
        output: &[Self::Output],
    ) -> Result<(), Violation> {
        check_labeling_shape(tree, input, output);
        let n = tree.node_count();
        let active_mask =
            NodeMask::from_nodes(n, tree.nodes().filter(|&v| input[v] == NodeKind::Active));
        let weight_mask =
            NodeMask::from_nodes(n, tree.nodes().filter(|&v| input[v] == NodeKind::Weight));

        // Alphabet discipline.
        for v in tree.nodes() {
            match (input[v], &output[v]) {
                (NodeKind::Active, AugmentedOutput::Active(_)) => {}
                (NodeKind::Weight, AugmentedOutput::Weight { .. }) => {}
                (NodeKind::Active, _) => {
                    return Err(Violation::new(v, "active node with weight output"));
                }
                (NodeKind::Weight, _) => {
                    return Err(Violation::new(v, "weight node with active output"));
                }
            }
        }
        let active_color = |v: NodeId| match output[v] {
            AugmentedOutput::Active(c) => c,
            _ => unreachable!("checked by alphabet discipline"),
        };
        let weight_out = |v: NodeId| match output[v] {
            AugmentedOutput::Weight {
                labeling,
                secondary,
            } => (labeling, secondary),
            _ => unreachable!("checked by alphabet discipline"),
        };

        // Rule 1: active components solve k-hierarchical 2½-coloring.
        let coloring = HierarchicalColoring::new(self.k, Variant::TwoHalf);
        for comp in induced_components(tree, &active_mask) {
            let comp_mask = NodeMask::from_nodes(n, comp.iter().copied());
            let levels = Levels::compute_masked(tree, &comp_mask, self.k);
            coloring.verify_masked(tree, &comp_mask, &levels, active_color)?;
        }

        // Rule 2: weight components solve k-hierarchical labeling.
        let labeling = HierarchicalLabeling::new(self.k);
        labeling.verify_masked(tree, &weight_mask, |v| weight_out(v).0)?;

        // Rules 3-5 per weight node.
        for v in weight_mask.iter() {
            let (lab, secondary) = weight_out(v);
            let active_neighbors: Vec<NodeId> = tree
                .neighbors(v)
                .iter()
                .map(|&w| w as usize)
                .filter(|&w| input[w] == NodeKind::Active)
                .collect();
            let out_neighbor: Option<NodeId> = lab.out_port.map(|p| tree.neighbors(v)[p] as usize);

            if !active_neighbors.is_empty() {
                // Rule 3: orient toward exactly one active neighbor and copy
                // its output.
                let Some(u) = out_neighbor else {
                    return Err(Violation::new(
                        v,
                        "weight node adjacent to active nodes orients nothing",
                    ));
                };
                if input[u] != NodeKind::Active {
                    return Err(Violation::new(
                        v,
                        "weight node adjacent to an active node must orient toward one",
                    ));
                }
                if secondary != SecondaryOutput::Color(active_color(u)) {
                    return Err(Violation::new(
                        v,
                        format!(
                            "secondary {secondary} differs from oriented active neighbor's {}",
                            active_color(u)
                        ),
                    ));
                }
            }

            // Rule 4: a weight node pointing at another weight node copies
            // its secondary output, unless one of the two legitimately
            // declines (Lemma 68 shows compress children decline while the
            // rake chain copies).
            if let Some(u) = out_neighbor {
                if input[u] == NodeKind::Weight {
                    let (_, sec_u) = weight_out(u);
                    if secondary != SecondaryOutput::Decline
                        && sec_u != SecondaryOutput::Decline
                        && secondary != sec_u
                    {
                        return Err(Violation::new(
                            v,
                            format!("pointing weight node has secondary {secondary} != {sec_u}"),
                        ));
                    }
                }
            }

            // Rule 5: Decline iff compress label and no active neighbor...
            // (the "only if" direction); compress nodes away from active
            // nodes must decline (the "if" direction).
            match secondary {
                SecondaryOutput::Decline => {
                    if !lab.label.is_compress() {
                        return Err(Violation::new(
                            v,
                            "rake-labeled weight node declines its secondary output",
                        ));
                    }
                    if !active_neighbors.is_empty() {
                        return Err(Violation::new(
                            v,
                            "weight node adjacent to an active node declines",
                        ));
                    }
                }
                SecondaryOutput::Color(_) => {
                    if lab.label.is_compress() && active_neighbors.is_empty() {
                        return Err(Violation::new(
                            v,
                            "compress node without active neighbor must decline",
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::HierLabel::{Compress, Rake};
    use lcl_graph::TreeBuilder;
    use ColorLabel::{Black, White};
    use NodeKind::{Active, Weight};

    fn port_of(tree: &Tree, v: NodeId, target: NodeId) -> usize {
        tree.neighbors(v)
            .iter()
            .position(|&w| w as usize == target)
            .unwrap()
    }

    fn w(
        label: crate::labeling::HierLabel,
        port: Option<usize>,
        s: SecondaryOutput,
    ) -> AugmentedOutput {
        AugmentedOutput::Weight {
            labeling: LabelingOutput::new(label, port),
            secondary: s,
        }
    }

    /// Active edge 0-1 with a weight path 2-3 hanging off node 1.
    fn instance() -> (Tree, Vec<NodeKind>) {
        let mut b = TreeBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        (b.build().unwrap(), vec![Active, Active, Weight, Weight])
    }

    #[test]
    fn rake_chain_copies_active_output() {
        let (t, input) = instance();
        let p = WeightAugmented::new(1);
        let out = vec![
            AugmentedOutput::Active(White),
            AugmentedOutput::Active(Black),
            w(
                Rake(1),
                Some(port_of(&t, 2, 1)),
                SecondaryOutput::Color(Black),
            ),
            w(
                Rake(1),
                Some(port_of(&t, 3, 2)),
                SecondaryOutput::Color(Black),
            ),
        ];
        assert!(p.verify(&t, &input, &out).is_ok());
    }

    #[test]
    fn weight_node_must_orient_to_active() {
        let (t, input) = instance();
        let p = WeightAugmented::new(1);
        // Node 2 orients toward node 3 (weight) despite active neighbor 1.
        let out = vec![
            AugmentedOutput::Active(White),
            AugmentedOutput::Active(Black),
            w(
                Rake(1),
                Some(port_of(&t, 2, 3)),
                SecondaryOutput::Color(Black),
            ),
            w(
                Rake(1),
                Some(port_of(&t, 3, 2)),
                SecondaryOutput::Color(Black),
            ),
        ];
        let err = p.verify(&t, &input, &out).unwrap_err();
        assert!(err.rule.contains("orient toward one"), "{err}");
    }

    #[test]
    fn secondary_must_match_oriented_active() {
        let (t, input) = instance();
        let p = WeightAugmented::new(1);
        let out = vec![
            AugmentedOutput::Active(White),
            AugmentedOutput::Active(Black),
            w(
                Rake(1),
                Some(port_of(&t, 2, 1)),
                SecondaryOutput::Color(White), // should be Black
            ),
            w(
                Rake(1),
                Some(port_of(&t, 3, 2)),
                SecondaryOutput::Color(White),
            ),
        ];
        let err = p.verify(&t, &input, &out).unwrap_err();
        assert!(err.rule.contains("differs from oriented"), "{err}");
    }

    #[test]
    fn pointing_chain_must_propagate() {
        let (t, input) = instance();
        let p = WeightAugmented::new(1);
        let out = vec![
            AugmentedOutput::Active(White),
            AugmentedOutput::Active(Black),
            w(
                Rake(1),
                Some(port_of(&t, 2, 1)),
                SecondaryOutput::Color(Black),
            ),
            w(
                Rake(1),
                Some(port_of(&t, 3, 2)),
                SecondaryOutput::Color(White), // breaks the chain
            ),
        ];
        let err = p.verify(&t, &input, &out).unwrap_err();
        assert!(err.rule.contains("pointing weight node"), "{err}");
    }

    #[test]
    fn rake_node_cannot_decline() {
        let (t, input) = instance();
        let p = WeightAugmented::new(1);
        let out = vec![
            AugmentedOutput::Active(White),
            AugmentedOutput::Active(Black),
            w(
                Rake(1),
                Some(port_of(&t, 2, 1)),
                SecondaryOutput::Color(Black),
            ),
            w(Rake(1), Some(port_of(&t, 3, 2)), SecondaryOutput::Decline),
        ];
        let err = p.verify(&t, &input, &out).unwrap_err();
        assert!(err.rule.contains("rake-labeled"), "{err}");
    }

    #[test]
    fn compress_run_declines_away_from_active() {
        // Active 0; weight path 1..=6; compress interior with k = 2.
        let mut b = TreeBuilder::new(7);
        for v in 1..7 {
            b.add_edge(v - 1, v);
        }
        let t = b.build().unwrap();
        let input = vec![Active, Weight, Weight, Weight, Weight, Weight, Weight];
        let p = WeightAugmented::new(2);
        let out = vec![
            AugmentedOutput::Active(White),
            // Node 1: rake R2 adjacent to active; orients to 0; copies W.
            w(
                Rake(2),
                Some(port_of(&t, 1, 0)),
                SecondaryOutput::Color(White),
            ),
            // Nodes 2..=5: compress C1 path; endpoints orient outward to
            // rake neighbors; all decline (no active neighbors).
            w(
                Compress(1),
                Some(port_of(&t, 2, 1)),
                SecondaryOutput::Decline,
            ),
            w(Compress(1), None, SecondaryOutput::Decline),
            w(Compress(1), None, SecondaryOutput::Decline),
            w(
                Compress(1),
                Some(port_of(&t, 5, 6)),
                SecondaryOutput::Decline,
            ),
            // Node 6: rake R2 sink... but rule 5 forces a Color secondary;
            // with no active neighbor any color works? Rule 4: node 5
            // (Decline) points at it — exempted.
            w(Rake(2), None, SecondaryOutput::Color(White)),
        ];
        assert!(
            p.verify(&t, &input, &out).is_ok(),
            "{:?}",
            p.verify(&t, &input, &out)
        );
    }

    #[test]
    fn compress_near_active_cannot_decline() {
        let (t, input) = instance();
        let p = WeightAugmented::new(2);
        // Node 2 (compress) is adjacent to active node 1 but declines its
        // secondary output; rule 3 already catches the mismatch with the
        // oriented active neighbor's output.
        let out = vec![
            AugmentedOutput::Active(White),
            AugmentedOutput::Active(Black),
            w(
                Compress(1),
                Some(port_of(&t, 2, 1)),
                SecondaryOutput::Decline,
            ),
            w(
                Rake(1),
                Some(port_of(&t, 3, 2)),
                SecondaryOutput::Color(Black),
            ),
        ];
        let err = p.verify(&t, &input, &out).unwrap_err();
        assert!(err.rule.contains("differs from oriented"), "{err}");
    }

    #[test]
    fn active_coloring_still_checked() {
        let (t, input) = instance();
        let p = WeightAugmented::new(1);
        let out = vec![
            AugmentedOutput::Active(White),
            AugmentedOutput::Active(White), // improper
            w(
                Rake(1),
                Some(port_of(&t, 2, 1)),
                SecondaryOutput::Color(White),
            ),
            w(
                Rake(1),
                Some(port_of(&t, 3, 2)),
                SecondaryOutput::Color(White),
            ),
        ];
        let err = p.verify(&t, &input, &out).unwrap_err();
        assert!(err.rule.contains("both W"), "{err}");
    }

    #[test]
    fn alphabet_discipline() {
        let (t, input) = instance();
        let p = WeightAugmented::new(1);
        let out = vec![
            AugmentedOutput::Active(White),
            w(Rake(1), None, SecondaryOutput::Decline),
            w(Rake(1), Some(0), SecondaryOutput::Color(White)),
            w(Rake(1), Some(0), SecondaryOutput::Color(White)),
        ];
        let err = p.verify(&t, &input, &out).unwrap_err();
        assert!(err.rule.contains("active node with weight output"), "{err}");
    }

    #[test]
    fn name_and_accessors() {
        let p = WeightAugmented::new(2);
        assert!(p.name().contains("weight-augmented"));
        assert_eq!(p.k(), 2);
        assert_eq!(p.checkability_radius(), 3);
    }
}
