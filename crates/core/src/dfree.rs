//! The `d`-free weight problem (Section 7 of the paper).
//!
//! A subproblem shared by both weighted coloring families: weight nodes
//! must decide between `Decline`, `Connect`, and `Copy` such that nodes
//! adjacent to *adjacent* (`A`) nodes participate, and every `Copy` node
//! has at most `d` declining neighbors. Efficient solutions copy only on a
//! small (`≈ w^x`) subtree, which is exactly the efficiency factor `x` that
//! drives the complexity landscape.

use crate::problem::{check_labeling_shape, LclProblem, Violation};
use lcl_graph::Tree;
use std::fmt;

/// Input alphabet of the `d`-free weight problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DfreeInput {
    /// `A` — an *adjacent* node (stands in for an active node).
    Adjacent,
    /// `W` — a weight node.
    Weight,
}

/// Output alphabet of the `d`-free weight problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DfreeOutput {
    /// Refuse to copy; terminates dependency chains.
    Decline,
    /// Lie on a path connecting two `A`-nodes.
    Connect,
    /// Copy (and in the full weighted problem, wait for) an output.
    Copy,
}

impl fmt::Display for DfreeOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DfreeOutput::Decline => "Decline",
            DfreeOutput::Connect => "Connect",
            DfreeOutput::Copy => "Copy",
        };
        f.write_str(s)
    }
}

/// The `d`-free weight problem with parameter `d < Δ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DFreeWeight {
    d: usize,
}

impl DFreeWeight {
    /// Creates the problem for a given `d ≥ 0`.
    #[must_use]
    pub fn new(d: usize) -> Self {
        DFreeWeight { d }
    }

    /// The free-decline budget `d`.
    pub fn d(&self) -> usize {
        self.d
    }
}

impl LclProblem for DFreeWeight {
    type Input = DfreeInput;
    type Output = DfreeOutput;

    fn name(&self) -> String {
        format!("{}-free weight problem", self.d)
    }

    fn checkability_radius(&self) -> usize {
        1
    }

    fn verify(
        &self,
        tree: &Tree,
        input: &[Self::Input],
        output: &[Self::Output],
    ) -> Result<(), Violation> {
        check_labeling_shape(tree, input, output);
        for v in tree.nodes() {
            match output[v] {
                DfreeOutput::Connect => {
                    // Property 1: A-nodes need ≥ 1 Connect neighbor,
                    // W-nodes need ≥ 2.
                    let connects = tree
                        .neighbors(v)
                        .iter()
                        .filter(|&&w| output[w as usize] == DfreeOutput::Connect)
                        .count();
                    let need = match input[v] {
                        DfreeInput::Adjacent => 1,
                        DfreeInput::Weight => 2,
                    };
                    if connects < need {
                        return Err(Violation::new(
                            v,
                            format!("Connect node has {connects} Connect neighbors, needs {need}"),
                        ));
                    }
                }
                DfreeOutput::Copy => {
                    // Property 2: at most d declining neighbors.
                    let declines = tree
                        .neighbors(v)
                        .iter()
                        .filter(|&&w| output[w as usize] == DfreeOutput::Decline)
                        .count();
                    if declines > self.d {
                        return Err(Violation::new(
                            v,
                            format!(
                                "Copy node has {declines} declining neighbors > d = {}",
                                self.d
                            ),
                        ));
                    }
                }
                DfreeOutput::Decline => {
                    // Property 3: A-nodes must not decline.
                    if input[v] == DfreeInput::Adjacent {
                        return Err(Violation::new(v, "A-node outputs Decline"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::generators::{path, star};
    use DfreeInput::{Adjacent, Weight};
    use DfreeOutput::{Connect, Copy, Decline};

    #[test]
    fn all_weight_all_decline_is_valid() {
        let p = DFreeWeight::new(1);
        let t = path(4);
        let input = vec![Weight; 4];
        let out = vec![Decline; 4];
        assert!(p.verify(&t, &input, &out).is_ok());
    }

    #[test]
    fn a_node_cannot_decline() {
        let p = DFreeWeight::new(1);
        let t = path(3);
        let input = vec![Weight, Adjacent, Weight];
        let out = vec![Decline, Decline, Decline];
        let err = p.verify(&t, &input, &out).unwrap_err();
        assert_eq!(err.node, 1);
        assert!(err.rule.contains("A-node"), "{err}");
    }

    #[test]
    fn copy_respects_decline_budget() {
        let p = DFreeWeight::new(1);
        let t = star(4); // center 0, leaves 1..3
        let input = vec![Weight; 4];
        let mut out = vec![Decline; 4];
        out[0] = Copy;
        // Center copies with 3 declining neighbors but d = 1.
        let err = p.verify(&t, &input, &out).unwrap_err();
        assert!(err.rule.contains("> d = 1"), "{err}");
        // With d = 3 it is fine.
        assert!(DFreeWeight::new(3).verify(&t, &input, &out).is_ok());
    }

    #[test]
    fn connect_path_between_a_nodes() {
        // A - w - w - A: middle weight nodes connect, A-endpoints connect.
        let p = DFreeWeight::new(0);
        let t = path(4);
        let input = vec![Adjacent, Weight, Weight, Adjacent];
        let out = vec![Connect; 4];
        assert!(p.verify(&t, &input, &out).is_ok());
    }

    #[test]
    fn lone_connect_weight_node_rejected() {
        let p = DFreeWeight::new(0);
        let t = path(3);
        let input = vec![Weight, Weight, Weight];
        let out = vec![Decline, Connect, Decline];
        let err = p.verify(&t, &input, &out).unwrap_err();
        assert!(err.rule.contains("needs 2"), "{err}");
    }

    #[test]
    fn a_node_connect_needs_one_neighbor() {
        let p = DFreeWeight::new(0);
        let t = path(2);
        let input = vec![Adjacent, Weight];
        let out = vec![Connect, Decline];
        let err = p.verify(&t, &input, &out).unwrap_err();
        assert!(err.rule.contains("needs 1"), "{err}");
    }

    #[test]
    fn copy_chain_is_valid() {
        let p = DFreeWeight::new(2);
        let t = path(5);
        let input = vec![Adjacent, Weight, Weight, Weight, Weight];
        let out = vec![Copy, Copy, Copy, Copy, Copy];
        assert!(p.verify(&t, &input, &out).is_ok());
        assert_eq!(p.name(), "2-free weight problem");
        assert_eq!(p.checkability_radius(), 1);
        assert_eq!(p.d(), 2);
    }
}
