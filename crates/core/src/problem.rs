//! The LCL problem abstraction and verification errors.

use lcl_graph::{NodeId, Tree};
use std::error::Error;
use std::fmt;

/// A violated local constraint, reported by a verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The node whose radius-`r` neighborhood violates the constraint.
    pub node: NodeId,
    /// Human-readable description of the violated rule.
    pub rule: String,
}

impl Violation {
    /// Creates a violation report for `node`.
    #[must_use]
    pub fn new(node: NodeId, rule: impl Into<String>) -> Self {
        Violation {
            node,
            rule: rule.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "constraint violated at node {}: {}",
            self.node, self.rule
        )
    }
}

impl Error for Violation {}

/// A locally checkable labeling problem: finite input/output alphabets and
/// a constant-radius constraint, verified against a concrete labeled tree.
///
/// The trait captures what the paper's Section 2 calls
/// `Π = (Σ_in, Σ_out, C, r)`; each implementor fixes the two alphabets as
/// associated types and `C` as the logic of [`LclProblem::verify`].
pub trait LclProblem {
    /// Per-node input labels (`Σ_in`); use `()` for input-free problems.
    type Input: Clone;
    /// Per-node output labels (`Σ_out`).
    type Output: Clone + fmt::Debug;

    /// A short human-readable problem name, e.g. `"Π^{2.5}_{5,2,3}"`.
    fn name(&self) -> String;

    /// The checkability radius `r`.
    fn checkability_radius(&self) -> usize;

    /// Checks the constraint at every node.
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] found, if any.
    fn verify(
        &self,
        tree: &Tree,
        input: &[Self::Input],
        output: &[Self::Output],
    ) -> Result<(), Violation>;
}

/// Asserts that `input` and `output` cover every node of `tree`.
///
/// # Panics
///
/// Panics on length mismatch — that is a harness bug, not a constraint
/// violation.
pub fn check_labeling_shape<I, O>(tree: &Tree, input: &[I], output: &[O]) {
    assert_eq!(
        input.len(),
        tree.node_count(),
        "input labeling must cover all nodes"
    );
    assert_eq!(
        output.len(),
        tree.node_count(),
        "output labeling must cover all nodes"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display() {
        let v = Violation::new(3, "level-1 node labeled E");
        assert!(v.to_string().contains("node 3"));
        assert!(v.to_string().contains("level-1"));
    }

    #[test]
    fn violation_is_error() {
        let v: Box<dyn Error> = Box::new(Violation::new(0, "x"));
        assert!(v.source().is_none());
    }

    #[test]
    #[should_panic(expected = "cover all nodes")]
    fn shape_check_panics_on_mismatch() {
        let tree = lcl_graph::generators::path(3);
        check_labeling_shape(&tree, &[(); 3], &[0u8; 2]);
    }
}
