//! The node-averaged complexity landscape of LCLs on bounded-degree trees.
//!
//! This crate is the core of the workspace reproducing *"Completing the
//! Node-Averaged Complexity Landscape of LCLs on Trees"* (PODC 2024). It
//! defines every LCL problem family the paper introduces, with full
//! constraint verifiers, plus the closed-form complexity landscape:
//!
//! - [`problem`] — the [`LclProblem`] abstraction,
//! - [`coloring`] — `k`-hierarchical 2½- and 3½-coloring (Definitions 8, 9),
//! - [`dfree`] — the `d`-free weight problem (Section 7),
//! - [`weighted`] — the weighted problems `Π^{2.5}/Π^{3.5}_{Δ,d,k}`
//!   (Definition 22),
//! - [`labeling`] — the `k`-hierarchical labeling problem (Definition 63),
//! - [`weight_augmented`] — weight-augmented 2½-coloring (Definition 67),
//! - [`landscape`] — exponent formulas `α₁(x)` (Lemmas 33/36), parameter
//!   synthesis for the density theorems (Theorems 1 and 6), and the Fig. 2
//!   region map,
//! - [`params`] — concrete instance parameters (`ℓ_i`, `γ_i`),
//! - [`problem_spec`] — the declarative, serializable [`ProblemSpec`]
//!   vocabulary the problem-first solver surface is built on (explicit
//!   path/black-white tables plus every named paper family),
//! - [`churn`] — the seeded dynamic-workload vocabulary ([`ChurnScript`])
//!   driving the harness's incremental re-solving sessions.
//!
//! # Examples
//!
//! Synthesize an LCL whose node-averaged complexity lands in a target
//! exponent window (constructive Theorem 1):
//!
//! ```
//! use lcl_core::landscape::synthesize_poly;
//!
//! let spec = synthesize_poly(0.21, 0.24)?;
//! let c = spec.exponent();
//! assert!(c > 0.21 && c < 0.24);
//! # Ok::<(), lcl_core::landscape::LandscapeError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod churn;
pub mod coloring;
pub mod dfree;
pub mod labeling;
pub mod landscape;
pub mod params;
pub mod problem;
pub mod problem_spec;
pub mod weight_augmented;
pub mod weighted;

pub use churn::{ChurnMix, ChurnScript};
pub use coloring::{ColorLabel, HierarchicalColoring, Variant};
pub use problem::{LclProblem, Violation};
pub use problem_spec::{BwTable, PathTable, ProblemRegime, ProblemSpec};
