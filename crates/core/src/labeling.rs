//! The `k`-hierarchical labeling problem (Definition 63).
//!
//! An LCL re-encoding of a `(γ, ℓ, k)` rake-and-compress decomposition:
//! nodes output *rake* labels `R_1 < ... < R_k` or *compress* labels
//! `C_1 < ... < C_{k-1}` (interleaved as `R_1 < C_1 < R_2 < ... < R_k`)
//! plus an edge orientation. Because only `k` rake layers exist, the
//! problem has worst-case complexity `Θ(n^{1/k})` (Lemma 65), which is what
//! lets Section 10 build weight gadgets with efficiency factor `x = 1`.
//!
//! The paper's `Σ_out` lists labels `R_0, ..., R_k, C_1, ..., C_k`, but its
//! rules only ever use `R_1..R_k` and `C_1..C_{k-1}`; we implement the
//! latter.

use crate::problem::{check_labeling_shape, LclProblem, Violation};
use lcl_graph::{NodeId, NodeMask, Tree};
use std::fmt;

/// A rake or compress label with its position in the total order
/// `R_1 < C_1 < R_2 < C_2 < ... < C_{k-1} < R_k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HierLabel {
    /// Rake label `R_i`, `i ∈ 1..=k`.
    Rake(u8),
    /// Compress label `C_i`, `i ∈ 1..=k-1`.
    Compress(u8),
}

impl HierLabel {
    /// Position in the interleaved order (`R_i ↦ 2i-1`, `C_i ↦ 2i`).
    pub fn order_key(self) -> u16 {
        match self {
            HierLabel::Rake(i) => 2 * i as u16 - 1,
            HierLabel::Compress(i) => 2 * i as u16,
        }
    }

    /// True for compress labels.
    pub fn is_compress(self) -> bool {
        matches!(self, HierLabel::Compress(_))
    }
}

impl PartialOrd for HierLabel {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HierLabel {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.order_key().cmp(&other.order_key())
    }
}

impl fmt::Display for HierLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierLabel::Rake(i) => write!(f, "R{i}"),
            HierLabel::Compress(i) => write!(f, "C{i}"),
        }
    }
}

/// Output of one node: a label plus an optional outgoing edge (given as a
/// port index into the node's adjacency list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelingOutput {
    /// The hierarchical label.
    pub label: HierLabel,
    /// Port of the edge oriented *away* from this node, if any.
    pub out_port: Option<usize>,
}

impl LabelingOutput {
    /// Convenience constructor.
    #[must_use]
    pub fn new(label: HierLabel, out_port: Option<usize>) -> Self {
        LabelingOutput { label, out_port }
    }
}

/// The `k`-hierarchical labeling problem (Definition 63).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchicalLabeling {
    k: usize,
}

impl HierarchicalLabeling {
    /// Creates the problem for `k ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > 127`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!((1..=127).contains(&k), "k must be in 1..=127");
        HierarchicalLabeling { k }
    }

    /// The number of rake labels `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// True if `label` belongs to this problem's alphabet.
    pub fn label_in_alphabet(&self, label: HierLabel) -> bool {
        match label {
            HierLabel::Rake(i) => (1..=self.k as u8).contains(&i),
            HierLabel::Compress(i) => self.k >= 2 && (1..=(self.k - 1) as u8).contains(&i),
        }
    }

    /// Verifies the constraints on the subgraph induced by `mask`.
    ///
    /// Out-ports pointing outside the mask are permitted (they occur in the
    /// weight-augmented problem, where weight nodes orient toward active
    /// nodes); such a node has no outgoing edge *within* the subgraph but
    /// has spent its orientation budget.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn verify_masked(
        &self,
        tree: &Tree,
        mask: &NodeMask,
        out: impl Fn(NodeId) -> LabelingOutput,
    ) -> Result<(), Violation> {
        // `points_to(v) = Some(u)` if v's out-edge targets u inside the mask.
        let points_to = |v: NodeId| -> Option<NodeId> {
            out(v).out_port.and_then(|p| {
                let u = *tree.neighbors(v).get(p)? as usize;
                mask.contains(u).then_some(u)
            })
        };
        for v in mask.iter() {
            let ov = out(v);
            if !self.label_in_alphabet(ov.label) {
                return Err(Violation::new(
                    v,
                    format!("label {} outside alphabet for k = {}", ov.label, self.k),
                ));
            }
            if let Some(p) = ov.out_port {
                if p >= tree.degree(v) {
                    return Err(Violation::new(
                        v,
                        format!("out-port {p} out of range for degree {}", tree.degree(v)),
                    ));
                }
            }
            let masked_neighbors: Vec<NodeId> = tree
                .neighbors(v)
                .iter()
                .map(|&w| w as usize)
                .filter(|&w| mask.contains(w))
                .collect();

            // Rule 1: all edges adjacent to a rake label must be oriented.
            if matches!(ov.label, HierLabel::Rake(_)) {
                for &w in &masked_neighbors {
                    let oriented = points_to(v) == Some(w) || points_to(w) == Some(v);
                    if !oriented {
                        return Err(Violation::new(
                            v,
                            format!("edge to {w} adjacent to rake label but unoriented"),
                        ));
                    }
                }
            }

            let compress_neighbors = masked_neighbors
                .iter()
                .filter(|&&w| out(w).label.is_compress())
                .count();

            // Rule 2 (exception part): compress nodes with two compress
            // neighbors must not have any outgoing edge.
            if ov.label.is_compress() && compress_neighbors >= 2 && ov.out_port.is_some() {
                return Err(Violation::new(
                    v,
                    "interior compress node must not have an outgoing edge",
                ));
            }

            // Rule 3: orientation is monotone in the label order.
            if let Some(u) = points_to(v) {
                if out(u).label < ov.label {
                    return Err(Violation::new(
                        v,
                        format!(
                            "oriented edge into smaller label: {} -> {}",
                            ov.label,
                            out(u).label
                        ),
                    ));
                }
            }

            // Rules 4 & 5: compress labels induce disjoint paths, and
            // different compress labels are never adjacent.
            if let HierLabel::Compress(ci) = ov.label {
                let mut same = 0;
                for &w in &masked_neighbors {
                    match out(w).label {
                        HierLabel::Compress(cj) if cj == ci => same += 1,
                        HierLabel::Compress(cj) => {
                            return Err(Violation::new(
                                v,
                                format!("adjacent distinct compress labels C{ci} and C{cj}"),
                            ));
                        }
                        _ => {}
                    }
                }
                if same > 2 {
                    return Err(Violation::new(
                        v,
                        format!("compress label C{ci} induces degree {same} > 2"),
                    ));
                }
            }

            // Rule 6: a rake node has at most one compress neighbor pointing
            // at it; if one exists, every neighbor pointing at it has a
            // strictly lower label.
            if matches!(ov.label, HierLabel::Rake(_)) {
                let pointing: Vec<NodeId> = masked_neighbors
                    .iter()
                    .copied()
                    .filter(|&w| points_to(w) == Some(v))
                    .collect();
                let compress_pointing = pointing
                    .iter()
                    .filter(|&&w| out(w).label.is_compress())
                    .count();
                if compress_pointing > 1 {
                    return Err(Violation::new(
                        v,
                        format!("{compress_pointing} compress neighbors point at rake node"),
                    ));
                }
                if compress_pointing == 1 {
                    for &w in &pointing {
                        if out(w).label >= ov.label {
                            return Err(Violation::new(
                                v,
                                format!(
                                    "with a compress in-neighbor, in-neighbor {w} has label \
                                     {} not strictly below {}",
                                    out(w).label,
                                    ov.label
                                ),
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

impl LclProblem for HierarchicalLabeling {
    type Input = ();
    type Output = LabelingOutput;

    fn name(&self) -> String {
        format!("{}-hierarchical labeling", self.k)
    }

    fn checkability_radius(&self) -> usize {
        1
    }

    fn verify(
        &self,
        tree: &Tree,
        input: &[Self::Input],
        output: &[Self::Output],
    ) -> Result<(), Violation> {
        check_labeling_shape(tree, input, output);
        let mask = NodeMask::full(tree.node_count());
        self.verify_masked(tree, &mask, |v| output[v])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::generators::{path, star};
    use HierLabel::{Compress, Rake};

    fn port_of(tree: &Tree, v: NodeId, target: NodeId) -> usize {
        tree.neighbors(v)
            .iter()
            .position(|&w| w as usize == target)
            .unwrap()
    }

    #[test]
    fn label_order_is_interleaved() {
        assert!(Rake(1) < Compress(1));
        assert!(Compress(1) < Rake(2));
        assert!(Rake(2) < Compress(2));
        assert!(Compress(2) < Rake(3));
        assert_eq!(Rake(2).order_key(), 3);
        assert_eq!(format!("{}", Compress(2)), "C2");
    }

    #[test]
    fn alphabet_bounds() {
        let p = HierarchicalLabeling::new(2);
        assert!(p.label_in_alphabet(Rake(1)));
        assert!(p.label_in_alphabet(Rake(2)));
        assert!(p.label_in_alphabet(Compress(1)));
        assert!(!p.label_in_alphabet(Rake(3)));
        assert!(!p.label_in_alphabet(Compress(2)));
        let p1 = HierarchicalLabeling::new(1);
        assert!(!p1.label_in_alphabet(Compress(1)));
    }

    /// Star: all leaves rake R1 pointing to the center, center R2.
    #[test]
    fn star_rake_tower_accepted() {
        let t = star(5);
        let p = HierarchicalLabeling::new(2);
        let mut out = vec![LabelingOutput::new(Rake(2), None); 5];
        for (leaf, slot) in out.iter_mut().enumerate().skip(1) {
            *slot = LabelingOutput::new(Rake(1), Some(port_of(&t, leaf, 0)));
        }
        let input = vec![(); 5];
        assert!(p.verify(&t, &input, &out).is_ok());
    }

    #[test]
    fn unoriented_rake_edge_rejected() {
        let t = star(3);
        let p = HierarchicalLabeling::new(2);
        // Leaf 1 does not orient its edge.
        let out = vec![
            LabelingOutput::new(Rake(2), None),
            LabelingOutput::new(Rake(1), None),
            LabelingOutput::new(Rake(1), Some(0)),
        ];
        let err = p.verify(&t, &[(); 3], &out).unwrap_err();
        assert!(err.rule.contains("unoriented"), "{err}");
    }

    #[test]
    fn orientation_must_increase_labels() {
        let t = path(2);
        let p = HierarchicalLabeling::new(2);
        // R2 points into R1: decreasing.
        let out = vec![
            LabelingOutput::new(Rake(2), Some(0)),
            LabelingOutput::new(Rake(1), None),
        ];
        let err = p.verify(&t, &[(); 2], &out).unwrap_err();
        assert!(err.rule.contains("smaller label"), "{err}");
    }

    /// Path handled as one compress layer: endpoints R2, interior C1.
    #[test]
    fn compress_path_accepted() {
        let t = path(6);
        let p = HierarchicalLabeling::new(2);
        let out = vec![
            // Node 0: R2 endpoint; receives orientation from node 1.
            LabelingOutput::new(Rake(2), None),
            // Node 1..4: C1; endpoints of the compress run point outward.
            LabelingOutput::new(Compress(1), Some(port_of(&t, 1, 0))),
            LabelingOutput::new(Compress(1), None),
            LabelingOutput::new(Compress(1), None),
            LabelingOutput::new(Compress(1), Some(port_of(&t, 4, 5))),
            LabelingOutput::new(Rake(2), None),
        ];
        assert!(p.verify(&t, &[(); 6], &out).is_ok());
    }

    #[test]
    fn interior_compress_node_must_not_orient() {
        let t = path(5);
        let p = HierarchicalLabeling::new(2);
        let mut out = vec![
            LabelingOutput::new(Rake(2), None),
            LabelingOutput::new(Compress(1), Some(0)),
            LabelingOutput::new(Compress(1), Some(0)), // interior: illegal
            LabelingOutput::new(Compress(1), Some(1)),
            LabelingOutput::new(Rake(2), None),
        ];
        out[1] = LabelingOutput::new(Compress(1), Some(port_of(&t, 1, 0)));
        out[3] = LabelingOutput::new(Compress(1), Some(port_of(&t, 3, 4)));
        let err = p.verify(&t, &[(); 5], &out).unwrap_err();
        assert!(err.rule.contains("interior compress"), "{err}");
    }

    #[test]
    fn distinct_compress_labels_cannot_touch() {
        let t = path(4);
        let p = HierarchicalLabeling::new(3);
        let out = vec![
            LabelingOutput::new(Rake(3), None),
            LabelingOutput::new(Compress(1), Some(0)),
            LabelingOutput::new(Compress(2), Some(1)),
            LabelingOutput::new(Rake(3), None),
        ];
        let err = p.verify(&t, &[(); 4], &out).unwrap_err();
        assert!(err.rule.contains("distinct compress"), "{err}");
    }

    #[test]
    fn compress_must_induce_paths() {
        let t = star(4);
        let p = HierarchicalLabeling::new(2);
        // Everything C1: center has 3 same-compress neighbors.
        let out = vec![LabelingOutput::new(Compress(1), None); 4];
        let err = p.verify(&t, &[(); 4], &out).unwrap_err();
        assert!(err.rule.contains("degree 3 > 2"), "{err}");
    }

    #[test]
    fn rule6_single_compress_in_neighbor() {
        // Path 0-1-2, both 0 and 2 are C1 pointing at rake node 1.
        let t = path(3);
        let p = HierarchicalLabeling::new(2);
        let out = vec![
            LabelingOutput::new(Compress(1), Some(0)),
            LabelingOutput::new(Rake(2), None),
            LabelingOutput::new(Compress(1), Some(0)),
        ];
        let err = p.verify(&t, &[(); 3], &out).unwrap_err();
        assert!(err.rule.contains("compress neighbors point"), "{err}");
    }

    #[test]
    fn rule6_other_in_neighbors_strictly_lower() {
        // Star center R2 with one compress in-neighbor and one R2
        // in-neighbor: the R2 one is not strictly lower.
        let t = star(3);
        let p = HierarchicalLabeling::new(2);
        let out = vec![
            LabelingOutput::new(Rake(2), None),
            LabelingOutput::new(Compress(1), Some(0)),
            LabelingOutput::new(Rake(2), Some(0)),
        ];
        let err = p.verify(&t, &[(); 3], &out).unwrap_err();
        assert!(err.rule.contains("strictly below"), "{err}");
    }

    #[test]
    fn masked_out_ports_may_leave_mask() {
        // Path 0-1-2 where node 0 is outside the mask; node 1 (rake R1)
        // orients toward node 0: legal, no in-mask outgoing edge.
        let t = path(3);
        let p = HierarchicalLabeling::new(2);
        let mask = NodeMask::from_nodes(3, [1, 2]);
        let out = [
            LabelingOutput::new(Rake(1), None), // ignored (outside mask)
            LabelingOutput::new(Rake(1), Some(port_of(&t, 1, 0))),
            LabelingOutput::new(Rake(2), None),
        ];
        // Node 1 spent its out-edge on node 0 (outside the mask) and node 2
        // orients nothing, so the in-mask edge {1,2} is adjacent to rake
        // labels but unoriented: violation.
        let err = p.verify_masked(&t, &mask, |v| out[v]).unwrap_err();
        assert!(err.rule.contains("unoriented"), "{err}");
        // Fix: node 2 has no out-edge; let node 1 point at 2 instead and
        // node 2 be the sink.
        let out = [
            LabelingOutput::new(Rake(1), None),
            LabelingOutput::new(Rake(1), Some(port_of(&t, 1, 2))),
            LabelingOutput::new(Rake(2), None),
        ];
        assert!(p.verify_masked(&t, &mask, |v| out[v]).is_ok());
    }

    #[test]
    fn name_and_radius() {
        let p = HierarchicalLabeling::new(3);
        assert_eq!(p.name(), "3-hierarchical labeling");
        assert_eq!(p.checkability_radius(), 1);
        assert_eq!(p.k(), 3);
    }
}
