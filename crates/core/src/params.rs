//! Instance parameters: turning the paper's asymptotic path lengths into
//! concrete construction sizes.
//!
//! The lower-bound constructions and the generic algorithms are driven by
//! per-level path lengths `ℓ_i` / phase parameters `γ_i`:
//!
//! - Theorem 11 instances use `ℓ_i = t^{2^{i-1}}` with
//!   `t = (log* n)^{1/2^{k-1}}`,
//! - the polynomial regime (Section 6.1) uses `ℓ_i = n^{α_i}`,
//! - the `log*` regime (Section 6.2) uses `ℓ_i = (log* n)^{α_i}`,
//!
//! and in all cases `ℓ_k` absorbs the remaining budget so that
//! `∏ ℓ_i ≈ n`.

use crate::landscape::{alphas_log_star, alphas_poly};
use lcl_local::math::{log_star, powf_round};

/// Path lengths `ℓ_1, ..., ℓ_k` for a polynomial-regime instance of target
/// core size `n` and efficiency factor `x` (Section 6.1).
///
/// # Panics
///
/// Panics if `k == 0` or `n == 0`.
pub fn poly_lengths(n: usize, x: f64, k: usize) -> Vec<usize> {
    assert!(k >= 1 && n >= 1);
    let alphas = alphas_poly(x, k);
    close_with_budget(n, &alphas)
}

/// Path lengths for a `log*`-regime instance (Section 6.2): the first
/// `k - 1` levels are polynomial in `log* n`, the top level absorbs `n`.
///
/// # Panics
///
/// Panics if `k == 0` or `n == 0`.
pub fn log_star_lengths(n: usize, x: f64, k: usize) -> Vec<usize> {
    assert!(k >= 1 && n >= 1);
    let alphas = alphas_log_star(x, k);
    let base = log_star(n as u64) as f64;
    let mut lengths: Vec<usize> = alphas.iter().map(|&a| powf_round(base, a)).collect();
    let used: usize = lengths.iter().product();
    lengths.push((n / used.max(1)).max(1));
    lengths
}

/// Path lengths for a Theorem 11 instance: `ℓ_i = t^{2^{i-1}}` with
/// `t = (log* n)^{1/2^{k-1}}` and `ℓ_k = n / ∏_{i<k} ℓ_i`.
///
/// # Panics
///
/// Panics if `k == 0` or `n == 0`.
pub fn theorem11_lengths(n: usize, k: usize) -> Vec<usize> {
    assert!(k >= 1 && n >= 1);
    let t = (log_star(n as u64) as f64).powf(1.0 / (1u64 << (k - 1)) as f64);
    let mut lengths: Vec<usize> = (1..k)
        .map(|i| powf_round(t, (1u64 << (i - 1)) as f64))
        .collect();
    let used: usize = lengths.iter().product();
    lengths.push((n / used.max(1)).max(1));
    lengths
}

/// Phase parameters `γ_1, ..., γ_{k-1}` for the generic algorithm in the
/// polynomial regime: `γ_i = n^{α_i}` (Section 7.1).
pub fn poly_gammas(n: usize, x: f64, k: usize) -> Vec<usize> {
    alphas_poly(x, k)
        .iter()
        .map(|&a| powf_round(n as f64, a))
        .collect()
}

/// Phase parameters for the `log*` regime: `γ_i = (log* n)^{α_i}`
/// (Section 8.2, using the `x'`-based alphas).
pub fn log_star_gammas(n: usize, x: f64, k: usize) -> Vec<usize> {
    let base = log_star(n as u64) as f64;
    alphas_log_star(x, k)
        .iter()
        .map(|&a| powf_round(base, a))
        .collect()
}

/// Phase parameters for Theorem 11's upper bound: `γ_i = t^{2^{i-1}}` with
/// `t = (log* n)^{1/2^{k-1}}` (Lemma 14).
pub fn theorem11_gammas(n: usize, k: usize) -> Vec<usize> {
    let t = (log_star(n as u64) as f64).powf(1.0 / (1u64 << (k - 1)) as f64);
    (1..k)
        .map(|i| powf_round(t, (1u64 << (i - 1)) as f64))
        .collect()
}

/// Fills lengths from fractional exponents of `n` and reserves the top
/// level for the leftover budget.
fn close_with_budget(n: usize, alphas: &[f64]) -> Vec<usize> {
    let nf = n as f64;
    let mut lengths: Vec<usize> = alphas.iter().map(|&a| powf_round(nf, a)).collect();
    let used: usize = lengths.iter().product();
    lengths.push((n / used.max(1)).max(1));
    lengths
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::hierarchical::LowerBoundGraph;

    #[test]
    fn poly_lengths_product_tracks_n() {
        for k in 2..=4 {
            for n in [10_000usize, 100_000] {
                let lengths = poly_lengths(n, 0.5, k);
                assert_eq!(lengths.len(), k);
                let product: usize = lengths.iter().product();
                // Rounding keeps the product within a constant factor.
                assert!(product >= n / 4 && product <= 4 * n, "{lengths:?} vs {n}");
            }
        }
    }

    #[test]
    fn poly_lengths_are_increasing_per_level() {
        // α_i = (2-x) α_{i-1} > α_{i-1}: lengths grow with the level.
        let lengths = poly_lengths(1_000_000, 0.3, 3);
        assert!(lengths[0] <= lengths[1]);
    }

    #[test]
    fn log_star_lengths_have_constant_lower_levels() {
        let lengths = log_star_lengths(1_000_000, 0.5, 3);
        assert_eq!(lengths.len(), 3);
        // log*(10^6) = 5: lower-level paths are tiny constants.
        assert!(lengths[0] <= 5);
        assert!(lengths[1] <= 25);
        // The top level holds nearly everything.
        assert!(lengths[2] >= 1_000_000 / (lengths[0] * lengths[1] * 2));
    }

    #[test]
    fn theorem11_lengths_square_between_levels() {
        let lengths = theorem11_lengths(1 << 20, 3);
        assert_eq!(lengths.len(), 3);
        // ℓ_2 = ℓ_1², up to rounding.
        let l1 = lengths[0] as f64;
        let l2 = lengths[1] as f64;
        assert!((l2 - l1 * l1).abs() <= l1.max(2.0), "{lengths:?}");
    }

    #[test]
    fn lengths_build_valid_constructions() {
        let lengths = poly_lengths(5_000, 0.5, 2);
        let g = LowerBoundGraph::new(&lengths).unwrap();
        assert!(g.tree().node_count() >= 5_000 / 4);
        let lengths = theorem11_lengths(2_000, 2);
        let g = LowerBoundGraph::new(&lengths).unwrap();
        assert!(g.tree().node_count() >= 500);
    }

    #[test]
    fn gammas_match_length_prefixes() {
        let n = 100_000;
        let (x, k) = (0.4, 3);
        let gammas = poly_gammas(n, x, k);
        let lengths = poly_lengths(n, x, k);
        assert_eq!(gammas.len(), k - 1);
        assert_eq!(&lengths[..k - 1], &gammas[..]);
        let g2 = theorem11_gammas(n, 2);
        assert_eq!(g2.len(), 1);
        let gl = log_star_gammas(n, 0.5, 3);
        assert_eq!(gl.len(), 2);
        assert!(gl[0] >= 1);
    }

    #[test]
    fn k_one_has_single_length() {
        let lengths = poly_lengths(1000, 0.5, 1);
        assert_eq!(lengths, vec![1000]);
        assert!(poly_gammas(1000, 0.5, 1).is_empty());
    }
}
