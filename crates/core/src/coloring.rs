//! The `k`-hierarchical 2½- and 3½-coloring problems (Definitions 8 and 9).
//!
//! These are the backbone LCLs of the paper: 2½-coloring has worst-case
//! complexity `Θ(n^{1/k})` (Chang–Pettie) and node-averaged complexity
//! `Θ(n^{1/(2k-1)})`; the 3½ variant introduced by the paper has worst-case
//! complexity `Θ(log* n)` and node-averaged complexity
//! `Θ((log* n)^{1/2^{k-1}})` (Theorem 11).

use crate::problem::{check_labeling_shape, LclProblem, Violation};
use lcl_graph::levels::Levels;
use lcl_graph::{NodeId, NodeMask, Tree};
use std::fmt;

/// Output alphabet of the hierarchical coloring problems.
///
/// 2½-coloring uses `{W, B, E, D}`; 3½-coloring additionally uses the
/// three "real" colors `{R, G, Y}` on level-`k` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColorLabel {
    /// White — one of the two path colors.
    White,
    /// Black — the other path color.
    Black,
    /// Exempt — the node is excused by a lower-level neighbor.
    Exempt,
    /// Decline — the node refuses to color its path.
    Decline,
    /// Red (3½ only, level `k`).
    Red,
    /// Green (3½ only, level `k`).
    Green,
    /// Yellow (3½ only, level `k`).
    Yellow,
}

impl fmt::Display for ColorLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColorLabel::White => "W",
            ColorLabel::Black => "B",
            ColorLabel::Exempt => "E",
            ColorLabel::Decline => "D",
            ColorLabel::Red => "R",
            ColorLabel::Green => "G",
            ColorLabel::Yellow => "Y",
        };
        f.write_str(s)
    }
}

impl ColorLabel {
    /// True for the three 3½-coloring colors `R`, `G`, `Y`.
    pub fn is_rgy(self) -> bool {
        matches!(
            self,
            ColorLabel::Red | ColorLabel::Green | ColorLabel::Yellow
        )
    }

    /// True for the two path colors `W`, `B`.
    pub fn is_wb(self) -> bool {
        matches!(self, ColorLabel::White | ColorLabel::Black)
    }
}

/// Which member of the problem family: 2½ or 3½.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// `k`-hierarchical 2½-coloring (Definition 8): level-`k` paths must be
    /// properly 2-colored with `{W, B}` (or exempted).
    TwoHalf,
    /// `k`-hierarchical 3½-coloring (Definition 9): level-`k` paths must be
    /// properly 3-colored with `{R, G, Y}` (or exempted).
    ThreeHalf,
}

/// The `k`-hierarchical 2½- or 3½-coloring problem.
///
/// # Examples
///
/// ```
/// use lcl_core::coloring::{HierarchicalColoring, Variant, ColorLabel};
/// use lcl_core::problem::LclProblem;
/// use lcl_graph::generators::path;
///
/// // On a path with k = 1, every node is level 1 and must 2-color (W/B
/// /// alternating) or all-decline; declining everywhere is not allowed for
/// // level-k nodes, so alternation it is.
/// let problem = HierarchicalColoring::new(1, Variant::TwoHalf);
/// let tree = path(4);
/// let out = vec![
///     ColorLabel::White,
///     ColorLabel::Black,
///     ColorLabel::White,
///     ColorLabel::Black,
/// ];
/// assert!(problem.verify(&tree, &vec![(); 4], &out).is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchicalColoring {
    k: usize,
    variant: Variant,
}

impl HierarchicalColoring {
    /// Creates the problem for a given `k ≥ 1`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize, variant: Variant) -> Self {
        assert!(k >= 1, "k must be at least 1");
        HierarchicalColoring { k, variant }
    }

    /// The hierarchy depth `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The variant (2½ or 3½).
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Verifies the constraints on the subgraph induced by `mask`, with
    /// `levels` computed by the masked peeling
    /// ([`Levels::compute_masked`]). This is the form needed by the
    /// weighted problems of Definition 22, where the coloring constraints
    /// apply to active components only.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn verify_masked(
        &self,
        tree: &Tree,
        mask: &NodeMask,
        levels: &Levels,
        label_of: impl Fn(NodeId) -> ColorLabel,
    ) -> Result<(), Violation> {
        let k = self.k;
        for v in mask.iter() {
            let lv = levels.level(v);
            debug_assert!(lv >= 1, "masked node {v} must have a level");
            let label = label_of(v);
            let same_level = |w: NodeId| mask.contains(w) && levels.level(w) == lv;
            let lower_level =
                |w: NodeId| mask.contains(w) && levels.level(w) < lv && levels.level(w) >= 1;

            // Rule: no node of level 1 can be labeled E.
            if lv == 1 && label == ColorLabel::Exempt {
                return Err(Violation::new(v, "level-1 node labeled E"));
            }
            // Rule: all nodes of level k + 1 must be labeled E.
            if lv == k + 1 && label != ColorLabel::Exempt {
                return Err(Violation::new(
                    v,
                    format!("level-(k+1) node labeled {label} instead of E"),
                ));
            }
            // Rule: level 2..=k labeled E iff adjacent to a lower-level
            // node labeled W, B, or E.
            if (2..=k).contains(&lv) {
                let excused = tree.neighbors(v).iter().any(|&w| {
                    let w = w as usize;
                    lower_level(w)
                        && matches!(
                            label_of(w),
                            ColorLabel::White | ColorLabel::Black | ColorLabel::Exempt
                        )
                });
                if (label == ColorLabel::Exempt) != excused {
                    return Err(Violation::new(
                        v,
                        format!(
                            "level-{lv} node: E ({}) must hold iff a lower-level \
                             neighbor is W/B/E ({excused})",
                            label == ColorLabel::Exempt
                        ),
                    ));
                }
            }
            // Variant-specific per-level alphabet and adjacency rules.
            let wb_level_bound = match self.variant {
                Variant::TwoHalf => k,
                Variant::ThreeHalf => k.saturating_sub(1),
            };
            if label.is_wb() && lv <= wb_level_bound {
                for &w in tree.neighbors(v) {
                    let w = w as usize;
                    if same_level(w) {
                        let lw = label_of(w);
                        if lw == label {
                            return Err(Violation::new(
                                v,
                                format!("adjacent same-level nodes both {label}"),
                            ));
                        }
                        if lw == ColorLabel::Decline {
                            return Err(Violation::new(
                                v,
                                format!("{label} node adjacent to same-level D"),
                            ));
                        }
                    }
                }
            }
            match self.variant {
                Variant::TwoHalf => {
                    if label.is_rgy() {
                        return Err(Violation::new(v, "R/G/Y label in 2½-coloring"));
                    }
                    if lv == k && label == ColorLabel::Decline {
                        return Err(Violation::new(v, "level-k node labeled D"));
                    }
                }
                Variant::ThreeHalf => {
                    if lv < k && label.is_rgy() {
                        return Err(Violation::new(
                            v,
                            format!("level-{lv} node uses color {label} (only level k may)"),
                        ));
                    }
                    if lv == k {
                        if matches!(
                            label,
                            ColorLabel::Decline | ColorLabel::White | ColorLabel::Black
                        ) {
                            return Err(Violation::new(
                                v,
                                format!("level-k node labeled {label} (must be R/G/Y or E)"),
                            ));
                        }
                        if label.is_rgy() {
                            for &w in tree.neighbors(v) {
                                let w = w as usize;
                                if same_level(w) && label_of(w) == label {
                                    return Err(Violation::new(
                                        v,
                                        format!("adjacent level-k nodes both {label}"),
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            // Definitions 8/9 add for level k: "They may output E only if
            // their lower level neighbours did not output D." Following the
            // correctness invariant of Corollary 12 ("nodes only output E if
            // they have a lower level neighbor that did not output D"), this
            // is the *witness* condition — some lower-level neighbor with a
            // non-D label must exist — which is exactly what the iff-rule
            // above already enforces (a W/B/E lower neighbor). Reading it as
            // "no lower-level neighbor declines" would make the LCL
            // unsatisfiable on trees where a level-k node sees both a
            // colored and a declined lower path, contradicting Corollary 12.
        }
        Ok(())
    }
}

impl LclProblem for HierarchicalColoring {
    type Input = ();
    type Output = ColorLabel;

    fn name(&self) -> String {
        match self.variant {
            Variant::TwoHalf => format!("{}-hierarchical 2.5-coloring", self.k),
            Variant::ThreeHalf => format!("{}-hierarchical 3.5-coloring", self.k),
        }
    }

    fn checkability_radius(&self) -> usize {
        // Levels are determined by an O(k)-radius view; the constraints
        // themselves are radius 1 given the levels.
        self.k + 1
    }

    fn verify(
        &self,
        tree: &Tree,
        input: &[Self::Input],
        output: &[Self::Output],
    ) -> Result<(), Violation> {
        check_labeling_shape(tree, input, output);
        let mask = NodeMask::full(tree.node_count());
        let levels = Levels::compute(tree, self.k);
        self.verify_masked(tree, &mask, &levels, |v| output[v])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::generators::{caterpillar, path};
    use ColorLabel::*;

    fn verify(
        problem: &HierarchicalColoring,
        tree: &Tree,
        out: Vec<ColorLabel>,
    ) -> Result<(), Violation> {
        problem.verify(tree, &vec![(); tree.node_count()], &out)
    }

    #[test]
    fn path_two_coloring_accepted() {
        let p = HierarchicalColoring::new(1, Variant::TwoHalf);
        let t = path(5);
        assert!(verify(&p, &t, vec![White, Black, White, Black, White]).is_ok());
    }

    #[test]
    fn path_monochrome_rejected() {
        let p = HierarchicalColoring::new(1, Variant::TwoHalf);
        let t = path(3);
        let err = verify(&p, &t, vec![White, White, Black]).unwrap_err();
        assert!(err.rule.contains("both W"), "{err}");
    }

    #[test]
    fn level_k_cannot_decline_in_two_half() {
        let p = HierarchicalColoring::new(1, Variant::TwoHalf);
        let t = path(3);
        let err = verify(&p, &t, vec![Decline, Decline, Decline]).unwrap_err();
        assert!(err.rule.contains("level-k node labeled D"), "{err}");
    }

    #[test]
    fn three_half_level_k_three_coloring_accepted() {
        let p = HierarchicalColoring::new(1, Variant::ThreeHalf);
        let t = path(5);
        assert!(verify(&p, &t, vec![Red, Green, Yellow, Red, Green]).is_ok());
        let err = verify(&p, &t, vec![Red, Red, Green, Yellow, Red]).unwrap_err();
        assert!(err.rule.contains("both R"), "{err}");
    }

    #[test]
    fn three_half_rejects_wb_at_level_k() {
        let p = HierarchicalColoring::new(1, Variant::ThreeHalf);
        let t = path(2);
        let err = verify(&p, &t, vec![White, Black]).unwrap_err();
        assert!(err.rule.contains("must be R/G/Y or E"), "{err}");
    }

    #[test]
    fn two_half_rejects_rgy() {
        let p = HierarchicalColoring::new(2, Variant::TwoHalf);
        let t = path(3);
        let err = verify(&p, &t, vec![Red, Green, Red]).unwrap_err();
        assert!(err.rule.contains("R/G/Y label"), "{err}");
    }

    #[test]
    fn level_one_cannot_be_exempt() {
        let p = HierarchicalColoring::new(2, Variant::TwoHalf);
        let t = path(3);
        let err = verify(&p, &t, vec![Exempt, White, Black]).unwrap_err();
        assert!(err.rule.contains("level-1 node labeled E"), "{err}");
    }

    /// Caterpillar: legs (level 1) + spine (level 2) for k = 2.
    #[test]
    fn caterpillar_exemption_rules() {
        let p = HierarchicalColoring::new(2, Variant::TwoHalf);
        let t = caterpillar(3, 3); // spine 0,1,2; leaves 3..12
                                   // Leaves decline; spine must then 2-color (no exemptions).
        let mut out = vec![Decline; 12];
        out[0] = White;
        out[1] = Black;
        out[2] = White;
        assert!(verify(&p, &t, out).is_ok());

        // All leaves of spine node 1 color W (each leaf is its own 1-node
        // level-1 path, trivially properly colored). Then node 1 must be E:
        // the iff-rule demands it and no lower-level neighbor declines.
        let mut out = vec![Decline; 12];
        out[0] = White;
        out[2] = White;
        out[6] = White; // leaves of spine node 1 are 6, 7, 8
        out[7] = White;
        out[8] = White;
        out[1] = Exempt;
        assert!(verify(&p, &t, out).is_ok());

        // Same but node 1 fails to take E: "iff" violated.
        let mut out = vec![Decline; 12];
        out[0] = White;
        out[2] = White;
        out[6] = White;
        out[7] = White;
        out[8] = White;
        out[1] = Black;
        let err = verify(&p, &t, out).unwrap_err();
        assert!(err.rule.contains("iff"), "{err}");
    }

    #[test]
    fn level_k_exempt_with_mixed_lower_neighbors_is_valid() {
        let p = HierarchicalColoring::new(2, Variant::TwoHalf);
        let t = caterpillar(3, 3);
        // Node 1's leaf 6 is W (witness for E) while leaf 7 declines:
        // under the witness reading of the level-k E-rule (see the verifier
        // comment referencing Corollary 12) this neighborhood is valid.
        let mut out = vec![Decline; 12];
        out[0] = White;
        out[2] = White;
        out[6] = White;
        out[7] = Decline;
        out[1] = Exempt;
        assert!(verify(&p, &t, out).is_ok());
    }

    #[test]
    fn wb_cannot_touch_same_level_decline() {
        let p = HierarchicalColoring::new(1, Variant::TwoHalf);
        let t = path(3);
        let err = verify(&p, &t, vec![White, Decline, White]).unwrap_err();
        assert!(err.rule.contains("adjacent to same-level D"), "{err}");
    }

    #[test]
    fn names_and_radius() {
        let p = HierarchicalColoring::new(3, Variant::ThreeHalf);
        assert_eq!(p.name(), "3-hierarchical 3.5-coloring");
        assert_eq!(p.checkability_radius(), 4);
        assert_eq!(p.k(), 3);
        assert_eq!(p.variant(), Variant::ThreeHalf);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_rejected() {
        let _ = HierarchicalColoring::new(0, Variant::TwoHalf);
    }
}
