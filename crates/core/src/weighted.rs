//! The weighted coloring problems `Π^{Z}_{Δ,d,k}` of Definition 22.
//!
//! Weight nodes attached to an active node must (mostly) *copy* the active
//! node's eventual output, which in any execution forces them to wait for
//! it — this is what turns weight into node-averaged running time. The
//! parameter `d` lets a bounded number of neighbors decline per copying
//! node, giving the efficiency factor `x = log(Δ-d-1)/log(Δ-1)` that the
//! density theorems tune.

use crate::coloring::{ColorLabel, HierarchicalColoring, Variant};
use crate::problem::{check_labeling_shape, LclProblem, Violation};
use lcl_graph::levels::Levels;
use lcl_graph::weighted::NodeKind;
use lcl_graph::{induced_components, NodeMask, Tree};
use std::fmt;

/// Input alphabet of `Π^{Z}_{Δ,d,k}`: `Active` or `Weight`.
pub type WeightedInput = NodeKind;

/// Output alphabet of `Π^{Z}_{Δ,d,k}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightedOutput {
    /// An active node's output: a label of `k`-hierarchical `Z`-coloring.
    Active(ColorLabel),
    /// A weight node declines.
    Decline,
    /// A weight node lies on a connecting path.
    Connect,
    /// A weight node copies; the payload is its *secondary output*.
    Copy(ColorLabel),
}

impl fmt::Display for WeightedOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightedOutput::Active(c) => write!(f, "Active({c})"),
            WeightedOutput::Decline => f.write_str("Decline"),
            WeightedOutput::Connect => f.write_str("Connect"),
            WeightedOutput::Copy(c) => write!(f, "Copy({c})"),
        }
    }
}

/// The LCL `Π^{Z}_{Δ,d,k}` (Definition 22), `Z ∈ {2½, 3½}`.
///
/// # Examples
///
/// ```
/// use lcl_core::weighted::WeightedColoring;
/// use lcl_core::coloring::Variant;
///
/// let p = WeightedColoring::new(Variant::TwoHalf, 5, 2, 3)?;
/// assert!(p.efficiency_x() > 0.0 && p.efficiency_x() < 1.0);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightedColoring {
    variant: Variant,
    delta: usize,
    d: usize,
    k: usize,
}

impl WeightedColoring {
    /// Creates `Π^{Z}_{Δ,d,k}`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `Δ ≥ d + 3` and `k ≥ 1`, the parameter
    /// regime of the paper's theorems.
    pub fn new(variant: Variant, delta: usize, d: usize, k: usize) -> Result<Self, String> {
        if delta < d + 3 {
            return Err(format!("need Δ ≥ d + 3, got Δ = {delta}, d = {d}"));
        }
        if k == 0 {
            return Err("k must be at least 1".into());
        }
        Ok(WeightedColoring {
            variant,
            delta,
            d,
            k,
        })
    }

    /// The coloring variant `Z`.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// The degree bound Δ of the weight gadgets.
    pub fn delta(&self) -> usize {
        self.delta
    }

    /// The decline budget `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// The hierarchy depth `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The lower-bound efficiency factor
    /// `x = log(Δ - d - 1) / log(Δ - 1)` (Lemma 23).
    pub fn efficiency_x(&self) -> f64 {
        crate::landscape::efficiency_x(self.delta, self.d)
    }

    /// The upper-bound efficiency factor
    /// `x' = log(Δ - d + 1) / log(Δ - 1)` (Section 8).
    pub fn efficiency_x_prime(&self) -> f64 {
        crate::landscape::efficiency_x_prime(self.delta, self.d)
    }

    fn color_of(out: &WeightedOutput) -> Option<ColorLabel> {
        match out {
            WeightedOutput::Active(c) | WeightedOutput::Copy(c) => Some(*c),
            _ => None,
        }
    }
}

impl LclProblem for WeightedColoring {
    type Input = WeightedInput;
    type Output = WeightedOutput;

    fn name(&self) -> String {
        let z = match self.variant {
            Variant::TwoHalf => "2.5",
            Variant::ThreeHalf => "3.5",
        };
        format!("Pi^{z}_{{{},{},{}}}", self.delta, self.d, self.k)
    }

    fn checkability_radius(&self) -> usize {
        self.k + 1
    }

    fn verify(
        &self,
        tree: &Tree,
        input: &[Self::Input],
        output: &[Self::Output],
    ) -> Result<(), Violation> {
        check_labeling_shape(tree, input, output);
        let n = tree.node_count();
        let active_mask =
            NodeMask::from_nodes(n, tree.nodes().filter(|&v| input[v] == NodeKind::Active));

        // Alphabet discipline: active nodes output Active(_), weight nodes
        // anything else.
        for v in tree.nodes() {
            match (input[v], &output[v]) {
                (NodeKind::Active, WeightedOutput::Active(_)) => {}
                (NodeKind::Active, other) => {
                    return Err(Violation::new(
                        v,
                        format!("active node outputs weight label {other}"),
                    ));
                }
                (NodeKind::Weight, WeightedOutput::Active(c)) => {
                    return Err(Violation::new(
                        v,
                        format!("weight node outputs active label {c}"),
                    ));
                }
                (NodeKind::Weight, _) => {}
            }
        }

        // Property 1: active components satisfy k-hierarchical Z-coloring,
        // with levels computed inside each component.
        let coloring = HierarchicalColoring::new(self.k, self.variant);
        for comp in induced_components(tree, &active_mask) {
            let comp_mask = NodeMask::from_nodes(n, comp.iter().copied());
            let levels = Levels::compute_masked(tree, &comp_mask, self.k);
            coloring.verify_masked(tree, &comp_mask, &levels, |v| match output[v] {
                WeightedOutput::Active(c) => c,
                _ => unreachable!("active component holds active outputs"),
            })?;
        }

        // Weight-node properties 2-5.
        for v in tree.nodes() {
            if input[v] != NodeKind::Weight {
                continue;
            }
            let has_active_neighbor = tree
                .neighbors(v)
                .iter()
                .any(|&w| input[w as usize] == NodeKind::Active);
            match output[v] {
                WeightedOutput::Decline => {
                    // Property 2: adjacency to an active node forbids Decline.
                    if has_active_neighbor {
                        return Err(Violation::new(
                            v,
                            "weight node adjacent to an active node outputs Decline",
                        ));
                    }
                }
                WeightedOutput::Connect => {
                    if has_active_neighbor {
                        // Property 2 allows Connect; fall through to 3.
                    }
                    // Property 3: ≥ 2 neighbors are active or Connect.
                    let supporters = tree
                        .neighbors(v)
                        .iter()
                        .filter(|&&w| {
                            let w = w as usize;
                            input[w] == NodeKind::Active || output[w] == WeightedOutput::Connect
                        })
                        .count();
                    if supporters < 2 {
                        return Err(Violation::new(
                            v,
                            format!(
                                "Connect weight node has {supporters} active/Connect \
                                 neighbors, needs 2"
                            ),
                        ));
                    }
                }
                WeightedOutput::Copy(secondary) => {
                    // Property 4: at most d declining neighbors.
                    let declines = tree
                        .neighbors(v)
                        .iter()
                        .filter(|&&w| output[w as usize] == WeightedOutput::Decline)
                        .count();
                    if declines > self.d {
                        return Err(Violation::new(
                            v,
                            format!(
                                "Copy node has {declines} declining neighbors > d = {}",
                                self.d
                            ),
                        ));
                    }
                    // Property 5a: with an active neighbor, the secondary
                    // output matches at least one active neighbor's output.
                    if has_active_neighbor {
                        let matched = tree.neighbors(v).iter().any(|&w| {
                            let w = w as usize;
                            input[w] == NodeKind::Active
                                && Self::color_of(&output[w]) == Some(secondary)
                        });
                        if !matched {
                            return Err(Violation::new(
                                v,
                                format!("Copy secondary {secondary} matches no active neighbor"),
                            ));
                        }
                    }
                    // Property 5b: adjacent Copy weight nodes agree.
                    for &w in tree.neighbors(v) {
                        let w = w as usize;
                        if input[w] == NodeKind::Weight {
                            if let WeightedOutput::Copy(other) = output[w] {
                                if other != secondary {
                                    return Err(Violation::new(
                                        v,
                                        format!(
                                            "adjacent Copy nodes disagree: {secondary} vs {other}"
                                        ),
                                    ));
                                }
                            }
                        }
                    }
                }
                WeightedOutput::Active(_) => unreachable!("checked above"),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::generators::path;
    use lcl_graph::{Tree, TreeBuilder};
    use ColorLabel::*;
    use NodeKind::{Active, Weight};
    use WeightedOutput as O;

    fn problem() -> WeightedColoring {
        WeightedColoring::new(Variant::TwoHalf, 5, 2, 1).unwrap()
    }

    /// Active path 0-1, weight path 2-3 hanging from node 1: 1 - 2 - 3.
    fn small_instance() -> (Tree, Vec<WeightedInput>) {
        let mut b = TreeBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        (b.build().unwrap(), vec![Active, Active, Weight, Weight])
    }

    #[test]
    fn parameter_validation() {
        assert!(WeightedColoring::new(Variant::TwoHalf, 4, 2, 1).is_err());
        assert!(WeightedColoring::new(Variant::TwoHalf, 5, 2, 0).is_err());
        let p = problem();
        assert_eq!(p.delta(), 5);
        assert_eq!(p.d(), 2);
        assert_eq!(p.k(), 1);
        assert!(p.name().contains("2.5"));
        assert!(p.efficiency_x() < p.efficiency_x_prime());
    }

    #[test]
    fn copy_chain_accepted() {
        let p = problem();
        let (t, input) = small_instance();
        let out = vec![
            O::Active(White),
            O::Active(Black),
            O::Copy(Black),
            O::Copy(Black),
        ];
        assert!(p.verify(&t, &input, &out).is_ok());
    }

    #[test]
    fn weight_next_to_active_cannot_decline() {
        let p = problem();
        let (t, input) = small_instance();
        let out = vec![O::Active(White), O::Active(Black), O::Decline, O::Decline];
        let err = p.verify(&t, &input, &out).unwrap_err();
        assert_eq!(err.node, 2);
        assert!(err.rule.contains("Decline"), "{err}");
    }

    #[test]
    fn copy_secondary_must_match_active() {
        let p = problem();
        let (t, input) = small_instance();
        let out = vec![
            O::Active(White),
            O::Active(Black),
            O::Copy(White), // node 1 output Black, mismatch
            O::Copy(White),
        ];
        let err = p.verify(&t, &input, &out).unwrap_err();
        assert_eq!(err.node, 2);
        assert!(err.rule.contains("matches no active"), "{err}");
    }

    #[test]
    fn adjacent_copies_must_agree() {
        let p = problem();
        let (t, input) = small_instance();
        let out = vec![
            O::Active(White),
            O::Active(Black),
            O::Copy(Black),
            O::Copy(White),
        ];
        let err = p.verify(&t, &input, &out).unwrap_err();
        assert!(err.rule.contains("disagree"), "{err}");
    }

    #[test]
    fn far_weight_node_may_decline_within_budget() {
        let p = problem();
        let (t, input) = small_instance();
        // Node 3 (far weight node) declines; node 2 copies with 1 declining
        // neighbor <= d = 2.
        let out = vec![
            O::Active(White),
            O::Active(Black),
            O::Copy(Black),
            O::Decline,
        ];
        assert!(p.verify(&t, &input, &out).is_ok());
    }

    #[test]
    fn decline_budget_enforced() {
        // Weight star: center 1 adjacent to active 0 and three weight leaves.
        let mut b = TreeBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(1, 3);
        b.add_edge(1, 4);
        let t = b.build().unwrap();
        let input = vec![Active, Weight, Weight, Weight, Weight];
        let p = WeightedColoring::new(Variant::TwoHalf, 5, 2, 1).unwrap();
        let out = vec![
            O::Active(White),
            O::Copy(White),
            O::Decline,
            O::Decline,
            O::Decline,
        ];
        let err = p.verify(&t, &input, &out).unwrap_err();
        assert_eq!(err.node, 1);
        assert!(err.rule.contains("> d = 2"), "{err}");
    }

    #[test]
    fn connect_bridge_between_two_active_nodes() {
        // A - w - w - A (Connect path).
        let t = path(4);
        let input = vec![Active, Weight, Weight, Active];
        let p = problem();
        let out = vec![O::Active(White), O::Connect, O::Connect, O::Active(White)];
        assert!(p.verify(&t, &input, &out).is_ok());
        // A dangling Connect fails property 3.
        let out = vec![O::Active(White), O::Connect, O::Decline, O::Active(White)];
        let err = p.verify(&t, &input, &out).unwrap_err();
        assert!(err.rule.contains("needs 2"), "{err}");
    }

    #[test]
    fn active_component_coloring_is_checked() {
        let p = problem();
        let (t, input) = small_instance();
        // Active path 0-1 is level-1 (k = 1): both White is improper.
        let out = vec![
            O::Active(White),
            O::Active(White),
            O::Copy(White),
            O::Copy(White),
        ];
        let err = p.verify(&t, &input, &out).unwrap_err();
        assert!(err.rule.contains("both W"), "{err}");
    }

    #[test]
    fn alphabet_discipline() {
        let p = problem();
        let (t, input) = small_instance();
        let out = vec![O::Decline, O::Active(Black), O::Copy(Black), O::Copy(Black)];
        let err = p.verify(&t, &input, &out).unwrap_err();
        assert!(err.rule.contains("weight label"), "{err}");
        let out = vec![
            O::Active(White),
            O::Active(Black),
            O::Active(Black),
            O::Copy(Black),
        ];
        let err = p.verify(&t, &input, &out).unwrap_err();
        assert!(err.rule.contains("active label"), "{err}");
    }

    #[test]
    fn isolated_weight_component_may_fully_decline() {
        // Pure weight path, no active nodes anywhere.
        let t = path(3);
        let input = vec![Weight; 3];
        let p = problem();
        let out = vec![O::Decline; 3];
        assert!(p.verify(&t, &input, &out).is_ok());
    }
}
