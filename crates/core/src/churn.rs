//! The `ChurnScript` vocabulary: declarative, seeded dynamic-tree workloads.
//!
//! A script names *what* churn to apply — how many batches, how many ops per
//! batch, and the insert/delete/re-hang mix — without fixing a topology or a
//! solver. The harness's `DynamicSession` pairs a script with an instance
//! spec and a solver, materializes each batch deterministically from
//! `(seed, batch index)` via `lcl_graph::surgery`, and re-solves
//! incrementally. Keeping the vocabulary here (and the randomness in
//! `lcl_graph`) mirrors the `ProblemSpec` split: `lcl_core` stays a pure
//! description layer.

use serde::Serialize;

/// The op mix of a churn script, as relative integer weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ChurnMix {
    /// Relative weight of leaf insertions.
    pub insert: u32,
    /// Relative weight of subtree deletions.
    pub delete: u32,
    /// Relative weight of edge re-hangs.
    pub rehang: u32,
}

impl ChurnMix {
    /// Builds a mix from the three relative weights.
    #[must_use]
    pub fn new(insert: u32, delete: u32, rehang: u32) -> Self {
        ChurnMix {
            insert,
            delete,
            rehang,
        }
    }
}

/// A seeded dynamic-tree workload: `batches` batches of `ops_per_batch`
/// tree-surgery operations drawn from `mix`.
///
/// Scripts are pure descriptions; all randomness is derived downstream from
/// `seed` and the batch index, so a script names one exact workload.
///
/// # Examples
///
/// ```
/// use lcl_core::churn::ChurnScript;
///
/// let script = ChurnScript::preset("leaf-growth").unwrap();
/// assert_eq!(script.mix.delete, 0);
/// assert!(script.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ChurnScript {
    /// Human-readable workload name (unique among presets).
    pub name: String,
    /// Base seed; batch `b` derives its op stream from `seed ^ b`.
    pub seed: u64,
    /// Number of batches to apply.
    pub batches: usize,
    /// Number of surgery ops per batch.
    pub ops_per_batch: usize,
    /// Relative weights of the three op kinds.
    pub mix: ChurnMix,
}

impl ChurnScript {
    /// Builds a script with explicit parameters.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        seed: u64,
        batches: usize,
        ops_per_batch: usize,
        mix: ChurnMix,
    ) -> Self {
        ChurnScript {
            name: name.into(),
            seed,
            batches,
            ops_per_batch,
            mix,
        }
    }

    /// The named preset scripts every churn surface (differential suite,
    /// `lcl churn`) agrees on:
    ///
    /// - `leaf-growth` — pure insertion; the tree only grows.
    /// - `prune-regrow` — balanced insertions and subtree deletions.
    /// - `rehang-storm` — re-hang dominated, with light insert/delete noise.
    #[must_use]
    pub fn presets() -> Vec<ChurnScript> {
        vec![
            ChurnScript::new(
                "leaf-growth",
                0xC0FFEE,
                3,
                24,
                ChurnMix {
                    insert: 1,
                    delete: 0,
                    rehang: 0,
                },
            ),
            ChurnScript::new(
                "prune-regrow",
                0xBEEF,
                3,
                24,
                ChurnMix {
                    insert: 2,
                    delete: 2,
                    rehang: 0,
                },
            ),
            ChurnScript::new(
                "rehang-storm",
                0xF00D,
                3,
                24,
                ChurnMix {
                    insert: 1,
                    delete: 1,
                    rehang: 4,
                },
            ),
        ]
    }

    /// Looks up a preset by name.
    #[must_use]
    pub fn preset(name: &str) -> Option<ChurnScript> {
        ChurnScript::presets().into_iter().find(|s| s.name == name)
    }

    /// Returns a copy with a different base seed (for seed sweeps).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy scaled to `ops_per_batch` ops and `batches` batches
    /// (for size presets).
    #[must_use]
    pub fn with_volume(mut self, batches: usize, ops_per_batch: usize) -> Self {
        self.batches = batches;
        self.ops_per_batch = ops_per_batch;
        self
    }

    /// The seed of batch `b`, derived so that batches are independent
    /// streams of one workload.
    #[must_use]
    pub fn batch_seed(&self, batch: usize) -> u64 {
        self.seed ^ (batch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Checks the script is well-formed.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found:
    /// empty name, zero batches/ops, or an all-zero mix.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("script name must not be empty".into());
        }
        if self.batches == 0 {
            return Err("script must have at least one batch".into());
        }
        if self.ops_per_batch == 0 {
            return Err("script must have at least one op per batch".into());
        }
        if self.mix.insert == 0 && self.mix.delete == 0 && self.mix.rehang == 0 {
            return Err("op mix must not be all zero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid_and_distinct() {
        let presets = ChurnScript::presets();
        assert!(presets.len() >= 3);
        for s in &presets {
            s.validate().unwrap();
        }
        let names: std::collections::BTreeSet<&str> =
            presets.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), presets.len());
        assert!(ChurnScript::preset("prune-regrow").is_some());
        assert!(ChurnScript::preset("nonsense").is_none());
    }

    #[test]
    fn batch_seeds_differ_but_are_stable() {
        let s = ChurnScript::preset("leaf-growth").unwrap();
        assert_eq!(s.batch_seed(0), s.seed);
        assert_ne!(s.batch_seed(1), s.batch_seed(2));
        assert_eq!(s.batch_seed(1), s.batch_seed(1));
        let reseeded = s.clone().with_seed(7);
        assert_eq!(reseeded.batch_seed(0), 7);
    }

    #[test]
    fn validation_catches_degenerate_scripts() {
        let mix = ChurnMix {
            insert: 1,
            delete: 0,
            rehang: 0,
        };
        assert!(ChurnScript::new("", 1, 1, 1, mix).validate().is_err());
        assert!(ChurnScript::new("x", 1, 0, 1, mix).validate().is_err());
        assert!(ChurnScript::new("x", 1, 1, 0, mix).validate().is_err());
        let zero = ChurnMix {
            insert: 0,
            delete: 0,
            rehang: 0,
        };
        assert!(ChurnScript::new("x", 1, 1, 1, zero).validate().is_err());
        assert!(ChurnScript::new("x", 1, 1, 1, mix).validate().is_ok());
    }

    #[test]
    fn scripts_serialize() {
        let s = ChurnScript::preset("rehang-storm").unwrap();
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"rehang\":4"));
        assert!(json.contains("rehang-storm"));
    }
}
