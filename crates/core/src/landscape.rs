//! The node-averaged complexity landscape: exponent formulas, parameter
//! synthesis, and the Fig. 2 region map.
//!
//! The paper's density theorems hinge on two families of closed-form
//! exponents (Lemmas 33 and 36):
//!
//! - polynomial regime: `Π^{2.5}_{Δ,d,k}` has node-averaged complexity
//!   `Θ(n^{α₁})` with `α₁(x) = 1 / Σ_{j=0}^{k-1} (2-x)^j`,
//! - `log*` regime: `Π^{3.5}_{Δ,d,k}` is between `Ω((log* n)^{α₁(x)})` and
//!   `O((log* n)^{α₁(x')})` with
//!   `α₁(x) = 1 / (1 + (1-x) Σ_{j=0}^{k-2} (2-x)^j)`,
//!
//! where `x = log(Δ-d-1)/log(Δ-1)` and `x' = log(Δ-d+1)/log(Δ-1)` are the
//! weight-efficiency factors. This module computes the formulas, inverts
//! them, and synthesizes `(Δ, d, k)` hitting a target exponent window — the
//! constructive content of Theorems 1 and 6.

use std::error::Error;
use std::fmt;

/// Errors from the synthesis procedures.
#[derive(Debug, Clone, PartialEq)]
pub enum LandscapeError {
    /// The requested window is outside the regime covered by the theorem.
    TargetOutOfRange {
        /// Requested lower end.
        r1: f64,
        /// Requested upper end.
        r2: f64,
        /// Which theorem's range was violated.
        context: &'static str,
    },
    /// No `(Δ, d, k)` within the search budget lands in the window.
    NoParametersFound {
        /// Requested lower end.
        r1: f64,
        /// Requested upper end.
        r2: f64,
    },
}

impl fmt::Display for LandscapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LandscapeError::TargetOutOfRange { r1, r2, context } => {
                write!(f, "target window ({r1}, {r2}) outside range of {context}")
            }
            LandscapeError::NoParametersFound { r1, r2 } => {
                write!(
                    f,
                    "no (Δ, d, k) parameters found for window ({r1}, {r2}); widen the window"
                )
            }
        }
    }
}

impl Error for LandscapeError {}

/// The lower-bound efficiency factor `x = log(Δ-d-1)/log(Δ-1)` (Lemma 23).
///
/// # Panics
///
/// Panics unless `Δ ≥ d + 3` (so that `Δ - d - 1 ≥ 2`).
pub fn efficiency_x(delta: usize, d: usize) -> f64 {
    assert!(delta >= d + 3, "need Δ ≥ d + 3");
    ((delta - d - 1) as f64).ln() / ((delta - 1) as f64).ln()
}

/// The upper-bound efficiency factor `x' = log(Δ-d+1)/log(Δ-1)`
/// (Section 8, adapted fast decomposition).
///
/// # Panics
///
/// Panics unless `Δ ≥ d + 3`.
pub fn efficiency_x_prime(delta: usize, d: usize) -> f64 {
    assert!(delta >= d + 3, "need Δ ≥ d + 3");
    ((delta - d + 1) as f64).ln() / ((delta - 1) as f64).ln()
}

/// `α₁(x) = 1 / Σ_{j=0}^{k-1} (2-x)^j` — the polynomial-regime exponent of
/// Theorems 2 and 3.
///
/// # Panics
///
/// Panics if `k == 0` or `x ∉ [0, 1]`.
pub fn alpha1_poly(x: f64, k: usize) -> f64 {
    assert!(k >= 1, "k must be at least 1");
    assert!((0.0..=1.0).contains(&x), "x must be in [0, 1]");
    let sum: f64 = (0..k).map(|j| (2.0 - x).powi(j as i32)).sum();
    1.0 / sum
}

/// All optimal `α_i` for the polynomial regime, `i = 1..k-1`
/// (`α_i = (2-x) α_{i-1}`, Lemma 33). Empty for `k = 1`.
pub fn alphas_poly(x: f64, k: usize) -> Vec<f64> {
    let a1 = alpha1_poly(x, k);
    (0..k.saturating_sub(1))
        .map(|i| a1 * (2.0 - x).powi(i as i32))
        .collect()
}

/// `α₁(x) = 1 / (1 + (1-x) Σ_{j=0}^{k-2} (2-x)^j)` — the `log*`-regime
/// exponent of Theorems 4 and 5.
///
/// # Panics
///
/// Panics if `k == 0` or `x ∉ [0, 1]`.
pub fn alpha1_log_star(x: f64, k: usize) -> f64 {
    assert!(k >= 1, "k must be at least 1");
    assert!((0.0..=1.0).contains(&x), "x must be in [0, 1]");
    let sum: f64 = (0..k.saturating_sub(1))
        .map(|j| (2.0 - x).powi(j as i32))
        .sum();
    1.0 / (1.0 + (1.0 - x) * sum)
}

/// All optimal `α_i` for the `log*` regime, `i = 1..k-1` (Lemma 36).
pub fn alphas_log_star(x: f64, k: usize) -> Vec<f64> {
    let a1 = alpha1_log_star(x, k);
    (0..k.saturating_sub(1))
        .map(|i| a1 * (2.0 - x).powi(i as i32))
        .collect()
}

/// The `B_i` terms of the polynomial optimisation problem (Corollary 31);
/// at the optimum all of them equal `α₁` (Lemma 33). Exposed for tests and
/// the benchmark harness.
pub fn poly_objective_terms(x: f64, k: usize) -> Vec<f64> {
    let alphas = alphas_poly(x, k);
    objective_terms(&alphas, x, k, 2.0)
}

/// The `B_i` terms of the `log*` optimisation problem (Corollary 35).
pub fn log_star_objective_terms(x: f64, k: usize) -> Vec<f64> {
    let alphas = alphas_log_star(x, k);
    objective_terms(&alphas, x, k, 1.0)
}

/// Shared `B_i` computation: `B_i = (x-1) Σ_{j<i} α_j + α_i` for `i < k`,
/// and `B_k = 1 + (x - last_coeff) Σ_{j<k} α_j` where `last_coeff` is 2 in
/// the polynomial regime and 1 in the `log*` regime.
fn objective_terms(alphas: &[f64], x: f64, k: usize, last_coeff: f64) -> Vec<f64> {
    let mut terms = Vec::with_capacity(k);
    let mut prefix = 0.0;
    for &a in alphas.iter().take(k - 1) {
        terms.push((x - 1.0) * prefix + a);
        prefix += a;
    }
    terms.push(1.0 + (x - last_coeff) * prefix);
    terms
}

/// Inverts a continuous strictly-increasing function on `[0, 1]` by
/// bisection. Returns `None` if `target` is outside `[f(0), f(1)]`.
fn invert_increasing(f: impl Fn(f64) -> f64, target: f64) -> Option<f64> {
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    if target < f(lo) || target > f(hi) {
        return None;
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if f(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// `x` such that [`alpha1_poly`]`(x, k) == target`, if it exists.
pub fn invert_alpha1_poly(target: f64, k: usize) -> Option<f64> {
    invert_increasing(|x| alpha1_poly(x, k), target)
}

/// `x` such that [`alpha1_log_star`]`(x, k) == target`, if it exists.
pub fn invert_alpha1_log_star(target: f64, k: usize) -> Option<f64> {
    invert_increasing(|x| alpha1_log_star(x, k), target)
}

/// A synthesized LCL for the polynomial regime (Theorem 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolySpec {
    /// `k`-hierarchical weight-augmented 2½-coloring (Section 10,
    /// Lemma 69): node-averaged complexity `Θ(n^{1/k})`.
    WeightAugmented {
        /// Hierarchy depth.
        k: usize,
        /// The achieved exponent, `1/k`.
        exponent: f64,
    },
    /// `Π^{2.5}_{Δ,d,k}` (Lemma 58): node-averaged complexity `Θ(n^{α₁})`.
    Weighted {
        /// Weight-tree degree bound.
        delta: usize,
        /// Decline budget.
        d: usize,
        /// Hierarchy depth.
        k: usize,
        /// The achieved exponent `α₁(x(Δ,d))`.
        exponent: f64,
    },
}

impl PolySpec {
    /// The node-averaged complexity exponent this spec realizes.
    pub fn exponent(&self) -> f64 {
        match *self {
            PolySpec::WeightAugmented { exponent, .. } => exponent,
            PolySpec::Weighted { exponent, .. } => exponent,
        }
    }
}

const DELTA_SEARCH_MAX: usize = 400;

/// Constructive Theorem 1: finds an LCL with node-averaged complexity
/// `Θ(n^c)` for some `c ∈ (r1, r2)`.
///
/// # Errors
///
/// [`LandscapeError::TargetOutOfRange`] unless `0 < r1 < r2 ≤ 1/2`;
/// [`LandscapeError::NoParametersFound`] if the `(Δ, d)` search budget is
/// exhausted (only possible for extremely narrow windows).
pub fn synthesize_poly(r1: f64, r2: f64) -> Result<PolySpec, LandscapeError> {
    if !(r1 > 0.0 && r1 < r2 && r2 <= 0.5) {
        return Err(LandscapeError::TargetOutOfRange {
            r1,
            r2,
            context: "Theorem 1 (0 < r1 < r2 <= 1/2)",
        });
    }
    // Case 1: some 1/k lies strictly inside — use the weight-augmented
    // problem of Section 10 (Lemma 69).
    for k in 2..=64 {
        let inv = 1.0 / k as f64;
        if r1 < inv && inv < r2 {
            return Ok(PolySpec::WeightAugmented { k, exponent: inv });
        }
    }
    // Case 2: tune Π^{2.5}_{Δ,d,k}. For each k the reachable exponents are
    // [α₁(0), α₁(1)) = [1/(2^k - 1), 1/k); search (Δ, d) within overlap.
    for k in 2..=20 {
        let lo = alpha1_poly(0.0, k);
        let hi = alpha1_poly(1.0, k);
        let win_lo = r1.max(lo);
        let win_hi = r2.min(hi);
        if win_lo >= win_hi {
            continue;
        }
        if let Some(spec) =
            search_delta_d(win_lo, win_hi, |x| alpha1_poly(x, k)).map(|(delta, d, exponent)| {
                PolySpec::Weighted {
                    delta,
                    d,
                    k,
                    exponent,
                }
            })
        {
            return Ok(spec);
        }
    }
    Err(LandscapeError::NoParametersFound { r1, r2 })
}

/// A synthesized LCL for the `log*` regime (Theorem 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogStarSpec {
    /// Weight-tree degree bound.
    pub delta: usize,
    /// Decline budget.
    pub d: usize,
    /// Hierarchy depth.
    pub k: usize,
    /// Lower-bound exponent `α₁(x)`: complexity is `Ω((log* n)^c)`.
    pub lower_exponent: f64,
    /// Upper-bound exponent `α₁(x')`: complexity is `O((log* n)^{c'})`.
    pub upper_exponent: f64,
}

impl LogStarSpec {
    /// Width of the lower/upper exponent gap.
    pub fn gap(&self) -> f64 {
        self.upper_exponent - self.lower_exponent
    }
}

/// Constructive Theorem 6: finds `Π^{3.5}_{Δ,d,k}` with node-averaged
/// complexity between `Ω((log* n)^c)` and `O((log* n)^{c+ε})` for some
/// `c ∈ [r1, r2]`.
///
/// # Errors
///
/// [`LandscapeError::TargetOutOfRange`] unless `0 < r1 < r2 < 1` and
/// `ε > 0`; [`LandscapeError::NoParametersFound`] if no `(Δ, d, k)` in the
/// search budget achieves the gap (requests for very small `ε` need very
/// large `Δ`; the search caps Δ at 2¹⁶).
pub fn synthesize_log_star(r1: f64, r2: f64, eps: f64) -> Result<LogStarSpec, LandscapeError> {
    if !(r1 > 0.0 && r1 < r2 && r2 < 1.0 && eps > 0.0) {
        return Err(LandscapeError::TargetOutOfRange {
            r1,
            r2,
            context: "Theorem 6 (0 < r1 < r2 < 1, eps > 0)",
        });
    }
    for k in 2..=20 {
        let lo = alpha1_log_star(0.0, k);
        let hi = alpha1_log_star(1.0, k);
        let win_lo = r1.max(lo);
        let win_hi = r2.min(hi - 1e-9);
        if win_lo >= win_hi {
            continue;
        }
        // Increasing Δ shrinks the x'-x gap (Lemma 62); search upward.
        let mut best: Option<LogStarSpec> = None;
        let mut delta = 8usize;
        while delta <= 1 << 16 {
            if let Some((dd, d, lower)) =
                search_delta_d_at(delta, win_lo, win_hi, |x| alpha1_log_star(x, k))
            {
                let upper = alpha1_log_star(efficiency_x_prime(dd, d).min(1.0), k);
                let spec = LogStarSpec {
                    delta: dd,
                    d,
                    k,
                    lower_exponent: lower,
                    upper_exponent: upper,
                };
                if spec.gap() < eps && spec.upper_exponent <= r2 + eps {
                    return Ok(spec);
                }
                match &best {
                    Some(b) if b.gap() <= spec.gap() => {}
                    _ => best = Some(spec),
                }
            }
            delta *= 2;
        }
        if let Some(spec) = best {
            if spec.gap() < eps {
                return Ok(spec);
            }
        }
    }
    Err(LandscapeError::NoParametersFound { r1, r2 })
}

/// Searches `(Δ, d)` with `Δ ≤ DELTA_SEARCH_MAX` such that
/// `f(x(Δ,d)) ∈ [win_lo, win_hi]`; returns `(Δ, d, f(x))`.
fn search_delta_d(
    win_lo: f64,
    win_hi: f64,
    f: impl Fn(f64) -> f64 + Copy,
) -> Option<(usize, usize, f64)> {
    for delta in 4..=DELTA_SEARCH_MAX {
        if let Some(hit) = search_delta_d_at(delta, win_lo, win_hi, f) {
            return Some(hit);
        }
    }
    None
}

/// Searches `d` for a fixed `Δ`.
fn search_delta_d_at(
    delta: usize,
    win_lo: f64,
    win_hi: f64,
    f: impl Fn(f64) -> f64,
) -> Option<(usize, usize, f64)> {
    for d in 1..=delta.saturating_sub(3) {
        let x = efficiency_x(delta, d);
        let value = f(x);
        // Strictly interior: the theorems ask for r1 < c < r2.
        if value > win_lo && value < win_hi {
            return Some((delta, d, value));
        }
    }
    None
}

/// Coarse growth regimes of the landscape, ordered by growth rate.
///
/// A [`ComplexityClass`] refines a regime with an exponent; the regime is
/// the level at which empirical classification is decided (see
/// [`ComplexityClass::consistent_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Regime {
    /// `Θ(1)`.
    Constant,
    /// `Θ((log* n)^c)` for some `c ∈ (0, 1]`.
    LogStar,
    /// `Θ(log n)`.
    Log,
    /// `Θ(n^c)` for some `c ∈ (0, 1]`.
    Poly,
}

/// A named cell of the node-averaged complexity landscape (Fig. 2),
/// as a machine-checkable value rather than a display string.
///
/// This is the vocabulary the empirical classifier fits measured
/// node-averaged curves against, and the type every registry algorithm
/// reports its theoretical node-averaged class in.
///
/// # Examples
///
/// ```
/// use lcl_core::landscape::{ComplexityClass, Regime};
///
/// let theory = ComplexityClass::poly(0.5); // Θ(n^{1/2})
/// assert_eq!(theory.regime(), Regime::Poly);
/// assert_eq!(theory.describe(), "Θ(n^0.50)");
///
/// // A fitted Θ(n^0.46) curve is consistent with the Θ(√n) theory…
/// assert!(theory.consistent_with(&ComplexityClass::poly(0.46)));
/// // …but a fitted Θ(log n) curve is not.
/// assert!(!theory.consistent_with(&ComplexityClass::Log));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ComplexityClass {
    /// `Θ(1)`: node-averaged rounds bounded by a constant.
    Constant,
    /// `Θ((log* n)^c)`; `c = 1` is `Θ(log* n)` itself.
    LogStarPow {
        /// The exponent `c ∈ (0, 1]`.
        exponent: f64,
    },
    /// `Θ(log n)`.
    Log,
    /// `Θ(n^c)`; `c = 1` is the `Θ(n)` ceiling of the landscape.
    PolyPow {
        /// The exponent `c ∈ (0, 1]`.
        exponent: f64,
    },
}

/// Tolerance on polynomial exponents when comparing a fitted class with a
/// theoretical one: OLS exponents on 5-point ladders with additive
/// lower-order terms land within ~0.1 of the true exponent.
pub const POLY_EXPONENT_TOLERANCE: f64 = 0.12;

impl ComplexityClass {
    /// `Θ(n^c)` (clamped rendering; `c = 1` displays as `Θ(n)`).
    #[must_use]
    pub fn poly(exponent: f64) -> Self {
        ComplexityClass::PolyPow { exponent }
    }

    /// `Θ((log* n)^c)` (`c = 1` displays as `Θ(log* n)`).
    #[must_use]
    pub fn log_star_pow(exponent: f64) -> Self {
        ComplexityClass::LogStarPow { exponent }
    }

    /// `Θ(log* n)`.
    #[must_use]
    pub fn log_star() -> Self {
        ComplexityClass::LogStarPow { exponent: 1.0 }
    }

    /// The coarse growth regime of this class.
    #[must_use]
    pub fn regime(&self) -> Regime {
        match self {
            ComplexityClass::Constant => Regime::Constant,
            ComplexityClass::LogStarPow { .. } => Regime::LogStar,
            ComplexityClass::Log => Regime::Log,
            ComplexityClass::PolyPow { .. } => Regime::Poly,
        }
    }

    /// The exponent refining the regime, when the class carries one.
    #[must_use]
    pub fn exponent(&self) -> Option<f64> {
        match *self {
            ComplexityClass::LogStarPow { exponent } | ComplexityClass::PolyPow { exponent } => {
                Some(exponent)
            }
            _ => None,
        }
    }

    /// The growth function `g(n)` of the class, evaluated at `n` — the
    /// shape the classifier fits `T(n) ≈ a + c · g(n)` against.
    ///
    /// `g` is `1`, `(log* n)^c`, `log₂ n`, or `n^c` respectively.
    #[must_use]
    pub fn evaluate(&self, n: f64) -> f64 {
        let n = n.max(1.0);
        match *self {
            ComplexityClass::Constant => 1.0,
            ComplexityClass::LogStarPow { exponent } => {
                f64::from(lcl_local::math::log_star(n as u64)).powf(exponent)
            }
            ComplexityClass::Log => n.log2(),
            ComplexityClass::PolyPow { exponent } => n.powf(exponent),
        }
    }

    /// Whether a measured (fitted) class is consistent with this
    /// theoretical class.
    ///
    /// Matching is decided at the [`Regime`] level, with the `Θ(1)` and
    /// `Θ((log* n)^c)` regimes deliberately forming *one* bucket:
    /// `log* n ≤ 5` for every `n ≤ 2^65536`, so at feasible sizes the two
    /// regimes differ by at most a factor of five and no finite
    /// measurement separates them. (The landscape itself makes the bucket
    /// principled: by Theorem 7 nothing exists strictly between `ω(1)`
    /// and `(log* n)^{o(1)}`, so these are adjacent cells with a provable
    /// gap, not a blurred continuum.) `Θ(log n)` and `Θ(n^c)` grow
    /// without bound at feasible sizes and must match exactly
    /// (polynomial exponents within [`POLY_EXPONENT_TOLERANCE`]).
    #[must_use]
    pub fn consistent_with(&self, fitted: &ComplexityClass) -> bool {
        let sub_log = |r: Regime| matches!(r, Regime::Constant | Regime::LogStar);
        match (self.regime(), fitted.regime()) {
            (a, b) if sub_log(a) && sub_log(b) => true,
            (Regime::Poly, Regime::Poly) => {
                let t = self.exponent().unwrap_or(0.0);
                let f = fitted.exponent().unwrap_or(0.0);
                (t - f).abs() <= POLY_EXPONENT_TOLERANCE
            }
            (a, b) => a == b,
        }
    }

    /// Human-readable rendering, e.g. `"Θ((log* n)^0.50)"`.
    #[must_use]
    pub fn describe(&self) -> String {
        match *self {
            ComplexityClass::Constant => "Θ(1)".to_string(),
            ComplexityClass::LogStarPow { exponent } if (exponent - 1.0).abs() < 1e-9 => {
                "Θ(log* n)".to_string()
            }
            ComplexityClass::LogStarPow { exponent } => format!("Θ((log* n)^{exponent:.2})"),
            ComplexityClass::Log => "Θ(log n)".to_string(),
            ComplexityClass::PolyPow { exponent } if (exponent - 1.0).abs() < 1e-9 => {
                "Θ(n)".to_string()
            }
            ComplexityClass::PolyPow { exponent } => format!("Θ(n^{exponent:.2})"),
        }
    }
}

impl fmt::Display for ComplexityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A region of the Fig. 2 landscape.
#[derive(Debug, Clone, PartialEq)]
pub struct LandscapeRegion {
    /// Human-readable range, e.g. `"Θ((log* n)^c), c ∈ (0, 1)"`.
    pub range: &'static str,
    /// Whether the region is populated or provably empty.
    pub kind: RegionKind,
    /// Which result of the paper establishes it.
    pub provenance: &'static str,
}

/// Population status of a landscape region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// Contains LCLs (single complexity point).
    Point,
    /// Infinitely dense set of achievable complexities.
    Dense,
    /// Provably empty gap.
    Gap,
}

/// The complete node-averaged complexity landscape on bounded-degree trees
/// (Fig. 2 of the paper), from `O(1)` to `Θ(n)`.
pub fn figure2_regions() -> Vec<LandscapeRegion> {
    vec![
        LandscapeRegion {
            range: "O(1)",
            kind: RegionKind::Point,
            provenance: "trivial LCLs; decidable membership (Theorem 7)",
        },
        LandscapeRegion {
            range: "omega(1) - (log* n)^{o(1)}",
            kind: RegionKind::Gap,
            provenance: "Theorem 7",
        },
        LandscapeRegion {
            range: "Theta((log* n)^c), c in (0, 1)",
            kind: RegionKind::Dense,
            provenance: "Theorems 4-6 (and Theorem 11 for c = 1/2^{k-1})",
        },
        LandscapeRegion {
            range: "Theta(log* n)",
            kind: RegionKind::Point,
            provenance: "3-coloring on paths (Feuilloley; Corollary 17)",
        },
        LandscapeRegion {
            range: "omega(log* n) - n^{o(1)}",
            kind: RegionKind::Gap,
            provenance: "[BBK+23] Theorem; re-proved context in Section 11",
        },
        LandscapeRegion {
            range: "Theta(n^c), c in (0, 1/2]",
            kind: RegionKind::Dense,
            provenance: "Theorems 1-3 and Lemma 69",
        },
        LandscapeRegion {
            range: "omega(sqrt(n)) - o(n)",
            kind: RegionKind::Gap,
            provenance: "Corollary 60",
        },
        LandscapeRegion {
            range: "Theta(n)",
            kind: RegionKind::Point,
            provenance: "2-coloring on paths (Lemma 16)",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_factors_ordering() {
        for delta in [5usize, 8, 17, 33] {
            for d in 1..=delta - 3 {
                let x = efficiency_x(delta, d);
                let xp = efficiency_x_prime(delta, d);
                assert!(x > 0.0 && x < 1.0, "x = {x}");
                assert!(xp > x, "x' = {xp} must exceed x = {x}");
            }
        }
    }

    #[test]
    fn efficiency_x_special_values() {
        // Δ - d - 1 = Δ - 1 would give x = 1; with d = 0... d >= 0 allowed
        // mathematically: x(Δ, 0) = ln(Δ-1)/ln(Δ-1) = 1.
        assert!((efficiency_x(5, 0) - 1.0).abs() < 1e-12);
        // Δ = 2^q + 1, d = 2^q - 2^p gives x = p/q (Lemma 58).
        let (q, p) = (4u32, 3u32);
        let delta = (1usize << q) + 1;
        let d = (1usize << q) - (1usize << p);
        assert!((efficiency_x(delta, d) - p as f64 / q as f64).abs() < 1e-12);
    }

    #[test]
    fn alpha1_poly_endpoints() {
        // α₁(0) = 1/(2^k - 1), α₁(1) = 1/k (Lemma 57 discussion).
        for k in 1..=6 {
            let lo = alpha1_poly(0.0, k);
            let hi = alpha1_poly(1.0, k);
            assert!((lo - 1.0 / ((1u64 << k) - 1) as f64).abs() < 1e-12, "k={k}");
            assert!((hi - 1.0 / k as f64).abs() < 1e-12, "k={k}");
        }
    }

    #[test]
    fn alpha1_log_star_endpoints() {
        // α₁(0) = 1/2^{k-1}, α₁(1) = 1 (Lemma 61 discussion).
        for k in 1..=6 {
            let lo = alpha1_log_star(0.0, k);
            let hi = alpha1_log_star(1.0, k);
            assert!(
                (lo - 1.0 / (1u64 << (k - 1)) as f64).abs() < 1e-12,
                "k={k}: {lo}"
            );
            assert!((hi - 1.0).abs() < 1e-12, "k={k}: {hi}");
        }
    }

    #[test]
    fn alpha1_monotonicity() {
        // Lemmas 57 and 61: strictly increasing on [0, 1].
        for k in 2..=5 {
            let mut prev_p = 0.0;
            let mut prev_l = 0.0;
            for i in 0..=100 {
                let x = i as f64 / 100.0;
                let p = alpha1_poly(x, k);
                let l = alpha1_log_star(x, k);
                assert!(p > prev_p, "poly k={k} x={x}");
                assert!(l > prev_l, "log* k={k} x={x}");
                prev_p = p;
                prev_l = l;
            }
        }
    }

    #[test]
    fn lemma_33_all_terms_equal() {
        // At the optimal α the B_i all equal α₁ (polynomial regime).
        for k in 2..=6 {
            for x in [0.1, 0.3, 0.5, 0.8, 0.99] {
                let a1 = alpha1_poly(x, k);
                for (i, b) in poly_objective_terms(x, k).iter().enumerate() {
                    assert!(
                        (b - a1).abs() < 1e-10,
                        "poly k={k} x={x}: B_{} = {b} != {a1}",
                        i + 1
                    );
                }
            }
        }
    }

    #[test]
    fn lemma_36_all_terms_equal() {
        for k in 2..=6 {
            for x in [0.1, 0.3, 0.5, 0.8, 0.99] {
                let a1 = alpha1_log_star(x, k);
                for (i, b) in log_star_objective_terms(x, k).iter().enumerate() {
                    assert!(
                        (b - a1).abs() < 1e-10,
                        "log* k={k} x={x}: B_{} = {b} != {a1}",
                        i + 1
                    );
                }
            }
        }
    }

    #[test]
    fn alphas_recurrence() {
        let x = 0.4;
        let k = 4;
        let a = alphas_poly(x, k);
        assert_eq!(a.len(), 3);
        for w in a.windows(2) {
            assert!((w[1] - (2.0 - x) * w[0]).abs() < 1e-12);
        }
        let al = alphas_log_star(x, k);
        for w in al.windows(2) {
            assert!((w[1] - (2.0 - x) * w[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn inversion_round_trips() {
        for k in 2..=5 {
            for target in [0.2, 0.3, 0.45] {
                if target > alpha1_poly(0.0, k) && target < alpha1_poly(1.0, k) {
                    let x = invert_alpha1_poly(target, k).unwrap();
                    assert!((alpha1_poly(x, k) - target).abs() < 1e-9);
                }
                if target > alpha1_log_star(0.0, k) && target < alpha1_log_star(1.0, k) {
                    let x = invert_alpha1_log_star(target, k).unwrap();
                    assert!((alpha1_log_star(x, k) - target).abs() < 1e-9);
                }
            }
        }
        assert!(invert_alpha1_poly(0.9, 2).is_none());
    }

    #[test]
    fn synthesize_poly_hits_windows() {
        for (r1, r2) in [
            (0.2, 0.3),
            (0.3, 0.4),
            (0.12, 0.17),
            (0.4, 0.5),
            (0.05, 0.07),
        ] {
            let spec =
                synthesize_poly(r1, r2).unwrap_or_else(|e| panic!("window ({r1}, {r2}): {e}"));
            let c = spec.exponent();
            assert!(c > r1 && c < r2, "window ({r1}, {r2}) got {c} via {spec:?}");
        }
    }

    #[test]
    fn synthesize_poly_prefers_weight_augmented_on_reciprocals() {
        let spec = synthesize_poly(0.3, 0.4).unwrap();
        assert!(
            matches!(spec, PolySpec::WeightAugmented { k: 3, .. }),
            "1/3 in (0.3, 0.4) should yield weight-augmented k = 3, got {spec:?}"
        );
    }

    #[test]
    fn synthesize_poly_rejects_bad_windows() {
        assert!(matches!(
            synthesize_poly(0.4, 0.3),
            Err(LandscapeError::TargetOutOfRange { .. })
        ));
        assert!(synthesize_poly(0.2, 0.6).is_err());
        assert!(synthesize_poly(0.0, 0.1).is_err());
    }

    #[test]
    fn synthesize_log_star_achieves_gap() {
        let spec = synthesize_log_star(0.4, 0.6, 0.05).unwrap();
        assert!(spec.lower_exponent >= 0.4 - 1e-9);
        assert!(spec.lower_exponent <= 0.6 + 1e-9);
        assert!(spec.gap() < 0.05, "gap {} too wide: {spec:?}", spec.gap());
        assert!(spec.delta >= spec.d + 3);
    }

    #[test]
    fn synthesize_log_star_tighter_eps_needs_bigger_delta() {
        let loose = synthesize_log_star(0.3, 0.5, 0.1).unwrap();
        let tight = synthesize_log_star(0.3, 0.5, 0.01).unwrap();
        assert!(tight.delta >= loose.delta, "{loose:?} vs {tight:?}");
        assert!(tight.gap() < 0.01);
    }

    #[test]
    fn synthesize_log_star_rejects_bad_windows() {
        assert!(synthesize_log_star(0.5, 0.4, 0.1).is_err());
        assert!(synthesize_log_star(0.2, 1.2, 0.1).is_err());
        assert!(synthesize_log_star(0.2, 0.4, 0.0).is_err());
    }

    #[test]
    fn figure2_covers_both_gaps_and_densities() {
        let regions = figure2_regions();
        assert_eq!(regions.len(), 8);
        let gaps = regions.iter().filter(|r| r.kind == RegionKind::Gap).count();
        let dense = regions
            .iter()
            .filter(|r| r.kind == RegionKind::Dense)
            .count();
        assert_eq!(gaps, 3);
        assert_eq!(dense, 2);
        assert!(regions.iter().any(|r| r.provenance.contains("Theorem 7")));
        assert!(regions
            .iter()
            .any(|r| r.provenance.contains("Corollary 60")));
    }

    #[test]
    fn complexity_class_rendering_and_regimes() {
        assert_eq!(ComplexityClass::Constant.describe(), "Θ(1)");
        assert_eq!(ComplexityClass::log_star().describe(), "Θ(log* n)");
        assert_eq!(
            ComplexityClass::log_star_pow(0.5).describe(),
            "Θ((log* n)^0.50)"
        );
        assert_eq!(ComplexityClass::Log.describe(), "Θ(log n)");
        assert_eq!(ComplexityClass::poly(1.0).describe(), "Θ(n)");
        assert_eq!(ComplexityClass::poly(0.4).to_string(), "Θ(n^0.40)");
        let order = [
            ComplexityClass::Constant.regime(),
            ComplexityClass::log_star().regime(),
            ComplexityClass::Log.regime(),
            ComplexityClass::poly(0.5).regime(),
        ];
        let mut sorted = order;
        sorted.sort();
        assert_eq!(order, sorted, "regimes are ordered by growth");
    }

    #[test]
    fn complexity_class_evaluation() {
        assert_eq!(ComplexityClass::Constant.evaluate(1e6), 1.0);
        assert_eq!(ComplexityClass::log_star().evaluate(65_536.0), 4.0);
        assert_eq!(ComplexityClass::log_star().evaluate(65_537.0), 5.0);
        assert!((ComplexityClass::Log.evaluate(1_024.0) - 10.0).abs() < 1e-12);
        assert!((ComplexityClass::poly(0.5).evaluate(10_000.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn consistency_matches_regimes_with_log_star_flatness() {
        let theory = ComplexityClass::log_star_pow(0.5);
        assert!(theory.consistent_with(&ComplexityClass::Constant));
        assert!(theory.consistent_with(&ComplexityClass::log_star()));
        assert!(!theory.consistent_with(&ComplexityClass::Log));
        // The sub-log* bucket is symmetric: a log*-ish drift cannot
        // contradict O(1) theory at feasible sizes either.
        assert!(ComplexityClass::Constant.consistent_with(&ComplexityClass::log_star()));
        assert!(!ComplexityClass::Constant.consistent_with(&ComplexityClass::Log));
        // Poly exponents compare within tolerance.
        let half = ComplexityClass::poly(0.5);
        assert!(half.consistent_with(&ComplexityClass::poly(0.5 + POLY_EXPONENT_TOLERANCE / 2.0)));
        assert!(!half.consistent_with(&ComplexityClass::poly(0.8)));
        assert!(ComplexityClass::Log.consistent_with(&ComplexityClass::Log));
        assert!(!ComplexityClass::Log.consistent_with(&ComplexityClass::Constant));
    }

    #[test]
    fn error_display() {
        let e = LandscapeError::NoParametersFound { r1: 0.1, r2: 0.2 };
        assert!(e.to_string().contains("widen"));
        let e = LandscapeError::TargetOutOfRange {
            r1: 0.0,
            r2: 0.6,
            context: "Theorem 1 (0 < r1 < r2 <= 1/2)",
        };
        assert!(e.to_string().contains("Theorem 1"));
    }
}
