//! Property tests for the declarative problem vocabulary (ISSUE 5):
//! construction, validation, and JSON (de)serialization must be total —
//! arbitrary (including invalid) specs never panic — and every valid
//! spec must survive a serde round trip bit-exactly.

use lcl_core::problem_spec::{BwTable, PathTable, ProblemRegime, ProblemSpec};
use proptest::prelude::*;
use serde::{Serialize, Value};

/// Expands a seed into a canonical random path table: up to 5 labels,
/// pair/end membership from the seed's bits. Intentionally generates
/// degenerate tables (no pairs, empty ends) as well.
fn path_table_from_seed(seed: u64) -> PathTable {
    let labels = (seed % 5 + 1) as usize;
    let mut bits = seed / 5;
    let mut allowed = Vec::new();
    for a in 0..labels as u8 {
        for b in a..labels as u8 {
            if bits & 1 == 1 {
                allowed.push((a, b));
            }
            bits >>= 1;
        }
    }
    let mut ends = Vec::new();
    for l in 0..labels as u8 {
        if bits & 1 == 1 {
            ends.push(l);
        }
        bits >>= 1;
    }
    PathTable::new(labels, allowed, ends)
}

/// Expands a seed into a random black-white table over a binary/ternary
/// alphabet, degree 2 or 3; multisets picked from the seed's bits.
fn bw_table_from_seed(seed: u64) -> BwTable {
    let out_labels = (seed % 3 + 1) as u8;
    let max_degree = (seed / 3 % 2 + 2) as usize;
    let mut bits = seed / 6;
    let side = |bits: &mut u64| {
        let mut sets = Vec::new();
        for len in 1..=max_degree {
            for first in 0..out_labels {
                if *bits & 1 == 1 {
                    let m: Vec<u8> = (0..len).map(|i| (first + i as u8) % out_labels).collect();
                    sets.push(m);
                }
                *bits >>= 1;
            }
        }
        sets
    };
    let white = side(&mut bits);
    let black = side(&mut bits);
    BwTable::new(out_labels, max_degree, white, black)
}

/// An arbitrary spec: tables from seeds, named families with parameters
/// straddling the valid/invalid boundary.
fn spec_from(variant: u8, seed: u64) -> ProblemSpec {
    match variant % 8 {
        0 => ProblemSpec::Path(path_table_from_seed(seed)),
        1 => ProblemSpec::Coloring {
            colors: (seed % 300) as usize,
        },
        2 => ProblemSpec::Bw(bw_table_from_seed(seed)),
        3 => ProblemSpec::HierarchicalColoring {
            k: (seed % 20) as usize,
        },
        4 => ProblemSpec::Weighted {
            regime: if seed & 1 == 0 {
                ProblemRegime::Poly
            } else {
                ProblemRegime::LogStar
            },
            delta: (seed / 2 % 9) as usize,
            d: (seed / 18 % 5) as usize,
            k: (seed / 90 % 20) as usize,
        },
        5 => ProblemSpec::WeightAugmented {
            k: (seed % 20) as usize,
        },
        6 => ProblemSpec::DfreeWeight {
            d: (seed % 5) as usize,
            anchored: seed & 1 == 1,
        },
        _ => ProblemSpec::HierarchicalLabeling {
            k: (seed % 20) as usize,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn construction_validation_and_describe_are_total(variant in 0u8..8, seed in any::<u64>()) {
        let spec = spec_from(variant, seed);
        // None of these may panic, valid or not.
        let _ = spec.validate();
        let _ = spec.describe();
        let _ = spec.path_table();
        let _ = spec.declared_class();
        let _ = spec.hierarchy_k();
        let _ = spec.decline_d();
    }

    #[test]
    fn valid_specs_round_trip_through_json(variant in 0u8..8, seed in any::<u64>()) {
        let spec = spec_from(variant, seed);
        prop_assume!(spec.validate().is_ok());
        // Value-model round trip.
        let value = spec.to_value();
        let parsed = ProblemSpec::from_value(&value).expect("valid spec must parse back");
        prop_assert_eq!(&parsed, &spec);
        // Full JSON-text round trip through the vendored serde_json.
        let text = serde_json::to_string(&spec).expect("serializable");
        let reparsed = ProblemSpec::from_value(&serde_json::from_str(&text).expect("valid JSON"))
            .expect("JSON text must parse back");
        prop_assert_eq!(reparsed, spec);
    }

    #[test]
    fn corrupted_values_error_instead_of_panicking(
        variant in 0u8..8,
        seed in any::<u64>(),
        strike in any::<prop::sample::Index>(),
    ) {
        let spec = spec_from(variant, seed);
        let Value::Object(mut entries) = spec.to_value() else {
            panic!("specs serialize to objects");
        };
        // Corrupt one field: odd seeds drop it, even seeds retype it.
        let i = strike.index(entries.len());
        if seed & 1 == 1 {
            entries.remove(i);
        } else {
            entries[i].1 = Value::Str("corrupt".into());
        }
        // Must yield a Result, never a panic. (Dropping/retyping a
        // required field errors; corrupting nothing essential may still
        // parse — both are acceptable outcomes.)
        let _ = ProblemSpec::from_value(&Value::Object(entries));
    }

    #[test]
    fn path_tables_canonicalize_idempotently(seed in any::<u64>()) {
        let t = path_table_from_seed(seed);
        let again = PathTable::new(t.labels, t.allowed.clone(), t.ends.clone());
        prop_assert_eq!(&again, &t);
        // allows() agrees with the dense matrix.
        let m = t.matrix();
        for a in 0..t.labels as u8 {
            for b in 0..t.labels as u8 {
                prop_assert_eq!(t.allows(a, b), m[a as usize][b as usize]);
            }
        }
    }

    #[test]
    fn bw_tables_canonicalize_and_reduce_consistently(seed in any::<u64>()) {
        let t = bw_table_from_seed(seed);
        let again = BwTable::new(
            t.out_labels,
            t.max_degree,
            t.white.clone(),
            t.black.clone(),
        );
        prop_assert_eq!(&again, &t);
        if let Some(path) = t.symmetric_path_table() {
            // The reduction only exists for side-symmetric path problems,
            // and must mirror accepts() exactly.
            prop_assert_eq!(t.max_degree, 2);
            prop_assert_eq!(&t.white, &t.black);
            for a in 0..t.out_labels {
                for b in 0..t.out_labels {
                    prop_assert_eq!(path.allows(a, b), t.accepts(true, &[a, b]));
                }
                prop_assert_eq!(path.end_allowed(a), t.accepts(true, &[a]));
            }
        }
    }
}
