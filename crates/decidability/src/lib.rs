//! Decidability machinery for LCLs on trees (Section 11 of the paper).
//!
//! - [`path_lcl`] — complete classification of edge-symmetric input-free
//!   LCLs on paths (`O(1)` / `Θ(log* n)` / `Θ(n)` / unsolvable), the
//!   substrate of Lemmas 16 and 81,
//! - [`bw`] — the black-white formalism of Definition 70,
//! - [`labelsets`] — label-sets, classes, `g(v)`, short-path maximal
//!   classes and independent rectangles (Definitions 73/74),
//! - [`testing`] — the testing procedure (Algorithm 1), the good-function
//!   search, and the constant-good check of Definition 80, yielding the
//!   decidable `O(1)` membership of Theorem 7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bw;
pub mod labelsets;
pub mod path_lcl;
pub mod testing;

pub use bw::{BwProblem, Side};
pub use path_lcl::{PathClass, PathLcl};
pub use testing::{
    alternating_path_class, find_good_function, GoodFunctionReport, ImpliedComplexity, TestOutcome,
    TestingConfig,
};
