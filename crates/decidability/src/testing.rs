//! The testing procedure (Algorithm 1 of the paper) and the good /
//! constant-good function checks behind Theorem 7.
//!
//! Given a candidate function (a [`RectangleChooser`]), the procedure
//! tracks every label-set the rake-and-compress solver could possibly
//! produce. Rake steps combine up to `Δ - 1` existing label-sets through
//! `g(v)`; compress steps push label-sets through short paths and apply
//! the candidate function to restrict the resulting maximal class to an
//! independent rectangle. If an empty label-set (or an infeasible root)
//! ever appears, the function is *not good*; if the sets stabilize, it is.
//!
//! The constant-good check (Definition 80): the compress problem `Π'`
//! associated with a good function must be `O(1)`-solvable on paths. For
//! hairless instances `Π'` is an alternating-side path LCL over the edge
//! labels, classified by [`alternating_path_class`]: with the bipartition
//! given, `O(1)` holds iff a period-≤2 tiling anchored to the sides
//! exists; otherwise a flexible (gcd-2) state yields `Θ(log* n)` and a
//! rigid automaton `Θ(n)`.

use crate::bw::{BwProblem, Side};
use crate::labelsets::{
    chooser_family, feasible_root, g_single, path_relation, Half, LabelSet, PathNodeSpec,
    RectangleChooser,
};
use crate::path_lcl::PathClass;
use std::collections::BTreeSet;

/// Configuration of the testing procedure.
#[derive(Debug, Clone, Copy)]
pub struct TestingConfig {
    /// Maximum degree Δ of the trees considered.
    pub delta: usize,
    /// Compress-path parameter ℓ (paths of `ell..=2 * ell` nodes are
    /// pushed through the candidate function).
    pub ell: usize,
    /// Number of rake/compress layers to test (use the target `k`, or a
    /// generous bound when testing for `f_{Π,∞}`; the procedure also stops
    /// at a fixpoint).
    pub max_layers: usize,
    /// Maximum number of hair label-sets per compress-path node that the
    /// enumeration explores (`Δ - 2` is exact; smaller trades completeness
    /// for speed on large alphabets).
    pub hair_budget: usize,
}

impl TestingConfig {
    /// Defaults for path-shaped families: `Δ = 2` (no hairs).
    pub fn paths() -> Self {
        TestingConfig {
            delta: 2,
            ell: 2,
            max_layers: 8,
            hair_budget: 0,
        }
    }

    /// Defaults for trees of maximum degree `delta` (clamped to ≥ 2):
    /// the same layer/compress budget as [`TestingConfig::paths`], with a
    /// single hair per compress-path node — enough to distinguish
    /// tree-degree behavior on the small alphabets the planner feeds in
    /// while keeping the enumeration tractable. This is the configuration
    /// the harness planner uses to classify declarative black-white
    /// problems.
    pub fn for_delta(delta: usize) -> Self {
        let delta = delta.max(2);
        TestingConfig {
            delta,
            ell: 2,
            max_layers: 8,
            hair_budget: usize::from(delta > 2),
        }
    }
}

/// Outcome of testing one candidate function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestOutcome {
    /// The function never produced an empty label-set.
    Good {
        /// Layers processed before stabilizing (or hitting the cap).
        layers: usize,
        /// All label-set halves that can arise.
        reachable: Vec<Half>,
    },
    /// The function failed.
    Failed {
        /// Layer at which the failure occurred.
        at_layer: usize,
        /// What went wrong.
        reason: String,
    },
}

impl TestOutcome {
    /// True for [`TestOutcome::Good`].
    pub fn is_good(&self) -> bool {
        matches!(self, TestOutcome::Good { .. })
    }
}

/// Runs Algorithm 1 for `problem` with the candidate `chooser`.
pub fn test_function(
    problem: &BwProblem,
    chooser: &dyn RectangleChooser,
    cfg: &TestingConfig,
) -> TestOutcome {
    let mut reachable: BTreeSet<Half> = BTreeSet::new();
    // Step 1: leaves of both sides, every edge input label.
    for side in [Side::White, Side::Black] {
        for in_label in 0..problem.in_labels() {
            let set = g_single(problem, side, in_label, &[]);
            if set == 0 {
                return TestOutcome::Failed {
                    at_layer: 0,
                    reason: format!("{side:?} leaf with input {in_label} has empty label-set"),
                };
            }
            reachable.insert(Half {
                child_side: side,
                in_label,
                set,
            });
        }
    }

    for layer in 1..=cfg.max_layers {
        let before = reachable.len();
        // Step 2b (rake closure): combine up to Δ - 1 halves below a node
        // of the opposite side, for every outgoing input label.
        loop {
            let snapshot: Vec<Half> = reachable.iter().copied().collect();
            let mut grew = false;
            for side in [Side::White, Side::Black] {
                let children: Vec<Half> = snapshot
                    .iter()
                    .copied()
                    .filter(|h| h.child_side == side.flip())
                    .collect();
                for combo in multisets_up_to(&children, cfg.delta.saturating_sub(1)) {
                    let incoming: Vec<(u8, LabelSet)> =
                        combo.iter().map(|h| (h.in_label, h.set)).collect();
                    for in_label in 0..problem.in_labels() {
                        let set = g_single(problem, side, in_label, &incoming);
                        if set == 0 {
                            return TestOutcome::Failed {
                                at_layer: layer,
                                reason: format!("rake: empty g for {side:?} node over {combo:?}"),
                            };
                        }
                        if reachable.insert(Half {
                            child_side: side,
                            in_label,
                            set,
                        }) {
                            grew = true;
                        }
                    }
                }
            }
            if !grew {
                break;
            }
        }
        // Step 2a (roots): every combination of up to Δ halves below a
        // root must be feasible.
        let snapshot: Vec<Half> = reachable.iter().copied().collect();
        for side in [Side::White, Side::Black] {
            let children: Vec<Half> = snapshot
                .iter()
                .copied()
                .filter(|h| h.child_side == side.flip())
                .collect();
            for combo in multisets_up_to(&children, cfg.delta) {
                if combo.is_empty() {
                    continue;
                }
                let incoming: Vec<(u8, LabelSet)> =
                    combo.iter().map(|h| (h.in_label, h.set)).collect();
                if !feasible_root(problem, side, &incoming) {
                    return TestOutcome::Failed {
                        at_layer: layer,
                        reason: format!("root: {side:?} node infeasible over {combo:?}"),
                    };
                }
            }
        }
        // Step 2f (compress): paths of ell..=2*ell nodes with hair halves.
        let mut new_halves: Vec<Half> = Vec::new();
        for len in cfg.ell..=2 * cfg.ell {
            for start_side in [Side::White, Side::Black] {
                for spec in path_specs(&snapshot, start_side, len, cfg.hair_budget) {
                    for in1 in 0..problem.in_labels() {
                        for in2 in 0..problem.in_labels() {
                            let edge_inputs = vec![0u8; len - 1];
                            let relation = path_relation(problem, &spec, &edge_inputs, in1, in2);
                            if relation.is_empty() {
                                return TestOutcome::Failed {
                                    at_layer: layer,
                                    reason: format!(
                                        "compress: empty relation on a {len}-node path"
                                    ),
                                };
                            }
                            let (s1, s2) = chooser.choose(&relation);
                            if s1 == 0 || s2 == 0 || !relation.contains_rectangle(s1, s2) {
                                return TestOutcome::Failed {
                                    at_layer: layer,
                                    reason: format!(
                                        "compress: {} produced no valid rectangle",
                                        chooser.name()
                                    ),
                                };
                            }
                            new_halves.push(Half {
                                child_side: spec[0].side,
                                in_label: in1,
                                set: s1,
                            });
                            new_halves.push(Half {
                                child_side: spec[len - 1].side,
                                in_label: in2,
                                set: s2,
                            });
                        }
                    }
                }
            }
        }
        for h in new_halves {
            reachable.insert(h);
        }
        if reachable.len() == before && layer > 1 {
            return TestOutcome::Good {
                layers: layer,
                reachable: reachable.into_iter().collect(),
            };
        }
    }
    TestOutcome::Good {
        layers: cfg.max_layers,
        reachable: reachable.into_iter().collect(),
    }
}

/// All multisets of `items` with size `0..=max_size` (deduplicated).
fn multisets_up_to<T: Clone + Ord>(items: &[T], max_size: usize) -> Vec<Vec<T>> {
    let mut unique: Vec<T> = items.to_vec();
    unique.sort();
    unique.dedup();
    let mut out: Vec<Vec<T>> = vec![vec![]];
    fn rec<T: Clone + Ord>(
        unique: &[T],
        start: usize,
        cur: &mut Vec<T>,
        left: usize,
        out: &mut Vec<Vec<T>>,
    ) {
        if left == 0 {
            return;
        }
        for i in start..unique.len() {
            cur.push(unique[i].clone());
            out.push(cur.clone());
            rec(unique, i, cur, left - 1, out);
            cur.pop();
        }
    }
    rec(&unique, 0, &mut Vec::new(), max_size, &mut out);
    out.sort();
    out.dedup();
    out
}

/// Enumerates hair assignments for a compress path of `len` nodes starting
/// on `start_side`, with at most `hair_budget` hairs per node.
fn path_specs(
    reachable: &[Half],
    start_side: Side,
    len: usize,
    hair_budget: usize,
) -> Vec<Vec<PathNodeSpec>> {
    let sides: Vec<Side> = (0..len)
        .map(|j| {
            if j % 2 == 0 {
                start_side
            } else {
                start_side.flip()
            }
        })
        .collect();
    if hair_budget == 0 {
        return vec![sides
            .iter()
            .map(|&side| PathNodeSpec {
                side,
                hairs: vec![],
            })
            .collect()];
    }
    // Per-node hair options, then the cartesian product (capped by the
    // caller's alphabet sizes; intended for small demo problems).
    let mut per_node: Vec<Vec<Vec<(u8, LabelSet)>>> = Vec::with_capacity(len);
    for &side in &sides {
        let children: Vec<Half> = reachable
            .iter()
            .copied()
            .filter(|h| h.child_side == side.flip())
            .collect();
        let options: Vec<Vec<(u8, LabelSet)>> = multisets_up_to(&children, hair_budget)
            .into_iter()
            .map(|combo| combo.into_iter().map(|h| (h.in_label, h.set)).collect())
            .collect();
        per_node.push(options);
    }
    let mut specs: Vec<Vec<PathNodeSpec>> = vec![vec![]];
    for (j, options) in per_node.iter().enumerate() {
        let mut next = Vec::new();
        for partial in &specs {
            for hairs in options {
                let mut spec = partial.clone();
                spec.push(PathNodeSpec {
                    side: sides[j],
                    hairs: hairs.clone(),
                });
                next.push(spec);
            }
        }
        specs = next;
    }
    specs
}

/// Report of the good-function search (the decidability core of
/// Theorem 7's second half).
#[derive(Debug, Clone)]
pub struct GoodFunctionReport {
    /// Name of the first good chooser, if any.
    pub good_function: Option<String>,
    /// Outcome per candidate chooser, in family order.
    pub outcomes: Vec<(String, TestOutcome)>,
    /// If a good function exists, whether it is *constant-good*
    /// (Definition 80): its compress problem is `O(1)` on paths.
    pub constant_good: Option<bool>,
    /// The implied node-averaged upper bound, per Section 11.
    pub implied: ImpliedComplexity,
}

/// The node-averaged complexity implied by the function search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImpliedComplexity {
    /// A constant-good function exists: `O(1)` node-averaged (Theorem 7).
    Constant,
    /// A good function exists: `O(log* n)` node-averaged (\[BBK+23a\]).
    LogStar,
    /// No good function in the family: no `n^{o(1)}` guarantee from this
    /// machinery.
    Unresolved,
}

/// Searches the canonical chooser family for a good function and checks
/// constant-goodness.
pub fn find_good_function(problem: &BwProblem, cfg: &TestingConfig) -> GoodFunctionReport {
    let mut outcomes = Vec::new();
    let mut good: Option<String> = None;
    for chooser in chooser_family(problem.out_labels()) {
        let outcome = test_function(problem, &chooser, cfg);
        let name = chooser.name();
        if outcome.is_good() && good.is_none() {
            good = Some(name.clone());
        }
        outcomes.push((name, outcome));
    }
    let constant_good = good
        .as_ref()
        .map(|_| alternating_path_class(problem) == PathClass::Constant);
    let implied = match (&good, constant_good) {
        (Some(_), Some(true)) => ImpliedComplexity::Constant,
        (Some(_), _) => ImpliedComplexity::LogStar,
        (None, _) => ImpliedComplexity::Unresolved,
    };
    GoodFunctionReport {
        good_function: good,
        outcomes,
        constant_good,
        implied,
    }
}

/// Classifies the compress problem `Π'` on hairless alternating paths: the
/// edge labels form a sequence where consecutive labels must satisfy the
/// white/black constraint of the node between them.
///
/// With the bipartition given, `O(1)` holds iff some usable period-≤2
/// tiling exists (`x, y, x, y, ...` with `W(x,y)` and `B(y,x)`); a usable
/// state whose closed-walk lengths have gcd 2 gives `Θ(log* n)`; otherwise
/// the automaton is rigid (`Θ(n)`) or unsolvable.
pub fn alternating_path_class(problem: &BwProblem) -> PathClass {
    let n = problem.out_labels() as usize;
    let w = problem.path_pairs(Side::White);
    let b = problem.path_pairs(Side::Black);
    // States: (label, side-of-next-node). Transition (x, s) -> (y, !s) if
    // side s accepts {x, y}.
    let accepts = |s: usize, x: usize, y: usize| if s == 0 { w[x][y] } else { b[x][y] };
    // Usable states: in the "recurrent" part — have at least one outgoing
    // and one incoming transition within the mutually-reachable core.
    let mut usable = vec![[true; 2]; n];
    loop {
        let mut changed = false;
        for x in 0..n {
            for s in 0..2 {
                if !usable[x][s] {
                    continue;
                }
                let has_next = (0..n).any(|y| accepts(s, x, y) && usable[y][1 - s]);
                let has_prev = (0..n).any(|y| accepts(1 - s, y, x) && usable[y][1 - s]);
                if !has_next || !has_prev {
                    usable[x][s] = false;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    if !(0..n).any(|x| usable[x][0] || usable[x][1]) {
        return PathClass::Unsolvable;
    }
    // O(1): a period-2 tiling through usable states.
    for x in 0..n {
        for y in 0..n {
            if usable[x][0] && usable[y][1] && w[x][y] && b[y][x] {
                return PathClass::Constant;
            }
        }
    }
    // Θ(log* n): gcd of closed-walk lengths equals 2 for some usable state.
    if let Some(g) = closed_walk_gcd(n, &usable, &accepts) {
        if g == 2 {
            return PathClass::LogStar;
        }
    }
    PathClass::Linear
}

/// Gcd of closed-walk lengths through usable states (walk lengths are
/// always even due to the alternation); `None` if no closed walk exists.
fn closed_walk_gcd(
    n: usize,
    usable: &[[bool; 2]],
    accepts: &dyn Fn(usize, usize, usize) -> bool,
) -> Option<u64> {
    // Boolean matrices over states = (label, side); track at which step
    // counts each state returns to itself.
    let states: Vec<(usize, usize)> = (0..n)
        .flat_map(|x| (0..2).map(move |s| (x, s)))
        .filter(|&(x, s)| usable[x][s])
        .collect();
    let idx = |x: usize, s: usize| states.iter().position(|&(a, b)| (a, b) == (x, s));
    let m = states.len();
    if m == 0 {
        return None;
    }
    let mut step = vec![vec![false; m]; m];
    for (i, &(x, s)) in states.iter().enumerate() {
        for y in 0..n {
            if accepts(s, x, y) {
                if let Some(j) = idx(y, 1 - s) {
                    step[i][j] = true;
                }
            }
        }
    }
    let mut reach = step.clone();
    let mut g: u64 = 0;
    for len in 1..=(4 * m as u64 + 4) {
        for (i, row) in reach.iter().enumerate() {
            if row[i] {
                g = gcd(g, len);
            }
        }
        if g == 1 {
            return Some(1);
        }
        // reach = reach * step.
        let mut next = vec![vec![false; m]; m];
        for i in 0..m {
            for k in 0..m {
                if reach[i][k] {
                    for (j, &s) in step[k].iter().enumerate() {
                        if s {
                            next[i][j] = true;
                        }
                    }
                }
            }
        }
        reach = next;
    }
    (g > 0).then_some(g)
}

fn gcd(a: u64, b: u64) -> u64 {
    if a == 0 {
        b
    } else {
        gcd(b % a, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labelsets::GreedyRowChooser;

    #[test]
    fn multisets_enumeration() {
        let items = vec![1, 2];
        let sets = multisets_up_to(&items, 2);
        assert!(sets.contains(&vec![]));
        assert!(sets.contains(&vec![1]));
        assert!(sets.contains(&vec![1, 1]));
        assert!(sets.contains(&vec![1, 2]));
        assert!(sets.contains(&vec![2, 2]));
        assert_eq!(sets.len(), 6);
    }

    #[test]
    fn edge_three_coloring_has_good_function_on_paths() {
        // Edge 3-coloring on paths: the relation through a short path is
        // rich enough for rectangles; the testing procedure stabilizes.
        let p = BwProblem::edge_coloring(3, 2);
        let report = find_good_function(&p, &TestingConfig::paths());
        assert!(
            report.good_function.is_some(),
            "outcomes: {:?}",
            report
                .outcomes
                .iter()
                .map(|(n, o)| (n.clone(), o.is_good()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn edge_two_coloring_function_fails() {
        // Edge 2-coloring on paths is rigid: any rectangle restriction
        // collapses to an empty set somewhere (the relation is a perfect
        // anti-diagonal with no 2x1 rectangle surviving recombination
        // across layers).
        let p = BwProblem::edge_coloring(2, 2);
        let report = find_good_function(&p, &TestingConfig::paths());
        // Either no good function, or the implied class is not constant —
        // 2-coloring must not be classified as O(1).
        assert_ne!(report.implied, ImpliedComplexity::Constant);
    }

    #[test]
    fn all_equal_is_constant_good() {
        let p = BwProblem::all_equal(2, 2);
        let report = find_good_function(&p, &TestingConfig::paths());
        assert!(report.good_function.is_some());
        assert_eq!(report.constant_good, Some(true));
        assert_eq!(report.implied, ImpliedComplexity::Constant);
    }

    #[test]
    fn alternating_classes_match_expectations() {
        // all-equal: period-1 tiling -> Constant.
        assert_eq!(
            alternating_path_class(&BwProblem::all_equal(2, 2)),
            PathClass::Constant
        );
        // Edge 2-coloring: x,y alternate with W(x,y) and B(y,x): pattern
        // 0,1,0,1 anchored to sides is locally checkable -> Constant!
        // (The bipartition breaks the symmetry that makes vertex
        // 2-coloring hard; edge 2-coloring of a path IS that pattern.)
        assert_eq!(
            alternating_path_class(&BwProblem::edge_coloring(2, 2)),
            PathClass::Constant
        );
        // Edge 3-coloring: also constant via any 2-periodic pattern.
        assert_eq!(
            alternating_path_class(&BwProblem::edge_coloring(3, 2)),
            PathClass::Constant
        );
    }

    #[test]
    fn rigid_alternating_problem_is_linear() {
        // White nodes demand equality, black nodes demand inequality over
        // 2 labels: pattern x,x,y,y,x,x,... period 4 -> no period-2 tiling,
        // closed walks have gcd 4... wait: walks alternate W,B: cycle
        // 0,0,1,1 has length 4; gcd of closed walks = 4 -> Linear.
        let white = vec![
            vec![(0, 0), (0, 0)],
            vec![(0, 1), (0, 1)],
            vec![(0, 0)],
            vec![(0, 1)],
        ];
        let black = vec![vec![(0, 0), (0, 1)], vec![(0, 0)], vec![(0, 1)]];
        let p = BwProblem::new(1, 2, white, black);
        assert_eq!(alternating_path_class(&p), PathClass::Linear);
    }

    #[test]
    fn unsolvable_alternating_problem() {
        // Black accepts nothing of degree 2: no long paths solvable.
        let white = vec![vec![(0, 0), (0, 0)], vec![(0, 0)]];
        let black = vec![vec![(0, 0)]];
        let p = BwProblem::new(1, 1, white, black);
        assert_eq!(alternating_path_class(&p), PathClass::Unsolvable);
    }

    #[test]
    fn test_function_reports_layers() {
        let p = BwProblem::all_equal(2, 2);
        let outcome = test_function(&p, &GreedyRowChooser { seed: 0 }, &TestingConfig::paths());
        match outcome {
            TestOutcome::Good { layers, reachable } => {
                assert!(layers >= 2);
                assert!(!reachable.is_empty());
            }
            TestOutcome::Failed { reason, .. } => panic!("should be good: {reason}"),
        }
    }

    #[test]
    fn gcd_helper() {
        assert_eq!(gcd(0, 4), 4);
        assert_eq!(gcd(6, 4), 2);
        assert_eq!(gcd(3, 7), 1);
    }
}
