//! The black-white formalism for LCLs on trees (Definition 70).
//!
//! A problem is a tuple `(Σ_in, Σ_out, C_W, C_B)`: edges carry input and
//! output labels, nodes are properly 2-colored white/black (every tree is
//! bipartite), and each node's multiset of incident `(input, output)`
//! pairs must belong to its color's constraint set. \[BBK+23a\] shows every
//! LCL on trees converts to this form with the same asymptotic
//! node-averaged complexity; the paper's Section 11 machinery (label-sets,
//! the testing procedure, the compress problem) operates directly on it.

use lcl_graph::{NodeId, Tree};
use serde::Serialize;
use std::collections::BTreeMap;

/// Node side in the 2-coloring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum Side {
    /// White node (`C_W` applies).
    White,
    /// Black node (`C_B` applies).
    Black,
}

impl Side {
    /// The opposite side.
    pub fn flip(self) -> Side {
        match self {
            Side::White => Side::Black,
            Side::Black => Side::White,
        }
    }
}

/// A constraint multiset: sorted `(input, output)` pairs.
pub type PairMultiset = Vec<(u8, u8)>;

/// An LCL in the black-white formalism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BwProblem {
    in_labels: u8,
    out_labels: u8,
    white: Vec<PairMultiset>,
    black: Vec<PairMultiset>,
}

impl BwProblem {
    /// Builds a problem; multisets are canonicalized (sorted).
    ///
    /// # Panics
    ///
    /// Panics if labels exceed the declared alphabet sizes or
    /// `out_labels > 32` (label-sets are `u32` bitmasks).
    pub fn new(
        in_labels: u8,
        out_labels: u8,
        white: Vec<PairMultiset>,
        black: Vec<PairMultiset>,
    ) -> Self {
        assert!((1..=32).contains(&out_labels), "1..=32 output labels");
        assert!(in_labels >= 1, "at least one input label");
        let canon = |mut sets: Vec<PairMultiset>| -> Vec<PairMultiset> {
            for m in &mut sets {
                for &(i, o) in m.iter() {
                    assert!(i < in_labels, "input label {i} out of range");
                    assert!(o < out_labels, "output label {o} out of range");
                }
                m.sort_unstable();
            }
            sets.sort();
            sets.dedup();
            sets
        };
        BwProblem {
            in_labels,
            out_labels,
            white: canon(white),
            black: canon(black),
        }
    }

    /// Number of input labels.
    pub fn in_labels(&self) -> u8 {
        self.in_labels
    }

    /// Number of output labels.
    pub fn out_labels(&self) -> u8 {
        self.out_labels
    }

    /// The constraint set of a side.
    pub fn constraints(&self, side: Side) -> &[PairMultiset] {
        match side {
            Side::White => &self.white,
            Side::Black => &self.black,
        }
    }

    /// True if `multiset` (any order) satisfies `side`'s constraint.
    pub fn accepts(&self, side: Side, multiset: &[(u8, u8)]) -> bool {
        let mut m = multiset.to_vec();
        m.sort_unstable();
        self.constraints(side).contains(&m)
    }

    /// The canonical 2-coloring of a tree (BFS parity from node 0).
    pub fn bipartition(tree: &Tree) -> Vec<Side> {
        tree.bfs_distances(0)
            .iter()
            .map(|&d| if d % 2 == 0 { Side::White } else { Side::Black })
            .collect()
    }

    /// Verifies an edge labeling against the constraints.
    ///
    /// `edge_in` and `edge_out` map canonical edges `(u, v)` with `u < v`
    /// to labels.
    ///
    /// # Errors
    ///
    /// Returns the offending node and a description.
    pub fn verify(
        &self,
        tree: &Tree,
        sides: &[Side],
        edge_in: &BTreeMap<(NodeId, NodeId), u8>,
        edge_out: &BTreeMap<(NodeId, NodeId), u8>,
    ) -> Result<(), (NodeId, String)> {
        for v in tree.nodes() {
            let mut pairs: Vec<(u8, u8)> = Vec::with_capacity(tree.degree(v));
            for &w in tree.neighbors(v) {
                let w = w as usize;
                let key = (v.min(w), v.max(w));
                let i = *edge_in
                    .get(&key)
                    .ok_or_else(|| (v, format!("edge {key:?} missing input label")))?;
                let o = *edge_out
                    .get(&key)
                    .ok_or_else(|| (v, format!("edge {key:?} missing output label")))?;
                pairs.push((i, o));
            }
            if !self.accepts(sides[v], &pairs) {
                return Err((
                    v,
                    format!("multiset {pairs:?} not in {:?} constraint", sides[v]),
                ));
            }
            // Adjacent nodes must have opposite sides.
            for &w in tree.neighbors(v) {
                if sides[v] == sides[w as usize] {
                    return Err((v, "2-coloring is not proper".into()));
                }
            }
        }
        Ok(())
    }

    /// Input-free *edge grammar* on paths: the pairs `(a, b)` a degree-2
    /// node of the given side accepts (with input label 0 everywhere).
    pub fn path_pairs(&self, side: Side) -> Vec<Vec<bool>> {
        let n = self.out_labels as usize;
        let mut allowed = vec![vec![false; n]; n];
        for (a, row) in allowed.iter_mut().enumerate() {
            for (b, cell) in row.iter_mut().enumerate() {
                *cell = self.accepts(side, &[(0, a as u8), (0, b as u8)]);
            }
        }
        allowed
    }

    /// Output labels a degree-1 node of the given side accepts.
    pub fn path_ends(&self, side: Side) -> Vec<bool> {
        let n = self.out_labels as usize;
        (0..n)
            .map(|a| self.accepts(side, &[(0, a as u8)]))
            .collect()
    }
}

/// Convenient constructors for the test battery.
impl BwProblem {
    /// Proper `c`-coloring of *edges* around every node (no two incident
    /// edges share an output label), for degrees up to `max_deg`.
    pub fn edge_coloring(c: u8, max_deg: usize) -> Self {
        let mut sets = Vec::new();
        // All strictly-increasing tuples of distinct colors, sizes 1..=max_deg.
        fn rec(
            c: u8,
            start: u8,
            cur: &mut Vec<(u8, u8)>,
            out: &mut Vec<PairMultiset>,
            left: usize,
        ) {
            if !cur.is_empty() {
                out.push(cur.clone());
            }
            if left == 0 {
                return;
            }
            for col in start..c {
                cur.push((0, col));
                rec(c, col + 1, cur, out, left - 1);
                cur.pop();
            }
        }
        rec(c, 0, &mut Vec::new(), &mut sets, max_deg);
        BwProblem::new(1, c, sets.clone(), sets)
    }

    /// The "all edges share one label" trivial problem.
    pub fn all_equal(labels: u8, max_deg: usize) -> Self {
        let mut sets = Vec::new();
        for l in 0..labels {
            for deg in 1..=max_deg {
                sets.push(vec![(0, l); deg]);
            }
        }
        BwProblem::new(1, labels, sets.clone(), sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::generators::path;

    #[test]
    fn canonicalization_and_accepts() {
        let p = BwProblem::new(
            1,
            2,
            vec![vec![(0, 1), (0, 0)]],
            vec![vec![(0, 0)], vec![(0, 1)]],
        );
        assert!(p.accepts(Side::White, &[(0, 0), (0, 1)]));
        assert!(p.accepts(Side::White, &[(0, 1), (0, 0)]));
        assert!(!p.accepts(Side::White, &[(0, 0), (0, 0)]));
        assert!(p.accepts(Side::Black, &[(0, 1)]));
        assert_eq!(p.in_labels(), 1);
        assert_eq!(p.out_labels(), 2);
    }

    #[test]
    fn bipartition_alternates() {
        let t = path(5);
        let sides = BwProblem::bipartition(&t);
        assert_eq!(sides[0], Side::White);
        assert_eq!(sides[1], Side::Black);
        assert_eq!(sides[2], Side::White);
        assert_eq!(Side::White.flip(), Side::Black);
    }

    #[test]
    fn verify_path_labeling() {
        // Edge 2-coloring on a path: incident edges alternate 0, 1.
        let p = BwProblem::edge_coloring(2, 2);
        let t = path(4);
        let sides = BwProblem::bipartition(&t);
        let mut edge_in = BTreeMap::new();
        let mut edge_out = BTreeMap::new();
        for (idx, (u, v)) in [(0usize, 1usize), (1, 2), (2, 3)].into_iter().enumerate() {
            edge_in.insert((u, v), 0u8);
            edge_out.insert((u, v), (idx % 2) as u8);
        }
        assert!(p.verify(&t, &sides, &edge_in, &edge_out).is_ok());
        // Two incident edges with the same color fail.
        edge_out.insert((1, 2), 0);
        let err = p.verify(&t, &sides, &edge_in, &edge_out).unwrap_err();
        assert_eq!(err.0, 1);
    }

    #[test]
    fn path_pairs_for_edge_coloring() {
        let p = BwProblem::edge_coloring(3, 2);
        let pairs = p.path_pairs(Side::White);
        assert!(!pairs[0][0]);
        assert!(pairs[0][1] && pairs[1][0] && pairs[1][2]);
        let ends = p.path_ends(Side::Black);
        assert!(ends.iter().all(|&e| e));
    }

    #[test]
    fn all_equal_accepts_uniform_only() {
        let p = BwProblem::all_equal(2, 3);
        assert!(p.accepts(Side::White, &[(0, 1), (0, 1), (0, 1)]));
        assert!(!p.accepts(Side::White, &[(0, 1), (0, 0)]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_range_checked() {
        let _ = BwProblem::new(1, 2, vec![vec![(0, 5)]], vec![]);
    }
}
