//! Classification of (edge-symmetric, input-free) LCLs on paths.
//!
//! On paths, the worst-case complexity of an LCL is decidable and falls
//! into one of four classes — `O(1)`, `Θ(log* n)`, `Θ(n)`, or unsolvable
//! (\[BBC+19\], used by the paper as Lemma 81 and, through Feuilloley's
//! Lemma 16, to pin the node-averaged classes). This module implements the
//! automaton-theoretic criteria for problems given as a symmetric
//! compatibility relation between adjacent output labels plus endpoint
//! constraints:
//!
//! - **unsolvable** beyond some length if no endpoint-to-endpoint walk of
//!   that length exists,
//! - **`O(1)`** iff some *self-loop* label (one that may repeat) is usable:
//!   reachable from both endpoint sides within a constant prefix — nodes
//!   then tile the loop label and only `O(1)`-radius views are needed,
//! - **`Θ(log* n)`** iff no such loop exists but some usable label is
//!   *flexible* (the gcd of the cycle lengths through it is 1): a ruling
//!   set computed in `Θ(log* n)` splits the path into segments that can be
//!   filled independently; Linial's lower bound shows this is tight,
//! - **`Θ(n)`** otherwise (rigid problems like proper 2-coloring, where a
//!   single decision propagates globally).
//!
//! By Lemma 16 of the paper, on paths the deterministic node-averaged
//! class coincides with the worst-case class for `Θ(log* n)` and `Θ(n)`,
//! and `O(1)` is trivially preserved.

use serde::Serialize;

/// Worst-case (and, by Lemma 16, node-averaged) complexity class of a path
/// LCL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum PathClass {
    /// No valid labeling exists for all sufficiently large path lengths.
    Unsolvable,
    /// Solvable in `O(1)` rounds.
    Constant,
    /// Complexity `Θ(log* n)`.
    LogStar,
    /// Complexity `Θ(n)`.
    Linear,
}

/// An input-free LCL on paths with symmetric edge constraints.
///
/// # Examples
///
/// ```
/// use lcl_decidability::path_lcl::{PathLcl, PathClass};
///
/// // Proper 3-coloring: all unequal pairs allowed.
/// let p = PathLcl::proper_coloring(3);
/// assert_eq!(p.classify(), PathClass::LogStar);
/// // Proper 2-coloring is rigid.
/// assert_eq!(PathLcl::proper_coloring(2).classify(), PathClass::Linear);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathLcl {
    labels: usize,
    /// `allowed[a][b]`: labels `a` and `b` may be adjacent (symmetric).
    allowed: Vec<Vec<bool>>,
    /// Labels permitted on degree-1 endpoints.
    end_allowed: Vec<bool>,
}

impl PathLcl {
    /// Builds a problem from a symmetric adjacency relation and endpoint
    /// permissions.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square/symmetric or sizes disagree.
    pub fn new(allowed: Vec<Vec<bool>>, end_allowed: Vec<bool>) -> Self {
        let labels = allowed.len();
        assert!(labels > 0, "need at least one label");
        assert!(
            allowed.iter().all(|row| row.len() == labels),
            "adjacency matrix must be square"
        );
        for (a, row) in allowed.iter().enumerate() {
            for (b, &cell) in row.iter().enumerate() {
                assert_eq!(cell, allowed[b][a], "matrix must be symmetric");
            }
        }
        assert_eq!(end_allowed.len(), labels, "endpoint permissions per label");
        PathLcl {
            labels,
            allowed,
            end_allowed,
        }
    }

    /// Proper coloring with `c` colors (all labels allowed at endpoints).
    pub fn proper_coloring(c: usize) -> Self {
        let allowed = (0..c).map(|a| (0..c).map(|b| a != b).collect()).collect();
        PathLcl::new(allowed, vec![true; c])
    }

    /// The trivial problem: one label compatible with itself.
    pub fn trivial() -> Self {
        PathLcl::new(vec![vec![true]], vec![true])
    }

    /// Number of output labels.
    pub fn label_count(&self) -> usize {
        self.labels
    }

    /// Whether a valid labeling of a path with `len` nodes exists.
    pub fn solvable(&self, len: usize) -> bool {
        if len == 0 {
            return false;
        }
        if len == 1 {
            return self.end_allowed.iter().any(|&e| e);
        }
        // BFS over (label, position) is wasteful; DP over reachable sets.
        let mut reach: Vec<bool> = self.end_allowed.clone();
        for _ in 1..len {
            let mut next = vec![false; self.labels];
            for (a, &reachable) in reach.iter().enumerate() {
                if reachable {
                    for (slot, &edge) in next.iter_mut().zip(&self.allowed[a]) {
                        if edge {
                            *slot = true;
                        }
                    }
                }
            }
            reach = next;
        }
        (0..self.labels).any(|a| reach[a] && self.end_allowed[a])
    }

    /// Labels usable in arbitrarily long solutions: reachable from an
    /// allowed endpoint with unbounded-length prefixes *and* co-reachable
    /// symmetrically. A label qualifies if it is reachable from some
    /// recurrent label that is itself endpoint-reachable; by symmetry of
    /// the relation, reachability and co-reachability coincide.
    fn usable(&self) -> Vec<bool> {
        let n = self.labels;
        // Plain reachability from endpoints.
        let mut reach = self.end_allowed.clone();
        loop {
            let mut changed = false;
            for a in 0..n {
                if reach[a] {
                    for (b, &edge) in self.allowed[a].iter().enumerate() {
                        if edge && !reach[b] {
                            reach[b] = true;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Recurrent labels: on a cycle in the compatibility graph (in the
        // undirected sense, a label a is recurrent iff it has a neighbor,
        // since a-b-a-b-... repeats; the walk may revisit labels).
        let mut usable = vec![false; n];
        for a in 0..n {
            usable[a] = reach[a] && (0..n).any(|b| self.allowed[a][b] && reach[b]);
        }
        usable
    }

    /// Classifies the problem's deterministic complexity on paths.
    pub fn classify(&self) -> PathClass {
        let usable = self.usable();
        // Large-length solvability: some usable label must exist and
        // endpoints must connect through them; sample a window of lengths
        // to rule out parity-style insolvability.
        let horizon = 2 * self.labels + 4;
        let all_solvable = (horizon..horizon + self.labels.max(2)).all(|len| self.solvable(len));
        if !all_solvable || !usable.iter().any(|&u| u) {
            return PathClass::Unsolvable;
        }
        // O(1): a usable self-loop label.
        if (0..self.labels).any(|a| usable[a] && self.allowed[a][a]) {
            return PathClass::Constant;
        }
        // Θ(log* n): a usable flexible label (odd cycle through it).
        if (0..self.labels).any(|a| usable[a] && self.has_odd_cycle_through(a, &usable)) {
            return PathClass::LogStar;
        }
        PathClass::Linear
    }

    /// Whether some odd-length closed walk through `a` exists using only
    /// usable labels. Together with the trivial even walk `a-b-a`, an odd
    /// cycle makes the gcd of cycle lengths 1 (flexibility).
    fn has_odd_cycle_through(&self, a: usize, usable: &[bool]) -> bool {
        // Bipartite-ness test of the component of `a` restricted to usable
        // labels: an odd closed walk exists iff the component is not
        // bipartite.
        let n = self.labels;
        let mut color = vec![None; n];
        let mut queue = std::collections::VecDeque::new();
        color[a] = Some(0u8);
        queue.push_back(a);
        while let Some(u) = queue.pop_front() {
            for v in 0..n {
                if self.allowed[u][v] && usable[v] {
                    match color[v] {
                        None => {
                            color[v] = Some(1 - color[u].unwrap());
                            queue.push_back(v);
                        }
                        Some(c) => {
                            if c == color[u].unwrap() {
                                return true;
                            }
                        }
                    }
                }
            }
        }
        false
    }

    /// The node-averaged complexity class (Lemma 16 / Corollary 17 of the
    /// paper): identical to the worst-case class on paths.
    pub fn node_averaged_class(&self) -> PathClass {
        self.classify()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_is_constant() {
        assert_eq!(PathLcl::trivial().classify(), PathClass::Constant);
    }

    #[test]
    fn proper_colorings() {
        assert_eq!(PathLcl::proper_coloring(2).classify(), PathClass::Linear);
        assert_eq!(PathLcl::proper_coloring(3).classify(), PathClass::LogStar);
        assert_eq!(PathLcl::proper_coloring(4).classify(), PathClass::LogStar);
    }

    #[test]
    fn coloring_with_wildcard_is_constant() {
        // Labels {0, 1, *}: 0/1 must alternate but * goes with everything
        // including itself.
        let allowed = vec![
            vec![false, true, true],
            vec![true, false, true],
            vec![true, true, true],
        ];
        let p = PathLcl::new(allowed, vec![true; 3]);
        assert_eq!(p.classify(), PathClass::Constant);
    }

    #[test]
    fn isolated_labels_are_unusable() {
        // Label 2 is compatible with nothing: solvability must come from
        // the 2-coloring part.
        let allowed = vec![
            vec![false, true, false],
            vec![true, false, false],
            vec![false, false, false],
        ];
        let p = PathLcl::new(allowed, vec![true, true, false]);
        assert_eq!(p.classify(), PathClass::Linear);
    }

    #[test]
    fn endpoint_restrictions_can_kill_solvability() {
        // Only label 0 allowed at endpoints, but 0 is compatible with
        // nothing at all: unsolvable beyond length 1.
        let allowed = vec![vec![false, false], vec![false, true]];
        let p = PathLcl::new(allowed, vec![true, false]);
        assert_eq!(p.classify(), PathClass::Unsolvable);
    }

    #[test]
    fn solvability_dp_matches_brute_force() {
        let p = PathLcl::proper_coloring(2);
        for len in 1..8 {
            assert!(p.solvable(len), "2-coloring solvable at {len}");
        }
        assert!(!p.solvable(0));
    }

    #[test]
    fn odd_cycle_detection() {
        // Triangle relation (3-coloring): odd cycle exists.
        let p = PathLcl::proper_coloring(3);
        let usable = vec![true; 3];
        assert!(p.has_odd_cycle_through(0, &usable));
        // 2-coloring: bipartite, no odd cycle.
        let q = PathLcl::proper_coloring(2);
        let usable = vec![true; 2];
        assert!(!q.has_odd_cycle_through(0, &usable));
    }

    #[test]
    fn node_averaged_matches_worst_case() {
        for p in [
            PathLcl::trivial(),
            PathLcl::proper_coloring(2),
            PathLcl::proper_coloring(3),
        ] {
            assert_eq!(p.classify(), p.node_averaged_class());
        }
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_rejected() {
        let _ = PathLcl::new(
            vec![vec![false, true], vec![false, false]],
            vec![true, true],
        );
    }
}
