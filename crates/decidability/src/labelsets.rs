//! Label-sets and classes (Definitions 73 and 74).
//!
//! A *label-set* is the set of output labels that can appear on an edge
//! such that everything below the edge is completable — a `u32` bitmask
//! over `Σ_out`. This module computes:
//!
//! - `g(v)` for a single node with incoming label-sets and one outgoing
//!   edge (Definition 74, "single nodes"),
//! - feasibility for a node with *no* outgoing edge (the root case of the
//!   testing procedure),
//! - the *maximal class* of a short compress path as the relation of
//!   feasible `(o₁, o₂)` pairs on its two outgoing edges (Definition 74,
//!   "short paths"),
//! - *independent classes* as rectangles `S₁ × S₂` inside that relation,
//!   with a small canonical family of rectangle choosers standing in for
//!   the finite function space `f_{Π,k}` of \[CP19, Cha20\].

use crate::bw::{BwProblem, Side};

/// A set of output labels, as a bitmask.
pub type LabelSet = u32;

/// An edge endpoint descriptor during bottom-up processing: which side the
/// *child* (lower) node has, the edge's input label, and the label-set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Half {
    /// Side of the lower endpoint of the edge.
    pub child_side: Side,
    /// Input label of the edge.
    pub in_label: u8,
    /// The label-set computed for the edge.
    pub set: LabelSet,
}

/// Iterates the labels of a set.
pub fn labels_of(set: LabelSet) -> impl Iterator<Item = u8> {
    (0..32u8).filter(move |&l| set >> l & 1 == 1)
}

/// True if the constraint multiset `c` can be matched: one designated pair
/// `(out_in, out_choice)` for the outgoing edge (if any) and one pair per
/// incoming edge drawn from its label-set.
fn matchable(c: &[(u8, u8)], outgoing: Option<(u8, u8)>, incoming: &[(u8, LabelSet)]) -> bool {
    // Backtracking assignment of constraint elements to slots.
    fn rec(c: &[(u8, u8)], used: &mut [bool], slots: &[(u8, LabelSet)], slot: usize) -> bool {
        if slot == slots.len() {
            return true;
        }
        let (want_in, set) = slots[slot];
        for (idx, &(ci, co)) in c.iter().enumerate() {
            if !used[idx] && ci == want_in && set >> co & 1 == 1 {
                used[idx] = true;
                if rec(c, used, slots, slot + 1) {
                    return true;
                }
                used[idx] = false;
            }
        }
        false
    }
    let needed = incoming.len() + usize::from(outgoing.is_some());
    if c.len() != needed {
        return false;
    }
    let mut used = vec![false; c.len()];
    if let Some((oi, oo)) = outgoing {
        // Reserve one matching element for the outgoing pair.
        let mut found = false;
        for (idx, &(ci, co)) in c.iter().enumerate() {
            if ci == oi && co == oo {
                used[idx] = true;
                if rec(c, &mut used, incoming, 0) {
                    found = true;
                }
                used[idx] = false;
                if found {
                    return true;
                }
            }
        }
        false
    } else {
        rec(c, &mut used, incoming, 0)
    }
}

/// `g(v)` of Definition 74 (single-node case): the set of labels for the
/// outgoing edge such that some choice from each incoming label-set
/// satisfies `side`'s constraint.
pub fn g_single(
    problem: &BwProblem,
    side: Side,
    out_in_label: u8,
    incoming: &[(u8, LabelSet)],
) -> LabelSet {
    let mut set: LabelSet = 0;
    for o in 0..problem.out_labels() {
        let feasible = problem
            .constraints(side)
            .iter()
            .any(|c| matchable(c, Some((out_in_label, o)), incoming));
        if feasible {
            set |= 1 << o;
        }
    }
    set
}

/// Feasibility for a node with no outgoing edge (testing-procedure step
/// 2a): some constraint multiset matches all incoming label-sets.
pub fn feasible_root(problem: &BwProblem, side: Side, incoming: &[(u8, LabelSet)]) -> bool {
    problem
        .constraints(side)
        .iter()
        .any(|c| matchable(c, None, incoming))
}

/// The maximal class of a short path, reduced to the relation of feasible
/// `(o₁, o₂)` outgoing-label pairs (Definition 73's feasible labelings,
/// projected to the two outgoing edges).
///
/// `nodes[j]` describes path node `v_{j+1}`: its side and hair label-sets;
/// `edge_inputs[j]` is the input label of the internal edge between
/// `nodes[j]` and `nodes[j + 1]`; `out1_in`/`out2_in` are the input labels
/// of the two outgoing endpoint edges.
#[derive(Debug, Clone)]
pub struct PathNodeSpec {
    /// The node's side.
    pub side: Side,
    /// Hair edges: (input label, label-set) pairs.
    pub hairs: Vec<(u8, LabelSet)>,
}

/// Relation on `(o₁, o₂)`: `rel[o1][o2]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// Number of output labels.
    pub labels: u8,
    /// Feasible pairs.
    pub rel: Vec<Vec<bool>>,
}

impl Relation {
    /// True if no pair is feasible.
    pub fn is_empty(&self) -> bool {
        self.rel.iter().all(|row| row.iter().all(|&b| !b))
    }

    /// Projection to the first coordinate as a label-set.
    pub fn left_set(&self) -> LabelSet {
        let mut s = 0;
        for (o1, row) in self.rel.iter().enumerate() {
            if row.iter().any(|&b| b) {
                s |= 1 << o1;
            }
        }
        s
    }

    /// Projection to the second coordinate.
    pub fn right_set(&self) -> LabelSet {
        let mut s = 0;
        for row in &self.rel {
            for (o2, &b) in row.iter().enumerate() {
                if b {
                    s |= 1 << o2;
                }
            }
        }
        s
    }

    /// True if `s1 × s2 ⊆ rel` — the independence condition of
    /// Definition 73 (any recombination of endpoint choices completes).
    pub fn contains_rectangle(&self, s1: LabelSet, s2: LabelSet) -> bool {
        labels_of(s1).all(|a| labels_of(s2).all(|b| self.rel[a as usize][b as usize]))
    }
}

/// Computes the maximal-class relation of a path (Definition 74, short
/// paths) by forward dynamic programming over the internal edge labels.
///
/// # Panics
///
/// Panics if fewer than two nodes are given or arities disagree.
pub fn path_relation(
    problem: &BwProblem,
    nodes: &[PathNodeSpec],
    edge_inputs: &[u8],
    out1_in: u8,
    out2_in: u8,
) -> Relation {
    let m = nodes.len();
    assert!(m >= 2, "a compress path has at least two nodes");
    assert_eq!(edge_inputs.len(), m - 1, "one input per internal edge");
    let labels = problem.out_labels();
    let mut rel = vec![vec![false; labels as usize]; labels as usize];
    for o1 in 0..labels {
        // Feasible labels on the internal edge after v1.
        let mut frontier: Vec<bool> = (0..labels)
            .map(|x| {
                let mut incoming = nodes[0].hairs.clone();
                incoming.push((out1_in, 1 << o1));
                // v1 must accept with outgoing (edge_inputs[0], x).
                problem
                    .constraints(nodes[0].side)
                    .iter()
                    .any(|c| matchable(c, Some((edge_inputs[0], x)), &incoming))
            })
            .collect();
        for j in 1..m - 1 {
            let mut next = vec![false; labels as usize];
            for (x, &ok) in frontier.iter().enumerate() {
                if !ok {
                    continue;
                }
                for y in 0..labels {
                    if next[y as usize] {
                        continue;
                    }
                    let mut incoming = nodes[j].hairs.clone();
                    incoming.push((edge_inputs[j - 1], 1 << x));
                    if problem
                        .constraints(nodes[j].side)
                        .iter()
                        .any(|c| matchable(c, Some((edge_inputs[j], y)), &incoming))
                    {
                        next[y as usize] = true;
                    }
                }
            }
            frontier = next;
        }
        for o2 in 0..labels {
            let feasible = frontier.iter().enumerate().any(|(x, &ok)| {
                if !ok {
                    return false;
                }
                let mut incoming = nodes[m - 1].hairs.clone();
                incoming.push((edge_inputs[m - 2], 1 << (x as u8)));
                problem
                    .constraints(nodes[m - 1].side)
                    .iter()
                    .any(|c| matchable(c, Some((out2_in, o2)), &incoming))
            });
            rel[o1 as usize][o2 as usize] = feasible;
        }
    }
    Relation { labels, rel }
}

/// A canonical chooser of independent classes: maps a relation to a
/// rectangle `S₁ × S₂ ⊆ rel`. The finite family of choosers stands in for
/// the finite space of candidate functions `f_{Π,k}`.
pub trait RectangleChooser {
    /// A short identifier for reports.
    fn name(&self) -> String;
    /// Chooses a rectangle; both sides empty means "give up" (the tested
    /// function fails).
    fn choose(&self, relation: &Relation) -> (LabelSet, LabelSet);
}

/// Greedy chooser seeded at the `seed`-th densest row: `S₂` is that row,
/// `S₁` all rows containing `S₂`.
#[derive(Debug, Clone, Copy)]
pub struct GreedyRowChooser {
    /// Which densest row (0 = densest) seeds the rectangle.
    pub seed: usize,
}

impl RectangleChooser for GreedyRowChooser {
    fn name(&self) -> String {
        format!("greedy-row-{}", self.seed)
    }

    fn choose(&self, relation: &Relation) -> (LabelSet, LabelSet) {
        let mut rows: Vec<(usize, LabelSet)> = relation
            .rel
            .iter()
            .enumerate()
            .map(|(a, row)| {
                let mut s: LabelSet = 0;
                for (b, &ok) in row.iter().enumerate() {
                    if ok {
                        s |= 1 << b;
                    }
                }
                (a, s)
            })
            .filter(|&(_, s)| s != 0)
            .collect();
        rows.sort_by_key(|&(a, s)| (std::cmp::Reverse(s.count_ones()), a));
        let Some(&(_, s2)) = rows.get(self.seed.min(rows.len().saturating_sub(1))) else {
            return (0, 0);
        };
        if rows.is_empty() {
            return (0, 0);
        }
        let mut s1: LabelSet = 0;
        for &(a, s) in &rows {
            if s & s2 == s2 {
                s1 |= 1 << a;
            }
        }
        (s1, s2)
    }
}

/// The canonical finite family of candidate choosers.
pub fn chooser_family(out_labels: u8) -> Vec<GreedyRowChooser> {
    (0..out_labels as usize)
        .map(|seed| GreedyRowChooser { seed })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge2() -> BwProblem {
        BwProblem::edge_coloring(2, 3)
    }

    #[test]
    fn g_single_leaf() {
        // A leaf has no incoming edges; edge-coloring accepts any single
        // color on its one edge.
        let p = edge2();
        let g = g_single(&p, Side::White, 0, &[]);
        assert_eq!(g, 0b11);
    }

    #[test]
    fn g_single_with_incoming() {
        // One incoming edge that can only be color 0: the outgoing edge
        // must be color 1 (incident edges differ).
        let p = edge2();
        let g = g_single(&p, Side::Black, 0, &[(0, 0b01)]);
        assert_eq!(g, 0b10);
        // Incoming can be either color: outgoing can be either too.
        let g = g_single(&p, Side::Black, 0, &[(0, 0b11)]);
        assert_eq!(g, 0b11);
        // Two incoming edges exhaust both colors: nothing remains.
        let g = g_single(&p, Side::White, 0, &[(0, 0b01), (0, 0b10)]);
        assert_eq!(g, 0);
    }

    #[test]
    fn feasible_root_cases() {
        let p = edge2();
        assert!(feasible_root(&p, Side::White, &[(0, 0b11)]));
        assert!(feasible_root(&p, Side::White, &[(0, 0b01), (0, 0b10)]));
        // Both incoming edges forced to the same color: infeasible.
        assert!(!feasible_root(&p, Side::White, &[(0, 0b01), (0, 0b01)]));
    }

    #[test]
    fn path_relation_alternation() {
        // Edge 2-coloring along a hairless path of 3 nodes: labels of the
        // two outgoing edges are linked through two internal edges.
        // Pattern: o1 | x | y | o2 with o1 != x, x != y, y != o2.
        let p = edge2();
        let nodes = vec![
            PathNodeSpec {
                side: Side::White,
                hairs: vec![],
            },
            PathNodeSpec {
                side: Side::Black,
                hairs: vec![],
            },
            PathNodeSpec {
                side: Side::White,
                hairs: vec![],
            },
        ];
        let rel = path_relation(&p, &nodes, &[0, 0], 0, 0);
        // o1 = 0: x = 1, y = 0, o2 = 1. Also o1=0: x=1,y=0 -> o2 must be 1.
        assert!(rel.rel[0][1]);
        assert!(rel.rel[1][0]);
        // Same-label endpoints are impossible with 2 colors over 2 internal
        // edges (parity).
        assert!(!rel.rel[0][0]);
        assert!(!rel.rel[1][1]);
        assert!(!rel.is_empty());
        assert_eq!(rel.left_set(), 0b11);
        assert_eq!(rel.right_set(), 0b11);
    }

    #[test]
    fn rectangles_inside_relations() {
        let rel = Relation {
            labels: 2,
            rel: vec![vec![false, true], vec![true, false]],
        };
        // The anti-diagonal contains no (non-trivial) rectangle beyond
        // singletons.
        assert!(rel.contains_rectangle(0b01, 0b10));
        assert!(!rel.contains_rectangle(0b11, 0b11));
        assert!(!rel.contains_rectangle(0b11, 0b10));
    }

    #[test]
    fn greedy_chooser_picks_valid_rectangles() {
        // 3-label relation where label 2 pairs with everything.
        let rel = Relation {
            labels: 3,
            rel: vec![
                vec![false, true, true],
                vec![true, false, true],
                vec![true, true, true],
            ],
        };
        for chooser in chooser_family(3) {
            let (s1, s2) = chooser.choose(&rel);
            assert!(s1 != 0 && s2 != 0, "{}", chooser.name());
            assert!(
                rel.contains_rectangle(s1, s2),
                "{}: ({s1:b}, {s2:b})",
                chooser.name()
            );
        }
    }

    #[test]
    fn chooser_on_empty_relation_gives_up() {
        let rel = Relation {
            labels: 2,
            rel: vec![vec![false, false], vec![false, false]],
        };
        let (s1, s2) = GreedyRowChooser { seed: 0 }.choose(&rel);
        assert_eq!((s1, s2), (0, 0));
    }

    #[test]
    fn labels_of_roundtrip() {
        let set: LabelSet = 0b1011;
        let labels: Vec<u8> = labels_of(set).collect();
        assert_eq!(labels, vec![0, 1, 3]);
    }
}
