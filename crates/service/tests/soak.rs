//! Soak test: N concurrent socket clients hammer the service with
//! repeated presets; every record must be bit-identical to a
//! single-threaded oracle run computed up front. Cache hits (plan,
//! instance, peeling) must not change answers, the queue must never
//! wedge, and the plan cache must actually be exercised.

use lcl_core::problem_spec::ProblemSpec;
use lcl_harness::{plan, RunConfig};
use lcl_service::{serve_unix, Request, Response, Service, ServiceConfig};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;

type Oracle = BTreeMap<(String, u64), (Vec<u64>, Vec<u64>)>;

const N: usize = 400;
const CLIENTS: usize = 5;
const REPS: usize = 2;
const SEEDS: [u64; 2] = [1, 5];

fn socket_path() -> PathBuf {
    std::env::temp_dir().join(format!("lcld-soak-{}.sock", std::process::id()))
}

#[test]
fn concurrent_clients_get_bit_identical_records() {
    // Single-threaded oracle, computed before the service exists.
    let mut oracle: Oracle = BTreeMap::new();
    for (name, problem) in ProblemSpec::presets() {
        for seed in SEEDS {
            let record = plan(&problem, N, &RunConfig::seeded(seed))
                .expect("preset plans")
                .run()
                .expect("preset runs");
            oracle.insert((name.to_string(), seed), (record.labels, record.rounds));
        }
    }
    let oracle = Arc::new(oracle);

    let service = Service::start(ServiceConfig {
        workers: 4,
        queue_capacity: 256,
        ..ServiceConfig::default()
    });
    let path = socket_path();
    let socket = serve_unix(&service, &path).expect("socket binds");

    let clients: Vec<std::thread::JoinHandle<u64>> = (0..CLIENTS)
        .map(|client| {
            let path = path.clone();
            let oracle = Arc::clone(&oracle);
            std::thread::spawn(move || {
                let stream = UnixStream::connect(&path).expect("client connects");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = stream;
                let mut jobs: u64 = 0;
                // Closed loop: send one job, verify its record, repeat.
                // Clients start at different presets so the cache sees
                // overlapping, not identical, request streams.
                for rep in 0..REPS {
                    let presets = ProblemSpec::presets();
                    for offset in 0..presets.len() {
                        let (name, problem) = &presets[(client + offset) % presets.len()];
                        let seed = SEEDS[(client + rep + offset) % SEEDS.len()];
                        jobs += 1;
                        let request = Request::Solve {
                            id: jobs,
                            problem: problem.clone(),
                            n: N,
                            seed,
                            detail: true,
                            shards: None,
                            max_resident: None,
                            packing: None,
                        };
                        writer
                            .write_all(format!("{}\n", request.to_line()).as_bytes())
                            .expect("request written");
                        let mut line = String::new();
                        reader.read_line(&mut line).expect("response read");
                        let response =
                            Response::from_line(line.trim_end()).expect("response parses");
                        let Response::Record { id, record } = response else {
                            panic!("client {client}: expected record, got {line}");
                        };
                        assert_eq!(id, jobs, "client {client}: id mismatch");
                        let (labels, rounds) =
                            oracle.get(&(name.to_string(), seed)).expect("oracle entry");
                        assert_eq!(
                            record.labels.as_deref().expect("detail"),
                            &labels[..],
                            "client {client}, {name} seed {seed}: labels diverged"
                        );
                        assert_eq!(
                            record.rounds.as_deref().expect("detail"),
                            &rounds[..],
                            "client {client}, {name} seed {seed}: rounds diverged"
                        );
                        assert!(record.verified, "client {client}: unverified record");
                    }
                }
                jobs
            })
        })
        .collect();

    let total: u64 = clients
        .into_iter()
        .map(|c| c.join().expect("client ok"))
        .sum();
    let expected = (CLIENTS * REPS * ProblemSpec::presets().len()) as u64;
    assert_eq!(total, expected, "not every job completed");

    let stats = service.stats();
    assert_eq!(stats.jobs_failed, 0, "soak produced failures: {stats:?}");
    assert!(stats.jobs_ok >= total, "{stats:?}");
    assert!(
        stats.plan_cache.hits > 0,
        "plan cache never hit under soak: {stats:?}"
    );
    assert!(
        stats.instance_cache.hits > 0,
        "instance cache never hit under soak: {stats:?}"
    );
    drop(socket);
    service.shutdown();
}
