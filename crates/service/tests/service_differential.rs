//! Differential suite: every preset solved through the `lcld` service —
//! cold and cache-warm, across worker counts {1, 4} — must be
//! bit-identical in labels, rounds, and profile statistics to a direct
//! single-threaded plan-and-run. Caching and concurrency must never
//! change answers.

use lcl_core::problem_spec::ProblemSpec;
use lcl_harness::{plan, RunConfig, RunRecord};
use lcl_service::{Request, Response, Service, ServiceConfig};
use std::time::Duration;

const N: usize = 500;
const SEED: u64 = 11;
const RECV: Duration = Duration::from_secs(120);

/// Direct oracle: the same plan the service builds, run without any
/// service machinery (fresh instance build, no worker pool).
fn oracle(problem: &ProblemSpec) -> RunRecord {
    let planned = plan(problem, N, &RunConfig::seeded(SEED)).expect("preset plans");
    planned.run().expect("preset runs")
}

#[test]
fn every_preset_matches_direct_runs_cold_and_warm() {
    for workers in [1usize, 4] {
        let service = Service::start(ServiceConfig {
            workers,
            ..ServiceConfig::default()
        });
        let conn = service.connect();
        for (name, problem) in ProblemSpec::presets() {
            let direct = oracle(&problem);
            // Two sequential solves: the first may or may not hit the
            // process-wide plan cache (other tests share it), the second
            // is guaranteed warm. Both must match the oracle exactly.
            let mut warm_seen = false;
            for (pass, id) in [("cold", 1u64), ("warm", 2u64)] {
                conn.request(&Request::Solve {
                    id,
                    problem: problem.clone(),
                    n: N,
                    seed: SEED,
                    detail: true,
                    shards: None,
                    max_resident: None,
                    packing: None,
                });
                let line = conn
                    .recv_timeout(RECV)
                    .unwrap_or_else(|e| panic!("{name}/{pass} (workers={workers}): recv {e}"));
                let response = Response::from_line(&line)
                    .unwrap_or_else(|e| panic!("{name}/{pass}: bad response {e:?}"));
                let Response::Record { id: got, record } = response else {
                    panic!("{name}/{pass} (workers={workers}): expected record, got {line}");
                };
                assert_eq!(got, id);
                assert_eq!(record.algorithm, direct.algorithm, "{name}/{pass}");
                assert_eq!(record.n as usize, direct.n, "{name}/{pass}");
                assert_eq!(record.seed, direct.seed, "{name}/{pass}");
                assert_eq!(
                    record.labels.as_deref().expect("detail requested"),
                    &direct.labels[..],
                    "{name}/{pass} (workers={workers}): labels differ"
                );
                assert_eq!(
                    record.rounds.as_deref().expect("detail requested"),
                    &direct.rounds[..],
                    "{name}/{pass} (workers={workers}): rounds differ"
                );
                // Profile statistics are pure functions of the rounds —
                // identical vectors must yield identical profiles.
                assert_eq!(record.node_averaged, direct.node_averaged, "{name}/{pass}");
                assert_eq!(record.worst_case, direct.worst_case, "{name}/{pass}");
                assert_eq!(record.median_round, direct.median_round, "{name}/{pass}");
                assert_eq!(
                    record.waiting_averaged, direct.waiting_averaged,
                    "{name}/{pass}"
                );
                assert!(record.verified, "{name}/{pass}: run did not verify");
                assert_eq!(
                    record.labels_fnv,
                    lcl_service::protocol::fnv1a_u64s(&direct.labels),
                    "{name}/{pass}: label checksum"
                );
                if pass == "warm" {
                    warm_seen = record.plan_cached;
                }
            }
            assert!(
                warm_seen,
                "{name} (workers={workers}): second solve did not hit the plan cache"
            );
        }
        service.shutdown();
    }
}

#[test]
fn classify_agrees_with_the_planner() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let conn = service.connect();
    for (name, problem) in ProblemSpec::presets() {
        let direct = plan(&problem, N, &RunConfig::seeded(SEED)).expect("preset plans");
        conn.request(&Request::Classify {
            id: 7,
            problem: problem.clone(),
        });
        let line = conn.recv_timeout(RECV).expect("classify answered");
        let Ok(Response::Plan {
            id,
            class,
            source,
            solver,
            score,
            ..
        }) = Response::from_line(&line)
        else {
            panic!("{name}: expected plan, got {line}");
        };
        assert_eq!(id, 7);
        assert_eq!(class, direct.classification.class.describe(), "{name}");
        assert_eq!(source, direct.classification.source.describe(), "{name}");
        assert_eq!(solver, direct.solver.name(), "{name}");
        assert_eq!(score, u64::from(direct.fit.score), "{name}");
    }
}

#[test]
fn sharded_solves_are_bit_identical_to_monolithic() {
    // The wire-level half of the sharding acceptance criteria: a solve
    // carrying shard/packing knobs must return the exact labels, rounds,
    // and checksums of the monolithic run — out-of-core execution is an
    // execution shape, never a semantic.
    let service = Service::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let conn = service.connect();
    for (name, problem) in ProblemSpec::presets() {
        let direct = oracle(&problem);
        for (pass, shards, max_resident, packing) in
            [("spilling", 4, 1, true), ("resident", 3, 0, false)]
        {
            conn.request(&Request::Solve {
                id: 21,
                problem: problem.clone(),
                n: N,
                seed: SEED,
                detail: true,
                shards: Some(shards),
                max_resident: Some(max_resident),
                packing: Some(packing),
            });
            let line = conn
                .recv_timeout(RECV)
                .unwrap_or_else(|e| panic!("{name}/{pass}: recv {e}"));
            let Ok(Response::Record { id, record }) = Response::from_line(&line) else {
                panic!("{name}/{pass}: expected record, got {line}");
            };
            assert_eq!(id, 21);
            assert_eq!(
                record.labels.as_deref().expect("detail requested"),
                &direct.labels[..],
                "{name}/{pass}: sharded labels diverged"
            );
            assert_eq!(
                record.rounds.as_deref().expect("detail requested"),
                &direct.rounds[..],
                "{name}/{pass}: sharded rounds diverged"
            );
            assert_eq!(record.node_averaged, direct.node_averaged, "{name}/{pass}");
            assert_eq!(record.worst_case, direct.worst_case, "{name}/{pass}");
            assert_eq!(
                record.labels_fnv,
                lcl_service::protocol::fnv1a_u64s(&direct.labels),
                "{name}/{pass}: label checksum"
            );
            assert_eq!(
                record.rounds_fnv,
                lcl_service::protocol::fnv1a_u64s(&direct.rounds),
                "{name}/{pass}: round checksum"
            );
            assert!(record.verified, "{name}/{pass}");
            assert!(
                record.peak_arena_bytes > 0,
                "{name}/{pass}: sharded records report the arena high-water mark"
            );
        }
    }
    service.shutdown();
}
